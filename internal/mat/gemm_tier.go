package mat

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// KernelTier names one rung of the GEMM microkernel ladder. Every tier
// computes bit-identical results — each output element is one ascending-k
// mul-then-add chain on all of them — so the tier only decides how many
// independent chains advance per instruction, never what the bits are.
// Higher tiers subsume lower ones: dispatch at tier T may use any
// microkernel of tier <= T that the platform implements.
type KernelTier uint8

const (
	// TierScalar is the pure-Go register-tiled path, available everywhere.
	TierScalar KernelTier = iota
	// TierNEON is the arm64 2-lane packed microkernel (gemm_arm64.s).
	TierNEON
	// TierAVX2 is the amd64 4-lane packed microkernel (gemm_amd64.s).
	TierAVX2
	// TierAVX512 is the amd64 8-lane packed microkernel (gemm_amd64.s),
	// gated on AVX512F.
	TierAVX512
)

func (t KernelTier) String() string {
	switch t {
	case TierScalar:
		return "scalar"
	case TierNEON:
		return "neon"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	}
	return fmt.Sprintf("KernelTier(%d)", uint8(t))
}

// ParseKernelTier parses a tier name as accepted by the PLM_KERNEL_TIER
// environment variable: "scalar", "neon", "avx2" or "avx512" (case
// insensitive).
func ParseKernelTier(s string) (KernelTier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "scalar":
		return TierScalar, nil
	case "neon":
		return TierNEON, nil
	case "avx2":
		return TierAVX2, nil
	case "avx512":
		return TierAVX512, nil
	}
	return TierScalar, fmt.Errorf("mat: unknown kernel tier %q", s)
}

// tierAvailable reports whether the running CPU can execute tier t.
func tierAvailable(t KernelTier) bool {
	switch t {
	case TierScalar:
		return true
	case TierNEON:
		return haveNEON
	case TierAVX2:
		return haveAVX2
	case TierAVX512:
		return haveAVX512
	}
	return false
}

// AvailableTiers returns every tier the running CPU can execute, ascending
// (TierScalar first). Parity tests sweep this list so one machine exercises
// every kernel it can run.
func AvailableTiers() []KernelTier {
	out := []KernelTier{TierScalar}
	for _, t := range []KernelTier{TierNEON, TierAVX2, TierAVX512} {
		if tierAvailable(t) {
			out = append(out, t)
		}
	}
	return out
}

// bestKernelTier is the highest tier the CPU supports — the startup default.
func bestKernelTier() KernelTier {
	switch {
	case haveAVX512:
		return TierAVX512
	case haveAVX2:
		return TierAVX2
	case haveNEON:
		return TierNEON
	}
	return TierScalar
}

// activeKernelTier holds the tier the dispatch currently uses. An atomic so
// the hot path reads it without a lock; SetKernelTier is test/debug surface.
var activeKernelTier atomic.Int32

func init() {
	t := bestKernelTier()
	// PLM_KERNEL_TIER pins the dispatch for A/B runs and CI tier sweeps.
	// An unknown or unsupported request keeps the detected default: a test
	// matrix exporting PLM_KERNEL_TIER=avx512 must not break machines
	// without it.
	if s := os.Getenv("PLM_KERNEL_TIER"); s != "" {
		if req, err := ParseKernelTier(s); err == nil && tierAvailable(req) {
			t = req
		}
	}
	activeKernelTier.Store(int32(t))
}

// ActiveKernelTier returns the tier the GEMM dispatch currently uses.
func ActiveKernelTier() KernelTier {
	return KernelTier(activeKernelTier.Load())
}

// SetKernelTier pins the GEMM dispatch to tier t and returns the previous
// tier. It fails if the running CPU cannot execute t. Results are
// bit-identical across tiers; this exists so parity tests and benchmarks can
// exercise every kernel on one machine (TierScalar is the reference).
func SetKernelTier(t KernelTier) (KernelTier, error) {
	if !tierAvailable(t) {
		return ActiveKernelTier(), fmt.Errorf("mat: kernel tier %s unavailable on this CPU", t)
	}
	return KernelTier(activeKernelTier.Swap(int32(t))), nil
}
