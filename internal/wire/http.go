package wire

import (
	"io"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
)

// Stats is a process-level wire counter set: payload bytes in and out of
// the seam and the per-request codec split. The server exposes its set on
// /stats; the client keeps one per connection so a shard's remote backends
// can be reached through. All methods are nil-safe so unmounted code paths
// (a Runner never attached to a server, say) need no guards.
type Stats struct {
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
	binaryRequests atomic.Int64
	jsonRequests   atomic.Int64
}

// Counts is an instantaneous snapshot of a Stats, in its wire form — the
// field names are the /stats members the counters appear under.
type Counts struct {
	BytesIn        int64 `json:"bytes_in"`
	BytesOut       int64 `json:"bytes_out"`
	BinaryRequests int64 `json:"binary_requests"`
	JSONRequests   int64 `json:"json_requests"`
}

// Counts snapshots the counters.
func (s *Stats) Counts() Counts {
	if s == nil {
		return Counts{}
	}
	return Counts{
		BytesIn:        s.bytesIn.Load(),
		BytesOut:       s.bytesOut.Load(),
		BinaryRequests: s.binaryRequests.Load(),
		JSONRequests:   s.jsonRequests.Load(),
	}
}

// AddBytesIn counts payload bytes read off the wire.
func (s *Stats) AddBytesIn(n int64) {
	if s != nil && n > 0 {
		s.bytesIn.Add(n)
	}
}

// AddBytesOut counts payload bytes written to the wire.
func (s *Stats) AddBytesOut(n int64) {
	if s != nil && n > 0 {
		s.bytesOut.Add(n)
	}
}

// CountRequest classifies one request as binary or JSON.
func (s *Stats) CountRequest(binaryCodec bool) {
	if s == nil {
		return
	}
	if binaryCodec {
		s.binaryRequests.Add(1)
	} else {
		s.jsonRequests.Add(1)
	}
}

// Exchange is the per-request server-side seam: it negotiates the request
// and response codecs once, counts the request and its payload bytes into
// stats, and answers every encode/decode the handler needs. Handlers never
// touch a codec or an encoder directly — one Exchange per served request
// is the whole wire surface of the process.
type Exchange struct {
	req   *http.Request
	in    Codec
	out   Codec
	stats *Stats
	limit int64
}

// NewExchange negotiates codecs for one request. limit caps the request
// body (non-positive: DefaultMaxBody). A request counts as binary when
// either direction negotiated the frame codec.
func NewExchange(r *http.Request, stats *Stats, limit int64) *Exchange {
	e := &Exchange{
		req:   r,
		in:    requestCodec(r),
		out:   responseCodec(r),
		stats: stats,
		limit: limit,
	}
	stats.CountRequest(e.in.Name() == NameBinary || e.out.Name() == NameBinary)
	return e
}

// requestCodec picks the body codec from Content-Type. Anything but the
// frame type — including absent or malformed values — is treated as JSON,
// matching the pre-codec server, which never inspected the header.
func requestCodec(r *http.Request) Codec {
	if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == ContentTypeBinary {
		return Binary{}
	}
	return JSON{}
}

// responseCodec picks the response codec from Accept: the frame type
// anywhere in the list selects binary (with its optional prec=f32
// parameter); everything else — absent, */*, unparsable — falls back to
// JSON. An old client never sees a frame it did not ask for.
func responseCodec(r *http.Request) Codec {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil || mt != ContentTypeBinary {
			continue
		}
		return Binary{Float32: params["prec"] == "f32"}
	}
	return JSON{}
}

// BinaryIn reports whether the request body rides the frame codec — the
// one negotiation fact handlers with non-float envelope parts (the job
// submit op, say) need to branch on.
func (e *Exchange) BinaryIn() bool { return e.in.Name() == NameBinary }

// BinaryOut returns the response frame codec when the client asked for
// one, carrying the negotiated float32 preference.
func (e *Exchange) BinaryOut() (Binary, bool) {
	b, ok := e.out.(Binary)
	return b, ok
}

// body wraps the request body so consumed bytes land in the stats.
func (e *Exchange) body() io.Reader {
	return &countReader{r: e.req.Body, stats: e.stats}
}

// ReadVec decodes the request body as a single vector.
func (e *Exchange) ReadVec(field string) ([]float64, error) {
	defer e.req.Body.Close()
	return e.in.DecodeVec(e.body(), e.limit, field)
}

// ReadMat decodes the request body as a row list.
func (e *Exchange) ReadMat(field string) ([][]float64, error) {
	defer e.req.Body.Close()
	return e.in.DecodeMat(e.body(), e.limit, field)
}

// ReadJSON strictly decodes a JSON request body — the escape hatch for
// envelopes that carry more than one float payload field.
func (e *Exchange) ReadJSON(dst any) error {
	defer e.req.Body.Close()
	return DecodeJSON(e.body(), e.limit, dst, true)
}

// WriteVec encodes v as a 200 response in the negotiated response codec.
func (e *Exchange) WriteVec(w http.ResponseWriter, field string, v []float64) {
	w.Header().Set("Content-Type", e.out.ContentType())
	w.WriteHeader(http.StatusOK)
	// Encoding errors past the header are unrecoverable; best effort.
	_ = e.out.EncodeVec(e.CountWriter(w), field, v)
}

// WriteMat encodes m as a 200 response in the negotiated response codec.
func (e *Exchange) WriteMat(w http.ResponseWriter, field string, m [][]float64) {
	w.Header().Set("Content-Type", e.out.ContentType())
	w.WriteHeader(http.StatusOK)
	_ = e.out.EncodeMat(e.CountWriter(w), field, m)
}

// WriteJSON writes a JSON response body, counting its bytes — for
// endpoint-specific envelopes (job views) that are JSON in every codec
// pairing but still cross the payload seam.
func (e *Exchange) WriteJSON(w http.ResponseWriter, status int, v any) {
	cw := &countResponseWriter{ResponseWriter: w, stats: e.stats}
	WriteJSON(cw, status, v)
}

// Error writes the protocol's JSON error envelope.
func (e *Exchange) Error(w http.ResponseWriter, status int, err error) {
	WriteError(w, status, err)
}

// CountWriter wraps w so written payload bytes land in the stats — for
// handlers that stream frames directly (the job result stream).
func (e *Exchange) CountWriter(w io.Writer) io.Writer {
	return &countWriter{w: w, stats: e.stats}
}

type countReader struct {
	r     io.Reader
	stats *Stats
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.stats.AddBytesIn(int64(n))
	return n, err
}

type countWriter struct {
	w     io.Writer
	stats *Stats
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.stats.AddBytesOut(int64(n))
	return n, err
}

// countResponseWriter keeps the http.ResponseWriter surface (header and
// status control) while counting body bytes.
type countResponseWriter struct {
	http.ResponseWriter
	stats *Stats
}

func (c *countResponseWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.stats.AddBytesOut(int64(n))
	return n, err
}
