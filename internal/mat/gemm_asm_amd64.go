package mat

// cpuHasAVX2 reports whether the CPU and OS support AVX2 execution.
// Implemented in gemm_amd64.s.
func cpuHasAVX2() bool

// cpuHasAVX512 reports whether the CPU and OS support AVX-512 foundation
// (AVX512F) execution, including OS-enabled ZMM/opmask state. Implemented in
// gemm_amd64.s.
func cpuHasAVX512() bool

// dotPack4x4 computes four 4-lane dot products over a shared k dimension:
// out[4j+l] = Σ_t pack[4t+l]·bj[t]. Implemented in gemm_amd64.s with AVX2
// mul-then-add per lane, bit-identical to scalar evaluation. Callers must
// have checked the active tier and k > 0.
//
// The assembly only dereferences its pointers during the call and retains
// none of them, so the noescape pragma is sound; without it every gemmBT
// call heap-allocates its 16-element accumulator tile, which dominated the
// allocation profile of batched training.
//
//go:noescape
func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64)

// dotPack8x4 computes four 8-lane dot products over a shared k dimension:
// out[8j+l] = Σ_t pack[8t+l]·bj[t]. Implemented in gemm_amd64.s with
// AVX-512 mul-then-add per lane — one ZMM lane per packed A row — so each
// output element is still a single ascending-k two-rounding chain,
// bit-identical to scalar evaluation. Callers must have checked the active
// tier and k > 0. Same noescape argument as dotPack4x4.
//
//go:noescape
func dotPack8x4(pack, b0, b1, b2, b3 *float64, k int, out *[32]float64)

// CPU capability of each microkernel tier on amd64; resolved once at
// startup. NEON is an arm64 tier and never available here.
var (
	haveAVX2   = cpuHasAVX2()
	haveAVX512 = cpuHasAVX512()
)

const haveNEON = false
