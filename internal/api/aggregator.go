package api

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// AggregatorConfig tunes cross-caller query batching. The zero value gives
// usable defaults.
type AggregatorConfig struct {
	// MaxBatch flushes the pending queue as soon as it holds this many
	// probes, without waiting for the window to elapse. Default 256.
	MaxBatch int
	// Window bounds how long the earliest pending probe waits before the
	// queue is flushed regardless of size. It trades a little latency per
	// probe for fewer round trips; keep it well below the service's own
	// round-trip time budget. Default 2ms.
	Window time.Duration
}

func (c *AggregatorConfig) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
}

// Aggregator coalesces probe batches from many concurrent callers into
// single PredictBatch round trips against the wrapped model. Interpretation
// jobs running in parallel — a core.Pool's workers, say — each submit their
// own d+k sample-set probes; the aggregator holds them briefly and ships one
// combined batch, so the per-job round trips of a naive pool collapse into
// one wire exchange per "wave" of concurrent work.
//
// A flush is triggered by whichever comes first: the pending queue reaching
// MaxBatch probes, or the oldest pending probe having waited Window. Each
// caller receives exactly its own results, in the order it submitted them,
// so callers cannot observe each other. The wrapped model's responses are a
// pure function of the input, hence interpretations computed through an
// aggregator are bit-identical to unaggregated ones.
//
// An Aggregator is safe for concurrent use. Close it when the concurrent
// jobs finish; a closed aggregator degrades to a transparent pass-through,
// so late stragglers still get answers.
type Aggregator struct {
	inner plm.Model
	cfg   AggregatorConfig

	mu      sync.Mutex
	pending []*aggWaiter
	count   int
	timer   *time.Timer
	closed  bool

	flushes atomic.Int64
	probes  atomic.Int64

	errMu sync.Mutex
	err   error
}

// aggWaiter is one caller's submission: its probes, the slot its results
// land in, and the latch the caller blocks on until some flush serves it.
type aggWaiter struct {
	xs   []mat.Vec
	out  []mat.Vec
	err  error
	done chan struct{}
}

// NewAggregator wraps inner with a query aggregator. inner should offer a
// batch endpoint (plm.BatchPredictor) for the coalescing to save round
// trips; without one the aggregator still works but each probe reaches the
// model individually.
func NewAggregator(inner plm.Model, cfg AggregatorConfig) *Aggregator {
	cfg.setDefaults()
	return &Aggregator{inner: inner, cfg: cfg}
}

// Dim forwards to the wrapped model.
func (a *Aggregator) Dim() int { return a.inner.Dim() }

// Classes forwards to the wrapped model.
func (a *Aggregator) Classes() int { return a.inner.Classes() }

// Flushes returns the number of batches shipped to the wrapped model so
// far — the aggregator's round-trip count when the model is remote.
func (a *Aggregator) Flushes() int64 { return a.flushes.Load() }

// Probes returns the total number of probes served across all flushes.
func (a *Aggregator) Probes() int64 { return a.probes.Load() }

// Err returns the first batch error encountered via Predict, if any
// (PredictBatch reports errors directly). Mirrors Client.Err.
func (a *Aggregator) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// ResetErr clears the sticky error.
func (a *Aggregator) ResetErr() {
	a.errMu.Lock()
	a.err = nil
	a.errMu.Unlock()
}

func (a *Aggregator) record(err error) {
	a.errMu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.errMu.Unlock()
}

// Predict implements plm.Model: the probe joins the pending queue and the
// call blocks until a flush serves it. Batch errors degrade to the uniform
// distribution and are recorded stickily, like Client.Predict.
func (a *Aggregator) Predict(x mat.Vec) mat.Vec {
	out, err := a.submit([]mat.Vec{x})
	if err != nil {
		a.record(err)
		u := make(mat.Vec, a.inner.Classes())
		return u.Fill(1 / float64(a.inner.Classes()))
	}
	return out[0]
}

// PredictBatch implements plm.BatchPredictor: the whole batch joins the
// pending queue as one unit and is answered in submission order.
func (a *Aggregator) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	return a.submit(xs)
}

// Close flushes whatever is pending and turns the aggregator into a
// pass-through. Safe to call more than once.
func (a *Aggregator) Close() {
	a.mu.Lock()
	a.closed = true
	batch := a.takeLocked()
	a.mu.Unlock()
	a.flush(batch)
}

// submit enqueues one caller's probes and blocks until they are answered.
//
// Liveness invariant: at every mu release, a nonempty pending queue has an
// armed timer, so every waiter is collected by a size-triggered take, a
// timer flush, or Close. A stale timer firing after its batch was already
// taken either finds the queue empty (no-op) or flushes a newer batch a
// little early (harmless).
func (a *Aggregator) submit(xs []mat.Vec) ([]mat.Vec, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		a.flushes.Add(1)
		a.probes.Add(int64(len(xs)))
		return predictAllErr(a.inner, xs)
	}
	w := &aggWaiter{xs: xs, done: make(chan struct{})}
	a.pending = append(a.pending, w)
	a.count += len(xs)
	var batch []*aggWaiter
	if a.count >= a.cfg.MaxBatch {
		batch = a.takeLocked()
	} else if a.timer == nil {
		a.timer = time.AfterFunc(a.cfg.Window, a.timerFlush)
	}
	a.mu.Unlock()
	a.flush(batch)
	<-w.done
	return w.out, w.err
}

// takeLocked detaches the entire pending queue. Callers hold mu.
func (a *Aggregator) takeLocked() []*aggWaiter {
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	batch := a.pending
	a.pending = nil
	a.count = 0
	return batch
}

func (a *Aggregator) timerFlush() {
	a.mu.Lock()
	batch := a.takeLocked()
	a.mu.Unlock()
	a.flush(batch)
}

// flush ships one combined batch and demuxes the answers back to each
// waiter in submission order. It runs outside mu, so new submissions queue
// up for the next flush while this round trip is in flight — that overlap
// is where a pool's solve-one-while-probing-others concurrency comes from.
func (a *Aggregator) flush(batch []*aggWaiter) {
	if len(batch) == 0 {
		return
	}
	n := 0
	for _, w := range batch {
		n += len(w.xs)
	}
	xs := make([]mat.Vec, 0, n)
	for _, w := range batch {
		xs = append(xs, w.xs...)
	}
	a.flushes.Add(1)
	a.probes.Add(int64(n))
	ys, err := predictAllErr(a.inner, xs)
	off := 0
	for _, w := range batch {
		if err != nil {
			w.err = err
		} else {
			w.out = ys[off : off+len(w.xs)]
		}
		off += len(w.xs)
		close(w.done)
	}
}

// predictAllErr is plm.PredictAll with the batch error surfaced instead of
// swallowed, so PredictBatch callers see the failure directly. Callers that
// reach the aggregator through plm.PredictAll still get that helper's
// per-probe fallback (each probe re-submitted individually, failures
// degrading to uniform with a sticky record) — the Client convention: check
// Err when the interpretation run finishes.
func predictAllErr(m plm.Model, xs []mat.Vec) ([]mat.Vec, error) {
	if bp, ok := m.(plm.BatchPredictor); ok {
		out, err := bp.PredictBatch(xs)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out, nil
}

// DialAggregated dials a served model and wraps the client in an
// aggregator: the one-call path for pointing a pool of interpreters at a
// remote API. Close the aggregator when the jobs finish; the client is also
// returned for error inspection (Client.Err).
func DialAggregated(baseURL string, httpc *http.Client, retries int, cfg AggregatorConfig) (*Aggregator, *Client, error) {
	client, err := Dial(baseURL, httpc, retries)
	if err != nil {
		return nil, nil, err
	}
	return NewAggregator(client, cfg), client, nil
}

var _ plm.Model = (*Aggregator)(nil)
var _ plm.BatchPredictor = (*Aggregator)(nil)
