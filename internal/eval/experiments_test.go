package eval

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interpret/gradient"
	"repro/internal/plm"
)

// testWorkbench builds a small shared workbench once; experiments reuse it.
var benchCache *Workbench

func testWorkbench(t *testing.T) *Workbench {
	t.Helper()
	if benchCache != nil {
		return benchCache
	}
	w, err := NewWorkbench(WorkbenchConfig{
		Dataset:  "mnist",
		Size:     8,
		PerClass: 30,
		NNEpochs: 20,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	benchCache = w
	return w
}

func TestWorkbenchTrainsReasonableModels(t *testing.T) {
	w := testWorkbench(t)
	rows := Table1(w)
	if len(rows) != 2 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TrainAcc < 0.5 {
			t.Fatalf("%s train accuracy = %v — models did not learn", r.Model, r.TrainAcc)
		}
		if r.TestAcc < 0.4 {
			t.Fatalf("%s test accuracy = %v", r.Model, r.TestAcc)
		}
	}
}

func TestWorkbenchModelLookup(t *testing.T) {
	w := testWorkbench(t)
	if _, err := w.ModelByName("PLNN"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ModelByName("lmt"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ModelByName("vgg"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if len(w.Models()) != 2 {
		t.Fatal("Models() should list both targets")
	}
}

func TestSampleTestInstances(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(1))
	ids := w.SampleTestInstances(rng, 5)
	if len(ids) != 5 {
		t.Fatalf("got %d ids", len(ids))
	}
	all := w.SampleTestInstances(rng, 1<<20)
	if len(all) != w.Test.Len() {
		t.Fatalf("oversized request returned %d", len(all))
	}
}

func TestFigure2ProducesHeatmaps(t *testing.T) {
	w := testWorkbench(t)
	o := core.New(core.Config{Seed: 7})
	rng := rand.New(rand.NewSource(8))
	hms, err := Figure2(w, o, []int{0, 1}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(hms) != 2 {
		t.Fatalf("got %d heatmaps", len(hms))
	}
	for _, hm := range hms {
		if len(hm.MeanImage) != w.Test.Dim() {
			t.Fatal("mean image wrong size")
		}
		for _, name := range []string{"PLNN", "LMT"} {
			dv, ok := hm.AvgDecision[name]
			if !ok {
				t.Fatalf("missing decision features for %s", name)
			}
			if len(dv) != w.Test.Dim() {
				t.Fatal("decision features wrong size")
			}
			if dv.Norm2() == 0 {
				t.Fatalf("all-zero decision features for %s class %d", name, hm.Class)
			}
		}
	}
	if _, err := Figure2(w, o, []int{99}, 2, rng); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestFigure3EndToEnd(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(9))
	ids := w.SampleTestInstances(rng, 4)
	xs := w.Test.Subset(ids, "probe").X

	methods := []plm.Interpreter{
		core.New(core.Config{Seed: 10}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.Saliency}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.GradientInput}),
	}
	curves, err := Figure3(w.PLNN, methods, xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.CPP) != 10 || len(c.NLCI) != 10 {
			t.Fatalf("%s: curve lengths %d/%d", c.Method, len(c.CPP), len(c.NLCI))
		}
		for _, v := range c.NLCI {
			if v < 0 || v > float64(len(xs)) {
				t.Fatalf("%s: NLCI out of range: %v", c.Method, v)
			}
		}
	}
	// OpenAPI (signed, exact) should achieve a non-trivial CPP by the end.
	oa := curves[0]
	if oa.CPP[len(oa.CPP)-1] <= 0 {
		t.Fatalf("OpenAPI CPP stayed at zero: %v", oa.CPP)
	}
	if _, err := Figure3(w.PLNN, methods, nil, 5); err == nil {
		t.Fatal("empty instance list accepted")
	}
}

func TestFigure4ConsistencySortedAndOpenAPIWins(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(11))
	ids := w.SampleTestInstances(rng, 5)
	pairs, err := NeighbourPairs(w, ids)
	if err != nil {
		t.Fatal(err)
	}
	methods := []plm.Interpreter{
		core.New(core.Config{Seed: 12}),
		gradient.New(w.PLNN.Net, gradient.Config{Method: gradient.GradientInput}),
	}
	curves, err := Figure4(w.PLNN, methods, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if len(c.CS) != len(pairs) {
			t.Fatalf("%s: %d values", c.Method, len(c.CS))
		}
		for i := 1; i < len(c.CS); i++ {
			if c.CS[i] > c.CS[i-1]+1e-12 {
				t.Fatalf("%s: CS not sorted descending", c.Method)
			}
		}
	}
	// Mean CS of OpenAPI should beat Gradient*Input (the paper's Figure 4
	// shape): gradient-input multiplies by the instance, which varies even
	// inside one region.
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	if mean(curves[0].CS) < mean(curves[1].CS)-1e-9 {
		t.Fatalf("OpenAPI consistency %v below Gradient*Input %v",
			mean(curves[0].CS), mean(curves[1].CS))
	}
	if _, err := Figure4(w.PLNN, methods, nil); err == nil {
		t.Fatal("empty pairs accepted")
	}
}

func TestSampleQualityOpenAPIPerfect(t *testing.T) {
	// The paper's central quantitative claim, in miniature: OpenAPI achieves
	// RD = 0, WD = 0 and near-zero L1Dist on both models, while baselines at
	// a coarse h do measurably worse.
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(13))
	ids := w.SampleTestInstances(rng, 4)
	xs := w.Test.Subset(ids, "probe").X

	for _, entry := range w.Models() {
		methods := []plm.Interpreter{core.New(core.Config{Seed: 14})}
		methods = append(methods, StandardBaselines(1e-2, 15)...)
		rows, err := SampleQuality(entry.Model, methods, xs)
		if err != nil {
			t.Fatal(err)
		}
		oa := rows[0]
		if oa.Method != "OpenAPI" {
			t.Fatalf("row 0 = %s", oa.Method)
		}
		if oa.Failures > 0 {
			t.Fatalf("%s: OpenAPI failed on %d instances", entry.Name, oa.Failures)
		}
		if oa.AvgRD != 0 {
			t.Fatalf("%s: OpenAPI RD = %v, want 0", entry.Name, oa.AvgRD)
		}
		if oa.WD.Mean != 0 {
			t.Fatalf("%s: OpenAPI WD = %v, want 0", entry.Name, oa.WD.Mean)
		}
		if oa.L1.Mean > 1e-4 {
			t.Fatalf("%s: OpenAPI L1 = %v", entry.Name, oa.L1.Mean)
		}
	}
}

func TestQualityGridCoversAllMethods(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(16))
	ids := w.SampleTestInstances(rng, 2)
	xs := w.Test.Subset(ids, "probe").X
	rows, err := QualityGrid(w.LMT, xs, []float64{1e-6, 1e-2}, 17)
	if err != nil {
		t.Fatal(err)
	}
	// OpenAPI + 4 baselines x 2 h values.
	if len(rows) != 1+8 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		names = append(names, r.Method)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"OpenAPI", "Naive", "ZOO", "LIME-Linear", "LIME-Ridge"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing method %q in %v", want, names)
		}
	}
}
