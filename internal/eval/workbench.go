package eval

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/lmt"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// WorkbenchConfig scales one experiment environment. The zero value gives a
// small, fast configuration suitable for `go test`; PaperScale() gives the
// paper's sizes (28x28, 60k/10k splits, the 784-256-128-100-10 network).
type WorkbenchConfig struct {
	Dataset   string // "mnist" or "fmnist" (default "mnist")
	Size      int    // image side length (default 12)
	PerClass  int    // generated instances per class (default 40)
	TestCount int    // held-out test instances (default len/6)
	Hidden    []int  // PLNN hidden layer sizes (default {32, 16})
	NNEpochs  int    // PLNN training epochs (default 15)
	LMT       lmt.Config
	Seed      int64
}

func (c *WorkbenchConfig) setDefaults() {
	if c.Dataset == "" {
		c.Dataset = "mnist"
	}
	if c.Size <= 0 {
		c.Size = 12
	}
	if c.PerClass <= 0 {
		c.PerClass = 40
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32, 16}
	}
	if c.NNEpochs <= 0 {
		c.NNEpochs = 15
	}
	if c.LMT.MinLeaf == 0 {
		c.LMT = lmt.Config{
			MinLeaf:  60,
			MaxDepth: 6,
			LogReg:   lmt.LogRegConfig{Epochs: 60},
		}
	}
}

// PaperScale returns the paper's experiment configuration: 28x28 images,
// 10 classes, the 784-256-128-100-10 network, and the LMT stopping rules of
// §V. Running it takes minutes rather than the milliseconds of the default.
func PaperScale(ds string, seed int64) WorkbenchConfig {
	return WorkbenchConfig{
		Dataset:   ds,
		Size:      28,
		PerClass:  7000, // 60k train + 10k test over 10 classes
		TestCount: 10000,
		Hidden:    []int{256, 128, 100},
		NNEpochs:  10,
		LMT: lmt.Config{
			MinLeaf:       100,
			StopAccuracy:  0.99,
			MaxDepth:      10,
			MaxThresholds: 8,
			MaxFeatures:   64,
			LogReg:        lmt.LogRegConfig{Epochs: 120},
		},
		Seed: seed,
	}
}

// Workbench is one fully-trained experiment environment: a dataset split
// and the two target PLMs (a PLNN and an LMT) with white-box ground-truth
// access.
type Workbench struct {
	Config WorkbenchConfig
	Train  *dataset.Dataset
	Test   *dataset.Dataset
	PLNN   *openbox.PLNN
	LMT    *lmt.Tree
	// Per-model wall-clock training times, so experiment reports show
	// where workbench construction spends its budget (the PLNN trains on
	// the batched GEMM epoch since PR 5).
	PLNNTrainTime time.Duration
	LMTTrainTime  time.Duration
}

// ModelEntry names one target model of a workbench.
type ModelEntry struct {
	Name  string
	Model plm.RegionModel
}

// NewWorkbench generates the dataset, splits it, and trains both target
// models. Everything is derived from cfg.Seed, so a workbench is
// reproducible.
func NewWorkbench(cfg WorkbenchConfig) (*Workbench, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	data, err := dataset.SyntheticByName(cfg.Dataset, rng, dataset.SynthConfig{
		Size:     cfg.Size,
		PerClass: cfg.PerClass,
	})
	if err != nil {
		return nil, err
	}
	testCount := cfg.TestCount
	if testCount <= 0 || testCount >= data.Len() {
		testCount = data.Len() / 6
	}
	train, test := data.Split(rng, testCount)

	sizes := append([]int{train.Dim()}, cfg.Hidden...)
	sizes = append(sizes, train.Classes())
	net := nn.New(rng, sizes...)
	nnStart := time.Now()
	if _, err := net.Train(rng, train.X, train.Y, nn.TrainConfig{
		Epochs:       cfg.NNEpochs,
		LearningRate: 0.1,
		BatchSize:    32,
	}); err != nil {
		return nil, fmt.Errorf("eval: train PLNN: %w", err)
	}
	nnTime := time.Since(nnStart)

	lmtStart := time.Now()
	tree, err := lmt.Train(rng, train.X, train.Y, train.Classes(), cfg.LMT)
	if err != nil {
		return nil, fmt.Errorf("eval: train LMT: %w", err)
	}

	return &Workbench{
		Config:        cfg,
		Train:         train,
		Test:          test,
		PLNN:          &openbox.PLNN{Net: net},
		LMT:           tree,
		PLNNTrainTime: nnTime,
		LMTTrainTime:  time.Since(lmtStart),
	}, nil
}

// Models returns the two target models in the paper's order.
func (w *Workbench) Models() []ModelEntry {
	return []ModelEntry{
		{Name: "PLNN", Model: w.PLNN},
		{Name: "LMT", Model: w.LMT},
	}
}

// ModelByName returns the named target model ("PLNN" or "LMT").
func (w *Workbench) ModelByName(name string) (plm.RegionModel, error) {
	switch name {
	case "PLNN", "plnn":
		return w.PLNN, nil
	case "LMT", "lmt":
		return w.LMT, nil
	}
	return nil, fmt.Errorf("eval: unknown model %q", name)
}

// SampleTestInstances returns n test-set indices drawn without replacement
// (the paper subsamples 1000 test instances per dataset).
func (w *Workbench) SampleTestInstances(rng *rand.Rand, n int) []int {
	if n >= w.Test.Len() {
		n = w.Test.Len()
	}
	return rng.Perm(w.Test.Len())[:n]
}
