package api

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

func TestV1AliasesMirrorLegacyPaths(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/meta", "/v1/meta", "/stats", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s answered %s", path, resp.Status)
		}
	}
	// Both generations of /meta advertise the same version.
	for _, path := range []string{"/meta", "/v1/meta"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var meta metaResponse
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if meta.APIVersion != APIVersion {
			t.Fatalf("%s advertises api_version %d, want %d", path, meta.APIVersion, APIVersion)
		}
	}
}

func TestClientUpgradesToVersionedPaths(t *testing.T) {
	srv, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prefix() != "/v1" {
		t.Fatalf("client prefix %q against a versioned server, want /v1", c.Prefix())
	}
	// The upgraded paths actually serve predictions.
	if _, err := c.PredictErr(mat.Vec{0.1, -0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if srv.Queries() != 1 {
		t.Fatalf("server counted %d queries through /v1", srv.Queries())
	}
}

func TestClientStaysUnversionedAgainstOldServer(t *testing.T) {
	// A pre-versioning server's /meta has no api_version; the client must
	// keep every request on the legacy paths — the advertise-then-upgrade
	// dance that already governs codec selection.
	var legacyPredicts atomic.Int64
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/meta":
			wire.WriteJSON(w, http.StatusOK, map[string]any{"name": "old", "dim": 4, "classes": 3})
		case "/predict":
			legacyPredicts.Add(1)
			wire.WriteJSON(w, http.StatusOK, map[string]any{"probs": []float64{1, 0, 0}})
		default:
			http.NotFound(w, r)
		}
	}))
	defer old.Close()
	c, err := Dial(old.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prefix() != "" {
		t.Fatalf("client prefix %q against a pre-versioning server, want empty", c.Prefix())
	}
	if _, err := c.PredictErr(mat.Vec{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if legacyPredicts.Load() != 1 {
		t.Fatalf("legacy /predict served %d requests, want 1", legacyPredicts.Load())
	}
}

func regionFixture(t *testing.T) *plm.Linear {
	t.Helper()
	w := mat.FromRows(
		mat.Vec{1.0 / 3.0, -2.25, 0.1},
		mat.Vec{math.Pi, 1e-300, -0.0},
	)
	lin, err := plm.NewLinear(w, mat.Vec{0.5, -1.0 / 7.0}, "plnn-3-00000000deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	return lin
}

func TestRegionSourceServesStoredClosedForm(t *testing.T) {
	srv, ts := newTestServer(t)
	lin := regionFixture(t)
	srv.SetRegionSource(func(key string) (*plm.Linear, bool) {
		if key == lin.Key {
			return lin, true
		}
		return nil, false
	})

	// JSON shape, at both path generations.
	for _, prefix := range []string{"", "/v1"} {
		resp, err := http.Get(ts.URL + prefix + "/regions/" + lin.Key)
		if err != nil {
			t.Fatal(err)
		}
		var body regionResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/regions answered %s", prefix, resp.Status)
		}
		if body.Key != lin.Key || len(body.W) != 2 || len(body.B) != 2 {
			t.Fatalf("region body = %+v", body)
		}
	}

	// Binary clients get two PLMB frames, bit-identical to the store.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/regions/"+lin.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.AcceptValue(wire.Binary{}, false))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := wire.NewFrameReader(resp.Body, wire.DefaultMaxBody)
	gotW, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotW) != lin.W.Rows() || len(gotB) != 1 {
		t.Fatalf("binary region = %d W rows, %d B rows", len(gotW), len(gotB))
	}
	for i := range gotW {
		for j := range gotW[i] {
			if math.Float64bits(gotW[i][j]) != math.Float64bits(lin.W.RawRow(i)[j]) {
				t.Fatalf("W[%d][%d] not bit-identical over the wire", i, j)
			}
		}
	}
	for j := range gotB[0] {
		if math.Float64bits(gotB[0][j]) != math.Float64bits(lin.B[j]) {
			t.Fatalf("B[%d] not bit-identical over the wire", j)
		}
	}

	// Misses are a 404, not a 500.
	miss, err := http.Get(ts.URL + "/regions/plnn-3-ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, miss.Body)
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown region answered %s, want 404", miss.Status)
	}
}

func TestStatsUnifiedCachesAndAtlasSections(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.AddStoreStats("regions", func() plm.StoreStats {
		return plm.StoreStats{Hits: 3, Misses: 1, Evictions: 0, Size: 2, Bytes: 160}
	})
	srv.SetAtlasStatus(func() AtlasStatus {
		return AtlasStatus{Regions: 7, Bytes: 560, Hits: 3, ColdMisses: 1,
			Compositions: 2, CensusDone: 5, CensusTotal: 10, CensusProgress: 0.5}
	})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reg, ok := stats.Caches["regions"]
	if !ok {
		t.Fatalf("caches section missing regions store: %+v", stats.Caches)
	}
	if reg.Hits != 3 || reg.Misses != 1 || reg.Size != 2 || reg.Bytes != 160 {
		t.Fatalf("regions store stats = %+v", reg)
	}
	if stats.Atlas == nil {
		t.Fatal("atlas section absent")
	}
	if stats.Atlas.Regions != 7 || stats.Atlas.Compositions != 2 || stats.Atlas.CensusProgress != 0.5 {
		t.Fatalf("atlas section = %+v", stats.Atlas)
	}

	// A response cache in front of the model reports under "response" in the
	// same shape (alongside its legacy cache_* fields).
	cached, err := NewResponseCache(testModel(200), 8)
	if err != nil {
		t.Fatal(err)
	}
	csrv := NewServer(cached, "cached")
	cts := httptest.NewServer(csrv)
	defer cts.Close()
	cresp, err := http.Get(cts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var cstats statsResponse
	if err := json.NewDecoder(cresp.Body).Decode(&cstats); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if _, ok := cstats.Caches["response"]; !ok {
		t.Fatalf("response cache missing from caches section: %+v", cstats.Caches)
	}
}

func TestFleetSessionAtlasHandshake(t *testing.T) {
	// A router that keeps an atlas advertises it in the register ack, and
	// the joining worker's OnAtlas hook fires; a plain router must not
	// trigger the pull.
	worker := httptest.NewServer(NewServer(testModel(505), "worker"))
	defer worker.Close()

	runSession := func(withAtlas bool) int64 {
		s := NewDynamicShard(ShardConfig{})
		reg := NewRegistry(s, RegistryConfig{TTL: time.Second})
		srv := NewServer(s, "router")
		reg.Mount(srv)
		if withAtlas {
			srv.SetAtlasStatus(func() AtlasStatus { return AtlasStatus{Regions: 1} })
		}
		router := httptest.NewServer(srv)
		defer router.Close()

		var pulls atomic.Int64
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sess := &FleetSession{
			Router:    router.URL,
			Advertise: worker.URL,
			OnAtlas:   func(context.Context) { pulls.Add(1) },
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = sess.Run(ctx)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for reg.Status().Joins < 1 {
			if time.Now().After(deadline) {
				t.Fatal("session never registered")
			}
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
		<-done
		return pulls.Load()
	}

	if got := runSession(true); got < 1 {
		t.Fatalf("OnAtlas fired %d times against an atlas router, want >= 1", got)
	}
	if got := runSession(false); got != 0 {
		t.Fatalf("OnAtlas fired %d times against a plain router, want 0", got)
	}
}
