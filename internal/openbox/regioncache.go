package openbox

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// RegionCache memoizes the closed-form affine map of a network's locally
// linear regions, keyed by PatternKey. Composing (W_eff, b_eff) costs one
// GEMM per layer over the full input dimensionality; two instances with the
// same activation pattern share the identical map, so the second extraction
// is a map lookup instead of a GEMM chain — the region structure OpenBox
// makes explicit, exploited for compute.
//
// A bounded cache evicts least-recently-used regions; capacity <= 0 keeps
// every region seen. RegionCache is safe for concurrent use. Cached
// *plm.Linear values are shared between callers and must be treated as
// read-only (every consumer in this repository is).
type RegionCache struct {
	net *nn.Network

	mu sync.Mutex
	c  *lru.Cache[*plm.Linear]

	hits, misses, evictions, compositions atomic.Int64
}

// NewRegionCache returns a cache over net holding at most capacity regions
// (capacity <= 0 means unbounded).
func NewRegionCache(net *nn.Network, capacity int) *RegionCache {
	return &RegionCache{net: net, c: lru.New[*plm.Linear](capacity)}
}

// RegionCacheStats is a point-in-time snapshot of cache behaviour.
// Compositions counts how many times the GEMM chain actually ran — the
// quantity the batched extraction keeps strictly below the instance count
// whenever instances share regions.
type RegionCacheStats struct {
	Hits, Misses, Evictions, Compositions int64
}

// Stats returns the cache counters.
func (rc *RegionCache) Stats() RegionCacheStats {
	return RegionCacheStats{
		Hits:         rc.hits.Load(),
		Misses:       rc.misses.Load(),
		Evictions:    rc.evictions.Load(),
		Compositions: rc.compositions.Load(),
	}
}

// Len returns the number of regions currently cached.
func (rc *RegionCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.c.Len()
}

// LocalAt returns the memoized locally linear classifier of the region
// containing x, composing it on first sight of the region.
func (rc *RegionCache) LocalAt(x mat.Vec) (*plm.Linear, error) {
	if len(x) != rc.net.InputDim() {
		return nil, fmt.Errorf("openbox: input length %d != %d", len(x), rc.net.InputDim())
	}
	return rc.localForPattern(rc.net.ActivationPattern(x))
}

// ExtractAll returns the locally linear classifier of every instance. The
// activation patterns come from one batched forward (a GEMM per layer for
// the whole batch), and each distinct region is composed at most once —
// clustered workloads pay per region, not per instance. out[i] is
// bit-identical to Extract(net, xs[i]).
func (rc *RegionCache) ExtractAll(xs []mat.Vec) ([]*plm.Linear, error) {
	for i, x := range xs {
		if len(x) != rc.net.InputDim() {
			return nil, fmt.Errorf("openbox: batch item %d length %d != %d", i, len(x), rc.net.InputDim())
		}
	}
	if len(xs) == 0 {
		return nil, nil
	}
	patterns := rc.net.ActivationPatternBatch(xs)
	out := make([]*plm.Linear, len(xs))
	seen := make(map[string]*plm.Linear, len(xs))
	for i, pat := range patterns {
		key := PatternKey(pat)
		if lin, ok := seen[key]; ok {
			out[i] = lin
			continue
		}
		lin, err := rc.localForPattern(pat)
		if err != nil {
			return nil, err
		}
		seen[key] = lin
		out[i] = lin
	}
	return out, nil
}

// localForPattern returns the cached map for the region the pattern selects,
// composing and inserting it on a miss. The composition runs outside the
// lock: two goroutines missing the same fresh region may both compose, but
// the results are identical and only the incumbent is kept.
func (rc *RegionCache) localForPattern(pattern []bool) (*plm.Linear, error) {
	key := PatternKey(pattern)
	// Audited manual-unlock fast path: deferring would hold the lock
	// across the GEMM-chain composition and serialize every extraction.
	// Invariant: both exits from this check (hit, miss) unlock exactly
	// once, and nothing between Lock and Unlock can panic.
	rc.mu.Lock() //plmvet:allow(lockheld)
	if lin, ok := rc.c.Get(key); ok {
		rc.mu.Unlock()
		rc.hits.Add(1)
		return lin, nil
	}
	rc.mu.Unlock()

	rc.misses.Add(1)
	rc.compositions.Add(1)
	lin, err := composeFromPattern(rc.net, pattern)
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	// On a lost compose race Add keeps and returns the incumbent, so every
	// caller holds the same shared value.
	kept, _, evicted := rc.c.Add(key, lin)
	rc.mu.Unlock()
	if evicted {
		rc.evictions.Add(1)
	}
	return kept, nil
}

// ExtractAll is the package-level batch extraction: activation patterns via
// the batched forward, one composition per distinct region, no persistent
// cache. out[i] is bit-identical to Extract(n, xs[i]).
func ExtractAll(n *nn.Network, xs []mat.Vec) ([]*plm.Linear, error) {
	return NewRegionCache(n, 0).ExtractAll(xs)
}

// CacheRegionModel wraps any white-box model so repeated LocalAt calls for
// instances in an already-seen region return the memoized classifier,
// keyed by RegionKey (capacity <= 0 means unbounded). A PLNN gets the
// pattern-level RegionCache; families implementing the per-family pattern
// hook (plm.PatternRegionModel — MaxOut, LMT) get the same economics
// through the generic cache: one pattern-building pass per call, hits skip
// the composition, and misses compose straight from the captured pattern
// instead of re-deriving it from x. A family with neither hook falls back
// to RegionKey + LocalAt (one extra derivation per miss). The evaluation
// harness wraps its ground-truth model with this before a metrics run:
// RD/WD/L1Dist query LocalAt per probe and per sample, but only per region
// does the answer change.
func CacheRegionModel(m plm.RegionModel, capacity int) plm.RegionModel {
	if p, ok := m.(*PLNN); ok {
		if p.Regions != nil {
			return p
		}
		return &PLNN{Net: p.Net, Regions: NewRegionCache(p.Net, capacity)}
	}
	return &cachedRegionModel{RegionModel: m, c: lru.New[*plm.Linear](capacity)}
}

// cachedRegionModel memoizes LocalAt per RegionKey for any RegionModel.
type cachedRegionModel struct {
	plm.RegionModel

	mu sync.Mutex
	c  *lru.Cache[*plm.Linear]
}

func (c *cachedRegionModel) LocalAt(x mat.Vec) (*plm.Linear, error) {
	var (
		key     string
		compose func() (*plm.Linear, error)
	)
	if pm, ok := c.RegionModel.(plm.PatternRegionModel); ok {
		// The pattern hook: the key-building pass already captured the
		// region, so a miss composes from the pattern instead of walking
		// the model again.
		k, comp, err := pm.RegionPattern(x)
		if err != nil {
			return nil, err
		}
		key, compose = k, comp
	} else {
		key = c.RegionModel.RegionKey(x)
		compose = func() (*plm.Linear, error) { return c.RegionModel.LocalAt(x) }
	}
	// Audited manual-unlock fast path, same shape and invariant as
	// RegionCache.localForPattern: unlock before composing so a miss does
	// not serialize the cache.
	c.mu.Lock() //plmvet:allow(lockheld)
	if lin, ok := c.c.Get(key); ok {
		c.mu.Unlock()
		return lin, nil
	}
	c.mu.Unlock()
	lin, err := compose()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	kept, _, _ := c.c.Add(key, lin)
	c.mu.Unlock()
	return kept, nil
}
