package jobs

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/wire"
)

// defaultStreamRows is how many probability rows ride in one streamed
// binary result frame: big enough to amortize the 16-byte header to
// nothing, small enough that neither side ever buffers more than ~one
// frame of a million-instance harvest.
const defaultStreamRows = 1024

// window is the offset/limit result slice a GET /jobs/{id} asked for.
type window struct {
	present bool
	offset  int
	limit   int // -1: to the end
}

// parseWindow reads the offset/limit query parameters. Absent parameters
// mean the legacy full-result fetch.
func parseWindow(req *http.Request) (window, error) {
	q := req.URL.Query()
	w := window{limit: -1}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return w, fmt.Errorf("jobs: bad offset %q", v)
		}
		w.present, w.offset = true, n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return w, fmt.Errorf("jobs: bad limit %q", v)
		}
		w.present, w.limit = true, n
	}
	return w, nil
}

// slice clamps the window against n items and returns [start, end).
func (w window) slice(n int) (int, int) {
	start := min(w.offset, n)
	end := n
	if w.limit >= 0 {
		end = min(start+w.limit, n)
	}
	return start, end
}

// paginate rewrites a full view into the requested page, stamping the
// Total/Offset window fields.
func paginate(v View, w window) View {
	switch v.Op {
	case OpPredict:
		v.Total = len(v.Probs)
		start, end := w.slice(len(v.Probs))
		v.Offset = start
		v.Probs = v.Probs[start:end]
	case OpInterpret:
		v.Total = len(v.Regions)
		start, end := w.slice(len(v.Regions))
		v.Offset = start
		v.Regions = v.Regions[start:end]
	}
	return v
}

// Header names carrying job metadata on binary result streams, whose
// bodies are pure float frames with no envelope to put it in.
const (
	HeaderID     = "X-PLM-Job-Id"
	HeaderOp     = "X-PLM-Job-Op"
	HeaderStatus = "X-PLM-Job-Status"
	HeaderN      = "X-PLM-Job-N"
	HeaderError  = "X-PLM-Job-Error"
	HeaderTotal  = "X-PLM-Job-Total"
	HeaderOffset = "X-PLM-Job-Offset"
)

// streamView answers a binary GET /jobs/{id}: metadata in response
// headers, results as a sequence of float frames — one frame per chunk of
// probability rows, or three frames (probe, relative W, relative b) per
// harvested region — flushed as they are written. The server never
// serializes more than one chunk at a time, and a streaming reader on the
// other side decodes the same way; the stream ends at EOF.
func (r *Runner) streamView(w http.ResponseWriter, ex *wire.Exchange, v View, win window, bin wire.Binary) {
	h := w.Header()
	h.Set(HeaderID, v.ID)
	h.Set(HeaderOp, v.Op)
	h.Set(HeaderStatus, string(v.Status))
	h.Set(HeaderN, strconv.Itoa(v.N))
	if v.Error != "" {
		h.Set(HeaderError, headerSafe(v.Error))
	}
	total := len(v.Probs)
	if v.Op == OpInterpret {
		total = len(v.Regions)
	}
	start, end := win.slice(total)
	h.Set(HeaderTotal, strconv.Itoa(total))
	h.Set(HeaderOffset, strconv.Itoa(start))
	h.Set("Content-Type", wire.ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	if v.Status != StatusDone {
		return // metadata only; nothing to stream yet (or ever, on failure)
	}
	cw := ex.CountWriter(w)
	flusher, _ := w.(http.Flusher)
	chunk := r.StreamRows
	if chunk <= 0 {
		chunk = defaultStreamRows
	}
	switch v.Op {
	case OpPredict:
		for at := start; at < end; at += chunk {
			stop := min(at+chunk, end)
			// Errors past the header are unrecoverable mid-stream; the
			// truncated frame makes the breakage visible to the reader.
			if err := wire.WriteFrame(cw, v.Probs[at:stop], bin.Float32); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	case OpInterpret:
		for _, region := range v.Regions[start:end] {
			if err := wire.WriteFrame(cw, [][]float64{region.Probe}, bin.Float32); err != nil {
				return
			}
			if err := wire.WriteFrame(cw, region.RelW, bin.Float32); err != nil {
				return
			}
			if err := wire.WriteFrame(cw, [][]float64{region.RelB}, bin.Float32); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
