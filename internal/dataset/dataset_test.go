package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func tinyDataset() *Dataset {
	return &Dataset{
		Name:   "tiny",
		Width:  2,
		Height: 1,
		X:      []mat.Vec{{0, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.8}},
		Y:      []int{0, 1, 0, 1},
		Names:  []string{"a", "b"},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Dataset){
		func(d *Dataset) { d.Width = 0 },
		func(d *Dataset) { d.Y = d.Y[:1] },
		func(d *Dataset) { d.Names = d.Names[:1] },
		func(d *Dataset) { d.X[0] = mat.Vec{1} },
		func(d *Dataset) { d.X[0][0] = 2 },
		func(d *Dataset) { d.X[0][0] = -0.5 },
		func(d *Dataset) { d.Y[0] = 9 },
	}
	for i, mutate := range cases {
		d := tinyDataset()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: bad dataset accepted", i)
		}
	}
}

func TestSplitSizesAndDisjointness(t *testing.T) {
	d := tinyDataset()
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(rng, 1)
	if train.Len() != 3 || test.Len() != 1 {
		t.Fatalf("sizes = %d/%d", train.Len(), test.Len())
	}
	if train.Dim() != d.Dim() || test.Classes() != d.Classes() {
		t.Fatal("metadata lost in split")
	}
	// Union of the splits covers the original.
	total := train.Len() + test.Len()
	if total != d.Len() {
		t.Fatalf("split covers %d of %d", total, d.Len())
	}
}

func TestSplitPanicsOnBadCount(t *testing.T) {
	d := tinyDataset()
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(rng, 99)
}

func TestSubsetAndByClass(t *testing.T) {
	d := tinyDataset()
	ids := d.ByClass(0)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("ByClass(0) = %v", ids)
	}
	sub := d.Subset(ids, "zeros")
	if sub.Len() != 2 || sub.Y[0] != 0 || sub.Y[1] != 0 {
		t.Fatalf("Subset = %+v", sub)
	}
}

func TestClassMean(t *testing.T) {
	d := tinyDataset()
	m, err := d.ClassMean(0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.EqualApprox(mat.Vec{0.25, 0.75}, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	empty := tinyDataset()
	empty.Y = []int{1, 1, 1, 1}
	if _, err := empty.ClassMean(0); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestClassCounts(t *testing.T) {
	got := tinyDataset().ClassCounts()
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("counts = %v", got)
	}
}
