package lmt

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// checkerboard builds a 2-d dataset a single linear model cannot fit but a
// small tree of linear models can: four quadrants, diagonal quadrants share
// a class (XOR layout).
func checkerboard(rng *rand.Rand, perQuadrant int) ([]mat.Vec, []int) {
	xs := make([]mat.Vec, 0, 4*perQuadrant)
	ys := make([]int, 0, 4*perQuadrant)
	quads := []struct {
		cx, cy float64
		label  int
	}{
		{2, 2, 0}, {-2, -2, 0}, {2, -2, 1}, {-2, 2, 1},
	}
	for _, q := range quads {
		for i := 0; i < perQuadrant; i++ {
			xs = append(xs, mat.Vec{q.cx + rng.NormFloat64()*0.5, q.cy + rng.NormFloat64()*0.5})
			ys = append(ys, q.label)
		}
	}
	return xs, ys
}

func smallCfg() Config {
	return Config{
		MinLeaf:      20,
		StopAccuracy: 0.99,
		MaxDepth:     6,
		LogReg:       LogRegConfig{Epochs: 80},
	}
}

func TestTrainErrorsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Train(rng, nil, nil, 2, smallCfg()); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train(rng, []mat.Vec{{1}}, []int{0, 1}, 2, smallCfg()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train(rng, []mat.Vec{{1}}, []int{0}, 1, smallCfg()); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestTreeSolvesCheckerboard(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys := checkerboard(rng, 100)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("checkerboard accuracy = %v (leaves %d, depth %d)", acc, tree.NumLeaves(), tree.Depth())
	}
	if tree.NumLeaves() < 2 {
		t.Fatalf("tree should have split, leaves = %d", tree.NumLeaves())
	}
}

func TestTreePureNodeBecomesLeaf(t *testing.T) {
	// A single-class... not allowed (classes >= 2), so use a dataset where
	// one class never appears after the first split is unnecessary: all
	// instances of both classes are linearly separable, so the root's
	// classifier exceeds StopAccuracy and the tree is a single leaf.
	rng := rand.New(rand.NewSource(3))
	xs := make([]mat.Vec, 0, 100)
	ys := make([]int, 0, 100)
	for i := 0; i < 50; i++ {
		xs = append(xs, mat.Vec{3 + rng.NormFloat64()*0.1, 0})
		ys = append(ys, 0)
		xs = append(xs, mat.Vec{-3 + rng.NormFloat64()*0.1, 0})
		ys = append(ys, 1)
	}
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("separable data should give one leaf, got %d", tree.NumLeaves())
	}
	if tree.Depth() != 0 {
		t.Fatalf("depth = %d", tree.Depth())
	}
}

func TestTreeMinLeafStopsSplitting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys := checkerboard(rng, 5) // 20 points total < MinLeaf 100
	cfg := smallCfg()
	cfg.MinLeaf = 100
	tree, err := Train(rng, xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("MinLeaf should prevent splits, leaves = %d", tree.NumLeaves())
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := checkerboard(rng, 100)
	cfg := smallCfg()
	cfg.MaxDepth = 1
	tree, err := Train(rng, xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Fatalf("depth %d exceeds MaxDepth 1", tree.Depth())
	}
}

func TestTreeRegionKeyMatchesLeafRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs, ys := checkerboard(rng, 100)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Two instances deep inside the same quadrant share a leaf.
	a, b := mat.Vec{2, 2}, mat.Vec{2.1, 1.9}
	if tree.RegionKey(a) != tree.RegionKey(b) {
		t.Fatal("same-quadrant instances in different regions")
	}
	// All keys have the lmt prefix.
	if !strings.HasPrefix(tree.RegionKey(a), "lmt-leaf-") {
		t.Fatalf("key = %q", tree.RegionKey(a))
	}
}

func TestTreeLocalAtReproducesPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := checkerboard(rng, 100)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x := mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		lin, err := tree.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		if lin.Logits(x).ArgMax() != tree.PredictLabel(x) {
			t.Fatal("local linear view disagrees with tree prediction")
		}
		if lin.Key != tree.RegionKey(x) {
			t.Fatalf("key mismatch: %q vs %q", lin.Key, tree.RegionKey(x))
		}
	}
}

func TestTreeInputDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := checkerboard(rng, 30)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Predict(mat.Vec{1})
}

func TestTreeSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys := checkerboard(rng, 60)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tree.json")
	if err := tree.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != tree.Dim() || loaded.Classes() != tree.Classes() || loaded.NumLeaves() != tree.NumLeaves() {
		t.Fatal("loaded shape mismatch")
	}
	for trial := 0; trial < 25; trial++ {
		x := mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if !tree.Predict(x).EqualApprox(loaded.Predict(x), 0) {
			t.Fatal("loaded tree predicts differently")
		}
		if tree.RegionKey(x) != loaded.RegionKey(x) {
			t.Fatal("loaded tree routes differently")
		}
	}
}

func TestTreeUnmarshalRejectsGarbage(t *testing.T) {
	var tree Tree
	cases := []string{
		`nope`,
		`{"format":"wrong","dim":2,"classes":2}`,
		`{"format":"openapi-lmt-v1","dim":0,"classes":2}`,
		`{"format":"openapi-lmt-v1","dim":2,"classes":2,"root":null}`,
		`{"format":"openapi-lmt-v1","dim":2,"classes":2,"root":{"feature":9,"threshold":0,"left":{"w":[[1,2],[3,4]],"b":[0,0]},"right":{"w":[[1,2],[3,4]],"b":[0,0]}}}`,
		`{"format":"openapi-lmt-v1","dim":2,"classes":2,"root":{"w":[[1,2]],"b":[0]}}`,
	}
	for _, c := range cases {
		if err := tree.UnmarshalJSON([]byte(c)); err == nil {
			t.Fatalf("accepted garbage: %s", c)
		}
	}
}

func TestCandidateThresholds(t *testing.T) {
	// Distinct values -> midpoints.
	got := candidateThresholds([]float64{1, 2, 3}, 10)
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("thresholds = %v", got)
	}
	// Constant column -> no thresholds.
	if got := candidateThresholds([]float64{5, 5, 5}, 10); len(got) != 0 {
		t.Fatalf("constant column gave %v", got)
	}
	// Thinning respects k.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	if got := candidateThresholds(vals, 8); len(got) != 8 {
		t.Fatalf("thinned to %d, want 8", len(got))
	}
}

func TestEntropy(t *testing.T) {
	if e := entropy([]int{5, 5}, 10); e < 0.999 || e > 1.001 {
		t.Fatalf("uniform 2-class entropy = %v, want 1", e)
	}
	if e := entropy([]int{10, 0}, 10); e != 0 {
		t.Fatalf("pure entropy = %v", e)
	}
	if e := entropy(nil, 0); e != 0 {
		t.Fatalf("empty entropy = %v", e)
	}
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs, ys := checkerboard(rng, 100)
	cfg := smallCfg()
	cfg.MaxFeatures = 1
	tree, err := Train(rng, xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With a feature cap the tree should still train and predict sanely.
	if acc := tree.Accuracy(xs, ys); acc < 0.5 {
		t.Fatalf("accuracy = %v", acc)
	}
}

// Property: every instance routes to exactly one leaf and Predict returns a
// probability vector.
func TestPropertyTreeRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs, ys := checkerboard(rng, 80)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if a != a || b != b { // NaN guards
			return true
		}
		if a > 1e6 || a < -1e6 || b > 1e6 || b < -1e6 {
			return true
		}
		x := mat.Vec{a, b}
		p := tree.Predict(x)
		var sum float64
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum > 0.999 && sum < 1.001 && strings.HasPrefix(tree.RegionKey(x), "lmt-leaf-")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: instances sharing a region key get identical decision features
// from LocalAt — the LMT side of the consistency guarantee.
func TestPropertyTreeRegionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs, ys := checkerboard(rng, 80)
	tree, err := Train(rng, xs, ys, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := mat.Vec{r.NormFloat64() * 3, r.NormFloat64() * 3}
		y := mat.Vec{x[0] + r.NormFloat64()*1e-9, x[1] + r.NormFloat64()*1e-9}
		if tree.RegionKey(x) != tree.RegionKey(y) {
			return true // vacuous
		}
		lx, err := tree.LocalAt(x)
		if err != nil {
			return false
		}
		ly, err := tree.LocalAt(y)
		if err != nil {
			return false
		}
		for c := 0; c < 2; c++ {
			if !lx.DecisionFeatures(c).EqualApprox(ly.DecisionFeatures(c), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
