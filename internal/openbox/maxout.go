package openbox

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// Maxout adapts an nn.MaxoutNetwork to plm.RegionModel. The region of an
// instance is indexed by which affine piece wins at every hidden unit; the
// ground-truth local classifier comes from folding the winning pieces.
type Maxout struct {
	Net *nn.MaxoutNetwork
}

var _ plm.RegionModel = (*Maxout)(nil)
var _ plm.BatchPredictor = (*Maxout)(nil)

// Predict returns softmax class probabilities.
func (m *Maxout) Predict(x mat.Vec) mat.Vec { return m.Net.Predict(x) }

// PredictBatch answers the whole batch with one GEMM per affine piece per
// layer — bit-identical to per-instance Predict.
func (m *Maxout) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	for i, x := range xs {
		if len(x) != m.Net.InputDim() {
			return nil, fmt.Errorf("openbox: maxout batch item %d length %d != %d", i, len(x), m.Net.InputDim())
		}
	}
	return m.Net.PredictBatch(xs), nil
}

// Dim returns the input dimensionality.
func (m *Maxout) Dim() int { return m.Net.InputDim() }

// Classes returns the number of classes.
func (m *Maxout) Classes() int { return m.Net.Classes() }

// winnerKey fingerprints a flat winner pattern.
func winnerKey(pat []int) string {
	h := fnv.New64a()
	buf := make([]byte, len(pat))
	for i, p := range pat {
		buf[i] = byte(p)
	}
	h.Write(buf)
	return fmt.Sprintf("maxout-%d-%016x", len(pat), h.Sum64())
}

// RegionKey fingerprints the winner pattern at x.
func (m *Maxout) RegionKey(x mat.Vec) string {
	return winnerKey(m.Net.WinnerPattern(x))
}

// LocalAt extracts the exact locally linear classifier at x.
func (m *Maxout) LocalAt(x mat.Vec) (*plm.Linear, error) {
	_, compose, err := m.RegionPattern(x)
	if err != nil {
		return nil, err
	}
	return compose()
}

// RegionPattern is the per-family pattern hook: one forward yields the
// winner pattern, the key is hashed from it, and the composer folds the
// winning pieces straight from the pattern — no second forward on cache
// misses, none at all beyond the key on hits.
func (m *Maxout) RegionPattern(x mat.Vec) (string, func() (*plm.Linear, error), error) {
	if len(x) != m.Net.InputDim() {
		return "", nil, fmt.Errorf("openbox: maxout input length %d != %d", len(x), m.Net.InputDim())
	}
	pat := m.Net.WinnerPattern(x)
	key := winnerKey(pat)
	return key, func() (*plm.Linear, error) {
		w, b, err := m.Net.AffineFromWinners(pat)
		if err != nil {
			return nil, err
		}
		return plm.NewLinear(w, b, key)
	}, nil
}

var _ plm.PatternRegionModel = (*Maxout)(nil)
