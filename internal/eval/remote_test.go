package eval

import (
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func TestQualityOverAPIMatchesLocal(t *testing.T) {
	// The remote harness must not change the science: OpenAPI over a
	// sharded HTTP hop with an adaptive window stays exact, and the wire
	// stats prove the probes actually batched.
	w, err := NewWorkbench(WorkbenchConfig{Size: 8, PerClass: 20, NNEpochs: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	xs := w.Test.X[:3]
	methods := []plm.Interpreter{core.New(core.Config{Seed: 32})}
	rows, wire, err := QualityOverAPI(w.PLNN, "remote-plnn", methods, xs, 2, api.AggregatorConfig{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Failures > 0 || r.AvgRD != 0 || r.WD.Mean != 0 {
		t.Fatalf("remote quality broken: %+v", r)
	}
	if r.L1.Mean > 1e-4 {
		t.Fatalf("remote L1 = %v", r.L1.Mean)
	}
	if wire.Queries == 0 || wire.RoundTrips == 0 {
		t.Fatalf("no wire traffic recorded: %+v", wire)
	}
	// Per-iteration batching alone guarantees far more than one query per
	// round trip (each sample set is d+k probes in one POST /batch).
	if wire.QueriesPerTrip() < 2 {
		t.Fatalf("queries/trip = %v, batching did not engage", wire.QueriesPerTrip())
	}
	if wire.Window <= 0 {
		t.Fatalf("no window in force: %+v", wire)
	}
}

func TestServeRemoteLifecycle(t *testing.T) {
	w, err := NewWorkbench(WorkbenchConfig{Size: 8, PerClass: 20, NNEpochs: 5, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := ServeRemote(w.PLNN, "lifecycle", 3, api.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if bench.URL() == "" {
		t.Fatal("no URL")
	}
	m := bench.Model()
	if m.Dim() != w.PLNN.Dim() || m.Classes() != w.PLNN.Classes() {
		t.Fatalf("meta mismatch: %d/%d", m.Dim(), m.Classes())
	}
	x := w.Test.X[0]
	got := m.Predict(x)
	if want := w.PLNN.Predict(x); !got.EqualApprox(want, 1e-12) {
		t.Fatalf("remote %v != local %v", got, want)
	}
	if err := bench.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close must not panic the aggregator or the server.
	_ = bench.Close()
}

func TestRemoteBenchReusedAcrossRepetitions(t *testing.T) {
	// The persistent-server contract cmd/experiments relies on: one bench
	// serves several quality repetitions, each Quality call reports only
	// its own wire cost, and the science is identical run over run.
	w, err := NewWorkbench(WorkbenchConfig{Size: 8, PerClass: 20, NNEpochs: 5, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := ServeRemote(w.PLNN, "persistent", 2, api.AggregatorConfig{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer bench.Close()
	white := openbox.CacheRegionModel(w.PLNN, 0)
	xs := w.Test.X[:2]

	var wires []WireStats
	var prevRows []QualityRow
	for rep := 0; rep < 2; rep++ {
		methods := []plm.Interpreter{core.New(core.Config{Seed: 36})}
		rows, wire, err := bench.Quality(white, methods, xs)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if len(rows) != 1 || rows[0].Failures > 0 {
			t.Fatalf("rep %d rows: %+v", rep, rows)
		}
		if prevRows != nil && rows[0].L1.Mean != prevRows[0].L1.Mean {
			t.Fatalf("repetitions disagree: %v vs %v", rows[0].L1.Mean, prevRows[0].L1.Mean)
		}
		prevRows = rows
		wires = append(wires, wire)
	}
	// Identical work: each rep reports its own (equal) query count, not a
	// cumulative total — and the server-side totals are their sum.
	if wires[0].Queries == 0 || wires[0].Queries != wires[1].Queries {
		t.Fatalf("per-rep wire stats not isolated: %+v", wires)
	}
	if got := bench.Server.Queries(); got != wires[0].Queries+wires[1].Queries {
		t.Fatalf("server counted %d queries, reps report %d + %d", got, wires[0].Queries, wires[1].Queries)
	}
}
