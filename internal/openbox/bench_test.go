package openbox

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// Extraction benchmarks for the PR-3 trajectory: a clustered workload (many
// instances, few regions) through the uncached chain, the region cache, and
// the batched ExtractAll. The paper-adjacent 64-dimensional net keeps one
// composition around a millisecond so CI's one-iteration smoke stays fast.

func benchNetXs(b *testing.B) (*PLNN, []mat.Vec) {
	b.Helper()
	n := randNet(51, 64, 96, 64, 10)
	rng := rand.New(rand.NewSource(52))
	xs := clusteredInstances(rng, 64, 8, 8, 0) // 64 instances, 8 regions
	return &PLNN{Net: n}, xs
}

func BenchmarkExtract_NoCache(b *testing.B) {
	p, xs := benchNetXs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			if _, err := Extract(p.Net, x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExtract_RegionCache(b *testing.B) {
	p, xs := benchNetXs(b)
	rc := NewRegionCache(p.Net, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			if _, err := rc.LocalAt(x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExtractAll_Clustered(b *testing.B) {
	p, xs := benchNetXs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractAll(p.Net, xs); err != nil {
			b.Fatal(err)
		}
	}
}
