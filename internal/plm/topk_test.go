package plm

import (
	"testing"

	"repro/internal/mat"
)

func TestTopK(t *testing.T) {
	in := &Interpretation{Features: mat.Vec{0.5, -2, 1, 0}}
	top := in.TopK(2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Index != 1 || top[0].Weight != -2 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Index != 2 || top[1].Weight != 1 {
		t.Fatalf("top[1] = %+v", top[1])
	}
}

func TestTopKClampsAndEmpty(t *testing.T) {
	in := &Interpretation{Features: mat.Vec{1, 2}}
	if got := in.TopK(99); len(got) != 2 {
		t.Fatalf("oversized k gave %d", len(got))
	}
	if got := in.TopK(0); got != nil {
		t.Fatalf("k=0 gave %v", got)
	}
	if got := in.TopK(-3); got != nil {
		t.Fatalf("negative k gave %v", got)
	}
}

func TestTopKStableOnTies(t *testing.T) {
	in := &Interpretation{Features: mat.Vec{1, -1, 1}}
	top := in.TopK(3)
	if top[0].Index != 0 || top[1].Index != 1 || top[2].Index != 2 {
		t.Fatalf("tie order broken: %+v", top)
	}
}

func TestSupportingOpposing(t *testing.T) {
	in := &Interpretation{Features: mat.Vec{0.5, -2, 0, 1}}
	sup := in.Supporting()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 3 {
		t.Fatalf("Supporting = %v", sup)
	}
	opp := in.Opposing()
	if len(opp) != 1 || opp[0] != 1 {
		t.Fatalf("Opposing = %v", opp)
	}
	// Zero weights belong to neither set.
	if len(sup)+len(opp) != 3 {
		t.Fatal("zero weight misclassified")
	}
}
