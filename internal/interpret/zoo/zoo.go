// Package zoo adapts the zeroth-order-optimization gradient estimator of
// Chen et al. (AISec 2017) into an interpreter, following the paper's §V
// baseline construction: since d/dx ln(y_c/y_{c'}) = D_{c,c'} inside a
// locally linear region, the symmetric difference quotient along each axis
// at a fixed probe distance h estimates the core-parameter vector directly.
package zoo

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Config controls the estimator.
type Config struct {
	// H is the one-sided probe distance along each axis (the paper
	// evaluates 1e-8, 1e-4, 1e-2). Default 1e-4.
	H float64
}

func (c *Config) setDefaults() {
	if c.H <= 0 {
		c.H = 1e-4
	}
}

// ZOO is the finite-difference interpreter.
type ZOO struct {
	cfg Config
}

// New returns a ZOO interpreter with the given configuration.
func New(cfg Config) *ZOO {
	cfg.setDefaults()
	return &ZOO{cfg: cfg}
}

var _ plm.Interpreter = (*ZOO)(nil)

// Name implements plm.Interpreter.
func (z *ZOO) Name() string { return fmt.Sprintf("ZOO(h=%.0e)", z.cfg.H) }

// Interpret estimates every D_{c,c'} from 2d axis probes (shared across all
// class pairs) and averages into D_c. The bias B_{c,c'} is closed from the
// center response: B = ln(y_c/y_{c'})(x0) − D·x0.
func (z *ZOO) Interpret(model plm.Model, x0 mat.Vec, c int) (*plm.Interpretation, error) {
	z.cfg.setDefaults()
	d := model.Dim()
	C := model.Classes()
	if len(x0) != d {
		return nil, fmt.Errorf("zoo: instance length %d != model dim %d", len(x0), d)
	}
	if c < 0 || c >= C {
		return nil, fmt.Errorf("zoo: class %d out of range [0,%d)", c, C)
	}

	y0 := model.Predict(x0)
	queries := 1
	pairs := sample.AxisPairs(x0, z.cfg.H)
	plus := make([]mat.Vec, d)
	minus := make([]mat.Vec, d)
	probes := make([]mat.Vec, 0, 2*d)
	for i, pr := range pairs {
		plus[i] = model.Predict(pr[0])
		minus[i] = model.Predict(pr[1])
		probes = append(probes, pr[0], pr[1])
		queries += 2
	}

	diffs := make([]mat.Vec, C)
	biases := make([]float64, C)
	features := mat.NewVec(d)
	for cp := 0; cp < C; cp++ {
		if cp == c {
			continue
		}
		g := make(mat.Vec, d)
		for i := 0; i < d; i++ {
			g[i] = (plm.LogOdds(plus[i], c, cp) - plm.LogOdds(minus[i], c, cp)) / (2 * z.cfg.H)
		}
		diffs[cp] = g
		biases[cp] = plm.LogOdds(y0, c, cp) - g.Dot(x0)
		features.AddInPlace(g)
	}
	features.ScaleInPlace(1 / float64(C-1))
	return &plm.Interpretation{
		Class:      c,
		Features:   features,
		PairDiffs:  diffs,
		Biases:     biases,
		Samples:    probes,
		Queries:    queries,
		Iterations: 1,
		FinalEdge:  2 * z.cfg.H, // probes span a cube of edge 2h
	}, nil
}

// SamplePoints exposes the 2d probe points for the sample-quality metrics.
func (z *ZOO) SamplePoints(x0 mat.Vec) []mat.Vec {
	z.cfg.setDefaults()
	out := make([]mat.Vec, 0, 2*len(x0))
	for _, pr := range sample.AxisPairs(x0, z.cfg.H) {
		out = append(out, pr[0], pr[1])
	}
	return out
}
