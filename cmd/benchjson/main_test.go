package main

import "testing"

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkLogitsBatch256-8   \t     50\t  9023498 ns/op\t 1234 B/op\t  12 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if rec.Name != "BenchmarkLogitsBatch256" {
		t.Fatalf("name %q", rec.Name)
	}
	if rec.Iterations != 50 || rec.NsPerOp != 9023498 {
		t.Fatalf("parsed %+v", rec)
	}
	if rec.Metrics["B/op"] != 1234 || rec.Metrics["allocs/op"] != 12 {
		t.Fatalf("metrics %v", rec.Metrics)
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	rec, ok := parseLine("BenchmarkExtract_RegionCache  10  830879 ns/op")
	if !ok || rec.Name != "BenchmarkExtract_RegionCache" {
		t.Fatalf("parsed %+v ok=%v", rec, ok)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro/internal/nn",
		"PASS",
		"ok  \trepro/internal/nn\t0.412s",
		"BenchmarkBroken x ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line accepted: %q", line)
		}
	}
}
