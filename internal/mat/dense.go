package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
//
// The zero value is an empty 0x0 matrix; use NewDense to allocate.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zeroed r-by-c matrix. It panics if r or c is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewDense negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r-by-c matrix backed by a copy of data, which must
// have length r*c and be laid out row-major.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewDenseFrom data length %d != %d*%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// FromRows builds a matrix whose rows are copies of the given vectors. All
// rows must have equal length. An empty argument list yields a 0x0 matrix.
func FromRows(rows ...Vec) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: FromRows ragged row %d: %d vs %d", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RawRow returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) RawRow(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return Vec(m.data[i*m.cols : (i+1)*m.cols])
}

// Row returns a copy of the i-th row.
func (m *Dense) Row(i int) Vec {
	return m.RawRow(i).Clone()
}

// Col returns a copy of the j-th column.
func (m *Dense) Col(j int) Vec {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v Vec) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.RawRow(i), v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v Vec) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// RowsView returns the first r rows of m as a matrix sharing m's storage —
// no copy. Writes through the view write through to m. It exists so pooled
// per-batch scratch allocated at the full mini-batch size can serve a
// smaller remainder batch without reallocating.
func (m *Dense) RowsView(r int) *Dense {
	if r < 0 || r > m.rows {
		panic(fmt.Sprintf("mat: RowsView %d out of range %d", r, m.rows))
	}
	return &Dense{rows: r, cols: m.cols, data: m.data[:r*m.cols]}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// MulVec returns m * x.
func (m *Dense) MulVec(x Vec) Vec {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(x), m.cols))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns m^T * x without materializing the transpose.
func (m *Dense) MulVecT(x Vec) Vec {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: MulVecT length %d != rows %d", len(x), m.rows))
	}
	out := make(Vec, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, a := range row {
			out[j] += a * xi
		}
	}
	return out
}

// Mul returns m * b. The product runs on the blocked kernel in gemm.go:
// every output element is one ascending-k dot product with a single
// accumulator, so results match the naive triple loop bit for bit.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	return m.MulInto(b, out)
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns a*m as a new matrix.
func (m *Dense) Scale(a float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= a
	}
	return out
}

func (m *Dense) sameShape(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// MaxAbs returns the largest absolute entry (the max norm).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm1 returns the entrywise L1 norm (sum of absolute entries).
func (m *Dense) Norm1() float64 {
	var s float64
	for _, v := range m.data {
		s += math.Abs(v)
	}
	return s
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 {
	return Vec(m.data).Norm2()
}

// EqualApprox reports whether m and b agree entrywise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	return Vec(m.data).EqualApprox(Vec(b.data), tol)
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d, |max|=%.4g)", m.rows, m.cols, m.MaxAbs())
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
