// Fixtures for detfloat's ordered-output scope ("repro/internal/extract"
// and friends): the map-range determinism rule applies, the bit-identity
// call rules do not.
package a

import "time"

func harvestOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appending to an outer slice in map iteration order"
	}
	return out
}

func wallClockIsFine() int64 {
	// extract/api may timestamp; only the bit-identity packages forbid it.
	return time.Now().UnixNano()
}
