package api

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

// The wire protocol is deliberately what a minimal prediction service looks
// like:
//
//	GET  /meta     -> {"name":..., "dim":d, "classes":C, "codecs":[...]}
//	POST /predict  {"x":[...]}        -> {"probs":[...]}
//	POST /batch    {"xs":[[...],..]}  -> {"probs":[[...],..]}
//	GET  /stats    -> {"queries":n, ...}
//
// Only probabilities cross the wire — never parameters — so the server side
// is a faithful stand-in for the cloud APIs the paper targets.
//
// Payload encoding is pluggable (internal/wire): the JSON envelopes above
// are the universal fallback, and peers that both advertise the binary
// float-frame codec ship the same payloads as length-prefixed little-endian
// frames at a fraction of the bytes. Negotiation is per request via
// Content-Type and Accept; /meta advertises what the server speaks.

// APIVersion is the versioned-path generation this server speaks: every
// endpoint is mounted both at its legacy unversioned path and under
// /v1/..., and /meta advertises the number so clients prefer the versioned
// prefix — the same advertise-then-upgrade pattern the codec negotiation
// uses. Absent (0) on pre-versioning servers.
const APIVersion = 1

type metaResponse struct {
	Name    string `json:"name"`
	Dim     int    `json:"dim"`
	Classes int    `json:"classes"`
	// Codecs lists the payload codecs the server accepts ("json",
	// "binary"). Absent on pre-codec servers — which is exactly how a new
	// client knows to stay on JSON against an old peer.
	Codecs []string `json:"codecs,omitempty"`
	// APIVersion advertises the versioned path prefix (/v1) generation.
	// Absent on pre-versioning servers — which is how a new client knows
	// to stay on the unversioned paths against an old peer.
	APIVersion int `json:"api_version,omitempty"`
}

// AtlasStatus is the /stats section a mounted region atlas fills in: the
// durable store's size and traffic, how many closed forms this process
// actually composed, and census sweep progress.
type AtlasStatus struct {
	Regions      int   `json:"regions"`
	Bytes        int64 `json:"bytes"`
	Hits         int64 `json:"hits"`
	ColdMisses   int64 `json:"cold_misses"`
	Quarantined  int64 `json:"quarantined"`
	Compositions int64 `json:"compositions"`
	// Census progress: instances swept so far out of the submitted total
	// (across all census jobs), and the ratio when a total exists.
	CensusDone     int64   `json:"census_done"`
	CensusTotal    int64   `json:"census_total"`
	CensusProgress float64 `json:"census_progress"`
}

type statsResponse struct {
	Queries    int64 `json:"queries"`
	RoundTrips int64 `json:"round_trips"`
	// Wire counters: payload bytes through the codec seam and the
	// binary/JSON request split. Always present — a zero is information.
	wire.Counts
	// ReplicaQueries breaks Queries down per model replica when the served
	// model is a Shard; absent for single-replica servers.
	ReplicaQueries []int64 `json:"replica_queries,omitempty"`
	// Backends is the per-backend breakdown when the served model is a
	// Shard: kind (local/remote), health state, inflight, retry and failure
	// counters. A remote or temporarily unhealthy backend stays listed with
	// state "unreachable" rather than disappearing from the report.
	Backends []BackendStatus `json:"backends,omitempty"`
	// Cache counters are present when the served model sits behind a
	// ResponseCache (plmserve -cache N). Pointers keep genuine zeros visible
	// while omitting the fields entirely on cacheless servers.
	CacheHits      *int64 `json:"cache_hits,omitempty"`
	CacheMisses    *int64 `json:"cache_misses,omitempty"`
	CacheEvictions *int64 `json:"cache_evictions,omitempty"`
	CacheSize      *int   `json:"cache_size,omitempty"`
	// Registry is the fleet-membership section a mounted Registry fills in:
	// live members and the join/leave/expiry transition counters.
	Registry *RegistryStatus `json:"registry,omitempty"`
	// Caches is the unified per-store section: every cache in the process
	// (response cache, region cache, atlas) reports the same
	// hits/misses/evictions/size/bytes shape under its name, so dashboards
	// parse one schema. The legacy cache_* fields above stay for old
	// consumers.
	Caches map[string]plm.StoreStats `json:"caches,omitempty"`
	// Atlas is the region-atlas section (plmserve -atlas).
	Atlas *AtlasStatus `json:"atlas,omitempty"`
}

// serverCodecs is what /meta advertises.
var serverCodecs = []string{wire.NameJSON, wire.NameBinary}

// Server exposes a plm.Model over HTTP. It implements http.Handler.
type Server struct {
	model   plm.Model
	name    string
	mux     *http.ServeMux
	queries atomic.Int64
	// requests counts prediction round trips: one per served /predict or
	// /batch call, however many probes the batch carried. The ratio
	// queries/requests is the server-side view of how well clients batch.
	requests atomic.Int64
	// wireStats counts payload bytes and the codec split across the
	// payload-carrying endpoints (/predict, /batch, /jobs) — the /meta and
	// /stats control surface is not wire traffic worth metering.
	wireStats wire.Stats
	// Latency, when positive, is added to every prediction request to
	// simulate a slow remote.
	Latency time.Duration
	// MaxBody caps request body bytes (0: wire.DefaultMaxBody, 64 MB). A
	// body stopped by the cap answers 413, not a generic decode 400.
	MaxBody int64
	// statsExtras are hooks mounted subsystems (the fleet registry) use to
	// add their own sections to the /stats report.
	statsExtras []func(*statsResponse)
	// storeStats are the named per-store accounting hooks behind the
	// unified /stats "caches" section.
	storeStats []namedStoreStats
	// atlasStatus, when set, fills the /stats "atlas" section.
	atlasStatus func() AtlasStatus
}

type namedStoreStats struct {
	name string
	get  func() plm.StoreStats
}

// NewServer wraps model as an HTTP prediction service. Every endpoint —
// including ones mounted later through Handle — answers both at its legacy
// path and under the /v1 prefix.
func NewServer(model plm.Model, name string) *Server {
	s := &Server{model: model, name: name, mux: http.NewServeMux()}
	s.Handle("GET /meta", s.handleMeta)
	s.Handle("POST /predict", s.handlePredict)
	s.Handle("POST /batch", s.handleBatch)
	s.Handle("GET /stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Queries returns the number of single predictions served (batch items
// count individually).
func (s *Server) Queries() int64 { return s.queries.Load() }

// Requests returns the number of prediction round trips served — the
// denominator of the batching win a query aggregator buys.
func (s *Server) Requests() int64 { return s.requests.Load() }

// WireStats returns the server's wire counter set — mounted subsystems
// (the async job API) count their payload traffic into the same seam.
func (s *Server) WireStats() *wire.Stats { return &s.wireStats }

// WireCounts snapshots the server's wire counters.
func (s *Server) WireCounts() wire.Counts { return s.wireStats.Counts() }

// exchange builds the per-request codec seam for a payload endpoint.
func (s *Server) exchange(r *http.Request) *wire.Exchange {
	return wire.NewExchange(r, &s.wireStats, s.MaxBody)
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	wire.WriteJSON(w, http.StatusOK, metaResponse{
		Name: s.name, Dim: s.model.Dim(), Classes: s.model.Classes(),
		Codecs: serverCodecs, APIVersion: APIVersion,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Queries:    s.queries.Load(),
		RoundTrips: s.requests.Load(),
		Counts:     s.wireStats.Counts(),
	}
	addCache := func(name string, st plm.StoreStats) {
		if resp.Caches == nil {
			resp.Caches = make(map[string]plm.StoreStats, len(s.storeStats)+1)
		}
		resp.Caches[name] = st
	}
	model := s.model
	if rc, ok := model.(*ResponseCache); ok {
		hits, misses, evictions := rc.CacheStats()
		size := rc.Len()
		resp.CacheHits = &hits
		resp.CacheMisses = &misses
		resp.CacheEvictions = &evictions
		resp.CacheSize = &size
		addCache("response", rc.StoreStats())
		// The replica breakdown lives behind the cache.
		model = rc.Inner()
	}
	if sh, ok := model.(*Shard); ok {
		resp.ReplicaQueries = sh.ReplicaQueries()
		resp.Backends = sh.BackendStatus()
	}
	for _, st := range s.storeStats {
		addCache(st.name, st.get())
	}
	if s.atlasStatus != nil {
		status := s.atlasStatus()
		resp.Atlas = &status
	}
	for _, extra := range s.statsExtras {
		extra(&resp)
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// Handle mounts an extra handler on the server's mux — how optional
// subsystems (the async job API, say) attach their endpoints without the
// core server depending on them. The handler answers at both the given
// pattern and its /v1-prefixed alias.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
	if v := versionedPattern(pattern); v != "" {
		s.mux.HandleFunc(v, h)
	}
}

// versionedPattern maps "METHOD /path" to "METHOD /v1/path" (or "/path" to
// "/v1/path"), returning "" when the pattern is already versioned or has no
// rooted path to prefix.
func versionedPattern(pattern string) string {
	method, path, found := strings.Cut(pattern, " ")
	if !found {
		method, path = "", pattern
	}
	if !strings.HasPrefix(path, "/") || path == "/" ||
		path == "/v1" || strings.HasPrefix(path, "/v1/") {
		return ""
	}
	if method == "" {
		return "/v1" + path
	}
	return method + " /v1" + path
}

// AddStoreStats registers a named store for the unified /stats "caches"
// section. Register before serving: the slice is not guarded.
func (s *Server) AddStoreStats(name string, get func() plm.StoreStats) {
	s.storeStats = append(s.storeStats, namedStoreStats{name: name, get: get})
}

// SetAtlasStatus installs the hook filling the /stats "atlas" section.
func (s *Server) SetAtlasStatus(get func() AtlasStatus) { s.atlasStatus = get }

// SetRegionSource mounts GET /regions/{key} (and its /v1 alias): the
// closed-form (W, b) of one stored region by PatternKey. Clients accepting
// the binary codec get the PLMB framing (W frame, then B as one row —
// bit-identical Float64bits); everyone else gets JSON. Only metadata the
// paper's closed form already implies crosses the wire here: the endpoint
// serves the *stored interpretation artifact*, never raw model parameters.
func (s *Server) SetRegionSource(lookup func(key string) (*plm.Linear, bool)) {
	s.Handle("GET /regions/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		lin, ok := lookup(key)
		if !ok {
			wire.WriteError(w, http.StatusNotFound, fmt.Errorf("region %q not stored", key))
			return
		}
		rows := make([][]float64, lin.W.Rows())
		for i := range rows {
			rows[i] = lin.W.RawRow(i)
		}
		ex := s.exchange(r)
		if bin, ok := ex.BinaryOut(); ok {
			w.Header().Set("Content-Type", bin.ContentType())
			cw := ex.CountWriter(w)
			if err := wire.WriteFrame(cw, rows, false); err != nil {
				return
			}
			_ = wire.WriteFrame(cw, [][]float64{lin.B}, false)
			return
		}
		ex.WriteJSON(w, http.StatusOK, regionResponse{Key: lin.Key, W: rows, B: lin.B})
	})
}

// regionResponse is the JSON shape of GET /regions/{key}.
type regionResponse struct {
	Key string      `json:"key"`
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	ex := s.exchange(r)
	x, err := ex.ReadVec("x")
	if err != nil {
		ex.Error(w, wire.DecodeStatus(err), err)
		return
	}
	if len(x) != s.model.Dim() {
		ex.Error(w, http.StatusBadRequest, fmt.Errorf("input length %d != %d", len(x), s.model.Dim()))
		return
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	// Models with an error surface (a Shard whose backends are all gone,
	// say) answer 5xx rather than fabricating probabilities — and like a
	// failed batch, a failed prediction delivered nothing, so it is not
	// counted. Context-aware models additionally see the request context, so
	// a client that hangs up cancels its own fan-out.
	var probs mat.Vec
	switch m := s.model.(type) {
	case ctxErrPredictor:
		p, err := m.PredictErrCtx(r.Context(), mat.Vec(x))
		if err != nil {
			ex.Error(w, http.StatusInternalServerError, err)
			return
		}
		probs = p
	case errPredictor:
		p, err := m.PredictErr(mat.Vec(x))
		if err != nil {
			ex.Error(w, http.StatusInternalServerError, err)
			return
		}
		probs = p
	default:
		probs = s.model.Predict(mat.Vec(x))
	}
	s.requests.Add(1)
	s.queries.Add(1)
	ex.WriteVec(w, "probs", probs)
}

// errPredictor is the optional single-prediction error surface (Client,
// Shard, ResponseCache): Predict with failures made visible instead of
// degraded into a uniform answer.
type errPredictor interface {
	PredictErr(x mat.Vec) (mat.Vec, error)
}

// ctxErrPredictor is the deadline-aware refinement of errPredictor: the
// server hands the request context down so a caller timeout cancels the
// shard fan-out behind the endpoint.
type ctxErrPredictor interface {
	PredictErrCtx(ctx context.Context, x mat.Vec) (mat.Vec, error)
}

// ctxBatchPredictor is the deadline-aware refinement of plm.BatchPredictor.
type ctxBatchPredictor interface {
	PredictBatchCtx(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ex := s.exchange(r)
	rows, err := ex.ReadMat("xs")
	if err != nil {
		ex.Error(w, wire.DecodeStatus(err), err)
		return
	}
	// An empty batch is a no-op, not a round trip: counting it would skew
	// the queries/round_trips ratio the stats report (and the integration
	// gate) with zero-query requests.
	if len(rows) == 0 {
		ex.WriteMat(w, "probs", [][]float64{})
		return
	}
	// Validate everything before counting: a rejected request must not
	// skew the queries/round_trips ratio the stats report.
	for i, x := range rows {
		if len(x) != s.model.Dim() {
			ex.Error(w, http.StatusBadRequest, fmt.Errorf("batch item %d length %d != %d", i, len(x), s.model.Dim()))
			return
		}
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	xs := make([]mat.Vec, len(rows))
	for i, x := range rows {
		xs[i] = mat.Vec(x)
	}
	// The model's own batch endpoint — a Shard's parallel replica fan-out,
	// say — answers the whole request at once; plain models fall back to
	// per-probe evaluation. Count only after it succeeds: a failed batch
	// delivered zero answers, and counting it (times the client's 5xx
	// retries) would skew the queries/round_trips ratio like any other
	// rejected request. Context-aware models see the request context so a
	// hung-up client cancels the fan-out instead of burning backends.
	var ys []mat.Vec
	if cb, ok := s.model.(ctxBatchPredictor); ok {
		ys, err = cb.PredictBatchCtx(r.Context(), xs)
	} else {
		ys, err = predictAllErr(s.model, xs)
	}
	if err != nil {
		ex.Error(w, http.StatusInternalServerError, err)
		return
	}
	s.requests.Add(1)
	s.queries.Add(int64(len(rows)))
	out := make([][]float64, len(ys))
	for i, y := range ys {
		out[i] = y
	}
	ex.WriteMat(w, "probs", out)
}

// clientMaxBody caps how much response body a client will decode.
const clientMaxBody = wire.DefaultMaxBody

// defaultTransport is shared by every client Dial builds itself. The
// stock http.DefaultTransport keeps only 2 idle connections per host —
// an aggregator plus a shard fan-out against one server churns through
// fresh TCP connections, and the binary codec's small frames only pipeline
// when the connection stays warm. One shared pool, sized for the shard's
// concurrency, keeps every dialed peer on persistent connections.
var defaultTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        128,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}

// Client is an HTTP prediction client implementing plm.Model. Transport
// errors are sticky (the bufio.Scanner pattern): Predict returns a uniform
// distribution and records the error, and callers check Err when the
// interpretation finishes. This keeps plm.Model's pure-math surface while
// still surfacing failures.
//
// The client speaks the binary float-frame codec automatically when the
// server's /meta advertises it, and stays on JSON otherwise — so a new
// client against an old server interoperates without configuration.
// SetCodec and SetFloat32 adjust the choice; call them before sharing the
// client across goroutines.
type Client struct {
	baseURL string
	httpc   *http.Client
	meta    metaResponse
	retries int
	// binary selects the frame codec for requests and the Accept header;
	// binaryOK records whether the server advertised it.
	binary   bool
	binaryOK bool
	// f32 opts this client's frames into float32 payloads — half the bytes,
	// explicitly outside the bit-identity surface.
	f32       bool
	wireStats wire.Stats
	// prefix is "/v1" once the server's /meta advertised api_version >= 1,
	// and "" against older peers — negotiated exactly like the codec.
	prefix string

	// PingTimeout bounds each Ping/PingCtx health probe so a dead host
	// cannot stall the prober for the transport timeout. Dial sets 2s;
	// zero disables the bound (the caller's context still applies).
	PingTimeout time.Duration

	mu  sync.Mutex
	err error
}

// Dial connects to an API server, fetches its metadata, and returns a
// client. retries is the number of extra attempts per request (0 = none).
// When httpc is nil a default client with a keep-alive-tuned shared
// transport is used.
func Dial(baseURL string, httpc *http.Client, retries int) (*Client, error) {
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}
	}
	if retries < 0 {
		retries = 0
	}
	c := &Client{baseURL: baseURL, httpc: httpc, retries: retries, PingTimeout: 2 * time.Second}
	resp, err := httpc.Get(baseURL + "/meta")
	if err != nil {
		return nil, fmt.Errorf("api: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("api: meta returned %s", resp.Status)
	}
	if err := wire.DecodeJSON(resp.Body, clientMaxBody, &c.meta, false); err != nil {
		return nil, fmt.Errorf("api: decode meta: %w", err)
	}
	if c.meta.Dim <= 0 || c.meta.Classes < 2 {
		return nil, fmt.Errorf("api: implausible meta %+v", c.meta)
	}
	for _, name := range c.meta.Codecs {
		if name == wire.NameBinary {
			c.binary, c.binaryOK = true, true
		}
	}
	if c.meta.APIVersion >= 1 {
		c.prefix = "/v1"
	}
	return c, nil
}

// Prefix returns the negotiated path prefix ("/v1" against a versioned
// server, "" otherwise). Subsystems extending the wire protocol with their
// own endpoints (the async job client) build their paths through it.
func (c *Client) Prefix() string { return c.prefix }

// path prepends the negotiated version prefix to an endpoint path.
func (c *Client) path(p string) string { return c.prefix + p }

// Name returns the remote model's advertised name.
func (c *Client) Name() string { return c.meta.Name }

// BaseURL returns the server address the client was dialed against.
func (c *Client) BaseURL() string { return c.baseURL }

// HTTPClient returns the underlying HTTP client — for subsystems (the
// async job client, say) that extend the wire protocol with their own
// endpoints against the same server.
func (c *Client) HTTPClient() *http.Client { return c.httpc }

// Codec returns the request codec the client currently speaks,
// carrying its float32 preference.
func (c *Client) Codec() wire.Codec {
	if c.binary {
		return wire.Binary{Float32: c.f32}
	}
	return wire.JSON{}
}

// CodecName returns "json" or "binary".
func (c *Client) CodecName() string { return c.Codec().Name() }

// SetCodec overrides the negotiated codec: "json" always works, "binary"
// only against a server that advertised it.
func (c *Client) SetCodec(name string) error {
	switch name {
	case wire.NameJSON:
		c.binary = false
	case wire.NameBinary:
		if !c.binaryOK {
			return fmt.Errorf("api: server %s does not advertise the binary codec", c.baseURL)
		}
		c.binary = true
	default:
		return fmt.Errorf("api: unknown codec %q", name)
	}
	return nil
}

// SetFloat32 opts the client's binary frames into float32 payloads —
// half the wire bytes, explicitly excluded from bit-identity guarantees.
// A no-op on the JSON codec.
func (c *Client) SetFloat32(on bool) { c.f32 = on }

// WireCounts snapshots the client-side wire counters: payload bytes
// shipped and received and the codec split of its requests. A shard
// reaches through here for its per-remote-backend /stats breakdown.
func (c *Client) WireCounts() wire.Counts { return c.wireStats.Counts() }

// Ping checks that the server still answers its /meta endpoint under the
// client's PingTimeout. It is the health probe remote shard backends use.
func (c *Client) Ping() error { return c.PingCtx(context.Background()) }

// PingCtx is Ping under a caller context: the probe ends at the earlier of
// the context's deadline and the client's PingTimeout, so a recovery probe
// inherits the shard's probe budget while a caller hang-up stops it at once.
func (c *Client) PingCtx(ctx context.Context) error {
	if c.PingTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.PingTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/meta", nil)
	if err != nil {
		return fmt.Errorf("api: ping %s: %w", c.baseURL, err)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("api: ping %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api: ping %s returned %s", c.baseURL, resp.Status)
	}
	return nil
}

// Dim returns the remote model's input dimensionality.
func (c *Client) Dim() int { return c.meta.Dim }

// Classes returns the remote model's class count.
func (c *Client) Classes() int { return c.meta.Classes }

// Err returns the first transport error encountered, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ResetErr clears the sticky error.
func (c *Client) ResetErr() {
	c.mu.Lock()
	c.err = nil
	c.mu.Unlock()
}

func (c *Client) record(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// countingReader funnels received payload bytes into the client's wire
// counters as decodes consume them.
type countingReader struct {
	r     io.Reader
	stats *wire.Stats
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.stats.AddBytesIn(int64(n))
	return n, err
}

// do ships one already-encoded payload, retrying transport errors, 5xx
// responses and body decode failures up to c.retries extra times. A 4xx
// response is the server rejecting the request itself — re-sending the
// same payload can only waste round trips and delay the caller seeing its
// own mistake — so those return immediately. A done context also returns
// immediately: retrying a request whose caller is gone (deadline hit, or a
// hedge race already won elsewhere) only burns the server. decode runs on
// 200 responses and must consult the response's own Content-Type, so a
// JSON answer from a codec-unaware peer decodes fine whatever the request
// asked for.
func (c *Client) do(ctx context.Context, path string, payload []byte, decode func(*http.Response) error) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return lastErr
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("api: build request: %w", err)
		}
		codec := c.Codec()
		req.Header.Set("Content-Type", codec.ContentType())
		req.Header.Set("Accept", wire.AcceptValue(codec, c.f32))
		c.wireStats.CountRequest(c.binary)
		c.wireStats.AddBytesOut(int64(len(payload)))
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		retryable := true
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				lastErr = fmt.Errorf("api: %s returned %s: %s", path, resp.Status, bytes.TrimSpace(b))
				retryable = resp.StatusCode >= 500
				return
			}
			lastErr = decode(resp)
		}()
		if lastErr == nil {
			return nil
		}
		if !retryable {
			return lastErr
		}
	}
	return lastErr
}

// postVec ships a vector payload and decodes a vector response.
func (c *Client) postVec(ctx context.Context, path, reqField string, v []float64, respField string) ([]float64, error) {
	var buf bytes.Buffer
	if err := c.Codec().EncodeVec(&buf, reqField, v); err != nil {
		return nil, fmt.Errorf("api: encode request: %w", err)
	}
	var out []float64
	err := c.do(ctx, path, buf.Bytes(), func(resp *http.Response) error {
		codec := wire.ResponseBodyCodec(resp.Header.Get("Content-Type"))
		got, err := codec.DecodeVec(&countingReader{r: resp.Body, stats: &c.wireStats}, clientMaxBody, respField)
		if err != nil {
			return err
		}
		out = got
		return nil
	})
	return out, err
}

// postMat ships a matrix payload and decodes a matrix response.
func (c *Client) postMat(ctx context.Context, path, reqField string, m [][]float64, respField string) ([][]float64, error) {
	var buf bytes.Buffer
	if err := c.Codec().EncodeMat(&buf, reqField, m); err != nil {
		return nil, fmt.Errorf("api: encode request: %w", err)
	}
	var out [][]float64
	err := c.do(ctx, path, buf.Bytes(), func(resp *http.Response) error {
		codec := wire.ResponseBodyCodec(resp.Header.Get("Content-Type"))
		got, err := codec.DecodeMat(&countingReader{r: resp.Body, stats: &c.wireStats}, clientMaxBody, respField)
		if err != nil {
			return err
		}
		out = got
		return nil
	})
	return out, err
}

// PredictErr performs one remote prediction, returning transport errors
// directly.
func (c *Client) PredictErr(x mat.Vec) (mat.Vec, error) {
	return c.PredictErrCtx(context.Background(), x)
}

// PredictErrCtx is PredictErr under a caller context: the request is
// cancelled — including retries in flight — the moment the context ends.
func (c *Client) PredictErrCtx(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	probs, err := c.postVec(ctx, c.path("/predict"), "x", x, "probs")
	if err != nil {
		return nil, err
	}
	if len(probs) != c.meta.Classes {
		return nil, fmt.Errorf("api: server returned %d probabilities, want %d", len(probs), c.meta.Classes)
	}
	return mat.Vec(probs), nil
}

// Predict implements plm.Model with sticky error handling.
func (c *Client) Predict(x mat.Vec) mat.Vec {
	p, err := c.PredictErr(x)
	if err != nil {
		c.record(err)
		u := make(mat.Vec, c.meta.Classes)
		return u.Fill(1 / float64(c.meta.Classes))
	}
	return p
}

// PredictBatch performs one batched remote prediction. An empty batch is
// answered locally — there is nothing to ask the server.
func (c *Client) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	return c.PredictBatchCtx(context.Background(), xs)
}

// PredictBatchCtx is PredictBatch under a caller context. It is how a shard
// deadline (or a hedge race loss) reaches the wire: the HTTP request is
// built on the context and dies with it.
func (c *Client) PredictBatchCtx(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = x
	}
	probs, err := c.postMat(ctx, c.path("/batch"), "xs", rows, "probs")
	if err != nil {
		return nil, err
	}
	if len(probs) != len(xs) {
		return nil, fmt.Errorf("api: server returned %d batch items, want %d", len(probs), len(xs))
	}
	res := make([]mat.Vec, len(probs))
	for i, p := range probs {
		if len(p) != c.meta.Classes {
			return nil, fmt.Errorf("api: batch item %d has %d probabilities, want %d", i, len(p), c.meta.Classes)
		}
		res[i] = mat.Vec(p)
	}
	return res, nil
}

var _ plm.Model = (*Client)(nil)
var _ plm.Model = (*Counter)(nil)
var _ plm.Model = (*Cache)(nil)
var _ plm.Model = (*Flaky)(nil)
var _ plm.BatchPredictor = (*Flaky)(nil)
var _ ctxErrPredictor = (*Client)(nil)
var _ ctxBatchPredictor = (*Client)(nil)
