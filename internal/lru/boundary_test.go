package lru

import (
	"fmt"
	"testing"
)

// Three caches (api.ResponseCache, openbox.RegionCache, the generic
// region-model wrapper) derive their eviction counters from Add's evicted
// flag, so the flag has to be exact at the capacity boundaries — an
// over-report would show phantom churn in /stats, an under-report would
// hide real thrash from the benchmark trajectory.

func TestCapacityZeroIsUnbounded(t *testing.T) {
	// Capacity 0 means unbounded, not "evict everything": the flag must
	// stay false forever and nothing may be dropped.
	c := New[int](0)
	for i := 0; i < 1000; i++ {
		kept, inserted, evicted := c.Add(fmt.Sprintf("k%d", i), i)
		if !inserted || evicted || kept != i {
			t.Fatalf("Add #%d = (%d, %v, %v), want clean insert", i, kept, inserted, evicted)
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("len %d, want 1000", c.Len())
	}
}

func TestCapacityOneEvictsExactlyOncePerDisplacement(t *testing.T) {
	c := New[int](1)
	if _, _, evicted := c.Add("a", 1); evicted {
		t.Fatal("first insert into empty capacity-1 cache evicted")
	}
	evictions := 0
	for i := 0; i < 10; i++ {
		_, inserted, evicted := c.Add(fmt.Sprintf("k%d", i), i)
		if !inserted {
			t.Fatalf("fresh key %d not inserted", i)
		}
		if evicted {
			evictions++
		}
		if c.Len() != 1 {
			t.Fatalf("len %d after insert %d, want 1", c.Len(), i)
		}
	}
	// Every one of the 10 fresh inserts displaced the single incumbent.
	if evictions != 10 {
		t.Fatalf("evictions = %d, want 10", evictions)
	}
}

func TestDuplicateAddNeverEvicts(t *testing.T) {
	// Re-adding the resident key at capacity must not count as churn.
	c := New[int](1)
	c.Add("k", 1)
	for i := 0; i < 5; i++ {
		kept, inserted, evicted := c.Add("k", 100+i)
		if inserted || evicted || kept != 1 {
			t.Fatalf("dup Add = (%d, %v, %v), want incumbent and no eviction", kept, inserted, evicted)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestReinsertAfterEvictIsAFreshInsert(t *testing.T) {
	// a evicted by b, then a returns: it must re-enter as a new insert
	// (with the new value) and evict b in turn.
	c := New[int](1)
	c.Add("a", 1)
	if _, _, evicted := c.Add("b", 2); !evicted {
		t.Fatal("b did not evict a")
	}
	kept, inserted, evicted := c.Add("a", 3)
	if !inserted || !evicted || kept != 3 {
		t.Fatalf("re-insert after evict = (%d, %v, %v), want fresh insert evicting b", kept, inserted, evicted)
	}
	if v, ok := c.Get("a"); !ok || v != 3 {
		t.Fatalf("a = (%d, %v), want the re-inserted value 3", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived a's re-insert")
	}
}

func TestEvictionCountMatchesDisplacements(t *testing.T) {
	// Counter monotonicity at an arbitrary boundary: with capacity c and n
	// distinct inserts, evictions must equal max(0, n-c) exactly.
	for _, capacity := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 3, 7, 8, 20} {
			c := New[int](capacity)
			evictions, prev := 0, 0
			for i := 0; i < n; i++ {
				if _, _, evicted := c.Add(fmt.Sprintf("k%d", i), i); evicted {
					evictions++
				}
				if evictions < prev {
					t.Fatalf("cap=%d: eviction count went backwards", capacity)
				}
				prev = evictions
			}
			want := n - capacity
			if want < 0 {
				want = 0
			}
			if evictions != want {
				t.Fatalf("cap=%d n=%d: evictions = %d, want %d", capacity, n, evictions, want)
			}
			wantLen := n
			if wantLen > capacity {
				wantLen = capacity
			}
			if c.Len() != wantLen {
				t.Fatalf("cap=%d n=%d: len = %d, want %d", capacity, n, c.Len(), wantLen)
			}
		}
	}
}
