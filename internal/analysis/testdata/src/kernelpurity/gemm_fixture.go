// Fixtures for the kernelpurity analyzer, type-checked under
// "repro/internal/mat". The file name starts with "gemm" so the analyzer
// treats it as kernel code.
package a

func dotAscending(a, b []float64) float64 {
	var s float64
	for k := 0; k < len(a); k++ {
		s += a[k] * b[k] // one ascending accumulation chain: the contract
	}
	return s
}

func dotDescending(a, b []float64) float64 {
	var s float64
	for k := len(a) - 1; k >= 0; k-- { // want "descending-index accumulation reorders the additions"
		s += a[k] * b[k]
	}
	return s
}

func dotStridedDescending(a, b []float64) float64 {
	var s float64
	for k := len(a) - 1; k >= 0; k -= 2 { // want "descending-index accumulation reorders the additions"
		s += a[k] * b[k]
	}
	return s
}

func countDownNoFloat(n int) int {
	var c int
	for i := n; i > 0; i-- { // integer bookkeeping: no rounding to reorder
		c += i
	}
	return c
}

func dotSplit(a, b []float64) float64 {
	var s0, s1 float64
	for k := 0; k+1 < len(a); k += 2 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
	}
	return s0 + s1 // want "adding partial sums s0 and s1 reassociates the reduction"
}

// Distinct accumulators for distinct output elements are the microkernel
// shape and never combine.
func dot2(a, b0, b1 []float64, out []float64) {
	var s0, s1 float64
	for k := 0; k < len(a); k++ {
		s0 += a[k] * b0[k]
		s1 += a[k] * b1[k]
	}
	out[0] = s0
	out[1] = s1
}

func dotSplitAudited(a, b []float64) float64 {
	var s0, s1 float64
	for k := 0; k+1 < len(a); k += 2 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
	}
	// A deliberately reassociated reference path would carry its own
	// parity tests; the annotation records that audit.
	return s0 + s1 //plmvet:allow(kernelpurity)
}
