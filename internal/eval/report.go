package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dataset"
)

// newTestIndex builds a nearest-neighbour index over the workbench test set.
func newTestIndex(w *Workbench) *dataset.NNIndex {
	return dataset.NewNNIndex(w.Test)
}

// WriteTable1 renders Table I rows as GitHub-flavoured markdown.
func WriteTable1(w io.Writer, rows []AccuracyRow) error {
	if _, err := fmt.Fprintln(w, "| Dataset | Model | Train | Test |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---------|-------|-------|------|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %s | %.3f | %.3f |\n", r.Dataset, r.Model, r.TrainAcc, r.TestAcc); err != nil {
			return err
		}
	}
	return nil
}

// WriteCurvesCSV renders Figure 3 method curves as CSV with one row per
// flip count.
func WriteCurvesCSV(w io.Writer, curves []MethodCurves) error {
	if len(curves) == 0 {
		return fmt.Errorf("eval: no curves")
	}
	header := []string{"flips"}
	for _, c := range curves {
		header = append(header, c.Method+"_cpp", c.Method+"_nlci")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := len(curves[0].CPP)
	for k := 0; k < n; k++ {
		row := []string{fmt.Sprintf("%d", k+1)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.6f", c.CPP[k]), fmt.Sprintf("%.0f", c.NLCI[k]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteConsistencyCSV renders Figure 4 curves as CSV with one row per
// instance rank.
func WriteConsistencyCSV(w io.Writer, curves []ConsistencyCurve) error {
	if len(curves) == 0 {
		return fmt.Errorf("eval: no curves")
	}
	header := []string{"rank"}
	for _, c := range curves {
		header = append(header, c.Method)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := len(curves[0].CS)
	for k := 0; k < n; k++ {
		row := []string{fmt.Sprintf("%d", k+1)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.6f", c.CS[k]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteQuality renders the Figures 5-7 grid as markdown: RD (Fig. 5),
// WD min/mean/max (Fig. 6) and L1Dist min/mean/max (Fig. 7) per method.
func WriteQuality(w io.Writer, rows []QualityRow) error {
	if _, err := fmt.Fprintln(w, "| Method | AvgRD | WD mean | WD min | WD max | L1 mean | L1 min | L1 max | Queries | Iters | Fail |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|--------|-------|---------|--------|--------|---------|--------|--------|---------|-------|------|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %.4f | %.4g | %.4g | %.4g | %.4g | %.4g | %.4g | %.1f | %.2f | %d |\n",
			r.Method, r.AvgRD,
			r.WD.Mean, r.WD.Min, r.WD.Max,
			r.L1.Mean, r.L1.Min, r.L1.Max,
			r.AvgQueries, r.AvgIterations, r.Failures); err != nil {
			return err
		}
	}
	return nil
}
