package nn

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/mat"
)

func TestMaxoutSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := NewMaxout(rng, 3, 4, 6, 5, 3)
	path := filepath.Join(t.TempDir(), "maxout.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMaxout(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InputDim() != 4 || loaded.Classes() != 3 || loaded.NumHidden() != 2 {
		t.Fatal("loaded shapes wrong")
	}
	for trial := 0; trial < 10; trial++ {
		x := randInput(rng, 4)
		if !n.Logits(x).EqualApprox(loaded.Logits(x), 0) {
			t.Fatal("loaded network differs")
		}
		pa, pb := n.WinnerPattern(x), loaded.WinnerPattern(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("winner patterns differ")
			}
		}
	}
}

func TestMaxoutLoadMissing(t *testing.T) {
	if _, err := LoadMaxout(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMaxoutUnmarshalRejectsGarbage(t *testing.T) {
	var n MaxoutNetwork
	cases := []string{
		`junk`,
		`{"format":"wrong","hidden":[],"out":{"rows":1,"cols":1,"w":[[1]],"b":[0]}}`,
		// one piece only
		`{"format":"openapi-maxout-v1","hidden":[[{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]}]],"out":{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]}}`,
		// piece shape mismatch
		`{"format":"openapi-maxout-v1","hidden":[[{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]},{"rows":1,"cols":2,"w":[[1,0]],"b":[0]}]],"out":{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]}}`,
		// output chain mismatch
		`{"format":"openapi-maxout-v1","hidden":[[{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]},{"rows":2,"cols":2,"w":[[1,0],[0,1]],"b":[0,0]}]],"out":{"rows":2,"cols":3,"w":[[1,0,0],[0,1,0]],"b":[0,0]}}`,
	}
	for i, c := range cases {
		if err := n.UnmarshalJSON([]byte(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestMaxoutNoHiddenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := NewMaxout(rng, 2, 3, 2) // pure linear model
	path := filepath.Join(t.TempDir(), "linear.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMaxout(path)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.5, -0.5, 1}
	if !n.Logits(x).EqualApprox(loaded.Logits(x), 0) {
		t.Fatal("linear maxout round trip failed")
	}
}
