package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func randInput(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestNewMaxoutShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMaxout(rng, 3, 4, 8, 5, 2)
	if n.InputDim() != 4 || n.Classes() != 2 || n.NumHidden() != 2 {
		t.Fatalf("shapes: in=%d classes=%d hidden=%d", n.InputDim(), n.Classes(), n.NumHidden())
	}
}

func TestNewMaxoutPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fn := range []func(){
		func() { NewMaxout(rng, 3, 4) },
		func() { NewMaxout(rng, 1, 4, 2) },
		func() { NewMaxout(rng, 2, 4, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMaxoutPredictIsProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewMaxout(rng, 2, 5, 6, 3)
	p := n.Predict(randInput(rng, 5))
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Fatalf("sum = %v", p.Sum())
	}
}

func TestMaxoutNoHiddenLayers(t *testing.T) {
	// sizes = {in, out}: a pure linear softmax model is a valid (single
	// region) PLM.
	rng := rand.New(rand.NewSource(4))
	n := NewMaxout(rng, 2, 3, 2)
	if n.NumHidden() != 0 {
		t.Fatalf("hidden = %d", n.NumHidden())
	}
	x := randInput(rng, 3)
	if len(n.WinnerPattern(x)) != 0 {
		t.Fatal("no-hidden network should have empty pattern")
	}
	w, b := n.LocalAffine(x)
	if !w.MulVec(x).AddInPlace(b.Clone()).EqualApprox(n.Logits(x), 1e-12) {
		t.Fatal("affine map wrong for linear model")
	}
}

func TestMaxoutLocalAffineMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewMaxout(rng, 3, 6, 10, 7, 4)
	for trial := 0; trial < 20; trial++ {
		x := randInput(rng, 6)
		w, b := n.LocalAffine(x)
		want := n.Logits(x)
		got := w.MulVec(x).AddInPlace(b.Clone())
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("affine %v != logits %v", got, want)
		}
	}
}

func TestMaxoutInputGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := NewMaxout(rng, 2, 4, 6, 3)
	x := randInput(rng, 4)
	const h = 1e-7
	for c := 0; c < 3; c++ {
		g := n.InputGradient(x, c)
		for i := range x {
			xp, xm := x.Clone(), x.Clone()
			xp[i] += h
			xm[i] -= h
			fd := (n.Logits(xp)[c] - n.Logits(xm)[c]) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("class %d dim %d: %v vs %v", c, i, g[i], fd)
			}
		}
	}
}

func TestMaxoutTrainsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := twoBlobs(rng, 80)
	n := NewMaxout(rng, 2, 2, 8, 2)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 25, LearningRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestMaxoutTrainsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := xorData(rng, 60)
	n := NewMaxout(rng, 3, 2, 12, 2)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 150, LearningRate: 0.03, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("XOR accuracy = %v", acc)
	}
}

func TestMaxoutTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewMaxout(rng, 2, 2, 4, 2)
	if _, err := n.Train(rng, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := n.Train(rng, []mat.Vec{{1, 2}}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := n.Train(rng, []mat.Vec{{1, 2}}, []int{7}, TrainConfig{}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestMaxoutForwardPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewMaxout(rng, 2, 3, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Predict(mat.Vec{1})
}

// Property: MaxOut networks are exactly locally linear — same winner
// pattern implies affine interpolation of logits.
func TestPropertyMaxoutLocalLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewMaxout(rng, 3, 4, 7, 3)
	samePattern := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randInput(r, 4)
		y := x.Clone()
		for i := range y {
			y[i] += 1e-9 * r.NormFloat64()
		}
		if !samePattern(n.WinnerPattern(x), n.WinnerPattern(y)) {
			return true // vacuous
		}
		mid := x.Add(y).ScaleInPlace(0.5)
		want := n.Logits(x).Add(n.Logits(y)).ScaleInPlace(0.5)
		return n.Logits(mid).EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
