package openbox

import (
	"sync"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/plm"
)

// RegionStore is the one contract every region-model store implements: the
// in-RAM LRU (NewStore), the disk-backed atlas (internal/atlas), and the
// tiered composition of the two. Keys are PatternKey fingerprints; values
// are shared read-only closed forms.
//
// Lookup returns the stored classifier for key when present. Insert stores
// lin under key and returns the value actually retained — on a duplicate
// insert the incumbent wins, so racing fillers all converge on one shared
// *plm.Linear. Stats reports the unified accounting shape; Len the number
// of live entries. Implementations must be safe for concurrent use.
type RegionStore interface {
	Lookup(key string) (*plm.Linear, bool)
	Insert(key string, lin *plm.Linear) *plm.Linear
	Stats() plm.StoreStats
	Len() int
}

// StoreOptions configures a region store stack. Capacity bounds the in-RAM
// LRU tier (<= 0 means unbounded). Backing, when non-nil, is a second
// durable tier behind the LRU — typically the disk atlas — consulted on RAM
// misses and written through on inserts.
type StoreOptions struct {
	Capacity int
	Backing  RegionStore
}

// NewStore builds a store from options: a plain LRU tier, or, with Backing
// set, an LRU front layered over the durable tier (read-through on lookup,
// write-through on insert).
func NewStore(opts StoreOptions) RegionStore {
	front := &memStore{c: lru.New[*plm.Linear](opts.Capacity)}
	if opts.Backing == nil {
		return front
	}
	return &tieredStore{front: front, back: opts.Backing}
}

// StoreReporter is the stats hook a serving layer probes for with a type
// assertion: any region model whose LocalAt path runs through a RegionStore
// can report the store's counters and how many closed forms it actually
// composed (as opposed to looked up).
type StoreReporter interface {
	RegionStoreStats() plm.StoreStats
	RegionCompositions() int64
}

// memStore is the in-RAM LRU tier: a string-keyed LRU of shared closed
// forms with byte accounting. Safe for concurrent use.
type memStore struct {
	mu    sync.Mutex
	c     *lru.Cache[*plm.Linear]
	bytes int64

	hits, misses, evictions atomic.Int64
}

func (s *memStore) Lookup(key string) (*plm.Linear, bool) {
	s.mu.Lock()
	lin, ok := s.c.Get(key)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return lin, true
	}
	s.misses.Add(1)
	return nil, false
}

func (s *memStore) Insert(key string, lin *plm.Linear) *plm.Linear {
	kept, evicted := s.insertLocked(key, lin)
	if evicted {
		s.evictions.Add(1)
	}
	return kept
}

func (s *memStore) insertLocked(key string, lin *plm.Linear) (*plm.Linear, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept, inserted, evicted, displaced := s.c.AddWithEvicted(key, lin)
	if inserted {
		s.bytes += plm.LinearBytes(lin)
	}
	if evicted {
		s.bytes -= plm.LinearBytes(displaced)
	}
	return kept, evicted
}

func (s *memStore) Stats() plm.StoreStats {
	s.mu.Lock()
	size, bytes := s.c.Len(), s.bytes
	s.mu.Unlock()
	return plm.StoreStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Size:      size,
		Bytes:     bytes,
	}
}

func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Len()
}

// tieredStore layers a RAM LRU in front of a durable tier. Lookups fall
// through front → back, promoting back-tier hits into the front; inserts
// write the durable tier first (its incumbent wins) and then populate the
// front with whatever the back retained.
type tieredStore struct {
	front *memStore
	back  RegionStore
}

func (t *tieredStore) Lookup(key string) (*plm.Linear, bool) {
	if lin, ok := t.front.Lookup(key); ok {
		return lin, true
	}
	lin, ok := t.back.Lookup(key)
	if !ok {
		return nil, false
	}
	return t.front.Insert(key, lin), true
}

func (t *tieredStore) Insert(key string, lin *plm.Linear) *plm.Linear {
	kept := t.back.Insert(key, lin)
	return t.front.Insert(key, kept)
}

// Stats reports the combined tiers: hits from either tier are hits, but
// only back-tier misses are true cold misses (a front miss answered by the
// back cost no composition). Size is the durable tier's — the front holds a
// subset — while Bytes sums both footprints.
func (t *tieredStore) Stats() plm.StoreStats {
	f, b := t.front.Stats(), t.back.Stats()
	return plm.StoreStats{
		Hits:      f.Hits + b.Hits,
		Misses:    b.Misses,
		Evictions: f.Evictions + b.Evictions,
		Size:      b.Size,
		Bytes:     f.Bytes + b.Bytes,
	}
}

func (t *tieredStore) Len() int { return t.back.Len() }
