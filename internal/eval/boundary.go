package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/interpret/naive"
	"repro/internal/mat"
	"repro/internal/plm"
)

// BoundaryPoint is one measurement of the paper's Figure 1 argument: an
// instance at a controlled distance from a region boundary, interpreted by
// the fixed-distance naive method and by OpenAPI.
type BoundaryPoint struct {
	// Distance is the Euclidean distance from the instance to the probed
	// boundary (upper bound from bisection).
	Distance float64
	// NaiveL1 is the naive method's error at the fixed h.
	NaiveL1 float64
	// OpenAPIL1 is OpenAPI's error on the same instance.
	OpenAPIL1 float64
	// OpenAPIIters is how many halvings OpenAPI needed.
	OpenAPIIters int
	// OpenAPIFailed records an ErrNoConvergence (expected only at
	// numerically-zero distances).
	OpenAPIFailed bool
}

// BoundaryProfile walks instances toward region boundaries and measures how
// interpretation quality degrades. For each seed instance it finds a
// neighbour in a different region, then bisects: after k halvings the
// midpoint sits at distance ~2^-k of the original gap from the boundary.
// At each depth the naive method (fixed h) and OpenAPI are both scored
// against ground truth. The paper's claim: the naive method falls over as
// soon as its h exceeds the boundary distance, while OpenAPI just spends
// more iterations.
func BoundaryProfile(model plm.RegionModel, xs []mat.Vec, h float64, depths []int, seed int64) ([]BoundaryPoint, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("eval: boundary profile needs instances")
	}
	if len(depths) == 0 {
		depths = []int{0, 4, 8, 12}
	}
	rng := rand.New(rand.NewSource(seed))
	var out []BoundaryPoint
	for _, x := range xs {
		// Find a partner in another region.
		partner, ok := findOtherRegion(model, x, rng)
		if !ok {
			continue // model may be single-region around x; skip
		}
		a, b := x.Clone(), partner
		maxDepth := depths[len(depths)-1]
		next := 0
		for k := 0; k <= maxDepth; k++ {
			if next < len(depths) && k == depths[next] {
				next++
				dist := a.L2Dist(b)
				pt := BoundaryPoint{Distance: dist}
				c := model.Predict(a).ArgMax()
				n := naive.New(naive.Config{H: h, Seed: seed + int64(k)})
				if interp, err := n.Interpret(model, a, c); err == nil {
					if l1, err := L1Dist(model, a, interp); err == nil {
						pt.NaiveL1 = l1
					}
				}
				o := core.New(core.Config{Seed: seed + int64(100+k)})
				if interp, err := o.Interpret(model, a, c); err != nil {
					pt.OpenAPIFailed = true
				} else {
					if l1, err := L1Dist(model, a, interp); err == nil {
						pt.OpenAPIL1 = l1
					}
					pt.OpenAPIIters = interp.Iterations
				}
				out = append(out, pt)
			}
			// One bisection step toward the boundary, staying on a's side.
			mid := a.Add(b).ScaleInPlace(0.5)
			if model.RegionKey(mid) == model.RegionKey(a) {
				a = mid
			} else {
				b = mid
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: no boundaries found near any instance")
	}
	return out, nil
}

// findOtherRegion looks for a point in a different region than x by
// expanding random rays.
func findOtherRegion(model plm.RegionModel, x mat.Vec, rng *rand.Rand) (mat.Vec, bool) {
	key := model.RegionKey(x)
	for scale := 0.5; scale <= 64; scale *= 2 {
		for try := 0; try < 8; try++ {
			p := x.Clone()
			for i := range p {
				p[i] += scale * rng.NormFloat64()
			}
			if model.RegionKey(p) != key {
				return p, true
			}
		}
	}
	return nil, false
}
