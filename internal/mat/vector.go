// Package mat provides the dense linear-algebra substrate used by the
// OpenAPI reproduction: vectors, row-major matrices, LU factorization with
// partial pivoting, Householder QR least squares, and the consistency tests
// the interpreter needs to decide whether an overdetermined system has an
// exact solution.
//
// The package is deliberately self-contained (stdlib only) and tuned for the
// sizes the paper works at: square systems of order d+1 where d is the input
// dimensionality (784 for the image workloads).
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// ErrSingular is returned when a factorization meets an (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// Vec is a dense vector. It is a named slice type so that methods read
// naturally at call sites (v.Dot(w), v.Norm2(), ...). A Vec of length zero is
// valid and behaves as the empty vector.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec {
	return make(Vec, n)
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x and returns v.
func (v Vec) Fill(x float64) Vec {
	for i := range v {
		v[i] = x
	}
	return v
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x - w[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v.
func (v Vec) AddInPlace(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddInPlace length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// SubInPlace sets v = v - w and returns v.
func (v Vec) SubInPlace(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: SubInPlace length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns a*v as a new vector.
func (v Vec) Scale(a float64) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = a * x
	}
	return out
}

// ScaleInPlace sets v = a*v and returns v.
func (v Vec) ScaleInPlace(a float64) Vec {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Axpy sets v = v + a*w and returns v.
func (v Vec) Axpy(a float64, w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Norm1 returns the L1 norm of v.
func (v Vec) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow by
// scaling with the largest magnitude entry.
func (v Vec) Norm2() float64 {
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of v.
func (v Vec) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the largest entry (first on ties), or -1 for
// an empty vector.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest entry (first on ties), or -1 for
// an empty vector.
func (v Vec) ArgMin() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest entry of v. It panics on an empty vector.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	return v[v.ArgMax()]
}

// Min returns the smallest entry of v. It panics on an empty vector.
func (v Vec) Min() float64 {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	return v[v.ArgMin()]
}

// L1Dist returns the L1 distance between v and w.
func (v Vec) L1Dist(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: L1Dist length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += math.Abs(x - w[i])
	}
	return s
}

// L2Dist returns the Euclidean distance between v and w.
func (v Vec) L2Dist(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: L2Dist length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		dx := x - w[i]
		s += dx * dx
	}
	return math.Sqrt(s)
}

// LInfDist returns the Chebyshev distance between v and w.
func (v Vec) LInfDist(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: LInfDist length mismatch %d vs %d", len(v), len(w)))
	}
	var m float64
	for i, x := range v {
		if d := math.Abs(x - w[i]); d > m {
			m = d
		}
	}
	return m
}

// Cosine returns the cosine similarity between v and w. If either vector has
// zero norm the similarity is defined as 0, except when both are zero, in
// which case it is 1 (identical interpretations).
func (v Vec) Cosine(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Cosine length mismatch %d vs %d", len(v), len(w)))
	}
	nv, nw := v.Norm2(), w.Norm2()
	if nv == 0 && nw == 0 {
		return 1
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// HasNaN reports whether any entry of v is NaN or infinite.
func (v Vec) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// EqualApprox reports whether v and w agree entrywise within tol
// (absolute-plus-relative: |v_i-w_i| <= tol*(1+|v_i|+|w_i|)).
func (v Vec) EqualApprox(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > tol*(1+math.Abs(x)+math.Abs(w[i])) {
			return false
		}
	}
	return true
}
