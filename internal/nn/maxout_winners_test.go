package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestAffineFromWinnersMatchesLocalAffine(t *testing.T) {
	// The pattern-driven fold must be bit-identical to the forward-driven
	// one: it is the same arithmetic, only the winner indices arrive as
	// data instead of being recomputed.
	rng := rand.New(rand.NewSource(60))
	n := NewMaxout(rng, 3, 7, 12, 6, 4)
	for i := 0; i < 10; i++ {
		x := make(mat.Vec, 7)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		wantW, wantB := n.LocalAffine(x)
		gotW, gotB, err := n.AffineFromWinners(n.WinnerPattern(x))
		if err != nil {
			t.Fatal(err)
		}
		if !gotB.EqualApprox(wantB, 0) {
			t.Fatalf("bias differs: %v vs %v", gotB, wantB)
		}
		for r := 0; r < gotW.Rows(); r++ {
			if !gotW.RawRow(r).EqualApprox(wantW.RawRow(r), 0) {
				t.Fatalf("row %d differs", r)
			}
		}
	}
}

func TestAffineFromWinnersRejectsBadPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := NewMaxout(rng, 2, 4, 6, 3)
	if n.HiddenUnits() != 6 {
		t.Fatalf("HiddenUnits = %d, want 6", n.HiddenUnits())
	}
	if _, _, err := n.AffineFromWinners(make([]int, 5)); err == nil {
		t.Fatal("short pattern accepted")
	}
	bad := make([]int, 6)
	bad[3] = 7 // only 2 pieces exist
	if _, _, err := n.AffineFromWinners(bad); err == nil {
		t.Fatal("out-of-range winner accepted")
	}
}
