package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// The batched GEMM training path must produce bit-identical weights to the
// per-sample reference loop: same seed, same batch order, same optimizer
// state, every gradient accumulated in the same ascending order. These
// tests pin that contract across both network families and both
// optimizers, including remainder batches and weight decay.

// trainParityConfigs is the optimizer/config battery shared by the parity
// tests. BatchSize 16 over 56 samples forces a remainder batch of 8.
func trainParityConfigs() map[string]TrainConfig {
	return map[string]TrainConfig{
		"sgd":          {Epochs: 4, BatchSize: 16, LearningRate: 0.1},
		"sgd-decay":    {Epochs: 4, BatchSize: 16, LearningRate: 0.1, WeightDecay: 0.01},
		"sgd-momentum": {Epochs: 4, BatchSize: 16, LearningRate: 0.05, Momentum: 0.5},
		"adam":         {Epochs: 4, BatchSize: 16, Optimizer: Adam},
		"adam-decay":   {Epochs: 4, BatchSize: 16, Optimizer: Adam, WeightDecay: 0.01},
	}
}

// parityData builds a small multi-region dataset with a remainder batch.
func parityData(seed int64) ([]mat.Vec, []int) {
	rng := rand.New(rand.NewSource(seed))
	xs, ys := xorData(rng, 14) // 56 samples
	return xs, ys
}

func bitEqualVec(t *testing.T, label string, got, want mat.Vec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %g, want %g (bit-exact)", label, i, got[i], want[i])
		}
	}
}

func bitEqualDense(t *testing.T, label string, got, want *mat.Dense) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for r := 0; r < got.Rows(); r++ {
		bitEqualVec(t, label, got.RawRow(r), want.RawRow(r))
	}
}

func TestTrainBatchedMatchesPerSampleNetwork(t *testing.T) {
	xs, ys := parityData(200)
	for _, leak := range []float64{0, 0.1} {
		for name, cfg := range trainParityConfigs() {
			build := func() (*Network, *rand.Rand) {
				rng := rand.New(rand.NewSource(201))
				return New(rng, 2, 9, 7, 2).SetLeak(leak), rng
			}
			ref, refRNG := build()
			bat, batRNG := build()

			refCfg := cfg
			refCfg.PerSample = true
			refLoss, err := ref.Train(refRNG, xs, ys, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			batLoss, err := bat.Train(batRNG, xs, ys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if refLoss != batLoss {
				t.Fatalf("leak=%v %s: loss %g (per-sample) != %g (batched)", leak, name, refLoss, batLoss)
			}
			for i := 0; i < ref.NumLayers(); i++ {
				rl, bl := ref.LayerShared(i), bat.LayerShared(i)
				bitEqualDense(t, name+" W", bl.W, rl.W)
				bitEqualVec(t, name+" B", bl.B, rl.B)
			}
		}
	}
}

func TestTrainBatchedMatchesPerSampleMaxout(t *testing.T) {
	xs, ys := parityData(210)
	for name, cfg := range trainParityConfigs() {
		build := func() (*MaxoutNetwork, *rand.Rand) {
			rng := rand.New(rand.NewSource(211))
			return NewMaxout(rng, 3, 2, 8, 6, 2), rng
		}
		ref, refRNG := build()
		bat, batRNG := build()

		refCfg := cfg
		refCfg.PerSample = true
		refLoss, err := ref.Train(refRNG, xs, ys, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		batLoss, err := bat.Train(batRNG, xs, ys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if refLoss != batLoss {
			t.Fatalf("%s: loss %g (per-sample) != %g (batched)", name, refLoss, batLoss)
		}
		for li := range ref.hidden {
			for p := range ref.hidden[li].Pieces {
				rp, bp := ref.hidden[li].Pieces[p], bat.hidden[li].Pieces[p]
				bitEqualDense(t, name+" piece W", bp.W, rp.W)
				bitEqualVec(t, name+" piece B", bp.B, rp.B)
			}
		}
		bitEqualDense(t, name+" out W", bat.out.W, ref.out.W)
		bitEqualVec(t, name+" out B", bat.out.B, ref.out.B)
	}
}

// TestTrainBatchedSingleLayerNetwork covers the no-hidden-layer edge: the
// backward pass has no delta propagation and acts are the raw inputs.
func TestTrainBatchedSingleLayerNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	xs, ys := twoBlobs(rng, 15) // 30 samples, batch 32 -> one undersized batch
	build := func() (*Network, *rand.Rand) {
		r := rand.New(rand.NewSource(221))
		return New(r, 2, 2), r
	}
	ref, refRNG := build()
	bat, batRNG := build()
	if _, err := ref.Train(refRNG, xs, ys, TrainConfig{Epochs: 3, PerSample: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := bat.Train(batRNG, xs, ys, TrainConfig{Epochs: 3}); err != nil {
		t.Fatal(err)
	}
	bitEqualDense(t, "W", bat.LayerShared(0).W, ref.LayerShared(0).W)
	bitEqualVec(t, "B", bat.LayerShared(0).B, ref.LayerShared(0).B)
}

// TestTrainMaxoutGradientMatchesFiniteDifference validates the rewritten
// MaxOut gradient accumulation against central finite differences — the
// reference the parity battery anchors to must itself be a correct
// gradient.
func TestTrainMaxoutGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	n := NewMaxout(rng, 3, 3, 5, 4, 2)
	x := randInput(rng, 3)
	label := 1
	g := newMaxoutGradients(n)
	n.accumulate(g, x, label)

	const h = 1e-6
	check := func(label0 string, got float64, bump func(delta float64)) {
		t.Helper()
		bump(h)
		up := CrossEntropy(n.Predict(x), label)
		bump(-2 * h)
		down := CrossEntropy(n.Predict(x), label)
		bump(h)
		fd := (up - down) / (2 * h)
		if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("%s: analytic %v vs fd %v", label0, got, fd)
		}
	}
	for li := range n.hidden {
		for p := range n.hidden[li].Pieces {
			piece := n.hidden[li].Pieces[p]
			w := piece.W
			for _, rc := range [][2]int{{0, 0}, {w.Rows() - 1, w.Cols() - 1}} {
				r, c := rc[0], rc[1]
				check("hidden W", g.hidden[li][p].dW.At(r, c),
					func(d float64) { w.Set(r, c, w.At(r, c)+d) })
			}
			check("hidden B", g.hidden[li][p].dB[0],
				func(d float64) { piece.B[0] += d })
		}
	}
	check("out W", g.out.dW.At(1, 2), func(d float64) { n.out.W.Set(1, 2, n.out.W.At(1, 2)+d) })
	check("out B", g.out.dB[0], func(d float64) { n.out.B[0] += d })
}

// TestTrainBatchedAllocsConstantPerEpoch pins the pooled-scratch contract:
// once the scratch is warm, extra epochs (and their mini-batches) reuse the
// same gradient accumulators and forward/backward matrices, so the only
// per-epoch allocations left are the shuffle permutation and the view
// rebuild around the remainder batch.
func TestTrainBatchedAllocsConstantPerEpoch(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without it")
	}
	rng := rand.New(rand.NewSource(240))
	xs, ys := xorData(rng, 60) // 240 samples; batch 32 -> 7 full + remainder 16
	base := New(rng, 2, 32, 16, 2)
	train := func(epochs int) func() {
		return func() {
			net := base.Clone()
			r := rand.New(rand.NewSource(241))
			if _, err := net.Train(r, xs, ys, TrainConfig{Epochs: epochs, BatchSize: 32}); err != nil {
				t.Fatal(err)
			}
		}
	}
	a1 := testing.AllocsPerRun(3, train(1))
	a5 := testing.AllocsPerRun(3, train(5))
	perEpoch := (a5 - a1) / 4
	if perEpoch > 64 {
		t.Fatalf("batched training allocates %.1f allocs per extra epoch (want <= 64): scratch is not being reused", perEpoch)
	}
}
