package openbox

import (
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

func storeLinear(t testing.TB, key string, fill float64) *plm.Linear {
	t.Helper()
	w := mat.NewDenseFrom(2, 3, []float64{fill, 1, 2, 3, 4, 5})
	lin, err := plm.NewLinear(w, mat.Vec{fill, -fill}, key)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	return lin
}

func TestMemStoreCountersAndBytes(t *testing.T) {
	s := NewStore(StoreOptions{Capacity: 2})
	a := storeLinear(t, "a", 1)
	perEntry := plm.LinearBytes(a) // 2*3 + 2 floats = 64 bytes

	if _, ok := s.Lookup("a"); ok {
		t.Fatalf("lookup hit on empty store")
	}
	s.Insert("a", a)
	s.Insert("b", storeLinear(t, "b", 2))
	if got, ok := s.Lookup("a"); !ok || got != a {
		t.Fatalf("lookup did not return the shared pointer")
	}
	// Duplicate insert keeps the incumbent.
	dup := storeLinear(t, "a", 9)
	if kept := s.Insert("a", dup); kept != a {
		t.Fatalf("duplicate insert replaced incumbent")
	}
	// Third key evicts the LRU entry ("b": "a" was just touched).
	s.Insert("c", storeLinear(t, "c", 3))
	if _, ok := s.Lookup("b"); ok {
		t.Fatalf("expected b evicted")
	}
	st := s.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != 2*perEntry {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 2*perEntry)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// countingStore is a test double for the durable tier.
type countingStore struct {
	mu      sync.Mutex
	m       map[string]*plm.Linear
	lookups int
	inserts int
}

func (c *countingStore) Lookup(key string) (*plm.Linear, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	lin, ok := c.m[key]
	return lin, ok
}

func (c *countingStore) Insert(key string, lin *plm.Linear) *plm.Linear {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inserts++
	if inc, ok := c.m[key]; ok {
		return inc
	}
	c.m[key] = lin
	return lin
}

func (c *countingStore) Stats() plm.StoreStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return plm.StoreStats{Size: len(c.m)}
}

func (c *countingStore) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func TestTieredStorePromotesAndWritesThrough(t *testing.T) {
	back := &countingStore{m: make(map[string]*plm.Linear)}
	s := NewStore(StoreOptions{Capacity: 1, Backing: back})

	a := storeLinear(t, "a", 1)
	s.Insert("a", a)
	if back.Len() != 1 {
		t.Fatalf("insert did not write through")
	}
	// Front hit: the durable tier must not be consulted again.
	back.mu.Lock()
	lookupsBefore := back.lookups
	back.mu.Unlock()
	if got, ok := s.Lookup("a"); !ok || got != a {
		t.Fatalf("front lookup failed")
	}
	back.mu.Lock()
	if back.lookups != lookupsBefore {
		t.Fatalf("front hit consulted the durable tier")
	}
	back.mu.Unlock()

	// Evict "a" from the tiny front; it must still be served via the back
	// and re-promoted.
	s.Insert("b", storeLinear(t, "b", 2))
	if _, ok := s.Lookup("a"); !ok {
		t.Fatalf("back tier did not serve evicted key")
	}
	if _, ok := s.Lookup("a"); !ok {
		t.Fatalf("promotion lost the key")
	}

	// Cold miss counts once, from the durable tier's perspective.
	if _, ok := s.Lookup("nope"); ok {
		t.Fatalf("phantom hit")
	}
	st := s.Stats()
	if st.Size != back.Len() {
		t.Fatalf("tiered Size %d != back size %d", st.Size, back.Len())
	}
	if s.Len() != back.Len() {
		t.Fatalf("tiered Len %d != back len %d", s.Len(), back.Len())
	}
}

func TestDeprecatedShimsStillCompile(t *testing.T) {
	net := smallNet(t)
	rc := NewRegionCache(net, 4)
	p := NewCachedPLNN(net, 4)
	m := CacheRegionModel(&PLNN{Net: net}, 4)
	if rc == nil || p == nil || m == nil {
		t.Fatalf("shim returned nil")
	}
	x := make(mat.Vec, net.InputDim())
	for i := range x {
		x[i] = float64(i) - 1.5
	}
	a, err := rc.LocalAt(x)
	if err != nil {
		t.Fatalf("LocalAt: %v", err)
	}
	b, err := p.LocalAt(x)
	if err != nil {
		t.Fatalf("PLNN LocalAt: %v", err)
	}
	if a.Key != b.Key {
		t.Fatalf("shim paths disagree on region key")
	}
	var rep StoreReporter = p
	if rep.RegionCompositions() != 1 {
		t.Fatalf("compositions = %d, want 1", rep.RegionCompositions())
	}
	if st := rep.RegionStoreStats(); st.Size != 1 {
		t.Fatalf("store stats = %+v", st)
	}
}

func TestConcurrentTieredRegionCache(t *testing.T) {
	net := smallNet(t)
	back := &countingStore{m: make(map[string]*plm.Linear)}
	rc := NewRegionCacheOpts(net, StoreOptions{Capacity: 2, Backing: back})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				x := make(mat.Vec, net.InputDim())
				for j := range x {
					x[j] = float64((seed+i*j)%7) - 3
				}
				if _, err := rc.LocalAt(x); err != nil {
					t.Errorf("LocalAt: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if rc.Len() == 0 {
		t.Fatalf("nothing stored")
	}
}

func smallNet(t testing.TB) *nn.Network {
	t.Helper()
	return randNet(5, 4, 6, 3)
}
