package lime

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestLinearLIMENearExactInsideRegion(t *testing.T) {
	// When every perturbed instance shares x0's region, the log-odds target
	// is exactly linear, so OLS recovers the core parameters up to
	// conditioning error.
	model := plnnModel(1, 4, 8, 3)
	rng := rand.New(rand.NewSource(2))
	l := New(Config{H: 1e-5, Seed: 3})
	for trial := 0; trial < 5; trial++ {
		x := randVec(rng, 4)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		c := model.Predict(x).ArgMax()
		got, err := l.Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-2 {
			t.Fatalf("inside-region L1Dist = %v", dist)
		}
	}
}

func TestRidgeLIMECrushesCoefficientsAtTinyH(t *testing.T) {
	// The paper's §V-D observation: with a tiny perturbation distance the
	// design matrix variation is microscopic, so any nonzero ridge penalty
	// drives the surrogate toward a constant — coefficients near zero,
	// far from the truth.
	model := plnnModel(4, 4, 8, 3)
	rng := rand.New(rand.NewSource(5))
	x := randVec(rng, 4)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	c := model.Predict(x).ArgMax()
	want := truth.DecisionFeatures(c)
	if want.Norm2() < 1e-6 {
		t.Skip("degenerate region with zero decision features")
	}
	ridge := New(Config{H: 1e-8, Ridge: 1.0, Seed: 6})
	got, err := ridge.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features.Norm2() > 0.01*want.Norm2() {
		t.Fatalf("ridge at tiny h should crush coefficients: |got|=%v |want|=%v",
			got.Features.Norm2(), want.Norm2())
	}
}

func TestRidgeBeatsNothingButRunsAtModerateH(t *testing.T) {
	model := plnnModel(7, 3, 6, 2)
	rng := rand.New(rand.NewSource(8))
	x := randVec(rng, 3)
	l := New(Config{H: 1e-2, Ridge: 1e-6, Seed: 9})
	got, err := l.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 3 {
		t.Fatalf("features length %d", len(got.Features))
	}
}

func TestProbabilityModeShape(t *testing.T) {
	model := plnnModel(10, 4, 6, 3)
	rng := rand.New(rand.NewSource(11))
	x := randVec(rng, 4)
	l := New(Config{H: 1e-3, Mode: FitProbability, Seed: 12})
	got, err := l.Interpret(model, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 4 {
		t.Fatalf("features length %d", len(got.Features))
	}
	if got.PairDiffs != nil {
		t.Fatal("probability mode should not produce pair diffs")
	}
	// Probability-mode coefficients approximate the gradient of y_c, which
	// inside a region is p_c(x)·(D_c-ish); just verify a strong positive
	// cosine with the finite-difference gradient.
	const h = 1e-6
	fd := make(mat.Vec, 4)
	for i := range x {
		xp, xm := x.Clone(), x.Clone()
		xp[i] += h
		xm[i] -= h
		fd[i] = (model.Predict(xp)[1] - model.Predict(xm)[1]) / (2 * h)
	}
	if cs := got.Features.Cosine(fd); cs < 0.99 {
		t.Fatalf("probability-mode cosine vs gradient = %v", cs)
	}
}

func TestLIMEValidation(t *testing.T) {
	model := plnnModel(13, 3, 4, 2)
	l := New(Config{Seed: 14})
	if _, err := l.Interpret(model, mat.Vec{1}, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := l.Interpret(model, mat.Vec{1, 2, 3}, 5); err == nil {
		t.Fatal("bad class accepted")
	}
	tooFew := New(Config{NumSamples: 2, Seed: 15})
	if _, err := tooFew.Interpret(model, mat.Vec{1, 2, 3}, 0); err == nil {
		t.Fatal("underdetermined sample count accepted")
	}
}

func TestLIMENames(t *testing.T) {
	if got := New(Config{H: 1e-4}).Name(); got != "LIME-Linear(h=1e-04)" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(Config{H: 1e-2, Ridge: 1}).Name(); got != "LIME-Ridge(h=1e-02)" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(Config{Mode: FitProbability}).Name(); !strings.Contains(got, "Prob") {
		t.Fatalf("Name = %q", got)
	}
}

func TestLIMEQueryCount(t *testing.T) {
	model := plnnModel(16, 4, 5, 2)
	l := New(Config{H: 1e-4, NumSamples: 30, Seed: 17})
	rng := rand.New(rand.NewSource(18))
	got, err := l.Interpret(model, randVec(rng, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != 30 {
		t.Fatalf("queries = %d, want 30", got.Queries)
	}
}

func TestLIMESamplePoints(t *testing.T) {
	l := New(Config{H: 0.2, NumSamples: 12, Seed: 19})
	pts := l.SamplePoints(mat.Vec{0, 0})
	if len(pts) != 12 {
		t.Fatalf("SamplePoints returned %d", len(pts))
	}
	for _, p := range pts {
		if p.NormInf() > 0.1+1e-12 {
			t.Fatalf("point %v escaped hypercube", p)
		}
	}
}
