package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// localDialer is a RegistryConfig.Dial for tests: "dials" an in-process
// backend by name instead of a real worker, so registry logic is exercised
// without sockets or real clocks.
func localDialer(seed int64) func(addr string) (Backend, error) {
	return func(addr string) (Backend, error) {
		return NewLocalBackend(testModel(seed), addr), nil
	}
}

func TestRegistryJoinLeaveExpire(t *testing.T) {
	// The registry lifecycle against a fake clock: join grows the shard,
	// leave shrinks it, and a member that misses its heartbeat deadline is
	// expired by Sweep — with every transition counted for /stats.
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(0, clock.Load()) }

	s := NewDynamicShard(ShardConfig{})
	s.now = now
	reg := NewRegistry(s, RegistryConfig{TTL: 5 * time.Second, Dial: localDialer(500)})
	reg.now = now

	if err := reg.Register("worker-a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("worker-b"); err != nil {
		t.Fatal(err)
	}
	if got := s.Replicas(); got != 2 {
		t.Fatalf("shard has %d backends after two joins, want 2", got)
	}
	single := testModel(500)
	xs := shardProbes(32)
	got, err := s.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}

	// worker-a keeps beating; worker-b goes silent past the TTL.
	clock.Store(int64(4 * time.Second))
	if err := reg.Heartbeat("worker-a"); err != nil {
		t.Fatal(err)
	}
	if expired := reg.Sweep(); len(expired) != 0 {
		t.Fatalf("sweep expired %v before any deadline passed", expired)
	}
	clock.Store(int64(6 * time.Second))
	expired := reg.Sweep()
	if len(expired) != 1 || expired[0] != "worker-b" {
		t.Fatalf("sweep expired %v, want [worker-b]", expired)
	}
	if got := s.Replicas(); got != 1 {
		t.Fatalf("shard has %d backends after expiry, want 1", got)
	}

	// The survivor still answers bit-identically.
	got, err = s.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("post-expiry item %d: %v != %v", i, got[i], want)
		}
	}

	// Voluntary leave empties the fleet; an unknown heartbeat errors so the
	// HTTP layer can 404 it into a re-register.
	if !reg.Leave("worker-a") {
		t.Fatal("leave of a live member reported not-registered")
	}
	if reg.Leave("worker-a") {
		t.Fatal("second leave reported registered")
	}
	if err := reg.Heartbeat("worker-b"); err == nil {
		t.Fatal("heartbeat from an expired member accepted")
	}
	st := reg.Status()
	if st.Joins != 2 || st.Leaves != 1 || st.Expiries != 1 || len(st.Members) != 0 {
		t.Fatalf("status = %+v, want joins=2 leaves=1 expiries=1 members=0", st)
	}
}

func TestRegistryReRegisterReplacesMember(t *testing.T) {
	// A restarted worker re-registering under its old address must replace
	// the stale backend, not duplicate it.
	s := NewDynamicShard(ShardConfig{})
	reg := NewRegistry(s, RegistryConfig{Dial: localDialer(501)})
	for i := 0; i < 3; i++ {
		if err := reg.Register("worker-a"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Replicas(); got != 1 {
		t.Fatalf("shard has %d backends after re-registrations, want 1", got)
	}
	if st := reg.Status(); st.Joins != 3 || len(st.Members) != 1 {
		t.Fatalf("status = %+v, want joins=3 members=1", st)
	}
}

func TestRegistryRejectsShapeMismatch(t *testing.T) {
	s := NewDynamicShard(ShardConfig{})
	reg := NewRegistry(s, RegistryConfig{Dial: func(addr string) (Backend, error) {
		if addr == "odd-one" {
			return NewLocalBackend(benchShardModel(502), addr), nil
		}
		return NewLocalBackend(testModel(502), addr), nil
	}})
	if err := reg.Register("worker-a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("odd-one"); err == nil {
		t.Fatal("shape-mismatched worker accepted")
	}
	if st := reg.Status(); st.Joins != 1 || len(st.Members) != 1 {
		t.Fatalf("status = %+v after rejected join, want joins=1 members=1", st)
	}
}

func postControl(t *testing.T, url, path, addr string) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]string{"addr": addr})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRegistryOverHTTPWithStats(t *testing.T) {
	// The wire protocol end to end: a worker plmserve instance joins a
	// fleet router over real HTTP, traffic routes through it, /stats grows
	// the registry section, and /leave drains it back out.
	workerModel := testModel(503)
	worker := httptest.NewServer(NewServer(workerModel, "worker"))
	defer worker.Close()

	s := NewDynamicShard(ShardConfig{})
	reg := NewRegistry(s, RegistryConfig{TTL: time.Minute})
	srv := NewServer(s, "router")
	reg.Mount(srv)
	router := httptest.NewServer(srv)
	defer router.Close()

	// Heartbeat before registering: 404 tells the worker to register.
	resp := postControl(t, router.URL, "/heartbeat", worker.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered heartbeat answered %s, want 404", resp.Status)
	}

	resp = postControl(t, router.URL, "/register", worker.URL)
	var lease struct {
		TTLMillis      int64 `json:"ttl_ms"`
		IntervalMillis int64 `json:"interval_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register answered %s", resp.Status)
	}
	if lease.TTLMillis != 60_000 || lease.IntervalMillis != 20_000 {
		t.Fatalf("lease = %+v, want ttl 60000ms interval 20000ms", lease)
	}

	// The router now routes to the worker — bit-identically.
	c, err := Dial(router.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := shardProbes(8)
	got, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := workerModel.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}

	resp = postControl(t, router.URL, "/heartbeat", worker.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registered heartbeat answered %s", resp.Status)
	}

	statsResp, err := http.Get(router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Registry *RegistryStatus `json:"registry"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Registry == nil {
		t.Fatal("/stats has no registry section on a fleet router")
	}
	if stats.Registry.Joins != 1 || len(stats.Registry.Members) != 1 ||
		stats.Registry.Members[0].Addr != worker.URL {
		t.Fatalf("registry section = %+v, want 1 join, 1 member at %s", stats.Registry, worker.URL)
	}

	resp = postControl(t, router.URL, "/leave", worker.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave answered %s", resp.Status)
	}
	if s.Replicas() != 0 {
		t.Fatalf("shard still has %d backends after leave", s.Replicas())
	}
}

func TestRegistryRegisterUnreachableWorkerAnswers502(t *testing.T) {
	s := NewDynamicShard(ShardConfig{})
	reg := NewRegistry(s, RegistryConfig{})
	srv := NewServer(s, "router")
	reg.Mount(srv)
	router := httptest.NewServer(srv)
	defer router.Close()

	resp := postControl(t, router.URL, "/register", "http://127.0.0.1:1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unreachable worker register answered %s, want 502", resp.Status)
	}
	resp = postControl(t, router.URL, "/register", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty addr register answered %s, want 400", resp.Status)
	}
}

func TestFleetSessionRegistersHeartbeatsAndRecovers(t *testing.T) {
	// The worker-side loop end to end on short real timers: the session
	// registers, heartbeats, survives having its lease revoked (404 →
	// re-register), and leaves on context cancellation.
	worker := httptest.NewServer(NewServer(testModel(504), "worker"))
	defer worker.Close()

	s := NewDynamicShard(ShardConfig{})
	reg := NewRegistry(s, RegistryConfig{TTL: 300 * time.Millisecond})
	srv := NewServer(s, "router")
	reg.Mount(srv)
	router := httptest.NewServer(srv)
	defer router.Close()

	ctx, cancel := context.WithCancel(context.Background())
	sess := &FleetSession{Router: router.URL, Advertise: worker.URL}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sess.Run(ctx)
	}()

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (registry: %+v)", desc, reg.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("initial registration", func() bool { return reg.Status().Joins >= 1 })
	waitFor("a heartbeat", func() bool {
		st := reg.Status()
		return len(st.Members) == 1 && st.Members[0].SinceBeatMillis < 200
	})

	// Revoke the lease behind the session's back — as an expiry would —
	// and watch it re-register on the next 404ed heartbeat.
	s.RemoveBackend(worker.URL)
	reg.mu.Lock()
	delete(reg.members, worker.URL)
	reg.mu.Unlock()
	waitFor("re-registration", func() bool { return reg.Status().Joins >= 2 })
	waitFor("shard membership restored", func() bool { return s.Replicas() == 1 })

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not exit on context cancellation")
	}
	if st := reg.Status(); st.Leaves != 1 || len(st.Members) != 0 {
		t.Fatalf("after shutdown: %+v, want 1 leave and no members", st)
	}
}
