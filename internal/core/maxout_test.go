package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

// OpenAPI is model-agnostic: it must be exact on the *other* PLM family the
// paper names, MaxOut networks, without any change.

func TestOpenAPIExactOnMaxout(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	model := &openbox.Maxout{Net: nn.NewMaxout(rng, 3, 5, 9, 6, 4)}
	o := New(Config{Seed: 71})
	for trial := 0; trial < 8; trial++ {
		x := randVec(rng, 5)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		c := model.Predict(x).ArgMax()
		got, err := o.Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-5 {
			t.Fatalf("MaxOut L1Dist = %v (trial %d)", dist, trial)
		}
	}
}

func TestOpenAPIMaxoutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	model := &openbox.Maxout{Net: nn.NewMaxout(rng, 2, 4, 8, 3)}
	o := New(Config{Seed: 73})
	x := randVec(rng, 4)
	var y mat.Vec
	for {
		y = x.Clone()
		for i := range y {
			y[i] += 1e-8 * rng.NormFloat64()
		}
		if model.RegionKey(x) == model.RegionKey(y) {
			break
		}
		x = randVec(rng, 4)
	}
	c := model.Predict(x).ArgMax()
	ix, err := o.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	iy, err := o.Interpret(model, y, c)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ix.Features.Cosine(iy.Features); cs < 1-1e-9 {
		t.Fatalf("within-region cosine = %v", cs)
	}
}

func TestOpenAPIExactOnLeakyReLU(t *testing.T) {
	// The third member of the paper's PLM family sentence: Leaky/Parametric
	// ReLU networks (He et al. [19]). OpenAPI must be exact on them too.
	rng := rand.New(rand.NewSource(74))
	net := nn.New(rng, 5, 9, 6, 3).SetLeak(0.1)
	model := &openbox.PLNN{Net: net}
	o := New(Config{Seed: 75})
	for trial := 0; trial < 8; trial++ {
		x := randVec(rng, 5)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the extraction itself must match the network everywhere
		// nearby, not just at x.
		probe := x.Clone()
		probe[0] += 1e-9
		if model.RegionKey(probe) == model.RegionKey(x) {
			if !truth.Logits(probe).EqualApprox(net.Logits(probe), 1e-8) {
				t.Fatal("leaky extraction wrong inside region")
			}
		}
		c := model.Predict(x).ArgMax()
		got, err := o.Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-5 {
			t.Fatalf("leaky ReLU L1Dist = %v (trial %d)", dist, trial)
		}
	}
}

// Property: exactness over random MaxOut architectures.
func TestPropertyOpenAPIExactOnRandomMaxouts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + int(uint(seed)%3)
		k := 2 + int(uint(seed)%2)
		model := &openbox.Maxout{Net: nn.NewMaxout(rng, k, d, 6, 3)}
		x := randVec(rng, d)
		truth, err := model.LocalAt(x)
		if err != nil {
			return false
		}
		o := New(Config{RNG: rng})
		got, err := o.Interpret(model, x, 0)
		if err != nil {
			return false
		}
		return got.Features.L1Dist(truth.DecisionFeatures(0)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
