// Fixtures mirroring the pure-Go fallbacks that stand in for the arm64
// (gemm_arm64.s) and noasm microkernels. Type-checked under
// "repro/internal/mat"; the file name starts with "gemm" so the analyzer
// scopes it as kernel code.
package a

import "math"

// The fallback shape the NEON kernel must match: one ascending-t chain per
// packed lane.
func dotPackFallback(pack, b0 []float64, k int, out *[4]float64) {
	var s0, s1 float64
	for t := 0; t < k; t++ {
		s0 += pack[4*t] * b0[t]
		s1 += pack[4*t+1] * b0[t]
	}
	out[0] = s0
	out[1] = s1
}

// math.FMA contracts multiply and add into one rounding — the Go-level twin
// of the VFMLA/VFMADD instructions the assembly tiers deliberately avoid.
func dotPackFMA(pack, b0 []float64, k int) float64 {
	var s float64
	for t := 0; t < k; t++ {
		s = math.FMA(pack[4*t], b0[t], s) // want "math.FMA rounds once"
	}
	return s
}

// FMA outside a loop is just as contract-breaking.
func fmaStep(a, b, acc float64) float64 {
	return math.FMA(a, b, acc) // want "math.FMA rounds once"
}

// A deliberately contracted reference path would carry its own parity
// tests; the annotation records that audit.
func fmaAudited(a, b, acc float64) float64 {
	return math.FMA(a, b, acc) //plmvet:allow(kernelpurity)
}
