package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bitIdentityPkgs are the packages whose arithmetic must be bit-identical
// across kernels, batch sizes and process restarts: everything on the path
// from weights to the extracted closed-form (W, b), plus the wire codecs —
// a float that crosses the HTTP boundary must come back with the same bits
// whichever codec carried it.
var bitIdentityPkgs = map[string]bool{
	"repro/internal/atlas":   true,
	"repro/internal/mat":     true,
	"repro/internal/nn":      true,
	"repro/internal/openbox": true,
	"repro/internal/plm":     true,
	"repro/internal/wire":    true,
}

// orderedOutputPkgs additionally produce ordered results or submission-order
// state (harvest tables, response caches) whose layout must not depend on
// map iteration order. The map-range determinism rule applies here too.
var orderedOutputPkgs = map[string]bool{
	"repro/internal/extract": true,
	"repro/internal/api":     true,
	"repro/internal/jobs":    true,
}

// Detfloat enforces the determinism contract on the bit-identity packages.
//
// Three rule groups:
//
//  1. math.FMA is forbidden: it fuses the multiply-add rounding step, so a
//     kernel using it computes different bits than the documented
//     mul-then-round-then-add chain.
//  2. Ambient nondeterminism is forbidden in non-test code: time.Now /
//     time.Since and the global math/rand functions (rand.Float64 etc.).
//     Seeded generators are the sanctioned idiom — constructing one with
//     rand.New / rand.NewSource and calling methods on it is allowed.
//  3. Inside `for range` over a map, iteration order is randomized per run,
//     so the loop body must be order-independent: appending to an outer
//     slice, accumulating into an outer float, or making a side-effect-only
//     call that consumes the loop variables all bake map order into the
//     result and are flagged. (The sanctioned dedup shape ranges over the
//     input slice and uses the map only for membership.)
var Detfloat = &Analyzer{
	Name: "detfloat",
	Doc: "forbid FMA, wall-clock and global-RNG reads, and map-iteration-ordered " +
		"output in the bit-identity packages",
	Run: runDetfloat,
}

// globalRandFuncs are the math/rand package-level functions that draw from
// the shared global source. Constructors are deliberately absent: rand.New,
// rand.NewSource and rand.NewZipf build the seeded generators the training
// code injects.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDetfloat(pass *Pass) error {
	path := pass.Pkg.Path()
	bitIdentity := bitIdentityPkgs[path]
	mapRule := bitIdentity || orderedOutputPkgs[path]
	if !bitIdentity && !mapRule {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if bitIdentity {
					checkForbiddenCall(pass, n)
				}
			case *ast.RangeStmt:
				if mapRule {
					checkMapRange(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves a call expression to (package path, function name) when
// the callee is a package-level function accessed via its package name, and
// returns ok=false otherwise (methods, locals, builtins, conversions).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case pkg == "math" && name == "FMA":
		pass.Reportf(call.Pos(), "math.FMA fuses the multiply-add rounding step and breaks the mul-then-add bit-identity contract")
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a bit-identity package; results must be reproducible across runs", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; inject a seeded *rand.Rand instead", name)
	}
}

// checkMapRange flags order-dependent effects inside a range over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := rangeVarObjects(pass.TypesInfo, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n)
		case *ast.ExprStmt:
			if call, isCall := n.X.(*ast.CallExpr); isCall {
				checkMapRangeCall(pass, rng, call, loopVars)
			}
		}
		return true
	})
}

// rangeVarObjects returns the objects bound by the range clause (key and
// value variables).
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if ident, ok := e.(*ast.Ident); ok && ident.Name != "_" {
			if obj := info.Defs[ident]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[ident]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// declaredOutside reports whether the identifier's object is declared
// outside the range statement — mutating it from the loop body leaks map
// iteration order out of the loop.
func declaredOutside(info *types.Info, rng *ast.RangeStmt, e ast.Expr) bool {
	ident := rootIdent(e)
	if ident == nil {
		return false
	}
	obj := info.Uses[ident]
	if obj == nil {
		obj = info.Defs[ident]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// rootIdent unwraps selectors, indexing and stars down to the base
// identifier of an lvalue.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if !declaredOutside(pass.TypesInfo, rng, lhs) {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) {
				pass.Reportf(as.Pos(), "floating-point accumulation in map iteration order is nondeterministic; iterate a sorted or insertion-ordered slice instead")
			}
		}
	case token.ASSIGN, token.DEFINE:
		// append(outer, ...) assigned back to an outer variable builds
		// ordered output from map order.
		for i, rhs := range as.Rhs {
			call, isCall := rhs.(*ast.CallExpr)
			if !isCall || !isBuiltinAppend(pass.TypesInfo, call) {
				continue
			}
			if i < len(as.Lhs) && declaredOutside(pass.TypesInfo, rng, as.Lhs[i]) {
				pass.Reportf(as.Pos(), "appending to an outer slice in map iteration order is nondeterministic; collect keys, sort, then append")
			}
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkMapRangeCall flags a side-effect-only call that consumes the loop
// variables: whatever state the callee mutates (a cache, a writer, an
// accumulator) now depends on map iteration order. Calls that ignore the
// loop variables are loop-invariant with respect to ordering and pass.
func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr, loopVars map[types.Object]bool) {
	if len(loopVars) == 0 {
		return
	}
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := pass.TypesInfo.Uses[ident].(*types.Builtin); builtin {
			return
		}
	}
	uses := false
	ast.Inspect(call, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && loopVars[pass.TypesInfo.Uses[ident]] {
			uses = true
		}
		return !uses
	})
	if uses {
		pass.Reportf(call.Pos(), "side-effecting call on map-ranged values runs in nondeterministic order; iterate the inputs in submission order instead")
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
