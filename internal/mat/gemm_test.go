package mat

import (
	"math/rand"
	"testing"
)

// naiveMul is the reference triple loop: one ascending-k dot product per
// output element, the order the blocked kernel must reproduce exactly.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func bitEqual(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v (bit-exact)", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestMulBitIdenticalToNaive sweeps shapes across every register-tile tail
// case (rows mod 4, cols mod 2, including zero-sized dimensions).
func TestMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, r := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9} {
		for _, k := range []int{0, 1, 3, 8, 17} {
			for _, c := range []int{0, 1, 2, 3, 5, 6} {
				a := randDense(rng, r, k)
				b := randDense(rng, k, c)
				bitEqual(t, a.Mul(b), naiveMul(a, b), "Mul")
			}
		}
	}
}

func TestMulIntoMatchesMulWithoutAllocatingDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 13, 9)
	b := randDense(rng, 9, 11)
	dst := NewDense(13, 11)
	dst.RawRow(0)[0] = 42 // stale garbage must be overwritten
	got := a.MulInto(b, dst)
	if got != dst {
		t.Fatal("MulInto did not return dst")
	}
	bitEqual(t, dst, a.Mul(b), "MulInto")
}

func TestMulBTMatchesMulOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][3]int{{6, 5, 4}, {1, 1, 1}, {9, 17, 3}, {4, 8, 2}} {
		a := randDense(rng, shape[0], shape[1])
		b := randDense(rng, shape[2], shape[1]) // b is n x k; MulBT computes a·bᵀ
		bitEqual(t, a.MulBT(b), a.Mul(b.T()), "MulBT")
	}
}

func TestMulVecIntoBitIdenticalToMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randDense(rng, 7, 12)
	x := make(Vec, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make(Vec, 7)
	m.MulVecInto(x, dst)
	want := m.MulVec(x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

// TestMulATBitIdenticalToSequentialAccumulation pins the contract batched
// backprop relies on: mᵀ·b equals accumulating rank-1 row outer products
// row by row in ascending order — the arithmetic a per-sample gradient loop
// performs — bit for bit.
func TestMulATBitIdenticalToSequentialAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range [][3]int{{1, 1, 1}, {5, 3, 4}, {8, 4, 2}, {17, 9, 6}, {3, 1, 7}, {0, 2, 3}} {
		k, r, c := shape[0], shape[1], shape[2]
		m := randDense(rng, k, r)
		b := randDense(rng, k, c)
		want := NewDense(r, c)
		for row := 0; row < k; row++ { // ascending-row accumulation
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					want.Set(i, j, want.At(i, j)+m.At(row, i)*b.At(row, j))
				}
			}
		}
		bitEqual(t, m.MulAT(b), want, "MulAT")
		bitEqual(t, m.MulAT(b), m.T().Mul(b), "MulAT vs T().Mul")
	}
}

func TestMulATWorkerCountDoesNotChangeBits(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Big enough to clear the parallel cutoff.
	m := randDense(rng, 130, 129)
	b := randDense(rng, 130, 67)

	prev := SetWorkers(1)
	serial := m.MulAT(b)
	SetWorkers(4)
	parallel := m.MulAT(b)
	SetWorkers(prev)

	bitEqual(t, parallel, serial, "MulAT workers=4 vs workers=1")
}

func TestMulATIntoShapeAndAliasPanics(t *testing.T) {
	m := NewDense(4, 3)
	b := NewDense(4, 5)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"k mismatch", func() { NewDense(3, 3).MulATInto(b, NewDense(3, 5)) }},
		{"dst shape", func() { m.MulATInto(b, NewDense(3, 4)) }},
		{"aliased dst", func() {
			sq := NewDense(4, 4)
			sq.MulATInto(NewDense(4, 4), sq)
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestRowsViewSharesStorage(t *testing.T) {
	m := NewDenseFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	v := m.RowsView(2)
	if v.Rows() != 2 || v.Cols() != 2 || v.At(1, 1) != 4 {
		t.Fatalf("view = %v", v)
	}
	v.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("view write did not reach the backing matrix")
	}
	for _, r := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RowsView(%d): expected panic", r)
				}
			}()
			m.RowsView(r)
		}()
	}
}

func TestMulWorkerCountDoesNotChangeBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough to clear the parallel cutoff.
	a := randDense(rng, 129, 130)
	b := randDense(rng, 130, 37)

	prev := SetWorkers(1)
	serial := a.Mul(b)
	SetWorkers(4)
	parallel := a.Mul(b)
	parallelBT := a.MulBT(b.T())
	SetWorkers(prev)

	bitEqual(t, parallel, serial, "workers=4 vs workers=1")
	bitEqual(t, parallelBT, serial, "MulBT workers=4 vs workers=1")
}

func TestMulIntoRejectsAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 4, 4)
	b := randDense(rng, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on aliased dst")
		}
	}()
	a.MulInto(b, a)
}

func TestMulIntoShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 4)
	for _, dst := range []*Dense{NewDense(2, 3), NewDense(3, 4), NewDense(0, 0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for dst %dx%d", dst.Rows(), dst.Cols())
				}
			}()
			a.MulInto(b, dst)
		}()
	}
}
