package eval

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// linearOnlyModel is a single-region PLM (no hidden layer).
func linearOnlyModel() *openbox.PLNN {
	w := mat.FromRows(mat.Vec{1, 0}, mat.Vec{0, 1})
	return &openbox.PLNN{Net: nn.FromLayers(nn.Layer{W: w, B: mat.Vec{0, 0}})}
}

// boundaryModel splits the plane at x[0] = 0 into two regions.
func boundaryModel() *openbox.PLNN {
	w1 := mat.FromRows(mat.Vec{1, 0})
	w2 := mat.FromRows(mat.Vec{1}, mat.Vec{-1})
	return &openbox.PLNN{Net: nn.FromLayers(
		nn.Layer{W: w1, B: mat.Vec{0}},
		nn.Layer{W: w2, B: mat.Vec{0, 0}},
	)}
}

func TestRegionDifference(t *testing.T) {
	m := boundaryModel()
	x0 := mat.Vec{1, 0}
	sameSide := []mat.Vec{{2, 1}, {0.5, -1}}
	if rd := RegionDifference(m, x0, sameSide); rd != 0 {
		t.Fatalf("same-region RD = %v", rd)
	}
	crossed := []mat.Vec{{2, 1}, {-0.5, 0}}
	if rd := RegionDifference(m, x0, crossed); rd != 1 {
		t.Fatalf("cross-region RD = %v", rd)
	}
	if rd := RegionDifference(m, x0, nil); rd != 0 {
		t.Fatalf("empty-sample RD = %v", rd)
	}
}

func TestWeightDifference(t *testing.T) {
	m := boundaryModel()
	x0 := mat.Vec{1, 0}
	// Same region: identical core parameters, WD = 0.
	wd, err := WeightDifference(m, x0, []mat.Vec{{2, 0}, {3, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wd != 0 {
		t.Fatalf("same-region WD = %v", wd)
	}
	// Other region: D_{0,1} flips from (2,0) to (0,0): L1 gap 2 per sample.
	wd, err = WeightDifference(m, x0, []mat.Vec{{-1, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wd != 2 {
		t.Fatalf("cross-region WD = %v, want 2", wd)
	}
	// Mixed: average of 0 and 2.
	wd, err = WeightDifference(m, x0, []mat.Vec{{2, 0}, {-1, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wd != 1 {
		t.Fatalf("mixed WD = %v, want 1", wd)
	}
	if _, err := WeightDifference(m, x0, nil, 0); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := WeightDifference(m, x0, []mat.Vec{{1, 1}}, 9); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestL1DistMetric(t *testing.T) {
	m := boundaryModel()
	x0 := mat.Vec{1, 0}
	truth, err := m.LocalAt(x0)
	if err != nil {
		t.Fatal(err)
	}
	exact := &plm.Interpretation{Class: 0, Features: truth.DecisionFeatures(0)}
	d, err := L1Dist(m, x0, exact)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("exact interpretation L1 = %v", d)
	}
	off := &plm.Interpretation{Class: 0, Features: truth.DecisionFeatures(0).Add(mat.Vec{1, -1})}
	d, err = L1Dist(m, x0, off)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("offset L1 = %v, want 2", d)
	}
	bad := &plm.Interpretation{Class: 0, Features: mat.Vec{1}}
	if _, err := L1Dist(m, x0, bad); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCosineConsistencyMetric(t *testing.T) {
	a := &plm.Interpretation{Features: mat.Vec{1, 0}}
	b := &plm.Interpretation{Features: mat.Vec{2, 0}}
	if cs := CosineConsistency(a, b); cs < 1-1e-12 {
		t.Fatalf("parallel CS = %v", cs)
	}
	c := &plm.Interpretation{Features: mat.Vec{0, 1}}
	if cs := CosineConsistency(a, c); cs != 0 {
		t.Fatalf("orthogonal CS = %v", cs)
	}
}

func TestFlipCurveMonotoneSetup(t *testing.T) {
	model := plnnModel(1, 4, 8, 3)
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 4)
	c := model.Predict(x).ArgMax()
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	interp := &plm.Interpretation{Class: c, Features: truth.DecisionFeatures(c)}
	res, err := FlipCurve(model, x, interp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPP) != 3 || len(res.LabelChanged) != 3 {
		t.Fatalf("trace lengths %d/%d", len(res.CPP), len(res.LabelChanged))
	}
	for _, v := range res.CPP {
		if v < 0 || v > 1 {
			t.Fatalf("CPP out of range: %v", v)
		}
	}
	if res.Queries != 4 {
		t.Fatalf("queries = %d, want 4", res.Queries)
	}
}

func TestFlipCurveMaxFlipsClamped(t *testing.T) {
	model := plnnModel(3, 3, 5, 2)
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 3)
	interp := &plm.Interpretation{Class: 0, Features: mat.Vec{1, -1, 0.5}}
	res, err := FlipCurve(model, x, interp, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPP) != 3 {
		t.Fatalf("clamped length = %d, want 3", len(res.CPP))
	}
	if _, err := FlipCurve(model, x, &plm.Interpretation{Class: 0, Features: mat.Vec{1}}, 2); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestFlipCurveOrdering(t *testing.T) {
	// The first flip must target the largest-|weight| feature and use the
	// right replacement value.
	model := boundaryModel()
	x0 := mat.Vec{0.9, 0.3}
	interp := &plm.Interpretation{Class: 0, Features: mat.Vec{5, -0.1}}
	res, err := FlipCurve(model, x0, interp, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping x[0] (positive weight) to 0 puts the instance on the region
	// boundary where logits are (0,0) -> p=(.5,.5); the base prediction at
	// x0 was softmax(0.9,-0.9). CPP[0] = |0.5 - sigmoid(1.8)|.
	base := model.Predict(x0)[0]
	wantCPP := base - 0.5
	if wantCPP < 0 {
		wantCPP = -wantCPP
	}
	if diff := res.CPP[0] - wantCPP; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("CPP[0] = %v, want %v", res.CPP[0], wantCPP)
	}
}

func TestAggregateFlips(t *testing.T) {
	a := &FlipResult{CPP: []float64{0.1, 0.2}, LabelChanged: []bool{false, true}}
	b := &FlipResult{CPP: []float64{0.3, 0.4}, LabelChanged: []bool{true, true}}
	cpp, nlci, err := AggregateFlips([]*FlipResult{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if d := cpp[0] - 0.2; d > 1e-12 || d < -1e-12 {
		t.Fatalf("cpp = %v", cpp)
	}
	if d := cpp[1] - 0.3; d > 1e-12 || d < -1e-12 {
		t.Fatalf("cpp = %v", cpp)
	}
	if nlci[0] != 1 || nlci[1] != 2 {
		t.Fatalf("nlci = %v", nlci)
	}
	if _, _, err := AggregateFlips(nil); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	short := &FlipResult{CPP: []float64{0.1}, LabelChanged: []bool{false}}
	if _, _, err := AggregateFlips([]*FlipResult{a, short}); err == nil {
		t.Fatal("ragged traces accepted")
	}
}
