package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestIDXRoundTripInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := SyntheticDigits(rng, SynthConfig{Size: 8, PerClass: 3})

	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDXImages(&imgBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lblBuf, d); err != nil {
		t.Fatal(err)
	}
	imgs, w, h, err := ReadIDXImages(&imgBuf)
	if err != nil {
		t.Fatal(err)
	}
	if w != 8 || h != 8 || len(imgs) != d.Len() {
		t.Fatalf("decoded %d images of %dx%d", len(imgs), w, h)
	}
	labels, err := ReadIDXLabels(&lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != d.Y[i] {
			t.Fatalf("label %d: %d != %d", i, labels[i], d.Y[i])
		}
	}
	// Pixels survive the uint8 quantization within 1/255.
	for i := range imgs {
		for j := range imgs[i] {
			if diff := imgs[i][j] - d.X[i][j]; diff > 1.0/255+1e-9 || diff < -1.0/255-1e-9 {
				t.Fatalf("image %d pixel %d: %v vs %v", i, j, imgs[i][j], d.X[i][j])
			}
		}
	}
}

func TestIDXFileRoundTripPlainAndGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := SyntheticFashion(rng, SynthConfig{Size: 6, PerClass: 2})
	dir := t.TempDir()
	cases := []struct{ img, lbl string }{
		{filepath.Join(dir, "img.idx"), filepath.Join(dir, "lbl.idx")},
		{filepath.Join(dir, "img.idx.gz"), filepath.Join(dir, "lbl.idx.gz")},
	}
	for _, c := range cases {
		if err := SaveIDX(d, c.img, c.lbl); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIDX(c.img, c.lbl, "reload", d.Names)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Len() != d.Len() || loaded.Dim() != d.Dim() {
			t.Fatalf("loaded %d x %d", loaded.Len(), loaded.Dim())
		}
		for i := range loaded.Y {
			if loaded.Y[i] != d.Y[i] {
				t.Fatalf("label mismatch at %d", i)
			}
		}
	}
}

func TestReadIDXRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 8, 99, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 42})
	if _, _, _, err := ReadIDXImages(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	lbl := bytes.NewBuffer([]byte{0, 0, 8, 99, 0, 0, 0, 1, 7})
	if _, err := ReadIDXLabels(lbl); err == nil {
		t.Fatal("bad label magic accepted")
	}
}

func TestReadIDXTruncated(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(3))
	d := SyntheticDigits(rng, SynthConfig{Size: 6, PerClass: 1})
	if err := WriteIDXImages(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()/2])
	if _, _, _, err := ReadIDXImages(trunc); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestWriteIDXLabelsRejectsWideLabels(t *testing.T) {
	d := tinyDataset()
	d.Y[0] = 300
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, d); err == nil {
		t.Fatal("label > 255 accepted")
	}
}

// Property: arbitrary [0,1] pixel data and labels survive the IDX round
// trip within uint8 quantization error.
func TestPropertyIDXRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(n8, side8, classes8 uint8) bool {
		n := int(n8%6) + 1
		side := int(side8%5) + 2
		classes := int(classes8%8) + 2
		d := &Dataset{
			Name: "prop", Width: side, Height: side,
			Names: make([]string, classes),
		}
		for c := range d.Names {
			d.Names[c] = string(rune('a' + c))
		}
		for i := 0; i < n; i++ {
			img := make([]float64, side*side)
			for j := range img {
				img[j] = rng.Float64()
			}
			d.X = append(d.X, img)
			d.Y = append(d.Y, rng.Intn(classes))
		}
		var imgBuf, lblBuf bytes.Buffer
		if err := WriteIDXImages(&imgBuf, d); err != nil {
			return false
		}
		if err := WriteIDXLabels(&lblBuf, d); err != nil {
			return false
		}
		imgs, w, h, err := ReadIDXImages(&imgBuf)
		if err != nil || w != side || h != side || len(imgs) != n {
			return false
		}
		labels, err := ReadIDXLabels(&lblBuf)
		if err != nil {
			return false
		}
		for i := range imgs {
			if labels[i] != d.Y[i] {
				return false
			}
			for j := range imgs[i] {
				diff := imgs[i][j] - d.X[i][j]
				if diff > 1.0/255+1e-9 || diff < -1.0/255-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIDXMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadIDX(filepath.Join(dir, "a"), filepath.Join(dir, "b"), "x", []string{"a", "b"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
