package mat

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix A,
// PA = LU. Factor once, then solve against many right-hand sides — this is
// the hot path of the OpenAPI interpreter, where the same coefficient matrix
// serves every class pair.
type LU struct {
	lu    *Dense // packed L (unit lower, below diagonal) and U (upper)
	pivot []int  // row i of the factorization came from row pivot[i] of A
	sign  int    // parity of the permutation, for Det
	n     int
}

// Factor computes the LU factorization of the square matrix a with partial
// pivoting. It returns ErrSingular when a pivot underflows to zero; callers
// that can resample (as OpenAPI does) should treat that as "try new points".
func Factor(a *Dense) (*LU, error) {
	r, c := a.Dims()
	if r != c {
		return nil, fmt.Errorf("mat: Factor needs square matrix, got %dx%d: %w", r, c, ErrShape)
	}
	n := r
	f := &LU{lu: a.Clone(), pivot: make([]int, n), sign: 1, n: n}
	for i := range f.pivot {
		f.pivot[i] = i
	}
	lu := f.lu.data
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("mat: zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			rowP := lu[p*n : (p+1)*n]
			rowK := lu[k*n : (k+1)*n]
			for j := range rowK {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
		}
		inv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] * inv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : (i+1)*n]
			rowK := lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return f, nil
}

// N returns the order of the factored matrix.
func (f *LU) N() int { return f.n }

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b Vec) (Vec, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("mat: SolveVec rhs length %d != %d: %w", len(b), f.n, ErrShape)
	}
	n := f.n
	lu := f.lu.data
	x := make(Vec, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := lu[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, fmt.Errorf("mat: zero diagonal at %d: %w", i, ErrSingular)
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves A X = B column by column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.Rows() != f.n {
		return nil, fmt.Errorf("mat: Solve rhs rows %d != %d: %w", b.Rows(), f.n, ErrShape)
	}
	out := NewDense(f.n, b.Cols())
	for j := 0; j < b.Cols(); j++ {
		x, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, x)
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	det := float64(f.sign)
	for i := 0; i < f.n; i++ {
		det *= f.lu.data[i*f.n+i]
	}
	return det
}

// MinPivot returns the smallest absolute diagonal entry of U — a cheap
// proxy for how close to singular the matrix is.
func (f *LU) MinPivot() float64 {
	m := math.Inf(1)
	for i := 0; i < f.n; i++ {
		if a := math.Abs(f.lu.data[i*f.n+i]); a < m {
			m = a
		}
	}
	return m
}

// CondEst returns a crude lower-bound estimate of the infinity-norm condition
// number: ||A||_inf * max|1/u_ii|. Good enough to flag the near-singular
// systems OpenAPI must resample.
func (f *LU) CondEst(a *Dense) float64 {
	var normA float64
	for i := 0; i < a.Rows(); i++ {
		s := a.RawRow(i).Norm1()
		if s > normA {
			normA = s
		}
	}
	mp := f.MinPivot()
	if mp == 0 {
		return math.Inf(1)
	}
	return normA / mp
}

// SolveSquare is a convenience wrapper: factor a and solve a x = b.
func SolveSquare(a *Dense, b Vec) (Vec, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns the inverse of a, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(f.n))
}

// Residual returns b - A*x, the defect of a candidate solution. The OpenAPI
// consistency test is "does the (d+2)-th equation have a small defect?".
func Residual(a *Dense, x, b Vec) Vec {
	ax := a.MulVec(x)
	return b.Sub(ax)
}
