package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// remoteBackendFor serves model over loopback HTTP and dials it back as a
// remote shard backend, returning the test server for lifecycle control.
func remoteBackendFor(t *testing.T, model plm.Model, name string) (Backend, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(NewServer(model, name))
	client, err := Dial(ts.URL, nil, 0)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return NewRemoteBackend(client), ts
}

func TestBackendAdaptersAgree(t *testing.T) {
	// The router must not be able to tell a local replica from a remote
	// plmserve: both adapters answer bit-identically to the bare model.
	model := testModel(300)
	local := NewLocalBackend(model, "local")
	remote, ts := remoteBackendFor(t, testModel(300), "remote")
	defer ts.Close()

	if ls, rs := local.Stats(), remote.Stats(); ls.Kind != "local" || rs.Kind != "remote" ||
		ls.Dim != rs.Dim || ls.Classes != rs.Classes {
		t.Fatalf("adapter stats disagree: %+v vs %+v", ls, rs)
	}
	ctx := context.Background()
	x := mat.Vec{0.3, -0.2, 0.7, 0.1}
	lp, err := local.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := remote.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !lp.EqualApprox(rp, 0) {
		t.Fatalf("local %v != remote %v", lp, rp)
	}
	if !local.Healthy(ctx) || !remote.Healthy(ctx) {
		t.Fatal("live backends report unhealthy")
	}
	ts.Close()
	if remote.Healthy(ctx) {
		t.Fatal("dead remote reports healthy")
	}
}

func TestHeterogeneousShardBitIdenticalAndSurvivesRemoteDeath(t *testing.T) {
	// The PR's acceptance gate: a shard routing over 2 local + 2 remote
	// backends answers bit-identically to a single local model, and keeps
	// doing so after one remote is killed mid-run — the dead backend is
	// quarantined, its chunks re-dispatched, order preserved.
	single := testModel(301)
	backends := []Backend{
		NewLocalBackend(testModel(301), "local-0"),
		NewLocalBackend(testModel(301), "local-1"),
	}
	r0, ts0 := remoteBackendFor(t, testModel(301), "remote-0")
	defer ts0.Close()
	r1, ts1 := remoteBackendFor(t, testModel(301), "remote-1")
	defer ts1.Close()
	backends = append(backends, r0, r1)

	// A long quarantine keeps the dead remote visibly sidelined for the
	// whole test; the recovery path has its own fake-clock test.
	s, err := NewShardBackends(backends, ShardConfig{QuarantineBase: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	xs := shardProbes(64)
	want := make([]mat.Vec, len(xs))
	for i, x := range xs {
		want[i] = single.Predict(x)
	}
	check := func(round string) {
		t.Helper()
		got, err := s.PredictBatch(xs)
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		for i := range xs {
			if !got[i].EqualApprox(want[i], 0) {
				t.Fatalf("%s item %d: %v != %v", round, i, got[i], want[i])
			}
		}
	}
	check("all backends alive")
	for _, st := range s.BackendStatus() {
		if st.Queries == 0 {
			t.Fatalf("backend %s (%s) served nothing while alive", st.Name, st.Kind)
		}
	}
	// Kill one remote mid-run; the batch must still come back complete.
	ts1.Close()
	check("one remote killed")
	check("one remote killed, second batch")
	var deadSeen bool
	for _, st := range s.BackendStatus() {
		if st.Kind == "remote" && st.State == "unreachable" {
			deadSeen = true
			if st.Failures == 0 {
				t.Fatalf("dead remote has no recorded failures: %+v", st)
			}
		}
	}
	if !deadSeen {
		t.Fatalf("no remote marked unreachable after kill: %+v", s.BackendStatus())
	}
}

func TestStatsReportsRemoteAndUnreachableBackends(t *testing.T) {
	// The /stats reach-through must degrade gracefully on heterogeneous
	// shards: remote backends appear with kind "remote", a dead one stays
	// listed with state "unreachable" instead of panicking the handler or
	// silently vanishing from the report — behind the response cache too.
	remote, tsInner := remoteBackendFor(t, testModel(302), "remote")
	defer tsInner.Close()
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(302), "local"),
		remote,
	}, ShardConfig{QuarantineBase: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewResponseCache(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cached, "hetero")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictBatch(shardProbes(16)); err != nil {
		t.Fatal(err)
	}
	tsInner.Close() // the remote goes dark
	if _, err := c.PredictBatch(shardProbes(32)); err != nil {
		t.Fatal(err) // failover keeps the shard serving
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats returned %s", resp.Status)
	}
	var stats struct {
		ReplicaQueries []int64         `json:"replica_queries"`
		Backends       []BackendStatus `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Backends) != 2 || len(stats.ReplicaQueries) != 2 {
		t.Fatalf("breakdown lost backends: %+v", stats)
	}
	if stats.Backends[0].Kind != "local" || stats.Backends[1].Kind != "remote" {
		t.Fatalf("kinds = %q/%q, want local/remote", stats.Backends[0].Kind, stats.Backends[1].Kind)
	}
	if stats.Backends[1].State != "unreachable" {
		t.Fatalf("dead remote state %q, want unreachable", stats.Backends[1].State)
	}
	if stats.Backends[0].State != "ok" {
		t.Fatalf("live local state %q, want ok", stats.Backends[0].State)
	}
}

func TestPredictAnswersErrorWhenAllBackendsDead(t *testing.T) {
	// A total backend outage must answer 5xx, not a fabricated uniform
	// distribution served as a genuine 200 — an unbatched interpreter
	// would otherwise silently build its linear system from garbage.
	// The same must hold behind the response cache (and the failure must
	// not be memoized).
	dead := &scriptedBackend{Backend: NewLocalBackend(testModel(303), "dead")}
	dead.down.Store(true)
	s, err := NewShardBackends([]Backend{dead}, ShardConfig{QuarantineBase: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictErr(mat.Vec{1, 0, 0, 0}); err == nil {
		t.Fatal("all backends dead, PredictErr succeeded")
	}
	cached, err := NewResponseCache(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cached, "dead")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/predict", "application/json",
		bytes.NewReader([]byte(`{"x":[1,0,0,0]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("dead shard answered %s, want 500", resp.Status)
	}
	if srv.Queries() != 0 || srv.Requests() != 0 {
		t.Fatalf("failed predict counted: %d queries / %d trips", srv.Queries(), srv.Requests())
	}

	// The backend comes back: the next predict succeeds end to end (the
	// failure was not cached) and is bit-identical to the model.
	dead.down.Store(false)
	resp2, err := http.Post(ts.URL+"/predict", "application/json",
		bytes.NewReader([]byte(`{"x":[1,0,0,0]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recovered shard answered %s", resp2.Status)
	}
	var out struct {
		Probs []float64 `json:"probs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if want := testModel(303).Predict(mat.Vec{1, 0, 0, 0}); !mat.Vec(out.Probs).EqualApprox(want, 0) {
		t.Fatalf("recovered predict %v != model %v", out.Probs, want)
	}
}
