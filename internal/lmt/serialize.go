package lmt

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/mat"
)

const treeFormatTag = "openapi-lmt-v1"

type treeJSON struct {
	Format  string    `json:"format"`
	Dim     int       `json:"dim"`
	Classes int       `json:"classes"`
	Leaves  int       `json:"leaves"`
	Root    *nodeJSON `json:"root"`
}

type nodeJSON struct {
	Feature   int         `json:"feature,omitempty"`
	Threshold float64     `json:"threshold,omitempty"`
	Left      *nodeJSON   `json:"left,omitempty"`
	Right     *nodeJSON   `json:"right,omitempty"`
	LeafID    int         `json:"leaf_id,omitempty"`
	W         [][]float64 `json:"w,omitempty"`
	B         []float64   `json:"b,omitempty"`
}

func encodeNode(n *Node) *nodeJSON {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		out := &nodeJSON{LeafID: n.LeafID, B: n.Leaf.B.Clone()}
		out.W = make([][]float64, n.Leaf.W.Rows())
		for r := range out.W {
			out.W[r] = n.Leaf.W.Row(r)
		}
		return out
	}
	return &nodeJSON{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Left:      encodeNode(n.Left),
		Right:     encodeNode(n.Right),
	}
}

func decodeNode(nj *nodeJSON, dim, classes int) (*Node, error) {
	if nj == nil {
		return nil, fmt.Errorf("lmt: nil node in serialized tree")
	}
	if nj.W != nil {
		if len(nj.W) != classes || len(nj.B) != classes {
			return nil, fmt.Errorf("lmt: leaf %d has %d weight rows and %d biases, want %d",
				nj.LeafID, len(nj.W), len(nj.B), classes)
		}
		w := mat.NewDense(classes, dim)
		for r, row := range nj.W {
			if len(row) != dim {
				return nil, fmt.Errorf("lmt: leaf %d row %d has %d cols, want %d", nj.LeafID, r, len(row), dim)
			}
			w.SetRow(r, row)
		}
		return &Node{Leaf: &LogReg{W: w, B: append(mat.Vec(nil), nj.B...)}, LeafID: nj.LeafID}, nil
	}
	if nj.Feature < 0 || nj.Feature >= dim {
		return nil, fmt.Errorf("lmt: split feature %d out of range %d", nj.Feature, dim)
	}
	left, err := decodeNode(nj.Left, dim, classes)
	if err != nil {
		return nil, err
	}
	right, err := decodeNode(nj.Right, dim, classes)
	if err != nil {
		return nil, err
	}
	return &Node{Feature: nj.Feature, Threshold: nj.Threshold, Left: left, Right: right}, nil
}

// MarshalJSON encodes the tree structure and every leaf classifier.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{
		Format:  treeFormatTag,
		Dim:     t.dim,
		Classes: t.classes,
		Leaves:  t.numLeaves,
		Root:    encodeNode(t.Root),
	})
}

// UnmarshalJSON decodes a tree written by MarshalJSON, validating shapes.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var tj treeJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("lmt: decode: %w", err)
	}
	if tj.Format != treeFormatTag {
		return fmt.Errorf("lmt: unknown format %q (want %q)", tj.Format, treeFormatTag)
	}
	if tj.Dim <= 0 || tj.Classes < 2 {
		return fmt.Errorf("lmt: invalid dims %dx%d", tj.Dim, tj.Classes)
	}
	root, err := decodeNode(tj.Root, tj.Dim, tj.Classes)
	if err != nil {
		return err
	}
	t.dim, t.classes, t.numLeaves, t.Root = tj.Dim, tj.Classes, tj.Leaves, root
	return nil
}

// Save writes the tree to path as JSON.
func (t *Tree) Save(path string) error {
	data, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("lmt: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("lmt: save %s: %w", path, err)
	}
	return nil
}

// Load reads a tree saved by Save.
func Load(path string) (*Tree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lmt: load %s: %w", path, err)
	}
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}
