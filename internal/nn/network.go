package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Layer is one affine map of the network: z = W x + b with W shaped
// out-by-in. Hidden layers are followed by ReLU; the last layer feeds the
// softmax directly.
type Layer struct {
	W *mat.Dense
	B mat.Vec
}

// In returns the input width of the layer.
func (l *Layer) In() int { return l.W.Cols() }

// Out returns the output width of the layer.
func (l *Layer) Out() int { return l.W.Rows() }

// Network is a fully connected network from the ReLU family the paper
// names: plain ReLU by default, or Leaky/Parametric ReLU when a non-zero
// negative slope is set. Either way every activation is piecewise linear,
// so the network is a PLM. The paper's image experiments use the plain-ReLU
// architecture 784-256-128-100-10.
type Network struct {
	layers []Layer
	// leak is the negative-side slope of the hidden activations: 0 gives
	// ReLU, small positive values give Leaky/Parametric ReLU (He et al.,
	// cited by the paper as part of the PLM family).
	leak float64
}

// SetLeak sets the hidden activations' negative-side slope. Values are
// clamped to [0, 1); 0 restores plain ReLU. It returns the network for
// chaining.
func (n *Network) SetLeak(alpha float64) *Network {
	if alpha < 0 || alpha >= 1 {
		alpha = 0
	}
	n.leak = alpha
	return n
}

// Leak returns the configured negative-side slope.
func (n *Network) Leak() float64 { return n.leak }

// activate applies the hidden nonlinearity in place given pre-activations,
// overwriting z, and returns z. Callers that need the pre-activations later
// (backprop, activation patterns) must pass a copy.
func (n *Network) activate(z mat.Vec) mat.Vec {
	for i, v := range z {
		if v > 0 {
			z[i] = v
		} else {
			z[i] = n.leak * v
		}
	}
	return z
}

// New builds a network with the given layer widths (input first, classes
// last) and He-initialized weights drawn from rng. It panics on fewer than
// two sizes or non-positive widths.
func New(rng *rand.Rand, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: New needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size %d", s))
		}
	}
	n := &Network{layers: make([]Layer, len(sizes)-1)}
	for i := range n.layers {
		in, out := sizes[i], sizes[i+1]
		w := mat.NewDense(out, in)
		sd := math.Sqrt(2 / float64(in)) // He init for ReLU
		for r := 0; r < out; r++ {
			row := w.RawRow(r)
			for c := range row {
				row[c] = sd * rng.NormFloat64()
			}
		}
		n.layers[i] = Layer{W: w, B: mat.NewVec(out)}
	}
	return n
}

// FromLayers builds a network from explicit layers (cloned). Adjacent layer
// shapes must chain. Useful for tests that need hand-crafted PLNNs.
func FromLayers(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: FromLayers needs at least one layer")
	}
	n := &Network{layers: make([]Layer, len(layers))}
	for i, l := range layers {
		if l.W == nil || len(l.B) != l.W.Rows() {
			panic(fmt.Sprintf("nn: layer %d malformed", i))
		}
		if i > 0 && l.W.Cols() != layers[i-1].W.Rows() {
			panic(fmt.Sprintf("nn: layer %d input %d != previous output %d",
				i, l.W.Cols(), layers[i-1].W.Rows()))
		}
		n.layers[i] = Layer{W: l.W.Clone(), B: l.B.Clone()}
	}
	return n
}

// InputDim returns the expected input dimensionality d.
func (n *Network) InputDim() int { return n.layers[0].In() }

// Classes returns the number of output classes C.
func (n *Network) Classes() int { return n.layers[len(n.layers)-1].Out() }

// NumLayers returns the number of affine layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// Layer returns a deep copy of layer i (0-based).
func (n *Network) Layer(i int) Layer {
	l := n.layers[i]
	return Layer{W: l.W.Clone(), B: l.B.Clone()}
}

// LayerShared returns layer i sharing the network's parameter storage —
// no copy. Callers must treat the result as read-only; it exists so hot
// paths (the closed-form composition chain) stop cloning whole weight
// matrices per access.
func (n *Network) LayerShared(i int) Layer { return n.layers[i] }

// HiddenSizes returns the widths of the hidden layers.
func (n *Network) HiddenSizes() []int {
	out := make([]int, 0, len(n.layers)-1)
	for _, l := range n.layers[:len(n.layers)-1] {
		out = append(out, l.Out())
	}
	return out
}

// NumParams returns the total number of weights and biases.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += l.W.Rows()*l.W.Cols() + len(l.B)
	}
	return total
}

// forwardState caches pre-activations (z) and post-activations (a) for
// backprop. a[0] is the input; a[i] for i >= 1 is the output of layer i-1
// after its nonlinearity (ReLU for hidden, identity for the last layer).
type forwardState struct {
	z []mat.Vec
	a []mat.Vec
}

func (n *Network) forward(x mat.Vec) forwardState {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: input length %d != %d", len(x), n.InputDim()))
	}
	st := forwardState{
		z: make([]mat.Vec, len(n.layers)),
		a: make([]mat.Vec, len(n.layers)+1),
	}
	st.a[0] = x
	cur := x
	for i, l := range n.layers {
		z := l.W.MulVec(cur).AddInPlace(l.B)
		st.z[i] = z
		if i < len(n.layers)-1 {
			// activate works in place; st.z must keep the pre-activations
			// for backprop and activation patterns, so hand it a copy.
			cur = n.activate(z.Clone())
		} else {
			cur = z
		}
		st.a[i+1] = cur
	}
	return st
}

// Logits returns the raw pre-softmax scores for x.
func (n *Network) Logits(x mat.Vec) mat.Vec {
	st := n.forward(x)
	return st.z[len(n.layers)-1].Clone()
}

// Predict returns the softmax class probabilities for x. This is the only
// view of the model an API consumer gets.
func (n *Network) Predict(x mat.Vec) mat.Vec {
	return Softmax(n.Logits(x))
}

// PredictLabel returns the argmax class of x.
func (n *Network) PredictLabel(x mat.Vec) int {
	return n.Logits(x).ArgMax()
}

// ActivationPattern returns the concatenated ReLU activity masks of all
// hidden layers for input x. Two inputs with identical patterns live in the
// same locally linear region.
func (n *Network) ActivationPattern(x mat.Vec) []bool {
	st := n.forward(x)
	var pat []bool
	for i := 0; i < len(n.layers)-1; i++ {
		pat = append(pat, ReLUMask(st.z[i])...)
	}
	return pat
}

// InputGradient returns the gradient of logit c with respect to the input.
// Inside a locally linear region this equals row c of the region's effective
// weight matrix; it backs the white-box gradient baselines.
func (n *Network) InputGradient(x mat.Vec, c int) mat.Vec {
	if c < 0 || c >= n.Classes() {
		panic(fmt.Sprintf("nn: class %d out of range %d", c, n.Classes()))
	}
	st := n.forward(x)
	last := len(n.layers) - 1
	// Seed: d logit_c / d z_last = e_c.
	g := mat.NewVec(n.layers[last].Out())
	g[c] = 1
	for i := last; i >= 0; i-- {
		// Through the affine map: g <- W^T g.
		g = n.layers[i].W.MulVecT(g)
		if i > 0 {
			// Through the (leaky) ReLU of the previous layer.
			z := st.z[i-1]
			for j := range g {
				if z[j] <= 0 {
					g[j] *= n.leak
				}
			}
		}
	}
	return g
}

// Accuracy returns the fraction of rows of xs classified as labels.
func (n *Network) Accuracy(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy %d inputs vs %d labels", len(xs), len(labels)))
	}
	correct := 0
	for i, x := range xs {
		if n.PredictLabel(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = Layer{W: l.W.Clone(), B: l.B.Clone()}
	}
	return &Network{layers: layers, leak: n.leak}
}
