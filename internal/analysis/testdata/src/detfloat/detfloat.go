// Fixtures for the detfloat analyzer, type-checked by the harness under
// the bit-identity package path "repro/internal/mat".
package a

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

type sink struct{ vals []float64 }

func (s *sink) insert(key string, v float64) { s.vals = append(s.vals, v) }

func fma(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "math.FMA fuses the multiply-add rounding step"
}

func mulAdd(a, b, c float64) float64 {
	return a*b + c // the sanctioned two-rounding shape
}

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRand() float64 {
	return rand.Float64() // want "rand.Float64 draws from the process-global source"
}

func seededRand() float64 {
	rng := rand.New(rand.NewSource(42)) // constructors are the sanctioned idiom
	return rng.Float64()                // method on an injected generator: fine
}

func mapAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation in map iteration order"
	}
	return sum
}

func mapAppend(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appending to an outer slice in map iteration order"
	}
	return keys
}

func mapSideEffect(m map[string]float64, s *sink) {
	for k, v := range m {
		s.insert(k, v) // want "side-effecting call on map-ranged values"
	}
}

func sortedKeys(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //plmvet:allow(detfloat) keys are sorted below before any ordered use
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k]) // slice range: deterministic
	}
	return out
}

// The sanctioned dedup shape: range the input slice, use the map only for
// membership.
func dedup(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if seen[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
	}
	return out
}

// Order-independent writes keyed by the map key are fine.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A call ignoring the loop variables is loop-invariant with respect to
// ordering.
func invariantCall(m map[string]float64, s *sink) {
	for range m {
		s.insert("fixed", 0)
	}
}
