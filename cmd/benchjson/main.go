// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array of benchmark records, one object per benchmark line.
// CI pipes the PR benchmark run through it to record the performance
// trajectory (BENCH_pr3.json and successors):
//
//	go test -run='^$' -bench=. -benchtime=20x ./internal/nn | benchjson -out BENCH_pr3.json
//
// Standard extra metrics (B/op, allocs/op, and any custom ReportMetric
// units) are captured into the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one "BenchmarkFoo-8  123  456 ns/op  789 B/op" line,
// reporting ok=false for non-benchmark lines.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashSuffix(fields[0])),
		Iterations: iters,
	}
	// The remainder alternates value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" && !sawNs {
			rec.NsPerOp = v
			sawNs = true
			continue
		}
		if rec.Metrics == nil {
			rec.Metrics = make(map[string]float64)
		}
		rec.Metrics[unit] = v
	}
	if !sawNs {
		return Record{}, false
	}
	return rec, true
}

// lastDashSuffix returns the trailing GOMAXPROCS suffix of a benchmark name
// ("8" for "BenchmarkFoo-8"), or "" when the name has none.
func lastDashSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		fmt.Print(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark records to %s", len(records), *out)
}
