// Package jobs is the async job subsystem behind plmserve's /jobs
// endpoints: a bulk predict or interpret request is submitted with
// POST /jobs, answered 202 immediately, and polled with GET /jobs/{id}
// while a bounded worker pool chews through it on the same fast paths the
// synchronous endpoints use (the shard's load-aware PredictBatch; the
// region-cached closed-form extraction for interpret jobs). A
// HarvestPool-scale workload stops holding a connection open for the whole
// harvest — the wire cost of a bulk job becomes one submit plus a few
// polls.
//
//	POST /jobs      {"op":"predict"|"interpret","xs":[[...],...]}
//	                -> 202 {"id":"job-1","status":"queued"}
//	GET  /jobs/{id} -> {"id","op","status","n",...results...}
//
// The job store is bounded: finished jobs are evicted oldest-first to
// admit new ones, and when the store is full of unfinished work the submit
// is refused with 503 — backpressure instead of an unbounded queue.
//
// Results page and stream (see stream.go): GET /jobs/{id}?offset=O&limit=L
// answers just that slice of the results, and a client that negotiated the
// binary codec receives them as a sequence of float frames — one frame per
// chunk, written and read incrementally — so a million-instance harvest
// never materializes one giant response body in RAM on either side.
// Submissions ride the negotiated codec too: a binary POST /jobs carries
// the probes as one frame with the op named by the X-PLM-Job-Op header.
package jobs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

// Status is the lifecycle state of an async job.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Op names accepted by Submit. A census job sweeps probes drawn around the
// submitted instances through the white-box closed-form path, populating
// whatever region store sits behind it (the RAM cache, or the disk atlas) —
// the async pre-warming half of the persistent region atlas.
const (
	OpPredict   = "predict"
	OpInterpret = "interpret"
	OpCensus    = "census"
)

// ErrBacklogFull is returned by Submit when the bounded store holds only
// unfinished jobs — the server is saturated and the caller should retry.
var ErrBacklogFull = errors.New("jobs: backlog full")

// Region is one harvested locally linear region in an interpret job's
// result: the probe that produced it and the region classifier's logits
// relative to class 0 (the closed form OpenAPI recovers, exact per the
// paper's Theorem 2).
type Region struct {
	Probe []float64   `json:"probe"`
	RelW  [][]float64 `json:"rel_w"`
	RelB  []float64   `json:"rel_b"`
}

// View is the externally visible snapshot of a job, also its wire form.
type View struct {
	ID     string `json:"id"`
	Op     string `json:"op"`
	Status Status `json:"status"`
	N      int    `json:"n"`
	Error  string `json:"error,omitempty"`
	// Probs holds a predict job's per-instance probabilities.
	Probs [][]float64 `json:"probs,omitempty"`
	// Regions holds an interpret job's harvested regions — one per distinct
	// locally linear region among the submitted instances, not one per
	// instance: the dedup is the point of the closed form.
	Regions []Region `json:"regions,omitempty"`
	// Census holds a census job's sweep summary; the swept regions
	// themselves live in the region store the sweep populated.
	Census *eval.SweepReport `json:"census,omitempty"`
	// Total and Offset describe the result window on paginated responses
	// (GET /jobs/{id}?offset&limit): Total is the full result count, Offset
	// where this page starts. Absent on unpaginated (legacy) fetches.
	Total  int `json:"total,omitempty"`
	Offset int `json:"offset,omitempty"`
}

// job is the internal mutable record behind a View.
type job struct {
	id string
	op string
	xs []mat.Vec
	// n is a census job's probe budget; seed its deterministic RNG seed,
	// derived from the submission sequence number so a replayed submission
	// order sweeps identical probes.
	n    int
	seed int64

	mu      sync.Mutex
	status  Status
	err     string
	probs   [][]float64
	regions []Region
	census  *eval.SweepReport
}

func (j *job) view() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return View{
		ID: j.id, Op: j.op, Status: j.status, N: len(j.xs),
		Error: j.err, Probs: j.probs, Regions: j.regions, Census: j.census,
	}
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed
}

// Runner owns the bounded job store and worker pool. It is safe for
// concurrent use.
type Runner struct {
	model plm.Model
	// white answers interpret jobs; nil refuses them (a server routing only
	// to remote backends has no white-box side to extract from).
	white plm.RegionModel

	// StreamRows caps the probability rows per streamed binary result
	// frame (0: defaultStreamRows). Small values exist for tests that want
	// to force multi-frame streams.
	StreamRows int

	// wireStats and maxBody are adopted from the hosting server at Mount
	// time, so job payloads count into the same /stats wire seam and obey
	// the same body cap as /predict and /batch. Both are safe when the
	// runner is used unmounted: wire.Stats methods are nil-safe and a zero
	// maxBody means wire.DefaultMaxBody.
	wireStats *wire.Stats
	maxBody   int64

	capacity int
	queue    chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, oldest first, for eviction
	seq   int64
	// evicted counts finished jobs displaced to admit new ones.
	evicted int64

	// censusDone/censusTotal track sweep progress across all census jobs —
	// the census_progress fraction in the /stats atlas section.
	censusDone  atomic.Int64
	censusTotal atomic.Int64

	// meanRunNS is a recency-weighted mean of job run durations, behind the
	// Retry-After hint on 503 submits.
	durMu     sync.Mutex
	meanRunNS float64
}

// retryAfterAlpha weights the published mean job run time toward recent
// completions — the same discount the API aggregator applies to latency.
const retryAfterAlpha = 0.3

// observeRun folds one completed job's run duration into the mean.
func (r *Runner) observeRun(d time.Duration) {
	r.durMu.Lock()
	defer r.durMu.Unlock()
	ns := float64(d.Nanoseconds())
	if r.meanRunNS == 0 {
		r.meanRunNS = ns
		return
	}
	r.meanRunNS += retryAfterAlpha * (ns - r.meanRunNS)
}

// RetryAfter is the backpressure hint a saturated runner publishes on 503
// submits: the mean recent job completion time rounded up to whole seconds
// and floored at one second — come back after roughly one job's worth of
// work has had a chance to drain.
func (r *Runner) RetryAfter() time.Duration {
	r.durMu.Lock()
	mean := r.meanRunNS
	r.durMu.Unlock()
	secs := int64(math.Ceil(mean / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// NewRunner builds a runner over the served model with a bounded store of
// capacity jobs and the given number of pool workers. white, when non-nil,
// is the white-box side interpret jobs extract from — plmserve passes a
// local copy of its model; a purely remote shard passes nil.
func NewRunner(model plm.Model, white plm.RegionModel, capacity, workers int) (*Runner, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("jobs: store capacity %d, need > 0", capacity)
	}
	if workers <= 0 {
		workers = 1
	}
	r := &Runner{
		model:    model,
		white:    white,
		capacity: capacity,
		queue:    make(chan *job, capacity),
		jobs:     make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r, nil
}

// Submit validates and enqueues a job, returning its id. When the store is
// full, the oldest finished job is evicted to make room; if every stored
// job is still queued or running, ErrBacklogFull is returned.
func (r *Runner) Submit(op string, xs []mat.Vec) (string, error) {
	return r.SubmitN(op, xs, 0)
}

// SubmitN is Submit with a census probe budget: a census job sweeps n
// probes drawn around the submitted anchor instances (n <= 0: 64 per
// anchor). Other ops ignore n.
func (r *Runner) SubmitN(op string, xs []mat.Vec, n int) (string, error) {
	switch op {
	case OpPredict:
	case OpInterpret, OpCensus:
		if r.white == nil {
			return "", fmt.Errorf("jobs: %s jobs need a local white-box replica, this server has none", op)
		}
	default:
		return "", fmt.Errorf("jobs: unknown op %q (want %q, %q or %q)", op, OpPredict, OpInterpret, OpCensus)
	}
	if len(xs) == 0 {
		return "", fmt.Errorf("jobs: empty job")
	}
	for i, x := range xs {
		if len(x) != r.model.Dim() {
			return "", fmt.Errorf("jobs: item %d length %d != %d", i, len(x), r.model.Dim())
		}
	}
	if op == OpCensus && n <= 0 {
		n = 64 * len(xs)
	}
	j, err := r.admit(op, xs, n)
	if err != nil {
		return "", err
	}
	if op == OpCensus {
		r.censusTotal.Add(int64(j.n))
	}
	r.queue <- j // capacity == store capacity, never blocks
	return j.id, nil
}

// CensusProgress returns the probes swept so far and the total submitted
// across all census jobs.
func (r *Runner) CensusProgress() (done, total int64) {
	return r.censusDone.Load(), r.censusTotal.Load()
}

// admit reserves a store slot and registers a new queued job under the
// lock; the channel send stays in Submit, outside it.
func (r *Runner) admit(op string, xs []mat.Vec, n int) (*job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.jobs) >= r.capacity && !r.evictOneLocked() {
		return nil, ErrBacklogFull
	}
	r.seq++
	j := &job{id: fmt.Sprintf("job-%d", r.seq), op: op, xs: xs, n: n, seed: r.seq, status: StatusQueued}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	return j, nil
}

// evictOneLocked removes the oldest finished job; callers hold r.mu.
func (r *Runner) evictOneLocked() bool {
	for i, id := range r.order {
		j, ok := r.jobs[id]
		if !ok || !j.terminal() {
			continue
		}
		delete(r.jobs, id)
		r.order = append(r.order[:i], r.order[i+1:]...)
		r.evicted++
		return true
	}
	return false
}

// Get returns a snapshot of the job, or ok=false when it is unknown —
// never submitted, or already evicted.
func (r *Runner) Get(id string) (View, bool) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	r.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// Evicted returns how many finished jobs have been displaced.
func (r *Runner) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// work is one pool worker: pull, run, record, time.
func (r *Runner) work() {
	for j := range r.queue {
		j.mu.Lock()
		j.status = StatusRunning
		j.mu.Unlock()
		var (
			probs   [][]float64
			regions []Region
			census  *eval.SweepReport
			err     error
		)
		start := time.Now()
		switch j.op {
		case OpPredict:
			probs, err = r.runPredict(j.xs)
		case OpInterpret:
			regions, err = r.runInterpret(j.xs)
		case OpCensus:
			census, err = r.runCensus(j)
		}
		r.observeRun(time.Since(start))
		j.finish(probs, regions, census, err)
	}
}

// finish records a job's outcome under its lock.
func (j *job) finish(probs [][]float64, regions []Region, census *eval.SweepReport, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status = StatusFailed
		j.err = err.Error()
		return
	}
	j.status = StatusDone
	j.probs = probs
	j.regions = regions
	j.census = census
}

// runPredict answers the bulk batch on the served model's fast path — for
// a shard that is the load-aware backend fan-out, for a bare model the
// batched GEMM forward.
func (r *Runner) runPredict(xs []mat.Vec) ([][]float64, error) {
	var ys []mat.Vec
	if bp, ok := r.model.(plm.BatchPredictor); ok {
		out, err := bp.PredictBatch(xs)
		if err != nil {
			return nil, err
		}
		ys = out
	} else {
		ys = make([]mat.Vec, len(xs))
		for i, x := range xs {
			ys[i] = r.model.Predict(x)
		}
	}
	out := make([][]float64, len(ys))
	for i, y := range ys {
		out[i] = y
	}
	return out, nil
}

// runInterpret harvests the exact locally linear regions of the submitted
// instances from the white-box replica: batched activation patterns, one
// closed-form composition per distinct region (extract.HarvestExact rides
// openbox.ExtractAll), deduplicated per region.
func (r *Runner) runInterpret(xs []mat.Vec) ([]Region, error) {
	s, err := extract.HarvestExact(r.white, xs)
	if err != nil {
		return nil, err
	}
	harvested := s.Regions()
	out := make([]Region, len(harvested))
	for i, h := range harvested {
		view := Region{
			Probe: h.Probe,
			RelW:  make([][]float64, len(h.RelW)),
			RelB:  h.RelB,
		}
		for c, w := range h.RelW {
			view.RelW[c] = w
		}
		out[i] = view
	}
	return out, nil
}

// runCensus sweeps the job's probe budget through the white-box closed-form
// path, deterministically seeded from the submission sequence number, with
// cross-job progress folded into the runner's census counters.
func (r *Runner) runCensus(j *job) (*eval.SweepReport, error) {
	rng := rand.New(rand.NewSource(j.seed))
	last := 0
	rep, err := eval.SweepRegions(r.white, j.xs, j.n, rng, func(done int) {
		r.censusDone.Add(int64(done - last))
		last = done
	})
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// submitRequest is the JSON POST /jobs wire form. The binary form is one
// float frame of probes with the op named by the OpHeader request header
// (and, for census jobs, the probe budget by the NHeader header).
type submitRequest struct {
	Op string      `json:"op"`
	Xs [][]float64 `json:"xs"`
	// N is a census job's probe budget (0: 64 per submitted anchor).
	N int `json:"n,omitempty"`
}

// OpHeader names the job op on binary submissions, whose frame body has no
// room for an envelope field. Absent means predict, like the JSON form.
const OpHeader = "X-PLM-Job-Op"

// NHeader carries a census job's probe budget on binary submissions.
const NHeader = "X-PLM-Job-Probes"

// Mount attaches the async job endpoints to a prediction server and
// adopts its wire seam (codec stats, body cap).
func (r *Runner) Mount(s *api.Server) {
	r.wireStats = s.WireStats()
	r.maxBody = s.MaxBody
	s.Handle("POST /jobs", r.handleSubmit)
	s.Handle("GET /jobs/{id}", r.handleGet)
}

func (r *Runner) handleSubmit(w http.ResponseWriter, req *http.Request) {
	ex := wire.NewExchange(req, r.wireStats, r.maxBody)
	var body submitRequest
	if ex.BinaryIn() {
		rows, err := ex.ReadMat("xs")
		if err != nil {
			ex.Error(w, wire.DecodeStatus(err), fmt.Errorf("jobs: decode request: %w", err))
			return
		}
		body = submitRequest{Op: req.Header.Get(OpHeader), Xs: rows}
		if v := req.Header.Get(NHeader); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				ex.Error(w, http.StatusBadRequest, fmt.Errorf("jobs: bad %s %q", NHeader, v))
				return
			}
			body.N = n
		}
	} else if err := ex.ReadJSON(&body); err != nil {
		ex.Error(w, wire.DecodeStatus(err), fmt.Errorf("jobs: decode request: %w", err))
		return
	}
	if body.Op == "" {
		body.Op = OpPredict
	}
	xs := make([]mat.Vec, len(body.Xs))
	for i, x := range body.Xs {
		xs[i] = mat.Vec(x)
	}
	id, err := r.SubmitN(body.Op, xs, body.N)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBacklogFull) {
			status = http.StatusServiceUnavailable
			// Tell the shedding client when to come back: one mean job's
			// worth of drain time, in the standard header.
			w.Header().Set("Retry-After",
				strconv.FormatInt(int64(r.RetryAfter()/time.Second), 10))
		}
		ex.Error(w, status, err)
		return
	}
	// The acknowledgement is pure metadata — JSON in every codec pairing.
	ex.WriteJSON(w, http.StatusAccepted, View{ID: id, Op: body.Op, Status: StatusQueued, N: len(xs)})
}

func (r *Runner) handleGet(w http.ResponseWriter, req *http.Request) {
	ex := wire.NewExchange(req, r.wireStats, r.maxBody)
	view, ok := r.Get(req.PathValue("id"))
	if !ok {
		ex.Error(w, http.StatusNotFound, fmt.Errorf("jobs: unknown job %q", req.PathValue("id")))
		return
	}
	window, err := parseWindow(req)
	if err != nil {
		ex.Error(w, http.StatusBadRequest, err)
		return
	}
	if bin, ok := ex.BinaryOut(); ok {
		r.streamView(w, ex, view, window, bin)
		return
	}
	if window.present {
		view = paginate(view, window)
	}
	ex.WriteJSON(w, http.StatusOK, view)
}

// headerSafe makes an error message safe to carry in a response header.
func headerSafe(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}
