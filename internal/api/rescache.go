package api

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/mat"
	"repro/internal/plm"
)

// ResponseCache is a bounded LRU response cache meant to sit in front of a
// served model — plmserve mounts it between the HTTP server and the shard
// router (`plmserve -cache N`). It reuses Cache's exact-bit key scheme, but
// unlike Cache's FIFO it promotes entries on every hit, so a hot working
// set survives a long tail of one-off probes.
//
// Batch requests are answered entry-wise: hits come from the cache, the
// misses travel to the inner model as one (smaller) batch, and the merged
// answers preserve submission order. It implements plm.Model and
// plm.BatchPredictor and is safe for concurrent use.
type ResponseCache struct {
	inner plm.Model

	mu sync.Mutex
	c  *lru.Cache[mat.Vec]

	hits, misses, evictions atomic.Int64
}

// NewResponseCache wraps inner with an LRU cache of at most capacity
// responses. Capacity must be positive — an unbounded response cache in a
// server is a memory leak with a flag name.
func NewResponseCache(inner plm.Model, capacity int) (*ResponseCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("api: response cache capacity %d, need > 0", capacity)
	}
	return &ResponseCache{inner: inner, c: lru.New[mat.Vec](capacity)}, nil
}

// Inner returns the wrapped model, so stats handlers can reach through to a
// shard's per-replica counters.
func (rc *ResponseCache) Inner() plm.Model { return rc.inner }

// Dim forwards to the wrapped model.
func (rc *ResponseCache) Dim() int { return rc.inner.Dim() }

// Classes forwards to the wrapped model.
func (rc *ResponseCache) Classes() int { return rc.inner.Classes() }

// CacheStats returns the hit, miss and eviction counts.
func (rc *ResponseCache) CacheStats() (hits, misses, evictions int64) {
	return rc.hits.Load(), rc.misses.Load(), rc.evictions.Load()
}

// StoreStats returns the unified accounting shape (see plm.StoreStats).
// Bytes counts the cached probability vectors' float payloads.
func (rc *ResponseCache) StoreStats() plm.StoreStats {
	rc.mu.Lock()
	size := rc.c.Len()
	rc.mu.Unlock()
	var bytes int64
	if size > 0 {
		bytes = int64(size) * int64(rc.inner.Classes()) * 8
	}
	return plm.StoreStats{
		Hits:      rc.hits.Load(),
		Misses:    rc.misses.Load(),
		Evictions: rc.evictions.Load(),
		Size:      size,
		Bytes:     bytes,
	}
}

// Len returns the number of cached responses.
func (rc *ResponseCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.c.Len()
}

// lookup returns the cached response for key, promoting it on a hit.
func (rc *ResponseCache) lookup(key string) (mat.Vec, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.c.Get(key)
}

// insert stores p under key, evicting the least-recently-used entry when
// full. Concurrent inserts of the same key keep the incumbent.
func (rc *ResponseCache) insert(key string, p mat.Vec) {
	rc.mu.Lock()
	_, _, evicted := rc.c.Add(key, p)
	rc.mu.Unlock()
	if evicted {
		rc.evictions.Add(1)
	}
}

// PredictErr serves from the cache when possible, otherwise forwards —
// through the inner model's own error surface when it has one, so a shard
// outage behind the cache reaches the server as an error (and is not
// cached) instead of being memoized as a fabricated answer.
func (rc *ResponseCache) PredictErr(x mat.Vec) (mat.Vec, error) {
	return rc.PredictErrCtx(context.Background(), x)
}

// PredictErrCtx is PredictErr with the caller's context threaded through to
// a context-aware inner model — the cache must not be the layer where a
// deadline stops propagating. Hits never consult the context: a cached
// answer is free.
func (rc *ResponseCache) PredictErrCtx(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	key := cacheKey(x)
	if p, ok := rc.lookup(key); ok {
		rc.hits.Add(1)
		return p.Clone(), nil
	}
	rc.misses.Add(1)
	var p mat.Vec
	switch ep := rc.inner.(type) {
	case ctxErrPredictor:
		got, err := ep.PredictErrCtx(ctx, x)
		if err != nil {
			return nil, err
		}
		p = got
	case errPredictor:
		got, err := ep.PredictErr(x)
		if err != nil {
			return nil, err
		}
		p = got
	default:
		p = rc.inner.Predict(x)
	}
	rc.insert(key, p.Clone())
	return p, nil
}

// Predict is PredictErr behind the errorless plm.Model surface; a total
// inner failure degrades to the uniform distribution like Client.Predict.
func (rc *ResponseCache) Predict(x mat.Vec) mat.Vec {
	p, err := rc.PredictErr(x)
	if err != nil {
		out := make(mat.Vec, rc.Classes())
		return out.Fill(1 / float64(rc.Classes()))
	}
	return p
}

// PredictBatch answers cached items locally and ships only the misses to
// the inner model (as one batch when it has a batch path), merging answers
// back in submission order. Duplicate probes within one batch coalesce into
// a single inner query; like Cache's in-flight coalescing, the duplicates
// count as hits — they cost no model query. The first inner error fails the
// whole batch, matching Shard's all-or-nothing contract.
func (rc *ResponseCache) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	return rc.PredictBatchCtx(context.Background(), xs)
}

// PredictBatchCtx is PredictBatch with the caller's context threaded
// through to a context-aware inner model, so a caller timeout cancels the
// miss batch's fan-out behind the cache.
func (rc *ResponseCache) PredictBatchCtx(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	out := make([]mat.Vec, len(xs))
	keys := make([]string, len(xs))
	slots := make([]int, len(xs)) // miss slot per item; -1 = cache hit
	slotByKey := make(map[string]int)
	var missXs []mat.Vec
	var missKeys []string
	for i, x := range xs {
		keys[i] = cacheKey(x)
		if p, ok := rc.lookup(keys[i]); ok {
			rc.hits.Add(1)
			out[i] = p.Clone()
			slots[i] = -1
			continue
		}
		if s, ok := slotByKey[keys[i]]; ok {
			rc.hits.Add(1) // coalesced with an earlier miss in this batch
			slots[i] = s
			continue
		}
		rc.misses.Add(1)
		slotByKey[keys[i]] = len(missXs)
		slots[i] = len(missXs)
		missXs = append(missXs, x)
		missKeys = append(missKeys, keys[i])
	}
	if len(missXs) == 0 {
		return out, nil
	}
	var ys []mat.Vec
	var err error
	if cb, ok := rc.inner.(ctxBatchPredictor); ok {
		ys, err = cb.PredictBatchCtx(ctx, missXs)
	} else {
		ys, err = predictAllErr(rc.inner, missXs)
	}
	if err != nil {
		return nil, err
	}
	// One insert per distinct miss, in submission order — inserting in map
	// iteration order would make the cache's recency and eviction sequence
	// differ run to run for the same batch.
	for s, key := range missKeys {
		rc.insert(key, ys[s].Clone())
	}
	for i := range xs {
		if slots[i] >= 0 {
			out[i] = ys[slots[i]].Clone()
		}
	}
	return out, nil
}

var _ plm.Model = (*ResponseCache)(nil)
var _ plm.BatchPredictor = (*ResponseCache)(nil)
var _ ctxErrPredictor = (*ResponseCache)(nil)
var _ ctxBatchPredictor = (*ResponseCache)(nil)
