package mat

// dotPack4x4 computes four 4-lane dot products over a shared k dimension:
// out[4j+l] = Σ_t pack[4t+l]·bj[t]. Implemented in gemm_arm64.s with NEON
// mul-then-add — two 2-lane float64 vectors carry each quad of packed A
// rows — so every output element is one ascending-t two-rounding chain,
// bit-identical to scalar evaluation. Callers must have checked the active
// tier and k > 0.
//
// The assembly only dereferences its pointers during the call and retains
// none of them, so the noescape pragma is sound (same argument as the amd64
// kernel: without it every gemmBT call heap-allocates its accumulator
// tile).
//
//go:noescape
func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64)

// dotPack8x4 is the AVX-512 microkernel and has no arm64 implementation;
// the dispatch never selects TierAVX512 here (haveAVX512 is false).
func dotPack8x4(pack, b0, b1, b2, b3 *float64, k int, out *[32]float64) {
	panic("mat: dotPack8x4 without AVX-512 support")
}

// NEON (ASIMD) is architecturally baseline on arm64, so the packed
// microkernel is always available; the AVX tiers never are.
const (
	haveNEON   = true
	haveAVX2   = false
	haveAVX512 = false
)
