package plm

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestBinaryAdapter(t *testing.T) {
	b := NewBinary(func(x mat.Vec) float64 { return 0.8 }, 3)
	if b.Dim() != 3 || b.Classes() != 2 {
		t.Fatal("metadata wrong")
	}
	p := b.Predict(mat.Vec{0, 0, 0})
	if math.Abs(p[1]-0.8) > 1e-15 || math.Abs(p[0]-0.2) > 1e-15 {
		t.Fatalf("Predict = %v", p)
	}
}

func TestBinaryClampsOutOfRangeScores(t *testing.T) {
	high := NewBinary(func(mat.Vec) float64 { return 1.7 }, 1)
	if p := high.Predict(mat.Vec{0}); p[1] != 1 || p[0] != 0 {
		t.Fatalf("high clamp = %v", p)
	}
	low := NewBinary(func(mat.Vec) float64 { return -0.2 }, 1)
	if p := low.Predict(mat.Vec{0}); p[1] != 0 || p[0] != 1 {
		t.Fatalf("low clamp = %v", p)
	}
}

func TestBinaryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBinary(nil, 2) },
		func() { NewBinary(func(mat.Vec) float64 { return 0 }, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBinaryLogOddsIsSigmoidLogit(t *testing.T) {
	// For a sigmoid score s = σ(w·x+b), ln(p1/p0) must recover w·x+b
	// exactly — the identity OpenAPI exploits.
	w := mat.Vec{2, -1}
	const bias = 0.5
	model := NewBinary(func(x mat.Vec) float64 {
		return 1 / (1 + math.Exp(-(w.Dot(x) + bias)))
	}, 2)
	for _, x := range []mat.Vec{{0, 0}, {1, 2}, {-3, 0.5}} {
		p := model.Predict(x)
		got := LogOdds(p, 1, 0)
		want := w.Dot(x) + bias
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("log-odds %v != logit %v at %v", got, want, x)
		}
	}
}
