package analysis

import "testing"

func TestKernelpurityFixtures(t *testing.T) {
	runFixtures(t, []*Analyzer{Kernelpurity}, "repro/internal/mat", "kernelpurity")
}

// Outside internal/mat the same shapes are unconstrained.
func TestKernelpurityScope(t *testing.T) {
	runExpectClean(t, []*Analyzer{Kernelpurity}, "repro/internal/nn", "kernelpurity")
}
