package core

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/plm"
)

func TestPoolInterpretsAllInstances(t *testing.T) {
	model := plnnModel(80, 5, 8, 3)
	pool := NewPool(Config{Seed: 81}, 4)
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	rng := rand.New(rand.NewSource(82))
	xs := make([]mat.Vec, 12)
	for i := range xs {
		xs[i] = randVec(rng, 5)
	}
	results := pool.InterpretMany(model, xs)
	if len(results) != len(xs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		truth, err := model.LocalAt(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		c := r.Interp.Class
		if dist := r.Interp.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-4 {
			t.Fatalf("instance %d: L1Dist %v", i, dist)
		}
	}
}

func TestPoolSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(Config{}, 0)
}

func TestPoolConcurrentModelAccessIsCounted(t *testing.T) {
	// The counter is concurrency-safe; totals must match the sum of the
	// reported per-instance query counts.
	model := plnnModel(83, 4, 6, 2)
	counter := api.NewCounter(model)
	pool := NewPool(Config{Seed: 84}, 3)
	rng := rand.New(rand.NewSource(85))
	xs := make([]mat.Vec, 9)
	for i := range xs {
		xs[i] = randVec(rng, 4)
	}
	results := pool.InterpretMany(counter, xs)
	var want int64
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		// Queries includes the anchor probe, which InterpretMany issued in
		// its batched argmax pre-query — so the reported sums match the
		// counter exactly, with no separate per-instance Predict.
		want += int64(r.Interp.Queries)
	}
	if counter.Count() != want {
		t.Fatalf("counter %d != sum of reported queries %d", counter.Count(), want)
	}
}

// interpEqual reports whether two interpretations are bit-identical in
// every recovered quantity and every piece of bookkeeping.
func interpEqual(a, b *plm.Interpretation) bool {
	return reflect.DeepEqual(a, b)
}

func TestPoolDeterministicAcrossRuns(t *testing.T) {
	// Static striping pins every instance to one worker's RNG stream, so
	// two pools with the same seed and size must agree bit for bit however
	// the goroutines were scheduled.
	model := plnnModel(90, 6, 8, 3)
	rng := rand.New(rand.NewSource(91))
	xs := make([]mat.Vec, 11)
	for i := range xs {
		xs[i] = randVec(rng, 6)
	}
	first := NewPool(Config{Seed: 92}, 4).InterpretMany(model, xs)
	second := NewPool(Config{Seed: 92}, 4).InterpretMany(model, xs)
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("instance %d failed: %v / %v", i, first[i].Err, second[i].Err)
		}
		if !interpEqual(first[i].Interp, second[i].Interp) {
			t.Fatalf("instance %d differs across identically seeded runs", i)
		}
	}
}

func TestPoolAggregationPreservesResults(t *testing.T) {
	// The determinism regression the batching work must not break: for a
	// fixed worker count, interpretations through an aggregator are
	// bit-identical to interpretations against the bare model.
	model := plnnModel(93, 6, 8, 3)
	rng := rand.New(rand.NewSource(94))
	xs := make([]mat.Vec, 10)
	for i := range xs {
		xs[i] = randVec(rng, 6)
	}
	plain := NewPool(Config{Seed: 95}, 4).InterpretMany(model, xs)

	agg := api.NewAggregator(model, api.AggregatorConfig{Window: time.Millisecond})
	defer agg.Close()
	batched := NewPool(Config{Seed: 95}, 4).InterpretMany(agg, xs)

	for i := range plain {
		if plain[i].Err != nil || batched[i].Err != nil {
			t.Fatalf("instance %d failed: %v / %v", i, plain[i].Err, batched[i].Err)
		}
		if !interpEqual(plain[i].Interp, batched[i].Interp) {
			t.Fatalf("instance %d: aggregated result differs from plain", i)
		}
	}
	if agg.Probes() == 0 {
		t.Fatal("aggregator was bypassed")
	}
}

func TestPoolFailsFastOnDeadAPI(t *testing.T) {
	// Regression: a dead remote degrades the argmax pre-query to uniform
	// distributions, so every job used to "converge" happily on garbage
	// anchors — class 0 of a constant model — with a clean Result.Err. The
	// pool must notice the client's sticky error right after the pre-query
	// and fail every instance instead.
	model := plnnModel(96, 4, 6, 3)
	ts := httptest.NewServer(api.NewServer(model, "doomed"))
	client, err := api.Dial(ts.URL, &http.Client{Timeout: 300 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close() // the API dies before the bulk job starts
	rng := rand.New(rand.NewSource(97))
	xs := make([]mat.Vec, 6)
	for i := range xs {
		xs[i] = randVec(rng, 4)
	}
	results := NewPool(Config{Seed: 98}, 2).InterpretMany(client, xs)
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("instance %d \"succeeded\" against a dead API", i)
		}
		if r.Interp != nil {
			t.Fatalf("instance %d carries an interpretation from garbage anchors", i)
		}
	}
}

// staleErrModel works perfectly but carries a sticky error from an earlier
// run — the reused-client case.
type staleErrModel struct {
	plm.Model
	err error
}

func (m staleErrModel) Err() error { return m.err }

func TestPoolStaleStickyErrorFailsLoudly(t *testing.T) {
	// A pre-existing sticky error is ambiguous (a fresh failure would hide
	// behind it), so the pool must refuse loudly and point at ResetErr
	// rather than either trusting the wire or mislabeling the old error as
	// a pre-query failure.
	model := plnnModel(99, 4, 6, 3)
	rng := rand.New(rand.NewSource(100))
	xs := []mat.Vec{randVec(rng, 4), randVec(rng, 4)}
	stale := staleErrModel{Model: model, err: errors.New("old transient")}
	for i, r := range NewPool(Config{Seed: 101}, 2).InterpretMany(stale, xs) {
		if r.Err == nil {
			t.Fatalf("instance %d ignored the stale sticky error", i)
		}
		if !strings.Contains(r.Err.Error(), "ResetErr") {
			t.Fatalf("instance %d error does not point at ResetErr: %v", i, r.Err)
		}
	}
}

func TestPoolEmptyInput(t *testing.T) {
	model := plnnModel(86, 3, 4, 2)
	pool := NewPool(Config{Seed: 87}, 2)
	if got := pool.InterpretMany(model, nil); len(got) != 0 {
		t.Fatalf("got %d results for empty input", len(got))
	}
}
