package eval

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Census quantifies the locally-linear-region structure the paper's §II
// argument rests on (region counts grow exponentially with network width,
// citing Montúfar et al.): how many distinct regions a probe sample touches
// and how large the regions around data points are.
type Census struct {
	Probes          int
	DistinctRegions int
	// LargestShare is the fraction of probes landing in the most popular
	// region (1.0 = the sampler never left one region).
	LargestShare float64
	// MedianEdge is the median edge length of the largest same-region
	// hypercube found around each probe by bisection — an empirical proxy
	// for local region size, the quantity OpenAPI's adaptive shrinking has
	// to discover per instance.
	MedianEdge float64
	// MinEdge and MaxEdge bound the same measurement.
	MinEdge, MaxEdge float64
}

// RegionCensus probes the model at n points drawn around the given anchors
// (uniform in a unit hypercube centred on a random anchor each) and reports
// region statistics. maxBisect bounds the per-probe edge search.
func RegionCensus(model plm.RegionModel, anchors []mat.Vec, n, maxBisect int, rng *rand.Rand) (Census, error) {
	if len(anchors) == 0 {
		return Census{}, fmt.Errorf("eval: census needs at least one anchor")
	}
	if n <= 0 {
		n = 100
	}
	if maxBisect <= 0 {
		maxBisect = 20
	}
	counts := make(map[string]int, n)
	edges := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		anchor := anchors[rng.Intn(len(anchors))]
		probe := sample.NewHypercube(anchor, 1.0).Sample(rng)
		counts[model.RegionKey(probe)]++
		edges = append(edges, sameRegionEdge(model, probe, rng, maxBisect))
	}
	var largest int
	for _, c := range counts {
		if c > largest {
			largest = c
		}
	}
	s := mat.Summarize(edges)
	return Census{
		Probes:          n,
		DistinctRegions: len(counts),
		LargestShare:    float64(largest) / float64(n),
		MedianEdge:      s.Median,
		MinEdge:         s.Min,
		MaxEdge:         s.Max,
	}, nil
}

// SweepReport summarizes one region-census sweep: how many probes were
// pushed through the model's closed-form path and how many distinct locally
// linear regions they touched. It is the async census job's result shape.
type SweepReport struct {
	Probes          int `json:"probes"`
	DistinctRegions int `json:"distinct_regions"`
}

// sweepChunk is how many probes one batched LocalAtAll call carries.
const sweepChunk = 256

// localBatcher is the batched closed-form surface (openbox.PLNN): one
// forward per chunk, one composition per distinct region.
type localBatcher interface {
	LocalAtAll(xs []mat.Vec) ([]*plm.Linear, error)
}

// SweepRegions draws n probes uniformly from unit hypercubes centred on
// random anchors and resolves each probe's closed-form classifier through
// model.LocalAt (batched via LocalAtAll when the model offers it). The
// sweep's entire purpose is its side effect: every region it touches lands
// in whatever RegionStore sits behind the model — a RAM cache, or the disk
// atlas a census job pre-populates so later interpretation requests are
// O(1) lookups. progress, when non-nil, receives the cumulative probe count
// after each chunk; it must be safe for the caller's concurrency.
func SweepRegions(model plm.RegionModel, anchors []mat.Vec, n int, rng *rand.Rand, progress func(done int)) (SweepReport, error) {
	if len(anchors) == 0 {
		return SweepReport{}, fmt.Errorf("eval: census sweep needs at least one anchor")
	}
	if n <= 0 {
		n = 64 * len(anchors)
	}
	distinct := make(map[string]bool)
	done := 0
	for done < n {
		count := sweepChunk
		if rem := n - done; rem < count {
			count = rem
		}
		probes := make([]mat.Vec, count)
		for i := range probes {
			anchor := anchors[rng.Intn(len(anchors))]
			probes[i] = sample.NewHypercube(anchor, 1.0).Sample(rng)
		}
		if lb, ok := model.(localBatcher); ok {
			lins, err := lb.LocalAtAll(probes)
			if err != nil {
				return SweepReport{}, fmt.Errorf("eval: census sweep: %w", err)
			}
			for _, lin := range lins {
				distinct[lin.Key] = true
			}
		} else {
			for _, p := range probes {
				lin, err := model.LocalAt(p)
				if err != nil {
					return SweepReport{}, fmt.Errorf("eval: census sweep: %w", err)
				}
				key := lin.Key
				if key == "" {
					key = model.RegionKey(p)
				}
				distinct[key] = true
			}
		}
		done += count
		if progress != nil {
			progress(done)
		}
	}
	return SweepReport{Probes: done, DistinctRegions: len(distinct)}, nil
}

// sameRegionEdge bisects for the largest hypercube edge around x whose
// sampled corners stay in x's region (8 probe corners per candidate edge).
func sameRegionEdge(model plm.RegionModel, x mat.Vec, rng *rand.Rand, maxBisect int) float64 {
	key := model.RegionKey(x)
	inRegion := func(edge float64) bool {
		cube := sample.NewHypercube(x, edge)
		for i := 0; i < 8; i++ {
			if model.RegionKey(cube.Sample(rng)) != key {
				return false
			}
		}
		return true
	}
	// Exponential search down from 1.0 until inside, then refine upward.
	edge := 1.0
	steps := 0
	for !inRegion(edge) && steps < maxBisect {
		edge /= 2
		steps++
	}
	if steps >= maxBisect {
		return edge
	}
	lo, hi := edge, edge*2
	for i := steps; i < maxBisect; i++ {
		mid := (lo + hi) / 2
		if inRegion(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SolverAblation compares OpenAPI's three linear-algebra strategies on the
// same instances: identical answers, different cost. It backs the A1
// ablation in DESIGN.md.
type SolverAblation struct {
	Solver     core.Solver
	MeanL1     float64 // distance to ground truth, should match across solvers
	MeanMillis float64 // wall time per instance
	Failures   int
}

// AblateSolvers runs every solver over the instances and reports exactness
// and timing.
func AblateSolvers(model plm.RegionModel, xs []mat.Vec, seed int64) ([]SolverAblation, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("eval: solver ablation needs instances")
	}
	solvers := []core.Solver{core.SolverSharedLU, core.SolverSharedQR, core.SolverPerPairLU}
	out := make([]SolverAblation, 0, len(solvers))
	for _, s := range solvers {
		o := core.New(core.Config{Seed: seed, Solver: s})
		var l1s []float64
		failures := 0
		start := time.Now()
		for _, x := range xs {
			c := model.Predict(x).ArgMax()
			interp, err := o.Interpret(model, x, c)
			if err != nil {
				failures++
				continue
			}
			l1, err := L1Dist(model, x, interp)
			if err != nil {
				return nil, err
			}
			l1s = append(l1s, l1)
		}
		elapsed := time.Since(start)
		out = append(out, SolverAblation{
			Solver:     s,
			MeanL1:     mat.Summarize(l1s).Mean,
			MeanMillis: float64(elapsed.Milliseconds()) / float64(len(xs)),
			Failures:   failures,
		})
	}
	return out, nil
}
