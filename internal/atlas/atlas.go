// Package atlas is the disk-backed region store: an append-log + index of
// composed closed-form region models keyed by PatternKey, shared across
// restarts and replicas. It turns exact interpretation from a compute
// service into a data service — once a region's (W_eff, b_eff) has been
// composed anywhere in the fleet, every later request is a checksummed
// pread instead of a GEMM chain.
//
// On-disk layout (all integers little-endian):
//
//	file   = header record*
//	header = "PLMA" version:u8 reserved:u8[3]          (8 bytes)
//	record = "PLMR" bodyLen:u32 crc:u32 body           (12-byte prefix)
//	body   = keyLen:u16 key PLMB(W) PLMB(B as one row)
//
// The float payloads ride the PR 7 wire framing (internal/wire "PLMB"
// frames, raw Float64bits), so a read-back is bit-identical to the
// composition that produced it. crc is CRC-32 (IEEE) over the whole body.
//
// Crash story: records are appended atomically from the reader's point of
// view only up to the last fsync, so Open rescans the log. A short or
// unframed tail (torn write) is truncated; a mid-file record whose checksum
// fails is quarantined — skipped, counted, never served — rather than
// fatal. The index (key → offset) is rebuilt on Open without decoding any
// floats, so reopening a large atlas costs one sequential read.
//
// Concurrency: one writer at a time appends under the write lock; any
// number of readers resolve offsets under the read lock and then pread
// concurrently (os.File.ReadAt is goroutine-safe).
package atlas

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

const (
	fileMagic   = "PLMA"
	fileVersion = 1
	headerLen   = 8

	recordMagic  = "PLMR"
	recordPrefix = 12 // magic + bodyLen + crc

	// maxBody bounds a single record body. The largest closed form in this
	// repository is a few MB; a declared length beyond this is framing
	// garbage, not data.
	maxBody = 1 << 30
)

// recordRef locates one committed record's body in the log.
type recordRef struct {
	off int64 // body offset
	n   int32 // body length
	crc uint32
}

// Atlas is the open store. Create with Open; it implements the
// openbox.RegionStore contract structurally (Lookup/Insert/Stats/Len).
type Atlas struct {
	f *os.File

	mu    sync.RWMutex
	index map[string]recordRef
	size  int64 // committed file length (header + whole records)

	hits        atomic.Int64
	misses      atomic.Int64
	quarantined atomic.Int64
	torn        atomic.Int64 // bytes truncated from the tail at Open
}

// Open opens (creating if absent) the atlas at path and rebuilds the key
// index from the log. A torn tail is truncated in place; records with
// checksum mismatches are quarantined and not indexed.
func Open(path string) (*Atlas, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atlas: open %s: %w", path, err)
	}
	a := &Atlas{f: f, index: make(map[string]recordRef)}
	if err := a.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// recover validates the header, scans the log to rebuild the index, and
// truncates any torn tail so later appends start on a clean boundary.
func (a *Atlas) recover() error {
	fi, err := a.f.Stat()
	if err != nil {
		return fmt.Errorf("atlas: stat: %w", err)
	}
	end := fi.Size()
	if end < headerLen {
		// Empty or a header torn mid-write: start the log fresh.
		if end > 0 {
			a.torn.Add(end)
		}
		return a.reset()
	}
	var hdr [headerLen]byte
	if _, err := a.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("atlas: read header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		// Never clobber a file that was not ours to begin with.
		return fmt.Errorf("atlas: bad magic % x: not an atlas file", hdr[:4])
	}
	if hdr[4] != fileVersion {
		return fmt.Errorf("atlas: unsupported version %d", hdr[4])
	}

	r := io.NewSectionReader(a.f, headerLen, end-headerLen)
	br := &countReader{r: r}
	off := int64(headerLen)
	for {
		key, ref, err := scanRecord(br, off)
		if err == io.EOF {
			break
		}
		if err == errTorn {
			a.torn.Add(end - off)
			break
		}
		if err == errQuarantine {
			a.quarantined.Add(1)
			off = headerLen + br.n
			continue
		}
		if err != nil {
			return err
		}
		a.index[key] = ref
		off = headerLen + br.n
	}
	a.size = off
	if off < end {
		if err := a.f.Truncate(off); err != nil {
			return fmt.Errorf("atlas: truncate torn tail: %w", err)
		}
	}
	return nil
}

// reset truncates the file to a fresh header.
func (a *Atlas) reset() error {
	if err := a.f.Truncate(0); err != nil {
		return fmt.Errorf("atlas: truncate: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], fileMagic)
	hdr[4] = fileVersion
	if _, err := a.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("atlas: write header: %w", err)
	}
	a.size = headerLen
	return nil
}

var (
	errTorn       = fmt.Errorf("atlas: torn record")
	errQuarantine = fmt.Errorf("atlas: checksum mismatch")
)

// countReader tracks how many bytes have been consumed from r.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanRecord reads one record starting at the reader's position (whose file
// offset is off) and returns its key and ref without decoding floats.
// io.EOF means a clean end of log; errTorn means the tail from off on is
// not a whole well-framed record; errQuarantine means the framing was
// intact but the checksum failed (the reader is positioned past the body).
func scanRecord(r *countReader, off int64) (string, recordRef, error) {
	var prefix [recordPrefix]byte
	if _, err := io.ReadFull(r, prefix[:1]); err != nil {
		if err == io.EOF {
			return "", recordRef{}, io.EOF
		}
		return "", recordRef{}, errTorn
	}
	if _, err := io.ReadFull(r, prefix[1:]); err != nil {
		return "", recordRef{}, errTorn
	}
	if string(prefix[:4]) != recordMagic {
		return "", recordRef{}, errTorn
	}
	bodyLen := binary.LittleEndian.Uint32(prefix[4:])
	crc := binary.LittleEndian.Uint32(prefix[8:])
	if bodyLen > maxBody {
		return "", recordRef{}, errTorn
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return "", recordRef{}, errTorn
	}
	if crc32.ChecksumIEEE(body) != crc {
		return "", recordRef{}, errQuarantine
	}
	key, err := bodyKey(body)
	if err != nil {
		return "", recordRef{}, errQuarantine
	}
	return key, recordRef{off: off + recordPrefix, n: int32(bodyLen), crc: crc}, nil
}

// bodyKey parses just the key prefix of a record body.
func bodyKey(body []byte) (string, error) {
	if len(body) < 2 {
		return "", fmt.Errorf("atlas: body too short for key length")
	}
	kl := int(binary.LittleEndian.Uint16(body))
	if kl == 0 || len(body) < 2+kl {
		return "", fmt.Errorf("atlas: key length %d exceeds body", kl)
	}
	return string(body[2 : 2+kl]), nil
}

// encodeBody serializes a closed form as one record body.
func encodeBody(key string, lin *plm.Linear) ([]byte, error) {
	if len(key) == 0 || len(key) > 1<<16-1 {
		return nil, fmt.Errorf("atlas: key length %d out of range", len(key))
	}
	var buf bytes.Buffer
	var kl [2]byte
	binary.LittleEndian.PutUint16(kl[:], uint16(len(key)))
	buf.Write(kl[:])
	buf.WriteString(key)
	rows := make([][]float64, lin.W.Rows())
	for i := range rows {
		rows[i] = lin.W.RawRow(i)
	}
	if err := wire.WriteFrame(&buf, rows, false); err != nil {
		return nil, fmt.Errorf("atlas: encode W: %w", err)
	}
	if err := wire.WriteFrame(&buf, [][]float64{lin.B}, false); err != nil {
		return nil, fmt.Errorf("atlas: encode B: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBody parses a record body back into the closed form. The read-back
// is bit-identical: payloads are raw Float64bits through the wire framing.
func decodeBody(body []byte) (string, *plm.Linear, error) {
	key, err := bodyKey(body)
	if err != nil {
		return "", nil, err
	}
	rest := body[2+len(key):]
	fr := wire.NewFrameReader(bytes.NewReader(rest), int64(len(rest))+1)
	wRows, err := fr.Next()
	if err != nil {
		return "", nil, fmt.Errorf("atlas: decode W: %w", err)
	}
	bRows, err := fr.Next()
	if err != nil {
		return "", nil, fmt.Errorf("atlas: decode B: %w", err)
	}
	if len(bRows) != 1 {
		return "", nil, fmt.Errorf("atlas: bias frame has %d rows, want 1", len(bRows))
	}
	vecs := make([]mat.Vec, len(wRows))
	for i, r := range wRows {
		vecs[i] = mat.Vec(r)
	}
	lin, err := plm.NewLinear(mat.FromRows(vecs...), mat.Vec(bRows[0]), key)
	if err != nil {
		return "", nil, fmt.Errorf("atlas: rebuild closed form: %w", err)
	}
	return key, lin, nil
}

// Lookup returns the stored closed form under key, decoded fresh from disk
// and verified against the record checksum. A record that fails its
// checksum at read time is quarantined (dropped from the index, counted)
// and reported as a miss rather than served corrupt.
func (a *Atlas) Lookup(key string) (*plm.Linear, bool) {
	a.mu.RLock()
	ref, ok := a.index[key]
	a.mu.RUnlock()
	if !ok {
		a.misses.Add(1)
		return nil, false
	}
	body := make([]byte, ref.n)
	if _, err := a.f.ReadAt(body, ref.off); err != nil {
		a.quarantine(key)
		return nil, false
	}
	if crc32.ChecksumIEEE(body) != ref.crc {
		a.quarantine(key)
		return nil, false
	}
	gotKey, lin, err := decodeBody(body)
	if err != nil || gotKey != key {
		a.quarantine(key)
		return nil, false
	}
	a.hits.Add(1)
	return lin, true
}

// quarantine drops a key whose record failed verification at read time.
func (a *Atlas) quarantine(key string) {
	a.mu.Lock()
	_, present := a.index[key]
	delete(a.index, key)
	a.mu.Unlock()
	if present {
		a.quarantined.Add(1)
	}
	a.misses.Add(1)
}

// Insert appends the closed form under key and returns the retained value.
// A key already present is left alone: two composes of the same PatternKey
// are bit-identical by construction, so the argument stands in for the
// incumbent without a disk read.
func (a *Atlas) Insert(key string, lin *plm.Linear) *plm.Linear {
	body, err := encodeBody(key, lin)
	if err != nil {
		// An unencodable record (empty key, ragged matrix) cannot be
		// persisted; serve the in-RAM value and move on.
		return lin
	}
	rec := make([]byte, recordPrefix+len(body))
	copy(rec[:4], recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(body))
	copy(rec[recordPrefix:], body)

	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.index[key]; ok {
		return lin
	}
	if _, err := a.f.WriteAt(rec, a.size); err != nil {
		// Append failed (disk full, closed file): the store degrades to a
		// pass-through; the caller still has the composed value.
		return lin
	}
	a.index[key] = recordRef{
		off: a.size + recordPrefix,
		n:   int32(len(body)),
		crc: binary.LittleEndian.Uint32(rec[8:]),
	}
	a.size += int64(len(rec))
	return lin
}

// Stats reports the unified store accounting: Size is indexed regions,
// Bytes the committed log length. The atlas never evicts.
func (a *Atlas) Stats() plm.StoreStats {
	a.mu.RLock()
	size, bytes := len(a.index), a.size
	a.mu.RUnlock()
	return plm.StoreStats{
		Hits:   a.hits.Load(),
		Misses: a.misses.Load(),
		Size:   size,
		Bytes:  bytes,
	}
}

// Len returns the number of indexed regions.
func (a *Atlas) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.index)
}

// Quarantined returns how many records have been quarantined (at Open or at
// read time) since this handle opened.
func (a *Atlas) Quarantined() int64 { return a.quarantined.Load() }

// TornBytes returns how many bytes of torn tail Open truncated.
func (a *Atlas) TornBytes() int64 { return a.torn.Load() }

// Keys returns the indexed region keys in unspecified order.
func (a *Atlas) Keys() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.index))
	for k := range a.index {
		out = append(out, k) //plmvet:allow(detfloat) keys are sorted below before any ordered use
	}
	sort.Strings(out)
	return out
}

// Sync flushes appended records to stable storage.
func (a *Atlas) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Sync()
}

// Close syncs and closes the log.
func (a *Atlas) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}

// WriteSnapshot streams the committed log — itself a valid atlas file — to
// w. Concurrent appends after the snapshot point are simply not included;
// the bytes [0, size) are immutable once committed.
func (a *Atlas) WriteSnapshot(w io.Writer) (int64, error) {
	a.mu.RLock()
	size := a.size
	a.mu.RUnlock()
	return io.Copy(w, io.NewSectionReader(a.f, 0, size))
}

// Ingest merges a snapshot stream (as produced by WriteSnapshot) into this
// atlas, appending records whose keys are not yet indexed and skipping the
// rest — so re-pulling a snapshot is idempotent. Records failing their
// checksum are quarantined as at Open. Returns the number of regions added.
func (a *Atlas) Ingest(r io.Reader) (int, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("atlas: ingest header: %w", err)
	}
	if string(hdr[:4]) != fileMagic || hdr[4] != fileVersion {
		return 0, fmt.Errorf("atlas: ingest: not an atlas snapshot")
	}
	added := 0
	br := &countReader{r: r}
	for {
		var prefix [recordPrefix]byte
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			if err == io.EOF {
				return added, nil
			}
			return added, fmt.Errorf("atlas: ingest record prefix: %w", err)
		}
		if string(prefix[:4]) != recordMagic {
			return added, fmt.Errorf("atlas: ingest: bad record magic % x", prefix[:4])
		}
		bodyLen := binary.LittleEndian.Uint32(prefix[4:])
		if bodyLen > maxBody {
			return added, fmt.Errorf("atlas: ingest: record body %d too large", bodyLen)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return added, fmt.Errorf("atlas: ingest record body: %w", err)
		}
		crc := binary.LittleEndian.Uint32(prefix[8:])
		if crc32.ChecksumIEEE(body) != crc {
			a.quarantined.Add(1)
			continue
		}
		key, err := bodyKey(body)
		if err != nil {
			a.quarantined.Add(1)
			continue
		}

		rec := make([]byte, recordPrefix+len(body))
		copy(rec, prefix[:])
		copy(rec[recordPrefix:], body)
		ok, err := a.ingestRecord(key, rec, bodyLen, crc)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
}

// ingestRecord appends one verified snapshot record unless its key is
// already indexed. Reports whether the record was added.
func (a *Atlas) ingestRecord(key string, rec []byte, bodyLen, crc uint32) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.index[key]; ok {
		return false, nil
	}
	if _, err := a.f.WriteAt(rec, a.size); err != nil {
		return false, fmt.Errorf("atlas: ingest append: %w", err)
	}
	a.index[key] = recordRef{off: a.size + recordPrefix, n: int32(bodyLen), crc: crc}
	a.size += int64(len(rec))
	return true, nil
}
