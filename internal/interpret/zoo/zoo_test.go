package zoo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestZOOExactInsideRegion(t *testing.T) {
	// Inside a locally linear region the symmetric difference quotient of a
	// linear function is exact for any h that keeps both probes inside.
	model := plnnModel(1, 5, 8, 3)
	rng := rand.New(rand.NewSource(2))
	z := New(Config{H: 1e-7})
	for trial := 0; trial < 5; trial++ {
		x := randVec(rng, 5)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		c := model.Predict(x).ArgMax()
		got, err := z.Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-3 {
			t.Fatalf("inside-region L1Dist = %v", dist)
		}
	}
}

func TestZOOBiasRecovery(t *testing.T) {
	model := plnnModel(3, 4, 7, 3)
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 4)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	z := New(Config{H: 1e-7})
	got, err := z.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cp := 1; cp < 3; cp++ {
		_, wantB := truth.CoreParams(0, cp)
		if math.Abs(got.Biases[cp]-wantB) > 1e-3*(1+math.Abs(wantB)) {
			t.Fatalf("pair (0,%d): bias %v vs %v", cp, got.Biases[cp], wantB)
		}
	}
}

func TestZOOQueryCount(t *testing.T) {
	model := plnnModel(5, 6, 4, 2)
	z := New(Config{H: 1e-6})
	rng := rand.New(rand.NewSource(6))
	got, err := z.Interpret(model, randVec(rng, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != 1+2*6 {
		t.Fatalf("queries = %d, want 13", got.Queries)
	}
}

func TestZOOLargeHBlursBoundaries(t *testing.T) {
	// A probe distance larger than the distance to the nearest boundary
	// mixes two regions; the estimate should then deviate from the region's
	// exact decision features.
	w1 := mat.FromRows(mat.Vec{1, 0})
	w2 := mat.FromRows(mat.Vec{1}, mat.Vec{-1})
	net := nn.FromLayers(
		nn.Layer{W: w1, B: mat.Vec{0}},
		nn.Layer{W: w2, B: mat.Vec{0, 0}},
	)
	model := &openbox.PLNN{Net: net}
	x := mat.Vec{0.01, 0}
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(0)

	exact := New(Config{H: 1e-3}) // both probes stay in x[0] > 0
	gotExact, err := exact.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist := gotExact.Features.L1Dist(want); dist > 1e-6 {
		t.Fatalf("small-h ZOO should be exact, L1Dist = %v", dist)
	}

	blurred := New(Config{H: 0.5}) // minus-probe crosses into x[0] < 0
	gotBlur, err := blurred.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist := gotBlur.Features.L1Dist(want); dist < 0.1 {
		t.Fatalf("large-h ZOO should blur the boundary, L1Dist = %v", dist)
	}
}

func TestZOOValidation(t *testing.T) {
	model := plnnModel(7, 3, 4, 2)
	z := New(Config{})
	if _, err := z.Interpret(model, mat.Vec{1}, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := z.Interpret(model, mat.Vec{1, 2, 3}, -1); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestZOOName(t *testing.T) {
	if got := New(Config{H: 1e-8}).Name(); got != "ZOO(h=1e-08)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestZOOSamplePoints(t *testing.T) {
	z := New(Config{H: 0.5})
	pts := z.SamplePoints(mat.Vec{1, 2})
	if len(pts) != 4 {
		t.Fatalf("SamplePoints returned %d", len(pts))
	}
	if pts[0][0] != 1.5 || pts[1][0] != 0.5 {
		t.Fatalf("axis-0 probes wrong: %v %v", pts[0], pts[1])
	}
}
