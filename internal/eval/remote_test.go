package eval

import (
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/plm"
)

func TestQualityOverAPIMatchesLocal(t *testing.T) {
	// The remote harness must not change the science: OpenAPI over a
	// sharded HTTP hop with an adaptive window stays exact, and the wire
	// stats prove the probes actually batched.
	w, err := NewWorkbench(WorkbenchConfig{Size: 8, PerClass: 20, NNEpochs: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	xs := w.Test.X[:3]
	methods := []plm.Interpreter{core.New(core.Config{Seed: 32})}
	rows, wire, err := QualityOverAPI(w.PLNN, "remote-plnn", methods, xs, 2, api.AggregatorConfig{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Failures > 0 || r.AvgRD != 0 || r.WD.Mean != 0 {
		t.Fatalf("remote quality broken: %+v", r)
	}
	if r.L1.Mean > 1e-4 {
		t.Fatalf("remote L1 = %v", r.L1.Mean)
	}
	if wire.Queries == 0 || wire.RoundTrips == 0 {
		t.Fatalf("no wire traffic recorded: %+v", wire)
	}
	// Per-iteration batching alone guarantees far more than one query per
	// round trip (each sample set is d+k probes in one POST /batch).
	if wire.QueriesPerTrip() < 2 {
		t.Fatalf("queries/trip = %v, batching did not engage", wire.QueriesPerTrip())
	}
	if wire.Window <= 0 {
		t.Fatalf("no window in force: %+v", wire)
	}
}

func TestServeRemoteLifecycle(t *testing.T) {
	w, err := NewWorkbench(WorkbenchConfig{Size: 8, PerClass: 20, NNEpochs: 5, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := ServeRemote(w.PLNN, "lifecycle", 3, api.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if bench.URL() == "" {
		t.Fatal("no URL")
	}
	m := bench.Model()
	if m.Dim() != w.PLNN.Dim() || m.Classes() != w.PLNN.Classes() {
		t.Fatalf("meta mismatch: %d/%d", m.Dim(), m.Classes())
	}
	x := w.Test.X[0]
	got := m.Predict(x)
	if want := w.PLNN.Predict(x); !got.EqualApprox(want, 1e-12) {
		t.Fatalf("remote %v != local %v", got, want)
	}
	if err := bench.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close must not panic the aggregator or the server.
	_ = bench.Close()
}
