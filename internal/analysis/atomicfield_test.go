package analysis

import "testing"

func TestAtomicfieldFixtures(t *testing.T) {
	runFixtures(t, []*Analyzer{Atomicfield}, "repro/internal/api", "atomicfield")
}
