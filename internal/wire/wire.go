// Package wire is the serving stack's single encode/decode seam: every
// float payload that crosses the HTTP boundary — /predict probes, /batch
// matrices, async job submissions and their streamed results — is encoded
// and decoded here, by exactly one of two codecs:
//
//   - JSON, the legacy envelope every peer understands ({"x":[...]},
//     {"xs":[[...]]}, {"probs":[...]}), and
//   - Binary, a length-prefixed little-endian float frame (see frame.go)
//     that carries the same payloads at 8 bytes per float64 instead of
//     ~18 characters, with an opt-in float32 mode at 4.
//
// Codec choice is negotiated per request with standard HTTP content
// negotiation: the request body's codec is named by Content-Type, the
// desired response codec by Accept, and anything unrecognized falls back
// to JSON — so an old JSON-only peer on either end of the connection keeps
// working unchanged. Servers advertise `"codecs":["json","binary"]` in
// /meta; clients only switch to binary after seeing the advertisement, so
// a binary frame is never shipped to a server that cannot parse it.
//
// Decoding is bit-identical across codecs for float64 payloads: the binary
// frame carries the exact IEEE-754 bits, and encoding/json's shortest
// round-trip float formatting restores the same bits on the JSON path.
// Float32 frames are a lossy, per-request opt-in and are excluded from the
// bit-identity surface.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
)

// Content types spoken on the wire.
const (
	// ContentTypeJSON is the legacy codec every peer understands.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the float-frame codec. An Accept value may carry
	// a `prec=f32` parameter to request float32 payload frames.
	ContentTypeBinary = "application/x-plm-frame"
)

// Codec names, as advertised by the server's /meta "codecs" list.
const (
	NameJSON   = "json"
	NameBinary = "binary"
)

// DefaultMaxBody is the request/response body size cap applied when a
// caller passes a non-positive limit: large enough for a 4096-probe batch
// of wide inputs, small enough that a hostile frame header cannot commit
// the process to an unbounded allocation.
const DefaultMaxBody int64 = 64 << 20

// ErrTooLarge reports that the size cap — not a syntax problem — is what
// stopped a decode. Servers answer it with 413 instead of a generic 400.
var ErrTooLarge = errors.New("wire: body exceeds size limit")

// Codec encodes and decodes the dense float payloads of the serving
// protocol. field is the JSON member name the payload travels under
// ("x", "xs", "probs"); the binary codec ignores it — a frame is
// self-describing. limit bounds the bytes a decode may consume; a decode
// stopped by the cap fails with an error wrapping ErrTooLarge.
type Codec interface {
	Name() string
	ContentType() string
	EncodeVec(w io.Writer, field string, v []float64) error
	DecodeVec(r io.Reader, limit int64, field string) ([]float64, error)
	EncodeMat(w io.Writer, field string, m [][]float64) error
	DecodeMat(r io.Reader, limit int64, field string) ([][]float64, error)
}

// JSON is the legacy codec: one-field envelopes, exactly the wire format
// the server spoke before the codec layer existed.
type JSON struct{}

// Name returns "json".
func (JSON) Name() string { return NameJSON }

// ContentType returns the JSON MIME type.
func (JSON) ContentType() string { return ContentTypeJSON }

// EncodeVec writes {"<field>":[...]}.
func (JSON) EncodeVec(w io.Writer, field string, v []float64) error {
	return encodeJSONField(w, field, v)
}

// DecodeVec reads {"<field>":[...]} with unknown fields rejected.
func (JSON) DecodeVec(r io.Reader, limit int64, field string) ([]float64, error) {
	var v []float64
	if err := decodeJSONField(r, limit, field, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeMat writes {"<field>":[[...],...]}.
func (JSON) EncodeMat(w io.Writer, field string, m [][]float64) error {
	if m == nil {
		m = [][]float64{}
	}
	return encodeJSONField(w, field, m)
}

// DecodeMat reads {"<field>":[[...],...]} with unknown fields rejected.
func (JSON) DecodeMat(r io.Reader, limit int64, field string) ([][]float64, error) {
	var m [][]float64
	if err := decodeJSONField(r, limit, field, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeJSONField writes the one-field envelope {"<field>":<v>}. The
// envelope is assembled by hand so the field name can be a runtime value
// without reflect-built struct types.
func encodeJSONField(w io.Writer, field string, v any) error {
	if _, err := fmt.Fprintf(w, "{%q:", field); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encode json %q: %w", field, err)
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "}\n")
	return err
}

// decodeJSONField reads a one-field envelope, rejecting envelopes carrying
// any member other than field — the same strictness DisallowUnknownFields
// used to provide, kept so a typoed request fails loudly instead of being
// silently ignored.
func decodeJSONField(r io.Reader, limit int64, field string, dst any) error {
	lr := newLimited(r, limit)
	var env map[string]json.RawMessage
	if err := json.NewDecoder(lr).Decode(&env); err != nil {
		return fmt.Errorf("wire: decode json: %w", lr.sticky(err))
	}
	raw, ok := env[field]
	if len(env) > 1 || (len(env) == 1 && !ok) {
		return fmt.Errorf("wire: json body must carry exactly the %q field", field)
	}
	if !ok || string(raw) == "null" {
		return nil
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("wire: decode json %q: %w", field, err)
	}
	return nil
}

// DecodeJSON decodes a JSON body under the size cap. strict rejects
// unknown fields — servers decode request envelopes strictly so a typoed
// field answers 400; clients decode response envelopes tolerantly so a
// newer server may add fields without breaking them.
func DecodeJSON(r io.Reader, limit int64, dst any, strict bool) error {
	lr := newLimited(r, limit)
	dec := json.NewDecoder(lr)
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("wire: decode json: %w", lr.sticky(err))
	}
	return nil
}

// EncodeJSON writes v as a JSON body — the client-side escape hatch for
// multi-field envelopes (the job submit request) that are JSON in every
// codec pairing.
func EncodeJSON(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// WriteJSON writes v as a JSON response body. Metadata and error responses
// always ride JSON, whatever codec the payloads negotiated: every peer can
// parse them, and they are too small for the binary layout to matter.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable; best effort.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the protocol's JSON error envelope.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}

// DecodeStatus maps a request decode error to its HTTP status: 413 when
// the size cap stopped the read, 400 for everything malformed.
func DecodeStatus(err error) int {
	if errors.Is(err, ErrTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// AcceptValue returns the Accept header a client sends to request
// responses in codec c; f32 additionally asks for float32 payload frames
// (meaningful only with the binary codec).
func AcceptValue(c Codec, f32 bool) string {
	if c.Name() == NameBinary {
		if f32 {
			return ContentTypeBinary + ";prec=f32"
		}
		return ContentTypeBinary
	}
	return ContentTypeJSON
}

// ResponseBodyCodec returns the codec matching a response's Content-Type.
// Clients decode what the server actually sent rather than what they asked
// for, so a JSON-only peer answering a binary-hopeful request still
// interoperates.
func ResponseBodyCodec(contentType string) Codec {
	if mt, _, err := mime.ParseMediaType(contentType); err == nil && mt == ContentTypeBinary {
		return Binary{}
	}
	return JSON{}
}

// limited is an io.Reader that enforces the byte cap and remembers whether
// the cap — rather than the underlying stream — is what stopped a read, so
// decode errors can be mapped to 413 vs 400.
type limited struct {
	r   io.Reader
	n   int64 // bytes remaining under the cap
	hit bool
}

func newLimited(r io.Reader, limit int64) *limited {
	if limit <= 0 {
		limit = DefaultMaxBody
	}
	return &limited{r: r, n: limit}
}

func (l *limited) Read(p []byte) (int, error) {
	if l.n <= 0 {
		l.hit = true
		return 0, ErrTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// sticky rewrites err to ErrTooLarge when the cap is what actually stopped
// the decode (the JSON decoder surfaces the reader's error as its own).
func (l *limited) sticky(err error) error {
	if l.hit || errors.Is(err, ErrTooLarge) {
		return ErrTooLarge
	}
	return err
}
