package jobs

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/plm"
)

func TestRetryAfterTracksMeanJobDuration(t *testing.T) {
	r, err := NewRunner(jobModel(40), nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A runner that has completed nothing still promises a sane floor.
	if got := r.RetryAfter(); got != time.Second {
		t.Fatalf("fresh RetryAfter = %v, want 1s floor", got)
	}
	// One slow job sets the mean; the hint rounds it up to whole seconds.
	r.observeRun(2500 * time.Millisecond)
	if got := r.RetryAfter(); got != 3*time.Second {
		t.Fatalf("RetryAfter after one 2.5s job = %v, want 3s", got)
	}
	// A burst of fast jobs pulls the recency-weighted mean back down.
	for i := 0; i < 40; i++ {
		r.observeRun(10 * time.Millisecond)
	}
	if got := r.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter after fast burst = %v, want 1s floor", got)
	}
}

// gateModel blocks every prediction on a gate so a job can be pinned in
// the running state, saturating a capacity-1 store on demand.
type gateModel struct {
	plm.Model
	gate chan struct{}
}

func (m *gateModel) Predict(x mat.Vec) mat.Vec { <-m.gate; return m.Model.Predict(x) }

func TestSubmitBacklogFullAnswers503WithRetryAfter(t *testing.T) {
	// A store holding only unfinished work refuses the submit with 503 and
	// names its drain-time hint in the standard Retry-After header.
	model := jobModel(41)
	gated := &gateModel{Model: model, gate: make(chan struct{})}
	r, err := NewRunner(gated, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(model, "gated")
	r.Mount(srv)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer close(gated.gate)

	xs := jobProbes(rand.New(rand.NewSource(41)), 2, model.Dim())
	if _, err := r.Submit(OpPredict, xs); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(submitRequest{Op: OpPredict, Xs: [][]float64{xs[0], xs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit answered %s, want 503", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q (fresh runner's 1s floor)", got, "1")
	}
}

func TestSubmitCtxHonorsRetryAfter(t *testing.T) {
	// The client side of the backpressure loop: two 503s with Retry-After
	// hints, then an acceptance. SubmitCtx must wait out both hints (here
	// observed through the test seam, not served in real time) and land the
	// job on the third attempt.
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"name": "scripted", "dim": 6, "classes": 3})
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, req *http.Request) {
		if posts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "backlog full", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(View{ID: "job-9", Op: OpPredict, Status: StatusQueued, N: 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var waits []time.Duration
	origSleep := retrySleep
	retrySleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	defer func() { retrySleep = origSleep }()

	c, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := SubmitCtx(context.Background(), c, OpPredict, jobProbes(rand.New(rand.NewSource(42)), 1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-9" {
		t.Fatalf("ack = %+v, want job-9", v)
	}
	if posts.Load() != 3 {
		t.Fatalf("server saw %d submits, want 3", posts.Load())
	}
	if len(waits) != 2 || waits[0] != 2*time.Second || waits[1] != 2*time.Second {
		t.Fatalf("client waited %v, want two 2s Retry-After intervals", waits)
	}
}

func TestSubmitCtxBoundsRetriesAndHonorsCancellation(t *testing.T) {
	// A server that never stops shedding: SubmitCtx gives up after its
	// bounded retries instead of looping, and a cancelled context aborts
	// the wait immediately.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"name": "shedding", "dim": 6, "classes": 3})
	})
	var posts atomic.Int64
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, req *http.Request) {
		posts.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "backlog full", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	origSleep := retrySleep
	retrySleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	defer func() { retrySleep = origSleep }()

	c, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SubmitCtx(context.Background(), c, OpPredict, jobProbes(rand.New(rand.NewSource(42)), 1, 6)); err == nil {
		t.Fatal("endlessly shedding server did not surface an error")
	}
	if got := posts.Load(); got != int64(submitRetries)+1 {
		t.Fatalf("server saw %d submits, want %d (1 + %d retries)", got, submitRetries+1, submitRetries)
	}

	// Cancellation: the first wait aborts with the context's error.
	posts.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SubmitCtx(ctx, c, OpPredict, jobProbes(rand.New(rand.NewSource(42)), 1, 6)); err == nil {
		t.Fatal("cancelled submit retry reported success")
	}
	if got := posts.Load(); got > 1 {
		t.Fatalf("cancelled context still produced %d submits", got)
	}
}
