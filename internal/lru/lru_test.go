package lru

import "testing"

func TestGetPromotesAndAddEvictsLRU(t *testing.T) {
	c := New[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	if _, _, evicted := c.Add("c", 3); !evicted {
		t.Fatal("inserting over capacity did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived although it was least recently used")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d/%v, want 1", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestAddKeepsIncumbent(t *testing.T) {
	c := New[string](0) // unbounded
	c.Add("k", "first")
	kept, inserted, evicted := c.Add("k", "second")
	if kept != "first" || inserted || evicted {
		t.Fatalf("Add dup = (%q, %v, %v), want incumbent kept", kept, inserted, evicted)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int](0)
	for i := 0; i < 100; i++ {
		if _, _, evicted := c.Add(string(rune('a'+i)), i); evicted {
			t.Fatal("unbounded cache evicted")
		}
	}
	if c.Len() != 100 {
		t.Fatalf("len %d, want 100", c.Len())
	}
}

func TestGetMissingReturnsZero(t *testing.T) {
	c := New[*int](1)
	if v, ok := c.Get("nope"); ok || v != nil {
		t.Fatalf("miss returned (%v, %v)", v, ok)
	}
}
