package nn

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	n := New(rng, 4, 6, 3)
	path := filepath.Join(t.TempDir(), "net.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	if !n.Logits(x).EqualApprox(loaded.Logits(x), 0) {
		t.Fatal("loaded network differs from original")
	}
	if loaded.InputDim() != 4 || loaded.Classes() != 3 {
		t.Fatal("loaded shapes wrong")
	}
}

func TestWriteToReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := New(rng, 3, 5, 2)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{1, -1, 0.5}
	if !n.Predict(x).EqualApprox(loaded.Predict(x), 0) {
		t.Fatal("round trip changed predictions")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var n Network
	cases := []string{
		`not json`,
		`{"format":"wrong","layers":[]}`,
		`{"format":"openapi-plnn-v1","layers":[]}`,
		`{"format":"openapi-plnn-v1","layers":[{"rows":0,"cols":1,"w":[],"b":[]}]}`,
		`{"format":"openapi-plnn-v1","layers":[{"rows":1,"cols":1,"w":[[1,2]],"b":[0]}]}`,
		`{"format":"openapi-plnn-v1","layers":[{"rows":1,"cols":2,"w":[[1,2]],"b":[0]},{"rows":1,"cols":3,"w":[[1,2,3]],"b":[0]}]}`,
	}
	for _, c := range cases {
		if err := n.UnmarshalJSON([]byte(c)); err == nil {
			t.Fatalf("accepted garbage: %s", c)
		}
	}
}

func TestMarshalContainsFormatTag(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := New(rng, 2, 2)
	data, err := n.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), formatTag) {
		t.Fatal("format tag missing from output")
	}
}
