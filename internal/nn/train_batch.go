package nn

import (
	"repro/internal/mat"
)

// This file holds the batched training fast path: one mini-batch flows
// through the network as matrices, with one GEMM per layer forward
// (X · Wᵀ), one transpose-A GEMM per layer for the weight gradients
// (dW = deltaᵀ · activations), and one GEMM per layer for delta
// propagation (delta · W). Every accumulator still sums its terms in the
// same ascending order the per-sample reference loop uses — samples within
// a batch ascending, the k dimension of every GEMM ascending — so batched
// training produces bit-identical weights (pinned by the Train parity
// tests). All matrices live in pooled scratch sized once per Train call:
// a steady-state training step allocates nothing, and the per-batch views
// are rebuilt only when the batch size changes (the remainder batch).

// netScratch pools the per-batch matrices of the batched Network step.
type netScratch struct {
	cur int // batch size the views are currently shaped for (-1 = none)

	// Backing matrices allocated at full batch capacity.
	x     *mat.Dense   // batch inputs, B×d
	z     []*mat.Dense // per-layer pre-activations, B×out
	a     []*mat.Dense // per-hidden-layer post-activations, B×out (unfused only)
	delta []*mat.Dense // per-layer deltas, B×out

	// Fused-path state: one reusable epilogue per layer (so the hot loop
	// passes &epis[li] without allocating) and one (z > 0) mask per hidden
	// layer, captured by the epilogue post-bias and consumed by the backward
	// delta scaling in place of the overwritten pre-activations.
	epis []mat.Epilogue
	mask [][]bool // capacity rows·out per hidden layer

	// RowsView(cur) of the backing matrices.
	vx     *mat.Dense
	vz     []*mat.Dense
	va     []*mat.Dense
	vdelta []*mat.Dense
	vmask  [][]bool // mask[:cur·out] per hidden layer
}

func newNetScratch(n *Network, rows int) *netScratch {
	nl := len(n.layers)
	s := &netScratch{
		cur:    -1,
		x:      mat.NewDense(rows, n.InputDim()),
		z:      make([]*mat.Dense, nl),
		a:      make([]*mat.Dense, nl-1),
		delta:  make([]*mat.Dense, nl),
		epis:   make([]mat.Epilogue, nl),
		mask:   make([][]bool, nl-1),
		vz:     make([]*mat.Dense, nl),
		va:     make([]*mat.Dense, nl-1),
		vdelta: make([]*mat.Dense, nl),
		vmask:  make([][]bool, nl-1),
	}
	for i, l := range n.layers {
		s.z[i] = mat.NewDense(rows, l.Out())
		s.delta[i] = mat.NewDense(rows, l.Out())
		if i < nl-1 {
			s.a[i] = mat.NewDense(rows, l.Out())
			s.mask[i] = make([]bool, rows*l.Out())
		}
	}
	return s
}

// prepare reshapes the views for a batch of b rows. Views are rebuilt only
// when the batch size changes — at most twice per epoch — so steady-state
// batches allocate nothing.
func (s *netScratch) prepare(b int) {
	if b == s.cur {
		return
	}
	s.cur = b
	s.vx = s.x.RowsView(b)
	for i := range s.z {
		s.vz[i] = s.z[i].RowsView(b)
		s.vdelta[i] = s.delta[i].RowsView(b)
	}
	for i := range s.a {
		s.va[i] = s.a[i].RowsView(b)
		s.vmask[i] = s.mask[i][:b*s.a[i].Cols()]
	}
}

// colSumsInto overwrites dst with the column sums of m, accumulating rows
// in ascending order — the order the per-sample loop adds bias gradients.
func colSumsInto(m *mat.Dense, dst mat.Vec) {
	dst.Fill(0)
	for i := 0; i < m.Rows(); i++ {
		dst.AddInPlace(m.RawRow(i))
	}
}

// accumulateBatch runs one forward/backward pass for a whole mini-batch as
// matrices, overwrites g with the batch-summed parameter gradients, and
// returns the summed cross-entropy loss of the batch. It is bit-identical
// to running accumulate over the batch in order: each GEMM keeps one
// ascending-k accumulator per output element, and the shared k dimension
// is exactly the dimension the per-sample loop iterates sequentially.
func (n *Network) accumulateBatch(s *netScratch, g *gradients, xs []mat.Vec, labels []int, batch []int) float64 {
	b := len(batch)
	s.prepare(b)
	last := len(n.layers) - 1
	// Sampled once so forward and backward agree even if a test flips the
	// toggle mid-epoch.
	fused := fusedForward.Load()
	for i, idx := range batch {
		s.vx.SetRow(i, xs[idx])
	}

	// Forward. Unfused keeps per-layer pre-activations (z) for the backward
	// activation masks and post-activations (a) for the weight gradients.
	// Fused activates z in place inside the GEMM epilogue and captures the
	// post-bias (z > 0) mask instead: for every non-NaN value, !mask is
	// exactly the reference's zv <= 0 test (including ±0), so the backward
	// pass below scales the same deltas by the same leak either way.
	cur := s.vx
	for li, l := range n.layers {
		z := s.vz[li]
		if fused {
			epi := &s.epis[li]
			if li < last {
				n.hiddenEpilogue(epi, l.B, s.vmask[li])
			} else {
				*epi = mat.Epilogue{Bias: l.B}
			}
			cur.MulBTIntoEpilogue(l.W, z, epi)
			if li < last {
				cur = z // holds the post-activation in place
			}
			continue
		}
		cur.MulBTInto(l.W, z)
		addBiasRows(z, l.B)
		if li < last {
			a := s.va[li]
			leak := n.leak
			for r := 0; r < b; r++ {
				zrow, arow := z.RawRow(r), a.RawRow(r)
				for j, v := range zrow {
					if v > 0 {
						arow[j] = v
					} else {
						arow[j] = leak * v
					}
				}
			}
			cur = a
		}
	}

	// Softmax + cross-entropy head: delta = p - onehot(label), one row per
	// sample, losses summed in ascending sample order.
	var loss float64
	dlast, zlast := s.vdelta[last], s.vz[last]
	for i := 0; i < b; i++ {
		drow := dlast.RawRow(i)
		SoftmaxInto(drow, zlast.RawRow(i))
		y := labels[batch[i]]
		loss += CrossEntropy(drow, y)
		drow[y] -= 1
	}

	// Backward: per layer, one transpose-A GEMM for dW, one column sum for
	// dB, then one GEMM plus the activation mask for the next delta.
	for i := last; i >= 0; i-- {
		di := s.vdelta[i]
		acts := s.vx
		if i > 0 {
			if fused {
				acts = s.vz[i-1] // activated in place by the forward epilogue
			} else {
				acts = s.va[i-1]
			}
		}
		di.MulATInto(acts, g.dW[i])
		colSumsInto(di, g.dB[i])
		if i > 0 {
			dprev := s.vdelta[i-1]
			di.MulInto(n.layers[i].W, dprev)
			leak := n.leak
			if fused {
				w := dprev.Cols()
				mk := s.vmask[i-1]
				for r := 0; r < b; r++ {
					drow := dprev.RawRow(r)
					for j, on := range mk[r*w : r*w+w] {
						if !on {
							drow[j] *= leak
						}
					}
				}
				continue
			}
			zprev := s.vz[i-1]
			for r := 0; r < b; r++ {
				zrow, drow := zprev.RawRow(r), dprev.RawRow(r)
				for j, zv := range zrow {
					if zv <= 0 {
						drow[j] *= leak
					}
				}
			}
		}
	}
	return loss
}

// maxoutScratch pools the per-batch matrices of the batched MaxOut step.
type maxoutScratch struct {
	cur int

	x      *mat.Dense   // batch inputs, B×d
	acts   []*mat.Dense // per-hidden-layer post-max activations, B×out
	pieceZ []*mat.Dense // per-layer piece pre-activations, reused per piece
	masked []*mat.Dense // per-layer winner-masked deltas, B×out
	tmp    []*mat.Dense // per-layer (l>0) per-piece delta contributions, B×in
	deltaH []*mat.Dense // per-hidden-layer deltas, B×out
	outZ   *mat.Dense   // read-out logits, B×C
	deltaO *mat.Dense   // read-out delta, B×C

	winners [][][]int // winners[l][i][j]: winning piece of sample i, unit j

	// Reusable bias-only epilogue for the fused piece/read-out GEMMs (the
	// max fold is the nonlinearity, so the epilogue activation is identity).
	epi mat.Epilogue

	vx      *mat.Dense
	vacts   []*mat.Dense
	vpieceZ []*mat.Dense
	vmasked []*mat.Dense
	vtmp    []*mat.Dense
	vdeltaH []*mat.Dense
	voutZ   *mat.Dense
	vdeltaO *mat.Dense
}

func newMaxoutScratch(n *MaxoutNetwork, rows int) *maxoutScratch {
	nh := len(n.hidden)
	s := &maxoutScratch{
		cur:     -1,
		x:       mat.NewDense(rows, n.InputDim()),
		acts:    make([]*mat.Dense, nh),
		pieceZ:  make([]*mat.Dense, nh),
		masked:  make([]*mat.Dense, nh),
		tmp:     make([]*mat.Dense, nh),
		deltaH:  make([]*mat.Dense, nh),
		outZ:    mat.NewDense(rows, n.out.Out()),
		deltaO:  mat.NewDense(rows, n.out.Out()),
		winners: make([][][]int, nh),
		vacts:   make([]*mat.Dense, nh),
		vpieceZ: make([]*mat.Dense, nh),
		vmasked: make([]*mat.Dense, nh),
		vtmp:    make([]*mat.Dense, nh),
		vdeltaH: make([]*mat.Dense, nh),
	}
	for li, l := range n.hidden {
		s.acts[li] = mat.NewDense(rows, l.Out())
		s.pieceZ[li] = mat.NewDense(rows, l.Out())
		s.masked[li] = mat.NewDense(rows, l.Out())
		s.deltaH[li] = mat.NewDense(rows, l.Out())
		if li > 0 {
			s.tmp[li] = mat.NewDense(rows, l.In())
		}
		s.winners[li] = make([][]int, rows)
		for i := range s.winners[li] {
			s.winners[li][i] = make([]int, l.Out())
		}
	}
	return s
}

func (s *maxoutScratch) prepare(b int) {
	if b == s.cur {
		return
	}
	s.cur = b
	s.vx = s.x.RowsView(b)
	s.voutZ = s.outZ.RowsView(b)
	s.vdeltaO = s.deltaO.RowsView(b)
	for li := range s.acts {
		s.vacts[li] = s.acts[li].RowsView(b)
		s.vpieceZ[li] = s.pieceZ[li].RowsView(b)
		s.vmasked[li] = s.masked[li].RowsView(b)
		s.vdeltaH[li] = s.deltaH[li].RowsView(b)
		if li > 0 {
			s.vtmp[li] = s.tmp[li].RowsView(b)
		}
	}
}

// accumulateBatch is the MaxOut batched forward/backward pass. Forward
// folds each hidden layer's max incrementally — one GEMM per piece over the
// whole batch, first-piece-wins on ties like the scalar forward — while
// capturing every sample's winner indices. Backward routes gradients
// through the captured winners: per piece, the layer delta is masked to the
// units that piece won (losing units contribute exact zeros, which leave
// the ascending-k accumulator chains unchanged), so the piece's weight
// gradient is one transpose-A GEMM and its contribution to the next delta
// is one GEMM, summed piece-ascending exactly like the per-sample
// reference.
func (n *MaxoutNetwork) accumulateBatch(s *maxoutScratch, g *maxoutGradients, xs []mat.Vec, labels []int, batch []int) float64 {
	b := len(batch)
	s.prepare(b)
	fused := fusedForward.Load()
	for i, idx := range batch {
		s.vx.SetRow(i, xs[idx])
	}

	// Forward: incremental max fold with winner capture.
	cur := s.vx
	for li, l := range n.hidden {
		h := s.vacts[li]
		zp := s.vpieceZ[li]
		for p, piece := range l.Pieces {
			if fused {
				s.epi = mat.Epilogue{Bias: piece.B}
				cur.MulBTIntoEpilogue(piece.W, zp, &s.epi)
			} else {
				cur.MulBTInto(piece.W, zp)
				addBiasRows(zp, piece.B)
			}
			if p == 0 {
				for i := 0; i < b; i++ {
					copy(h.RawRow(i), zp.RawRow(i))
					win := s.winners[li][i]
					for j := range win {
						win[j] = 0
					}
				}
				continue
			}
			for i := 0; i < b; i++ {
				hrow, zrow := h.RawRow(i), zp.RawRow(i)
				win := s.winners[li][i]
				for j, v := range zrow {
					if v > hrow[j] {
						hrow[j] = v
						win[j] = p
					}
				}
			}
		}
		cur = h
	}
	if fused {
		s.epi = mat.Epilogue{Bias: n.out.B}
		cur.MulBTIntoEpilogue(n.out.W, s.voutZ, &s.epi)
	} else {
		cur.MulBTInto(n.out.W, s.voutZ)
		addBiasRows(s.voutZ, n.out.B)
	}

	// Softmax + cross-entropy head.
	var loss float64
	for i := 0; i < b; i++ {
		drow := s.vdeltaO.RawRow(i)
		SoftmaxInto(drow, s.voutZ.RawRow(i))
		y := labels[batch[i]]
		loss += CrossEntropy(drow, y)
		drow[y] -= 1
	}

	// Read-out layer gradients, then delta into the last hidden layer.
	hlast := s.vx
	if nh := len(n.hidden); nh > 0 {
		hlast = s.vacts[nh-1]
	}
	s.vdeltaO.MulATInto(hlast, g.out.dW)
	colSumsInto(s.vdeltaO, g.out.dB)

	if len(n.hidden) == 0 {
		return loss
	}
	s.vdeltaO.MulInto(n.out.W, s.vdeltaH[len(n.hidden)-1])

	// Hidden layers, last to first; gradients reach winning pieces only.
	for li := len(n.hidden) - 1; li >= 0; li-- {
		l := n.hidden[li]
		gcur := s.vdeltaH[li]
		in := s.vx
		if li > 0 {
			in = s.vacts[li-1]
		}
		var gnext *mat.Dense
		if li > 0 {
			gnext = s.vdeltaH[li-1]
			for i := 0; i < b; i++ {
				gnext.RawRow(i).Fill(0)
			}
		}
		m := s.vmasked[li]
		for p := range l.Pieces {
			for i := 0; i < b; i++ {
				grow, mrow := gcur.RawRow(i), m.RawRow(i)
				win := s.winners[li][i]
				for j := range mrow {
					if win[j] == p {
						mrow[j] = grow[j]
					} else {
						mrow[j] = 0
					}
				}
			}
			gp := &g.hidden[li][p]
			m.MulATInto(in, gp.dW)
			colSumsInto(m, gp.dB)
			if li > 0 {
				t := s.vtmp[li]
				m.MulInto(l.Pieces[p].W, t)
				for i := 0; i < b; i++ {
					gnext.RawRow(i).AddInPlace(t.RawRow(i))
				}
			}
		}
	}
	return loss
}
