// A non-gemm file in the same package: kernelpurity only governs the
// gemm*.go kernels, so back-substitution style descending loops here are
// out of scope.
package a

func backSubstitute(u [][]float64, y []float64) []float64 {
	n := len(y)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= u[i][j] * x[j]
		}
		x[i] = s / u[i][i]
	}
	return x
}
