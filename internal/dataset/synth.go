package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// SynthConfig controls the synthetic generators.
type SynthConfig struct {
	Size       int     // image side length (default 28)
	PerClass   int     // instances per class (default 100)
	NoiseSD    float64 // additive Gaussian pixel noise (default 0.05)
	JitterPx   float64 // max translation jitter in pixels (default 2)
	RotateRad  float64 // max rotation jitter in radians (default 0.12)
	ScaleSpan  float64 // scale jitter: uniform in [1-s, 1+s] (default 0.08)
	MinIntense float64 // per-sample stroke intensity lower bound (default 0.7)
}

func (c *SynthConfig) setDefaults() {
	if c.Size <= 0 {
		c.Size = 28
	}
	if c.PerClass <= 0 {
		c.PerClass = 100
	}
	if c.NoiseSD < 0 {
		c.NoiseSD = 0
	} else if c.NoiseSD == 0 {
		c.NoiseSD = 0.05
	}
	if c.JitterPx < 0 {
		c.JitterPx = 0
	} else if c.JitterPx == 0 {
		// Scale the default with the canvas so small test images keep the
		// same relative jitter as the 28x28 paper setting (2 px at 28).
		c.JitterPx = float64(c.Size) / 14
	}
	if c.RotateRad == 0 {
		c.RotateRad = 0.12
	}
	if c.ScaleSpan == 0 {
		c.ScaleSpan = 0.08
	}
	if c.MinIntense <= 0 || c.MinIntense > 1 {
		c.MinIntense = 0.7
	}
}

// frame maps template coordinates (in a 28x28 reference square) onto the
// jittered, scaled and rotated target canvas.
type frame struct {
	size            float64 // target canvas side
	dx, dy, s, cosT float64
	sinT            float64
}

func newFrame(rng *rand.Rand, cfg SynthConfig) frame {
	theta := (2*rng.Float64() - 1) * cfg.RotateRad
	return frame{
		size: float64(cfg.Size),
		dx:   (2*rng.Float64() - 1) * cfg.JitterPx,
		dy:   (2*rng.Float64() - 1) * cfg.JitterPx,
		s:    1 + (2*rng.Float64()-1)*cfg.ScaleSpan,
		cosT: math.Cos(theta),
		sinT: math.Sin(theta),
	}
}

// pt transforms a reference coordinate. Reference space is 28x28 regardless
// of the target size; the frame rescales it.
func (f frame) pt(x, y float64) (float64, float64) {
	// Center on the reference midpoint, rotate, scale, recenter on target.
	rx, ry := x-14, y-14
	qx := f.cosT*rx - f.sinT*ry
	qy := f.sinT*rx + f.cosT*ry
	k := f.s * f.size / 28
	return qx*k + f.size/2 + f.dx, qy*k + f.size/2 + f.dy
}

func (f frame) len(v float64) float64 { return v * f.s * f.size / 28 }

// drawFn renders one class template onto the canvas through a frame.
type drawFn func(c *canvas, f frame, v float64)

func (f frame) line(c *canvas, x0, y0, x1, y1, th, v float64) {
	ax, ay := f.pt(x0, y0)
	bx, by := f.pt(x1, y1)
	c.line(ax, ay, bx, by, f.len(th), v)
}

func (f frame) ellipse(c *canvas, cx, cy, rx, ry, th, v float64) {
	px, py := f.pt(cx, cy)
	c.ellipse(px, py, f.len(rx), f.len(ry), f.len(th), v)
}

func (f frame) rect(c *canvas, x0, y0, x1, y1, v float64) {
	// Draw as a dense fan of lines so rotation is honoured.
	steps := int(math.Abs(y1-y0))*2 + 2
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		y := y0 + t*(y1-y0)
		f.line(c, x0, y, x1, y, 1.4, v)
	}
}

func (f frame) triangle(c *canvas, x0, y0, x1, y1, x2, y2, v float64) {
	ax, ay := f.pt(x0, y0)
	bx, by := f.pt(x1, y1)
	cx, cy := f.pt(x2, y2)
	c.triangle(ax, ay, bx, by, cx, cy, v)
}

// digitTemplates renders seven-segment-inspired digits 0-9.
var digitTemplates = []drawFn{
	func(c *canvas, f frame, v float64) { // 0
		f.ellipse(c, 14, 14, 6, 9, 2.4, v)
	},
	func(c *canvas, f frame, v float64) { // 1
		f.line(c, 14, 5, 14, 23, 2.4, v)
		f.line(c, 10, 9, 14, 5, 2.2, v)
	},
	func(c *canvas, f frame, v float64) { // 2
		f.ellipse(c, 14, 10, 5.5, 5, 2.2, v)
		f.line(c, 18, 13, 9, 23, 2.4, v)
		f.line(c, 9, 23, 20, 23, 2.4, v)
	},
	func(c *canvas, f frame, v float64) { // 3
		f.ellipse(c, 13, 9.5, 5, 4.5, 2.2, v)
		f.ellipse(c, 13, 18.5, 5.5, 4.5, 2.2, v)
	},
	func(c *canvas, f frame, v float64) { // 4
		f.line(c, 17, 5, 17, 23, 2.4, v)
		f.line(c, 17, 5, 8, 16, 2.2, v)
		f.line(c, 8, 16, 21, 16, 2.4, v)
	},
	func(c *canvas, f frame, v float64) { // 5
		f.line(c, 19, 5, 9, 5, 2.4, v)
		f.line(c, 9, 5, 9, 13, 2.4, v)
		f.line(c, 9, 13, 17, 13, 2.2, v)
		f.ellipse(c, 13.5, 18, 5.5, 5, 2.2, v)
	},
	func(c *canvas, f frame, v float64) { // 6
		f.ellipse(c, 13, 17.5, 5.5, 5.5, 2.4, v)
		f.line(c, 9.5, 14, 14, 5, 2.4, v)
	},
	func(c *canvas, f frame, v float64) { // 7
		f.line(c, 8, 5, 20, 5, 2.4, v)
		f.line(c, 20, 5, 11, 23, 2.4, v)
	},
	func(c *canvas, f frame, v float64) { // 8
		f.ellipse(c, 14, 9.5, 4.8, 4.3, 2.2, v)
		f.ellipse(c, 14, 18.5, 5.6, 4.7, 2.2, v)
	},
	func(c *canvas, f frame, v float64) { // 9
		f.ellipse(c, 14.5, 10.5, 5.5, 5.5, 2.4, v)
		f.line(c, 18.5, 14, 14, 23, 2.4, v)
	},
}

var digitNames = []string{"zero", "one", "two", "three", "four",
	"five", "six", "seven", "eight", "nine"}

// fashionTemplates renders garment silhouettes matching the FMNIST label
// order: T-shirt, Trouser, Pullover, Dress, Coat, Sandal, Shirt, Sneaker,
// Bag, Ankle boot.
var fashionTemplates = []drawFn{
	func(c *canvas, f frame, v float64) { // 0 T-shirt: boxy body, short sleeves
		f.rect(c, 9, 8, 19, 22, v)
		f.triangle(c, 9, 8, 4, 13, 9, 14, v)
		f.triangle(c, 19, 8, 24, 13, 19, 14, v)
		f.line(c, 11, 8, 17, 8, 1.6, 0) // collar notch (kept dark)
	},
	func(c *canvas, f frame, v float64) { // 1 Trouser: two legs
		f.rect(c, 9, 5, 19, 9, v)
		f.rect(c, 9, 9, 13, 24, v)
		f.rect(c, 15, 9, 19, 24, v)
	},
	func(c *canvas, f frame, v float64) { // 2 Pullover: body + long sleeves
		f.rect(c, 9, 7, 19, 22, v)
		f.line(c, 9, 9, 4, 21, 3.4, v)
		f.line(c, 19, 9, 24, 21, 3.4, v)
	},
	func(c *canvas, f frame, v float64) { // 3 Dress: bodice + flaring skirt
		f.rect(c, 11, 5, 17, 12, v)
		f.triangle(c, 11, 12, 17, 12, 22, 24, v)
		f.triangle(c, 11, 12, 6, 24, 22, 24, v)
	},
	func(c *canvas, f frame, v float64) { // 4 Coat: long body, sleeves, lapel
		f.rect(c, 8, 6, 20, 24, v)
		f.line(c, 8, 8, 4, 20, 3.2, v)
		f.line(c, 20, 8, 24, 20, 3.2, v)
		f.line(c, 14, 6, 14, 24, 1.2, 0) // front opening
	},
	func(c *canvas, f frame, v float64) { // 5 Sandal: sole + straps
		f.line(c, 5, 21, 23, 21, 2.6, v)
		f.line(c, 8, 21, 12, 14, 1.6, v)
		f.line(c, 16, 21, 12, 14, 1.6, v)
		f.line(c, 19, 21, 22, 15, 1.6, v)
	},
	func(c *canvas, f frame, v float64) { // 6 Shirt: body + sleeves + buttons
		f.rect(c, 9, 7, 19, 23, v)
		f.line(c, 9, 9, 5, 18, 2.8, v)
		f.line(c, 19, 9, 23, 18, 2.8, v)
		f.line(c, 14, 9, 14, 21, 1.0, 0) // button placket
		f.line(c, 11, 7, 14, 10, 1.2, 0) // collar
		f.line(c, 17, 7, 14, 10, 1.2, 0)
	},
	func(c *canvas, f frame, v float64) { // 7 Sneaker: low profile + toe cap
		f.rect(c, 6, 17, 22, 21, v)
		f.ellipse(c, 20, 18.5, 3, 2.5, 2.6, v)
		f.line(c, 8, 17, 12, 13, 2.2, v)
		f.line(c, 12, 13, 16, 17, 2.2, v)
	},
	func(c *canvas, f frame, v float64) { // 8 Bag: box + handle arc
		f.rect(c, 7, 13, 21, 23, v)
		f.ellipse(c, 14, 11, 5, 4, 1.8, v)
	},
	func(c *canvas, f frame, v float64) { // 9 Ankle boot: shaft + foot + heel
		f.rect(c, 8, 7, 14, 19, v)
		f.rect(c, 8, 16, 22, 21, v)
		f.ellipse(c, 20, 17.5, 3, 2.2, 2.2, v)
		f.rect(c, 8, 21, 12, 23, v)
	},
}

var fashionNames = []string{"tshirt", "trouser", "pullover", "dress", "coat",
	"sandal", "shirt", "sneaker", "bag", "boot"}

// generate renders PerClass samples of every template.
func generate(rng *rand.Rand, name string, templates []drawFn, classNames []string, cfg SynthConfig) *Dataset {
	cfg.setDefaults()
	d := &Dataset{
		Name:   name,
		Width:  cfg.Size,
		Height: cfg.Size,
		Names:  classNames,
	}
	n := cfg.PerClass * len(templates)
	d.X = make([]mat.Vec, 0, n)
	d.Y = make([]int, 0, n)
	for class, tpl := range templates {
		for i := 0; i < cfg.PerClass; i++ {
			cv := newCanvas(cfg.Size, cfg.Size)
			f := newFrame(rng, cfg)
			intensity := cfg.MinIntense + rng.Float64()*(1-cfg.MinIntense)
			tpl(cv, f, intensity)
			img := mat.Vec(cv.pix)
			if cfg.NoiseSD > 0 {
				for j := range img {
					img[j] += rng.NormFloat64() * cfg.NoiseSD
					if img[j] < 0 {
						img[j] = 0
					} else if img[j] > 1 {
						img[j] = 1
					}
				}
			}
			d.X = append(d.X, img)
			d.Y = append(d.Y, class)
		}
	}
	// Interleave classes so prefixes of the dataset stay balanced.
	order := rng.Perm(len(d.X))
	xs := make([]mat.Vec, len(d.X))
	ys := make([]int, len(d.Y))
	for i, id := range order {
		xs[i] = d.X[id]
		ys[i] = d.Y[id]
	}
	d.X, d.Y = xs, ys
	return d
}

// SyntheticDigits generates the MNIST stand-in: 10 digit classes.
func SyntheticDigits(rng *rand.Rand, cfg SynthConfig) *Dataset {
	return generate(rng, "synth-mnist", digitTemplates, digitNames, cfg)
}

// SyntheticFashion generates the Fashion-MNIST stand-in: 10 garment classes.
func SyntheticFashion(rng *rand.Rand, cfg SynthConfig) *Dataset {
	return generate(rng, "synth-fmnist", fashionTemplates, fashionNames, cfg)
}

// SyntheticByName dispatches on the dataset names used throughout the
// experiment harness: "mnist" and "fmnist".
func SyntheticByName(name string, rng *rand.Rand, cfg SynthConfig) (*Dataset, error) {
	switch name {
	case "mnist", "digits", "synth-mnist":
		return SyntheticDigits(rng, cfg), nil
	case "fmnist", "fashion", "synth-fmnist":
		return SyntheticFashion(rng, cfg), nil
	}
	return nil, fmt.Errorf("dataset: unknown synthetic dataset %q", name)
}
