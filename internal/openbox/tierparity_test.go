package openbox

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestExtractAllTierParity pins openbox's end-to-end consistency guarantee
// against the kernel tier ladder: the batched pattern-driven extraction must
// return bit-identical region coefficients on every GEMM tier the machine
// can run, and each must match the per-instance Extract on the same tier.
// Extraction keys regions on activation patterns captured by the fused
// epilogue, so a single divergent bit anywhere in the forward would surface
// here as a different region or different coefficients.
func TestExtractAllTierParity(t *testing.T) {
	n := randNet(41, 6, 10, 8, 4)
	rng := rand.New(rand.NewSource(42))
	xs := make([]mat.Vec, 9) // remainder batch for every row-block width
	for i := range xs {
		xs[i] = randVec(rng, 6)
	}

	prev := mat.ActiveKernelTier()
	defer mat.SetKernelTier(prev)

	var refW []*mat.Dense
	var refB []mat.Vec
	for ti, tier := range mat.AvailableTiers() {
		if _, err := mat.SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%s): %v", tier, err)
		}
		locs, err := ExtractAll(n, xs)
		if err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		for i, loc := range locs {
			single, err := Extract(n, xs[i])
			if err != nil {
				t.Fatalf("tier %s: %v", tier, err)
			}
			if loc.Key != single.Key {
				t.Fatalf("tier %s: batched region key %q != per-instance %q", tier, loc.Key, single.Key)
			}
			if ti == 0 {
				refW = append(refW, loc.W)
				refB = append(refB, loc.B)
				continue
			}
			for r := 0; r < loc.W.Rows(); r++ {
				row, want := loc.W.RawRow(r), refW[i].RawRow(r)
				for c := range row {
					if row[c] != want[c] {
						t.Fatalf("tier %s: W[%d][%d,%d] = %v, want %v (bit-exact vs scalar)",
							tier, i, r, c, row[c], want[c])
					}
				}
			}
			for c := range loc.B {
				if loc.B[c] != refB[i][c] {
					t.Fatalf("tier %s: B[%d][%d] = %v, want %v", tier, i, c, loc.B[c], refB[i][c])
				}
			}
		}
	}
}
