package api

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func testModel(seed int64) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), 4, 6, 3)}
}

func TestCounterCounts(t *testing.T) {
	m := testModel(1)
	c := NewCounter(m)
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	if got := c.Predict(x); !got.EqualApprox(m.Predict(x), 0) {
		t.Fatal("counter changed predictions")
	}
	c.Predict(x)
	c.Predict(x)
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("Reset failed")
	}
	if c.Dim() != 4 || c.Classes() != 3 {
		t.Fatal("metadata not forwarded")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(testModel(2))
	x := mat.Vec{0, 0, 0, 0}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Predict(x)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 800 {
		t.Fatalf("Count = %d, want 800", c.Count())
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	m := testModel(3)
	counter := NewCounter(m)
	cache := NewCache(counter, 0)
	x := mat.Vec{0.5, 0.5, 0.5, 0.5}
	p1 := cache.Predict(x)
	p2 := cache.Predict(x.Clone()) // equal value, different storage
	if !p1.EqualApprox(p2, 0) {
		t.Fatal("cache returned different answers")
	}
	if counter.Count() != 1 {
		t.Fatalf("inner model called %d times, want 1", counter.Count())
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	// A different input misses.
	cache.Predict(mat.Vec{0.1, 0.5, 0.5, 0.5})
	if counter.Count() != 2 {
		t.Fatal("distinct input should reach the model")
	}
}

func TestCacheReturnsClones(t *testing.T) {
	cache := NewCache(testModel(4), 0)
	x := mat.Vec{0, 0, 0, 0}
	p := cache.Predict(x)
	p[0] = 42 // caller mutates its copy
	if cache.Predict(x)[0] == 42 {
		t.Fatal("cache leaked internal storage")
	}
}

func TestCacheBoundedEvictsOldest(t *testing.T) {
	counter := NewCounter(testModel(5))
	cache := NewCache(counter, 1)
	a, b := mat.Vec{1, 0, 0, 0}, mat.Vec{0, 1, 0, 0}
	cache.Predict(a) // miss, stored
	cache.Predict(b) // miss, evicts a, stored
	cache.Predict(b) // hit: a full cache still admits new entries
	if counter.Count() != 2 {
		t.Fatalf("bounded cache: model called %d times, want 2", counter.Count())
	}
	if cache.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", cache.Evictions())
	}
	cache.Predict(a) // evicted earlier, so this is a fresh miss
	if counter.Count() != 3 {
		t.Fatalf("evicted entry still served: model called %d times, want 3", counter.Count())
	}
}

func TestCacheFIFOOrder(t *testing.T) {
	counter := NewCounter(testModel(5))
	cache := NewCache(counter, 2)
	a, b, c := mat.Vec{1, 0, 0, 0}, mat.Vec{0, 1, 0, 0}, mat.Vec{0, 0, 1, 0}
	cache.Predict(a)
	cache.Predict(b)
	cache.Predict(c) // evicts a (oldest), keeps b
	cache.Predict(b) // must still be cached
	if counter.Count() != 3 {
		t.Fatalf("FIFO evicted the wrong entry: model called %d times, want 3", counter.Count())
	}
	cache.Predict(a) // miss again
	if counter.Count() != 4 {
		t.Fatalf("model called %d times, want 4", counter.Count())
	}
}

func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	// Many goroutines miss on the same key at once: exactly one model query
	// and one recorded miss; everyone else shares the in-flight answer.
	slow := &slowModel{inner: testModel(5), gate: make(chan struct{})}
	counter := NewCounter(slow)
	cache := NewCache(counter, 0)
	x := mat.Vec{0.3, 0.3, 0.3, 0.3}

	const waiters = 8
	var wg sync.WaitGroup
	out := make([]mat.Vec, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g] = cache.Predict(x)
		}(g)
	}
	// Wait until at least one goroutine reached the model, then let every
	// submission settle before releasing the probe.
	for counter.Count() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	close(slow.gate)
	wg.Wait()

	if counter.Count() != 1 {
		t.Fatalf("concurrent misses reached the model %d times, want 1", counter.Count())
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Fatalf("double-counted misses: %d, want 1", misses)
	}
	if hits != waiters-1 {
		t.Fatalf("hits = %d, want %d", hits, waiters-1)
	}
	for g := 1; g < waiters; g++ {
		if !out[g].EqualApprox(out[0], 0) {
			t.Fatalf("waiter %d got a different answer", g)
		}
	}
}

// slowModel blocks Predict until its gate opens, so tests can hold several
// goroutines inside a cache miss at once.
type slowModel struct {
	inner plm.Model
	gate  chan struct{}
}

func (s *slowModel) Predict(x mat.Vec) mat.Vec {
	<-s.gate
	return s.inner.Predict(x)
}
func (s *slowModel) Dim() int     { return s.inner.Dim() }
func (s *slowModel) Classes() int { return s.inner.Classes() }

func TestFlakyInjectsFailures(t *testing.T) {
	m := testModel(6)
	f := NewFlaky(m, 1.0, rand.New(rand.NewSource(7)))
	p := f.Predict(mat.Vec{0, 0, 0, 0})
	want := 1.0 / 3
	for _, v := range p {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("always-flaky response = %v", p)
		}
	}
	if f.Failures() != 1 {
		t.Fatalf("Failures = %d", f.Failures())
	}
	healthy := NewFlaky(m, 0, rand.New(rand.NewSource(8)))
	if !healthy.Predict(mat.Vec{0, 0, 0, 0}).EqualApprox(m.Predict(mat.Vec{0, 0, 0, 0}), 0) {
		t.Fatal("rate 0 should never fail")
	}
	clamped := NewFlaky(m, 7, rand.New(rand.NewSource(9)))
	if clamped.rate != 1 {
		t.Fatalf("rate not clamped: %v", clamped.rate)
	}
}

func TestFlakyNilRNGDefaults(t *testing.T) {
	// A nil RNG must not panic: it defaults to a seeded source, like
	// core.Config.setDefaults does.
	m := testModel(6)
	f := NewFlaky(m, 0.5, nil)
	for i := 0; i < 10; i++ {
		if got := f.Predict(mat.Vec{0, 0, 0, 0}); len(got) != 3 {
			t.Fatalf("prediction has %d entries", len(got))
		}
	}
	// Seeded default means two nil-RNG wrappers fail identically.
	f1, g1 := NewFlaky(m, 0.5, nil), NewFlaky(m, 0.5, nil)
	for i := 0; i < 50; i++ {
		f1.Predict(mat.Vec{0, 0, 0, 0})
		g1.Predict(mat.Vec{0, 0, 0, 0})
	}
	if f1.Failures() != g1.Failures() {
		t.Fatalf("nil-RNG default not deterministic: %d vs %d failures", f1.Failures(), g1.Failures())
	}
}

func TestValidate(t *testing.T) {
	m := testModel(10)
	if err := Validate(m, mat.Vec{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, mat.Vec{0.1}); err == nil {
		t.Fatal("wrong probe length accepted")
	}
	if err := Validate(badModel{}, mat.Vec{0}); err == nil {
		t.Fatal("non-probability model accepted")
	}
}

type badModel struct{}

func (badModel) Predict(mat.Vec) mat.Vec { return mat.Vec{0.9, 0.9} }
func (badModel) Dim() int                { return 1 }
func (badModel) Classes() int            { return 2 }
