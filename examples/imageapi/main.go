// Imageapi: the paper's headline scenario end to end. A fashion classifier
// runs behind a real HTTP prediction API in this process; the client side
// knows nothing but the URL, yet recovers the exact decision features of a
// prediction and renders them as a heatmap.
//
// Run with:
//
//	go run ./examples/imageapi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"

	"repro"
	"repro/internal/dataset"
	"repro/internal/heatmap"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func main() {
	log.SetFlags(0)

	// --- Provider side: train a garment classifier and serve it. ---------
	rng := rand.New(rand.NewSource(7))
	data := dataset.SyntheticFashion(rng, dataset.SynthConfig{Size: 14, PerClass: 80})
	net := nn.New(rng, data.Dim(), 48, 24, data.Classes())
	if _, err := net.Train(rng, data.X, data.Y, nn.TrainConfig{Epochs: 20}); err != nil {
		log.Fatal(err)
	}
	provider := &openbox.PLNN{Net: net}
	server := httptest.NewServer(repro.ServeModel(provider, "fashion-clf-v1"))
	defer server.Close()
	fmt.Printf("provider: serving %q at %s (parameters never leave the server)\n",
		"fashion-clf-v1", server.URL)

	// --- Consumer side: only the URL is known from here on. --------------
	remote, err := repro.DialModel(server.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer: connected to %s — %d features, %d classes\n",
		remote.Name(), remote.Dim(), remote.Classes())

	// Pick a test image the remote classifies confidently.
	x := data.X[3]
	probs := remote.Predict(x)
	c := probs.ArgMax()
	fmt.Printf("consumer: remote predicts %q with probability %.3f\n",
		data.Names[c], probs[c])

	counted := repro.CountQueries(remote)
	interp, err := repro.Interpret(counted, x, c)
	if err != nil {
		log.Fatal(err)
	}
	if err := remote.Err(); err != nil {
		log.Fatalf("transport errors: %v", err)
	}
	fmt.Printf("consumer: OpenAPI used %d HTTP queries over %d iteration(s)\n",
		counted.Count(), interp.Iterations)

	// Render the instance and its decision features side by side.
	imgArt, err := heatmap.ASCII(x, data.Width, data.Height, false)
	if err != nil {
		log.Fatal(err)
	}
	dfArt, err := heatmap.ASCII(interp.Features, data.Width, data.Height, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput image (left) vs decision features for %q (right;\nuppercase ramp supports the class, lowercase opposes):\n\n",
		data.Names[c])
	fmt.Print(heatmap.SideBySide([]string{imgArt, dfArt}, "   |   "))

	// The provider can verify exactness — the consumer never could.
	truth, err := repro.GroundTruth(provider, x, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovider-side check: L1 distance to ground truth = %.3g\n",
		interp.Features.L1Dist(truth))
}
