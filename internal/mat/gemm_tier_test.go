package mat

import (
	"math/rand"
	"testing"
)

// forEachTier runs fn once per tier the running CPU can execute, with the
// GEMM dispatch pinned to that tier, and restores the previous tier when
// done. TierScalar always runs first, so every wider kernel is compared
// against results the scalar reference just produced on the same machine.
func forEachTier(t *testing.T, fn func(t *testing.T, tier KernelTier)) {
	t.Helper()
	prev := ActiveKernelTier()
	defer SetKernelTier(prev)
	for _, tier := range AvailableTiers() {
		if _, err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%s): %v", tier, err)
		}
		t.Run(tier.String(), func(t *testing.T) { fn(t, tier) })
	}
}

func TestParseKernelTierRoundTrip(t *testing.T) {
	for _, tier := range []KernelTier{TierScalar, TierNEON, TierAVX2, TierAVX512} {
		got, err := ParseKernelTier(tier.String())
		if err != nil || got != tier {
			t.Fatalf("ParseKernelTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if got, err := ParseKernelTier("  AVX2\n"); err != nil || got != TierAVX2 {
		t.Fatalf("ParseKernelTier with case/space = %v, %v", got, err)
	}
	if _, err := ParseKernelTier("sse9"); err == nil {
		t.Fatal("ParseKernelTier accepted an unknown tier")
	}
}

func TestAvailableTiersAscendingScalarFirst(t *testing.T) {
	tiers := AvailableTiers()
	if len(tiers) == 0 || tiers[0] != TierScalar {
		t.Fatalf("AvailableTiers = %v, want TierScalar first", tiers)
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i] <= tiers[i-1] {
			t.Fatalf("AvailableTiers not strictly ascending: %v", tiers)
		}
	}
}

func TestSetKernelTierRejectsUnavailable(t *testing.T) {
	avail := make(map[KernelTier]bool)
	for _, tier := range AvailableTiers() {
		avail[tier] = true
	}
	before := ActiveKernelTier()
	for _, tier := range []KernelTier{TierScalar, TierNEON, TierAVX2, TierAVX512} {
		if avail[tier] {
			continue
		}
		if _, err := SetKernelTier(tier); err == nil {
			t.Fatalf("SetKernelTier(%s) succeeded on a CPU without it", tier)
		}
		if got := ActiveKernelTier(); got != before {
			t.Fatalf("failed SetKernelTier changed active tier to %s", got)
		}
	}
}

// TestMulBTTierParity pins the ladder's core promise: every tier produces
// the same bits as the scalar reference for shapes covering every block and
// remainder case (rows mod 8 and mod 4, cols mod 4 and mod 2, k = 0).
func TestMulBTTierParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type cse struct {
		a, b *Dense
		want *Dense
	}
	var cases []cse
	for _, m := range []int{1, 3, 4, 5, 7, 8, 9, 13, 16, 17} {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 11} {
			for _, k := range []int{0, 1, 2, 7, 16, 17} {
				a := randDense(rng, m, k)
				b := randDense(rng, n, k)
				cases = append(cases, cse{a, b, naiveMul(a, b.T())})
			}
		}
	}
	forEachTier(t, func(t *testing.T, tier KernelTier) {
		for _, c := range cases {
			dst := NewDense(c.a.Rows(), c.b.Rows())
			c.a.MulBTInto(c.b, dst)
			bitEqual(t, dst, c.want, "MulBTInto@"+tier.String())
		}
	})
}

// TestMulATIntoTierParity covers the transpose-A entry point (batched
// backprop's dW GEMM), which reaches the packed kernels through double
// transposed packing, on every tier.
func TestMulATIntoTierParity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shapes := [][3]int{{1, 1, 1}, {4, 5, 3}, {8, 9, 4}, {17, 6, 11}, {3, 16, 2}}
	forEachTier(t, func(t *testing.T, tier KernelTier) {
		for _, s := range shapes {
			k, r, c := s[0], s[1], s[2]
			m := randDense(rng, k, r)
			b := randDense(rng, k, c)
			bitEqual(t, m.MulAT(b), naiveMul(m.T(), b), "MulAT@"+tier.String())
		}
	})
}

// TestMulVecIntoTierParity covers the matrix-vector entry point, which now
// routes through gemmBT as a one-row tile, on every tier; the one-row shape
// exercises the single-row remainder path of each kernel.
func TestMulVecIntoTierParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	forEachTier(t, func(t *testing.T, tier KernelTier) {
		for _, rows := range []int{1, 3, 4, 7, 8, 9, 17} {
			for _, cols := range []int{0, 1, 2, 5, 16, 17} {
				m := randDense(rng, rows, cols)
				x := make(Vec, cols)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				dst := make(Vec, rows)
				m.MulVecInto(x, dst)
				for i := 0; i < rows; i++ {
					var want float64
					for k := 0; k < cols; k++ {
						want += m.At(i, k) * x[k]
					}
					if dst[i] != want {
						t.Fatalf("MulVecInto@%s %dx%d: [%d] = %v, want %v", tier, rows, cols, i, dst[i], want)
					}
				}
			}
		}
	})
}
