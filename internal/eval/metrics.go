// Package eval implements the paper's evaluation harness: the metrics of
// §V (CPP, NLCI, cosine consistency, Region Difference, Weight Difference,
// L1Dist), the feature-flipping protocol behind Figure 3, and one driver per
// table/figure that regenerates the corresponding rows and series.
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Percentile returns the p-quantile (p in [0,1]) of xs by the nearest-rank
// method on a sorted copy — the estimator the latency batteries and the
// hedging benchmark use for tail (p99) reporting. An empty slice yields
// NaN; p is clamped into [0,1].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// RegionDifference is the paper's RD metric: 0 when every sampled instance
// shares x0's locally linear region, 1 otherwise.
func RegionDifference(m plm.RegionModel, x0 mat.Vec, samples []mat.Vec) float64 {
	key := m.RegionKey(x0)
	for _, s := range samples {
		if m.RegionKey(s) != key {
			return 1
		}
	}
	return 0
}

// WeightDifference is the paper's WD metric: the average L1 distance between
// the core-parameter vectors of x0 and of each sampled instance,
//
//	WD = Σ_{c'≠c} Σ_i ||D^0_{c,c'} − D^i_{c,c'}||_1 / ((C−1)·|S|),
//
// computed from the model's ground-truth local classifiers. It is 0 exactly
// when every sample shares x0's core parameters.
func WeightDifference(m plm.RegionModel, x0 mat.Vec, samples []mat.Vec, c int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("eval: WeightDifference needs at least one sample")
	}
	C := m.Classes()
	if c < 0 || c >= C {
		return 0, fmt.Errorf("eval: class %d out of range [0,%d)", c, C)
	}
	loc0, err := m.LocalAt(x0)
	if err != nil {
		return 0, err
	}
	// Samples overwhelmingly share a handful of regions; extracting the
	// local classifier once per distinct region turns the metric from
	// O(|S|·extract) into O(#regions·extract). The per-region pair gap is
	// cached too, since it only depends on the region.
	key0 := m.RegionKey(x0)
	gapByRegion := map[string]float64{key0: 0}
	var total float64
	for _, s := range samples {
		key := m.RegionKey(s)
		gap, ok := gapByRegion[key]
		if !ok {
			locI, err := m.LocalAt(s)
			if err != nil {
				return 0, err
			}
			for cp := 0; cp < C; cp++ {
				if cp == c {
					continue
				}
				d0, _ := loc0.CoreParams(c, cp)
				di, _ := locI.CoreParams(c, cp)
				gap += d0.L1Dist(di)
			}
			gapByRegion[key] = gap
		}
		total += gap
	}
	return total / (float64(C-1) * float64(len(samples))), nil
}

// L1Dist is the paper's exactness metric: the L1 distance between the
// ground-truth decision features of x0 and an interpreter's estimate.
func L1Dist(m plm.RegionModel, x0 mat.Vec, interp *plm.Interpretation) (float64, error) {
	loc, err := m.LocalAt(x0)
	if err != nil {
		return 0, err
	}
	truth := loc.DecisionFeatures(interp.Class)
	if len(truth) != len(interp.Features) {
		return 0, fmt.Errorf("eval: feature length %d != %d", len(interp.Features), len(truth))
	}
	return truth.L1Dist(interp.Features), nil
}

// CosineConsistency is the paper's CS metric: the cosine similarity between
// the interpretations of two (usually neighbouring) instances.
func CosineConsistency(a, b *plm.Interpretation) float64 {
	return a.Features.Cosine(b.Features)
}
