package lmt

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestTreeRegionPatternMatchesLocalAt(t *testing.T) {
	// One tree descent yields key and composer; both must agree with the
	// two-descent RegionKey/LocalAt pair bit for bit.
	rng := rand.New(rand.NewSource(70))
	xs := make([]mat.Vec, 120)
	labels := make([]int, len(xs))
	for i := range xs {
		xs[i] = mat.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if xs[i][0]+xs[i][1] > 0 {
			labels[i] = 1
		}
	}
	tree, err := Train(rng, xs, labels, 2, Config{MinLeaf: 10, MaxDepth: 4, LogReg: LogRegConfig{Epochs: 20}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := xs[i]
		key, compose, err := tree.RegionPattern(x)
		if err != nil {
			t.Fatal(err)
		}
		if key != tree.RegionKey(x) {
			t.Fatalf("pattern key %q != RegionKey %q", key, tree.RegionKey(x))
		}
		got, err := compose()
		if err != nil {
			t.Fatal(err)
		}
		want, err := tree.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key != want.Key || !got.B.EqualApprox(want.B, 0) {
			t.Fatalf("composed leaf differs: %v vs %v", got.B, want.B)
		}
		for r := 0; r < got.W.Rows(); r++ {
			if !got.W.RawRow(r).EqualApprox(want.W.RawRow(r), 0) {
				t.Fatalf("row %d differs", r)
			}
		}
	}
	if _, _, err := tree.RegionPattern(mat.Vec{1}); err == nil {
		t.Fatal("wrong-dim input accepted")
	}
}
