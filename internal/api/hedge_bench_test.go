package api_test

// The hedging trajectory benchmark lives in the external test package so it
// can report tail latency through eval.Percentile (eval imports api; the
// internal test package would cycle).

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/eval"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func tailBenchModel() *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(400)), 32, 64, 32, 5)}
}

func tailBenchProbes(n int) []mat.Vec {
	rng := rand.New(rand.NewSource(401))
	xs := make([]mat.Vec, n)
	for i := range xs {
		xs[i] = make(mat.Vec, 32)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	return xs
}

// runTailBench measures per-batch wall time on a heterogeneous fleet — one
// fast local replica, one remote whose every tenth request stalls — and
// reports the p99 alongside ns/op. The deterministic every-Nth spike is the
// point: hedging cannot beat a *uniformly* slow backend (the EWMA adapts
// and routes around it), but it must beat a backend with a latency *tail*,
// which is exactly what BENCH_pr8.json gates.
func runTailBench(b *testing.B, cfg api.ShardConfig) {
	inner := api.NewServer(tailBenchModel(), "spiky")
	var reqs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if reqs.Add(1)%10 == 0 {
			time.Sleep(8 * time.Millisecond)
		}
		inner.ServeHTTP(w, req)
	}))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := api.NewShardBackends([]api.Backend{
		api.NewLocalBackend(tailBenchModel(), "fast"),
		api.NewRemoteBackend(client),
	}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	xs := tailBenchProbes(256)
	lat := make([]float64, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := s.PredictBatch(xs); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
	}
	b.StopTimer()
	b.ReportMetric(eval.Percentile(lat, 0.99), "p99-ns")
}

// BenchmarkShard_Tail_Unhedged is the baseline: a latency spike on the
// remote backend rides all the way into the caller's batch time.
func BenchmarkShard_Tail_Unhedged(b *testing.B) {
	runTailBench(b, api.ShardConfig{})
}

// BenchmarkShard_Tail_Hedged races a duplicate of any chunk outstanding
// past the adaptive threshold; the fast local replica answers the spiked
// chunks and the p99 drops — the number BENCH_pr8.json holds the fleet to.
func BenchmarkShard_Tail_Hedged(b *testing.B) {
	runTailBench(b, api.ShardConfig{
		Hedge:    true,
		HedgeMin: 2 * time.Millisecond,
	})
}
