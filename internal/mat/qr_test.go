package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRRejectsWideMatrix(t *testing.T) {
	_, err := FactorQR(NewDense(2, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRSquareSolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randDense(rng, 6, 6)
	for i := 0; i < 6; i++ {
		a.Set(i, i, a.At(i, i)+6)
	}
	b := make(Vec, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xlu, err := SolveSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xqr, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !xlu.EqualApprox(xqr, 1e-8) {
		t.Fatalf("LU %v vs QR %v", xlu, xqr)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 through noisy-free points: exact recovery expected.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(len(xs), 2)
	b := make(Vec, len(xs))
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !coef.EqualApprox(Vec{2, 1}, 1e-10) {
		t.Fatalf("coef = %v, want [2 1]", coef)
	}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ResidualNorm(b)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-10 {
		t.Fatalf("residual of consistent system = %v", res)
	}
}

func TestQRResidualOfInconsistentSystem(t *testing.T) {
	// x must satisfy x=0 and x=1 simultaneously: residual is sqrt(1/2).
	a := FromRows(Vec{1}, Vec{1})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ResidualNorm(Vec{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res, math.Sqrt(0.5), 1e-12) {
		t.Fatalf("residual = %v, want %v", res, math.Sqrt(0.5))
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := FromRows(Vec{1, 2}, Vec{2, 4}, Vec{3, 6})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsFullRank(1e-12) {
		t.Fatal("rank-1 matrix reported full rank")
	}
	if r := f.Rank(1e-12); r != 1 {
		t.Fatalf("Rank = %d, want 1", r)
	}
	if _, err := f.SolveVec(Vec{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRZeroMatrixRank(t *testing.T) {
	f, err := FactorQR(NewDense(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Rank(1e-12); r != 0 {
		t.Fatalf("Rank of zero matrix = %d", r)
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 20, 3)
	b := make(Vec, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x0, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := RidgeSolve(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := RidgeSolve(a, b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(x2.Norm2() < x1.Norm2() && x1.Norm2() < x0.Norm2()) {
		t.Fatalf("ridge norms not monotone: %v %v %v", x0.Norm2(), x1.Norm2(), x2.Norm2())
	}
	if x2.Norm2() > 1e-3 {
		t.Fatalf("huge lambda should crush coefficients, got %v", x2.Norm2())
	}
}

func TestRidgeSolveSkipCols(t *testing.T) {
	// Column 1 is an intercept; exempting it from the penalty must keep the
	// fit of a constant function exact even under heavy regularization.
	n := 10
	a := NewDense(n, 2)
	b := make(Vec, n)
	for i := 0; i < n; i++ {
		a.Set(i, 0, float64(i))
		a.Set(i, 1, 1)
		b[i] = 5 // constant target
	}
	x, err := RidgeSolve(a, b, 1e8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]) > 1e-3 {
		t.Fatalf("slope should be crushed, got %v", x[0])
	}
	if math.Abs(x[1]-5) > 1e-3 {
		t.Fatalf("intercept should stay near 5, got %v", x[1])
	}
}

func TestRidgeSolveNegativeLambda(t *testing.T) {
	if _, err := RidgeSolve(NewDense(2, 1), Vec{1, 2}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

// Property: the QR least-squares solution of a consistent square system
// reproduces the constructed solution.
func TestPropertyQRSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(n8, extra8 uint8) bool {
		n := int(n8%8) + 1
		extra := int(extra8 % 8)
		m := n + extra
		a := randDense(rng, m, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make(Vec, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		return got.EqualApprox(want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: residual of the consistent augmented system is ~0, and the
// least-squares residual never exceeds ||b||.
func TestPropertyResidualBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(n8, extra8 uint8) bool {
		n := int(n8%6) + 1
		m := n + int(extra8%6) + 1
		a := randDense(rng, m, n)
		b := make(Vec, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := FactorQR(a)
		if err != nil {
			return false
		}
		res, err := qr.ResidualNorm(b)
		if err != nil {
			return false
		}
		return res <= b.Norm2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
