package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/api"
	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

// exactness asserts OpenAPI's recovered D_c matches the white-box ground
// truth within tol.
func assertExact(t *testing.T, model plm.RegionModel, o *OpenAPI, x mat.Vec, tol float64) *plm.Interpretation {
	t.Helper()
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	c := model.Predict(x).ArgMax()
	got, err := o.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(c)
	if dist := got.Features.L1Dist(want); dist > tol {
		t.Fatalf("L1Dist(D_c) = %v > %v (iters %d, edge %g)", dist, tol, got.Iterations, got.FinalEdge)
	}
	return got
}

func TestOpenAPIExactOnPLNN(t *testing.T) {
	model := plnnModel(1, 6, 12, 8, 4)
	o := New(Config{Seed: 2})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		x := randVec(rng, 6)
		got := assertExact(t, model, o, x, 1e-5)
		if !got.Exact {
			t.Fatal("interpretation not marked exact")
		}
	}
}

func TestOpenAPIExactOnLMT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Checkerboard forces a genuine tree with several leaves.
	xs := make([]mat.Vec, 0, 400)
	ys := make([]int, 0, 400)
	for i := 0; i < 100; i++ {
		for _, q := range []struct {
			cx, cy float64
			label  int
		}{{2, 2, 0}, {-2, -2, 0}, {2, -2, 1}, {-2, 2, 1}} {
			xs = append(xs, mat.Vec{q.cx + rng.NormFloat64()*0.5, q.cy + rng.NormFloat64()*0.5})
			ys = append(ys, q.label)
		}
	}
	tree, err := lmt.Train(rng, xs, ys, 2, lmt.Config{
		MinLeaf: 20, MaxDepth: 6, LogReg: lmt.LogRegConfig{Epochs: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 2 {
		t.Fatalf("want a real tree, got %d leaves", tree.NumLeaves())
	}
	o := New(Config{Seed: 5})
	for trial := 0; trial < 10; trial++ {
		x := mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		assertExact(t, tree, o, x, 1e-6)
	}
}

func TestOpenAPIRecoversCoreParams(t *testing.T) {
	// Beyond D_c: every (D_{c,c'}, B_{c,c'}) pair must match ground truth.
	model := plnnModel(6, 5, 10, 3)
	o := New(Config{Seed: 7})
	rng := rand.New(rand.NewSource(8))
	x := randVec(rng, 5)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	c := 0
	got, err := o.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	for cp := 0; cp < model.Classes(); cp++ {
		if cp == c {
			if got.PairDiffs[cp] != nil {
				t.Fatal("self pair should be nil")
			}
			continue
		}
		wantD, wantB := truth.CoreParams(c, cp)
		if dist := got.PairDiffs[cp].L1Dist(wantD); dist > 1e-5 {
			t.Fatalf("pair (%d,%d): D L1Dist %v", c, cp, dist)
		}
		if diff := got.Biases[cp] - wantB; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("pair (%d,%d): B diff %v", c, cp, diff)
		}
	}
}

func TestOpenAPIConsistentWithinRegion(t *testing.T) {
	// Two instances in the same region must get bitwise-identical ground
	// truth and near-identical OpenAPI interpretations.
	model := plnnModel(9, 4, 8, 3)
	o := New(Config{Seed: 10})
	rng := rand.New(rand.NewSource(11))
	var x, y mat.Vec
	for {
		x = randVec(rng, 4)
		y = x.Clone()
		for i := range y {
			y[i] += 1e-7 * rng.NormFloat64()
		}
		if model.RegionKey(x) == model.RegionKey(y) {
			break
		}
	}
	c := model.Predict(x).ArgMax()
	ix, err := o.Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	iy, err := o.Interpret(model, y, c)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ix.Features.Cosine(iy.Features); cs < 1-1e-9 {
		t.Fatalf("cosine similarity within region = %v, want ~1", cs)
	}
	if dist := ix.Features.L1Dist(iy.Features); dist > 1e-5 {
		t.Fatalf("within-region L1 gap = %v", dist)
	}
}

func TestOpenAPIAllSolversAgree(t *testing.T) {
	model := plnnModel(12, 5, 9, 3)
	rng := rand.New(rand.NewSource(13))
	x := randVec(rng, 5)
	c := model.Predict(x).ArgMax()
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(c)
	for _, solver := range []Solver{SolverSharedLU, SolverSharedQR, SolverPerPairLU} {
		o := New(Config{Seed: 14, Solver: solver})
		got, err := o.Interpret(model, x, c)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if dist := got.Features.L1Dist(want); dist > 1e-5 {
			t.Fatalf("%v: L1Dist %v", solver, dist)
		}
	}
}

func TestSolverString(t *testing.T) {
	if SolverSharedLU.String() != "shared-lu" ||
		SolverSharedQR.String() != "shared-qr" ||
		SolverPerPairLU.String() != "per-pair-lu" {
		t.Fatal("solver names wrong")
	}
	if Solver(99).String() == "" {
		t.Fatal("unknown solver should still render")
	}
}

func TestOpenAPIShrinksNearBoundary(t *testing.T) {
	// An instance very close to a region boundary needs a small hypercube:
	// iterations must exceed 1 and the final edge must have shrunk.
	model := plnnModel(15, 4, 8, 3)
	rng := rand.New(rand.NewSource(16))
	// Find a boundary by bisecting between two instances in different
	// regions. Stop at ~1e-4 of the boundary: close enough that the initial
	// hypercube must shrink several times, but not numerically ON the
	// boundary (where the paper's probability-0 failure case lives and no
	// float64 method can certify an answer).
	var a, b mat.Vec
	for {
		a, b = randVec(rng, 4), randVec(rng, 4)
		if model.RegionKey(a) != model.RegionKey(b) {
			break
		}
	}
	for i := 0; i < 14; i++ {
		mid := a.Add(b).ScaleInPlace(0.5)
		if model.RegionKey(mid) == model.RegionKey(a) {
			a = mid
		} else {
			b = mid
		}
	}
	o := New(Config{Seed: 17})
	got, err := o.Interpret(model, a, 0)
	if err != nil {
		t.Fatalf("near-boundary interpretation failed: %v", err)
	}
	if got.Iterations <= 1 {
		t.Fatalf("expected adaptive shrinking near boundary, iterations = %d", got.Iterations)
	}
	if got.FinalEdge >= 1.0 {
		t.Fatalf("edge did not shrink: %g", got.FinalEdge)
	}
	truth, err := model.LocalAt(a)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(0)
	if dist := got.Features.L1Dist(want); dist > 1e-4 {
		t.Fatalf("near-boundary L1Dist = %v", dist)
	}
}

func TestOpenAPIInputValidation(t *testing.T) {
	model := plnnModel(18, 3, 4, 2)
	o := New(Config{Seed: 19})
	if _, err := o.Interpret(model, mat.Vec{1}, 0); err == nil {
		t.Fatal("wrong instance length accepted")
	}
	if _, err := o.Interpret(model, mat.Vec{1, 2, 3}, 9); err == nil {
		t.Fatal("bad class accepted")
	}
	if _, err := o.InterpretAll(model, mat.Vec{1}); err == nil {
		t.Fatal("InterpretAll accepted bad length")
	}
}

func TestOpenAPINoConvergenceBudget(t *testing.T) {
	// With MaxIterations = 0 resolving to default this can't be tested, so
	// use 1 iteration against an adversarial "model" that is never locally
	// linear (logistic of a quadratic), which keeps every system
	// inconsistent.
	o := New(Config{MaxIterations: 3, Seed: 20, Tolerance: 1e-12})
	_, err := o.Interpret(quadModel{}, mat.Vec{0.3, -0.2}, 0)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// quadModel is softmax over a quadratic score — NOT a PLM, so Ω never
// becomes consistent and OpenAPI must exhaust its budget.
type quadModel struct{}

func (quadModel) Dim() int     { return 2 }
func (quadModel) Classes() int { return 2 }
func (quadModel) Predict(x mat.Vec) mat.Vec {
	s := x[0]*x[0] + 3*x[1]*x[1] + x[0]*x[1]
	return nn.Softmax(mat.Vec{s, -s})
}

func TestOpenAPIDefaultConfig(t *testing.T) {
	// The zero-value interpreter must work (defaults applied lazily).
	model := plnnModel(21, 3, 5, 2)
	var o OpenAPI
	rng := rand.New(rand.NewSource(22))
	x := randVec(rng, 3)
	got, err := o.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features == nil {
		t.Fatal("nil features")
	}
	if o.Name() != "OpenAPI" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestOpenAPIQueryAccounting(t *testing.T) {
	model := plnnModel(23, 4, 6, 3)
	counter := api.NewCounter(model)
	o := New(Config{Seed: 24})
	rng := rand.New(rand.NewSource(25))
	x := randVec(rng, 4)
	got, err := o.Interpret(counter, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got.Queries) != counter.Count() {
		t.Fatalf("reported %d queries, model saw %d", got.Queries, counter.Count())
	}
	// 1 center + (d + ExtraChecks) per iteration; default ExtraChecks is 2.
	want := 1 + got.Iterations*(model.Dim()+2)
	if got.Queries != want {
		t.Fatalf("queries = %d, want %d", got.Queries, want)
	}
}

func TestInterpretAllMatchesPerClass(t *testing.T) {
	model := plnnModel(26, 4, 8, 4)
	rng := rand.New(rand.NewSource(27))
	x := randVec(rng, 4)
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{Seed: 28})
	all, err := o.InterpretAll(model, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("got %d interpretations", len(all))
	}
	for c, interp := range all {
		want := truth.DecisionFeatures(c)
		if dist := interp.Features.L1Dist(want); dist > 1e-4 {
			t.Fatalf("class %d: L1Dist %v", c, dist)
		}
		// Pair consistency: D_{c,c'} = -D_{c',c}.
		for cp := 0; cp < 4; cp++ {
			if cp == c {
				continue
			}
			a := interp.PairDiffs[cp]
			b := all[cp].PairDiffs[c]
			if !a.EqualApprox(b.Scale(-1), 1e-7) {
				t.Fatalf("pair antisymmetry broken between %d and %d", c, cp)
			}
		}
	}
}

func TestOpenAPIThroughQueryCache(t *testing.T) {
	// Wrapping the model in a cache must not change results (samples are
	// a.s. distinct, but the center is queried once only).
	model := plnnModel(29, 4, 6, 3)
	cached := api.NewCache(model, 0)
	o := New(Config{Seed: 30})
	rng := rand.New(rand.NewSource(31))
	x := randVec(rng, 4)
	a, err := o.Interpret(model, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	o2 := New(Config{Seed: 30})
	b, err := o2.Interpret(cached, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Features.EqualApprox(b.Features, 1e-12) {
		t.Fatal("cache changed the interpretation")
	}
}

func TestOpenAPIExactOnScoreOnlyBinaryAPI(t *testing.T) {
	// Many real services expose only P(positive | x). The Binary adapter
	// turns that into a 2-class Model, and OpenAPI must stay exact —
	// the paper's sigmoid special case.
	model := plnnModel(90, 4, 8, 2)
	scoreAPI := plm.NewBinary(func(x mat.Vec) float64 {
		return model.Predict(x)[1]
	}, 4)
	o := New(Config{Seed: 91})
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 5; trial++ {
		x := randVec(rng, 4)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Interpret(scoreAPI, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(1)); dist > 1e-5 {
			t.Fatalf("score-only API L1Dist = %v", dist)
		}
	}
}

// Property: exactness on random small PLNNs — the headline guarantee.
func TestPropertyOpenAPIExactOnRandomPLNNs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + int(uint(seed)%3)
		model := &openbox.PLNN{Net: nn.New(rng, d, 7, 5, 3)}
		x := randVec(rng, d)
		truth, err := model.LocalAt(x)
		if err != nil {
			return false
		}
		c := model.Predict(x).ArgMax()
		o := New(Config{RNG: rng})
		got, err := o.Interpret(model, x, c)
		if err != nil {
			return false
		}
		return got.Features.L1Dist(truth.DecisionFeatures(c)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the recovered log-odds model predicts the API's log odds at
// fresh points within the same region.
func TestPropertyRecoveredModelPredictsLogOdds(t *testing.T) {
	model := plnnModel(32, 4, 9, 3)
	o := New(Config{Seed: 33})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, 4)
		c := 0
		got, err := o.Interpret(model, x, c)
		if err != nil {
			return false
		}
		// Probe a point very close to x (a.s. same region).
		probe := x.Clone()
		for i := range probe {
			probe[i] += 1e-9 * rng.NormFloat64()
		}
		if model.RegionKey(probe) != model.RegionKey(x) {
			return true // vacuous
		}
		p := model.Predict(probe)
		for cp := 0; cp < 3; cp++ {
			if cp == c {
				continue
			}
			pred := got.PairDiffs[cp].Dot(probe) + got.Biases[cp]
			want := plm.LogOdds(p, c, cp)
			if diff := pred - want; diff > 1e-5 || diff < -1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// scalarOnly hides a model's batch fast path, forcing plm.PredictAll down
// the per-instance fallback.
type scalarOnly struct{ plm.Model }

// TestInterpretBitIdenticalOverBatchedForward pins the PR-3 contract on the
// interpreter side: OpenAPI's probe batches now ride the model's batched
// GEMM forward (plm.BatchPredictor on openbox.PLNN), and the recovered
// interpretation must be bit-identical to the one computed against the same
// model with the batch path hidden — the fast path is a throughput
// decision, never a numerics change.
func TestInterpretBitIdenticalOverBatchedForward(t *testing.T) {
	model := plnnModel(71, 6, 12, 8, 3)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 5; trial++ {
		x := randVec(rng, 6)
		c := model.Predict(x).ArgMax()
		// Identical seeds draw identical sample sets; only the predict path
		// differs.
		viaBatch, err := New(Config{Seed: 100 + int64(trial)}).Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		viaScalar, err := New(Config{Seed: 100 + int64(trial)}).Interpret(scalarOnly{model}, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if viaBatch.Iterations != viaScalar.Iterations || viaBatch.Queries != viaScalar.Queries {
			t.Fatalf("trial %d: batch path %d iters/%d queries, scalar %d/%d",
				trial, viaBatch.Iterations, viaBatch.Queries, viaScalar.Iterations, viaScalar.Queries)
		}
		for i := range viaScalar.Features {
			if viaBatch.Features[i] != viaScalar.Features[i] {
				t.Fatalf("trial %d feature %d: %v != %v (bit-exact)",
					trial, i, viaBatch.Features[i], viaScalar.Features[i])
			}
		}
	}
}
