package openbox

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mat"
)

// clusteredInstances returns reps copies of each of k base points with a
// perturbation small enough to stay in the base point's linear region
// essentially always — the region-sharing workload ExtractAll exploits.
// Exact duplicates (eps = 0) share regions by construction.
func clusteredInstances(rng *rand.Rand, d, k, reps int, eps float64) []mat.Vec {
	var xs []mat.Vec
	for i := 0; i < k; i++ {
		base := randVec(rng, d)
		for r := 0; r < reps; r++ {
			x := base.Clone()
			for j := range x {
				x[j] += eps * rng.NormFloat64()
			}
			xs = append(xs, x)
		}
	}
	return xs
}

func TestExtractAllBitIdenticalToExtract(t *testing.T) {
	n := randNet(31, 7, 14, 10, 5)
	rng := rand.New(rand.NewSource(32))
	xs := clusteredInstances(rng, 7, 6, 5, 0)
	rc := NewRegionCache(n, 0)
	got, err := rc.ExtractAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := Extract(n, x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Key != want.Key {
			t.Fatalf("instance %d: key %q != %q", i, got[i].Key, want.Key)
		}
		if len(got[i].B) != len(want.B) {
			t.Fatalf("instance %d: %d biases, want %d", i, len(got[i].B), len(want.B))
		}
		for c := range want.B {
			if got[i].B[c] != want.B[c] {
				t.Fatalf("instance %d bias %d: %v != %v (bit-exact)", i, c, got[i].B[c], want.B[c])
			}
		}
		for r := 0; r < want.W.Rows(); r++ {
			gr, wr := got[i].W.RawRow(r), want.W.RawRow(r)
			for c := range wr {
				if gr[c] != wr[c] {
					t.Fatalf("instance %d W(%d,%d): %v != %v (bit-exact)", i, r, c, gr[c], wr[c])
				}
			}
		}
	}
}

// TestExtractAllComposesPerRegionNotPerInstance is the acceptance check:
// over clustered inputs the composition counter must stay strictly below
// the instance count, and exactly match the number of distinct regions.
func TestExtractAllComposesPerRegionNotPerInstance(t *testing.T) {
	n := randNet(33, 6, 12, 8, 3)
	rng := rand.New(rand.NewSource(34))
	xs := clusteredInstances(rng, 6, 4, 8, 0) // 32 instances, 4 base points
	rc := NewRegionCache(n, 0)
	out, err := rc.ExtractAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, lin := range out {
		distinct[lin.Key] = true
	}
	st := rc.Stats()
	if st.Compositions >= int64(len(xs)) {
		t.Fatalf("%d compositions for %d instances; want strictly fewer", st.Compositions, len(xs))
	}
	if st.Compositions != int64(len(distinct)) {
		t.Fatalf("%d compositions, want one per distinct region (%d)", st.Compositions, len(distinct))
	}
	// A second pass over the same instances must be all hits.
	before := rc.Stats().Compositions
	if _, err := rc.ExtractAll(xs); err != nil {
		t.Fatal(err)
	}
	if after := rc.Stats().Compositions; after != before {
		t.Fatalf("second pass recomposed (%d -> %d)", before, after)
	}
}

func TestRegionCacheLocalAtHitsAndMisses(t *testing.T) {
	n := randNet(35, 5, 10, 4)
	rng := rand.New(rand.NewSource(36))
	x := randVec(rng, 5)
	rc := NewRegionCache(n, 0)
	first, err := rc.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	second, err := rc.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("repeat LocalAt did not return the shared cached value")
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Compositions != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 composition", st)
	}
}

// TestRegionCacheEvictionStaysCorrect bounds the cache at one region and
// alternates between two regions: every extraction after an eviction must
// recompose and still agree with the uncached Extract bit for bit.
func TestRegionCacheEvictionStaysCorrect(t *testing.T) {
	n := randNet(37, 5, 9, 7, 3)
	rng := rand.New(rand.NewSource(38))
	var a, b mat.Vec
	for {
		a, b = randVec(rng, 5), randVec(rng, 5)
		if PatternKey(n.ActivationPattern(a)) != PatternKey(n.ActivationPattern(b)) {
			break
		}
	}
	rc := NewRegionCache(n, 1)
	for round := 0; round < 3; round++ {
		for _, x := range []mat.Vec{a, b} {
			got, err := rc.LocalAt(x)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Extract(n, x)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key != want.Key {
				t.Fatalf("round %d: key %q != %q", round, got.Key, want.Key)
			}
			for c := range want.B {
				if got.B[c] != want.B[c] {
					t.Fatalf("round %d bias %d: %v != %v", round, c, got.B[c], want.B[c])
				}
			}
			if rc.Len() > 1 {
				t.Fatalf("round %d: cache holds %d entries, cap 1", round, rc.Len())
			}
		}
	}
	st := rc.Stats()
	if st.Evictions == 0 {
		t.Fatal("alternating two regions through a cap-1 cache never evicted")
	}
	// 6 extractions alternating two regions through a cap-1 cache: every
	// access after the first two misses evicts the other region, so all six
	// compose.
	if st.Compositions != 6 {
		t.Fatalf("%d compositions, want 6", st.Compositions)
	}
}

func TestRegionCacheConcurrent(t *testing.T) {
	n := randNet(39, 6, 11, 8, 4)
	rng := rand.New(rand.NewSource(40))
	xs := clusteredInstances(rng, 6, 5, 4, 0)
	rc := NewRegionCache(n, 3) // bounded: exercise eviction under contention
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				x := xs[(w+round)%len(xs)]
				lin, err := rc.LocalAt(x)
				if err != nil {
					errs <- err
					return
				}
				if lin.Key != PatternKey(n.ActivationPattern(x)) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPLNNPredictBatchBitIdentical(t *testing.T) {
	n := randNet(41, 6, 9, 4)
	rng := rand.New(rand.NewSource(42))
	p := &PLNN{Net: n}
	xs := clusteredInstances(rng, 6, 3, 2, 0.01)
	got, err := p.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := p.Predict(x)
		for c := range want {
			if got[i][c] != want[c] {
				t.Fatalf("batch prediction %d class %d: %v != %v", i, c, got[i][c], want[c])
			}
		}
	}
	if _, err := p.PredictBatch([]mat.Vec{{1, 2}}); err == nil {
		t.Fatal("expected error on wrong-dimension batch item")
	}
}

func TestCachedPLNNLocalAtMatchesExtract(t *testing.T) {
	n := randNet(43, 5, 8, 3)
	rng := rand.New(rand.NewSource(44))
	p := NewCachedPLNN(n, 16)
	x := randVec(rng, 5)
	got, err := p.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Extract(n, x)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key || !got.W.EqualApprox(want.W, 0) {
		t.Fatal("cached PLNN LocalAt diverged from Extract")
	}
	if p.Regions.Stats().Misses != 1 {
		t.Fatalf("stats %+v, want one miss", p.Regions.Stats())
	}
}
