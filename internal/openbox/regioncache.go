package openbox

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// RegionCache memoizes the closed-form affine map of a network's locally
// linear regions, keyed by PatternKey. Composing (W_eff, b_eff) costs one
// GEMM per layer over the full input dimensionality; two instances with the
// same activation pattern share the identical map, so the second extraction
// is a store lookup instead of a GEMM chain — the region structure OpenBox
// makes explicit, exploited for compute.
//
// Storage lives behind the RegionStore contract: by default an in-RAM LRU
// (capacity <= 0 keeps every region seen), optionally layered over a
// durable backing tier (the disk atlas) via StoreOptions.Backing.
// RegionCache is safe for concurrent use. Stored *plm.Linear values are
// shared between callers and must be treated as read-only (every consumer
// in this repository is).
type RegionCache struct {
	net   *nn.Network
	store RegionStore

	compositions atomic.Int64
}

// NewRegionCacheOpts returns a cache over net whose storage stack is built
// from opts (see NewStore).
func NewRegionCacheOpts(net *nn.Network, opts StoreOptions) *RegionCache {
	return &RegionCache{net: net, store: NewStore(opts)}
}

// NewRegionCache returns a cache over net holding at most capacity regions
// (capacity <= 0 means unbounded).
//
// Deprecated: use NewRegionCacheOpts with StoreOptions{Capacity: capacity};
// the options form is where backing tiers and future knobs live.
func NewRegionCache(net *nn.Network, capacity int) *RegionCache {
	return NewRegionCacheOpts(net, StoreOptions{Capacity: capacity})
}

// RegionCacheStats is a point-in-time snapshot of cache behaviour.
// Compositions counts how many times the GEMM chain actually ran — the
// quantity the batched extraction keeps strictly below the instance count
// whenever instances share regions.
type RegionCacheStats struct {
	Hits, Misses, Evictions, Compositions int64
}

// Stats returns the cache counters.
func (rc *RegionCache) Stats() RegionCacheStats {
	s := rc.store.Stats()
	return RegionCacheStats{
		Hits:         s.Hits,
		Misses:       s.Misses,
		Evictions:    s.Evictions,
		Compositions: rc.compositions.Load(),
	}
}

// StoreStats returns the unified accounting shape of the underlying store
// stack (see plm.StoreStats).
func (rc *RegionCache) StoreStats() plm.StoreStats { return rc.store.Stats() }

// Compositions returns how many times the GEMM chain actually ran.
func (rc *RegionCache) Compositions() int64 { return rc.compositions.Load() }

// Store exposes the underlying store stack, for wiring stats or snapshots.
func (rc *RegionCache) Store() RegionStore { return rc.store }

// Len returns the number of regions currently stored.
func (rc *RegionCache) Len() int { return rc.store.Len() }

// LocalAt returns the memoized locally linear classifier of the region
// containing x, composing it on first sight of the region.
func (rc *RegionCache) LocalAt(x mat.Vec) (*plm.Linear, error) {
	if len(x) != rc.net.InputDim() {
		return nil, fmt.Errorf("openbox: input length %d != %d", len(x), rc.net.InputDim())
	}
	return rc.localForPattern(rc.net.ActivationPattern(x))
}

// ExtractAll returns the locally linear classifier of every instance. The
// activation patterns come from one batched forward (a GEMM per layer for
// the whole batch), and each distinct region is composed at most once —
// clustered workloads pay per region, not per instance. out[i] is
// bit-identical to Extract(net, xs[i]).
func (rc *RegionCache) ExtractAll(xs []mat.Vec) ([]*plm.Linear, error) {
	for i, x := range xs {
		if len(x) != rc.net.InputDim() {
			return nil, fmt.Errorf("openbox: batch item %d length %d != %d", i, len(x), rc.net.InputDim())
		}
	}
	if len(xs) == 0 {
		return nil, nil
	}
	patterns := rc.net.ActivationPatternBatch(xs)
	out := make([]*plm.Linear, len(xs))
	seen := make(map[string]*plm.Linear, len(xs))
	for i, pat := range patterns {
		key := PatternKey(pat)
		if lin, ok := seen[key]; ok {
			out[i] = lin
			continue
		}
		lin, err := rc.localForPattern(pat)
		if err != nil {
			return nil, err
		}
		seen[key] = lin
		out[i] = lin
	}
	return out, nil
}

// localForPattern returns the stored map for the region the pattern selects,
// composing and inserting it on a miss. The composition runs outside any
// store lock: two goroutines missing the same fresh region may both compose,
// but the results are identical and Insert keeps only the incumbent.
func (rc *RegionCache) localForPattern(pattern []bool) (*plm.Linear, error) {
	key := PatternKey(pattern)
	if lin, ok := rc.store.Lookup(key); ok {
		return lin, nil
	}
	rc.compositions.Add(1)
	lin, err := composeFromPattern(rc.net, pattern)
	if err != nil {
		return nil, err
	}
	return rc.store.Insert(key, lin), nil
}

// ExtractAll is the package-level batch extraction: activation patterns via
// the batched forward, one composition per distinct region, no persistent
// cache. out[i] is bit-identical to Extract(n, xs[i]).
func ExtractAll(n *nn.Network, xs []mat.Vec) ([]*plm.Linear, error) {
	return NewRegionCache(n, 0).ExtractAll(xs)
}

// CacheRegionModelOpts wraps any white-box model so repeated LocalAt calls
// for instances in an already-seen region return the memoized classifier,
// keyed by RegionKey, with the storage stack built from opts. A PLNN gets
// the pattern-level RegionCache; families implementing the per-family
// pattern hook (plm.PatternRegionModel — MaxOut, LMT) get the same
// economics through the generic cache: one pattern-building pass per call,
// hits skip the composition, and misses compose straight from the captured
// pattern instead of re-deriving it from x. A family with neither hook
// falls back to RegionKey + LocalAt (one extra derivation per miss). The
// evaluation harness wraps its ground-truth model with this before a
// metrics run: RD/WD/L1Dist query LocalAt per probe and per sample, but
// only per region does the answer change.
func CacheRegionModelOpts(m plm.RegionModel, opts StoreOptions) plm.RegionModel {
	if p, ok := m.(*PLNN); ok {
		if p.Regions != nil {
			return p
		}
		return &PLNN{Net: p.Net, Regions: NewRegionCacheOpts(p.Net, opts)}
	}
	return &cachedRegionModel{RegionModel: m, store: NewStore(opts)}
}

// CacheRegionModel wraps m with a region store of the given capacity
// (capacity <= 0 means unbounded).
//
// Deprecated: use CacheRegionModelOpts with StoreOptions{Capacity:
// capacity}; the options form is where backing tiers live.
func CacheRegionModel(m plm.RegionModel, capacity int) plm.RegionModel {
	return CacheRegionModelOpts(m, StoreOptions{Capacity: capacity})
}

// cachedRegionModel memoizes LocalAt per RegionKey for any RegionModel.
type cachedRegionModel struct {
	plm.RegionModel

	store        RegionStore
	compositions atomic.Int64
}

var _ StoreReporter = (*cachedRegionModel)(nil)

func (c *cachedRegionModel) LocalAt(x mat.Vec) (*plm.Linear, error) {
	var (
		key     string
		compose func() (*plm.Linear, error)
	)
	if pm, ok := c.RegionModel.(plm.PatternRegionModel); ok {
		// The pattern hook: the key-building pass already captured the
		// region, so a miss composes from the pattern instead of walking
		// the model again.
		k, comp, err := pm.RegionPattern(x)
		if err != nil {
			return nil, err
		}
		key, compose = k, comp
	} else {
		key = c.RegionModel.RegionKey(x)
		compose = func() (*plm.Linear, error) { return c.RegionModel.LocalAt(x) }
	}
	if lin, ok := c.store.Lookup(key); ok {
		return lin, nil
	}
	c.compositions.Add(1)
	lin, err := compose()
	if err != nil {
		return nil, err
	}
	return c.store.Insert(key, lin), nil
}

// RegionStoreStats implements StoreReporter.
func (c *cachedRegionModel) RegionStoreStats() plm.StoreStats { return c.store.Stats() }

// RegionCompositions implements StoreReporter.
func (c *cachedRegionModel) RegionCompositions() int64 { return c.compositions.Load() }
