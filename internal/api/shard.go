package api

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Shard routes prediction traffic across N replicas of the same model. A
// single replica answers a /batch request serially, so one big coalesced
// batch — exactly what an aggregated interpreter pool ships — is evaluated
// one probe at a time; the shard splits the batch into contiguous chunks and
// evaluates them on all replicas in parallel, merging the answers back in
// submission order. Replicas must be interchangeable (copies of one model,
// or remotes serving it): the split is then invisible to callers and sharded
// predictions are bit-identical to single-replica ones.
//
// A Shard is safe for concurrent use when its replicas are; every model in
// this codebase is a pure function of its input, so sharing one model value
// across replica slots is also valid (the replicas then buy intra-batch
// parallelism, not memory isolation).
type Shard struct {
	replicas []plm.Model
	// queries[i] counts the probes replica i has served — the /stats
	// per-replica breakdown and the load-balance check in tests.
	queries []atomic.Int64
	// next drives the round-robin assignment of single predictions.
	next atomic.Int64
}

// NewShard builds a router over the given replicas. All replicas must agree
// on input dimensionality and class count.
func NewShard(replicas []plm.Model) (*Shard, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("api: shard needs at least one replica")
	}
	d, c := replicas[0].Dim(), replicas[0].Classes()
	for i, r := range replicas[1:] {
		if r.Dim() != d || r.Classes() != c {
			return nil, fmt.Errorf("api: replica %d is %dx%d, replica 0 is %dx%d",
				i+1, r.Dim(), r.Classes(), d, c)
		}
	}
	return &Shard{replicas: replicas, queries: make([]atomic.Int64, len(replicas))}, nil
}

// Replicas returns the number of replicas behind the router.
func (s *Shard) Replicas() int { return len(s.replicas) }

// ReplicaQueries returns the number of probes each replica has served.
func (s *Shard) ReplicaQueries() []int64 {
	out := make([]int64, len(s.queries))
	for i := range s.queries {
		out[i] = s.queries[i].Load()
	}
	return out
}

// Dim forwards to the first replica.
func (s *Shard) Dim() int { return s.replicas[0].Dim() }

// Classes forwards to the first replica.
func (s *Shard) Classes() int { return s.replicas[0].Classes() }

// Predict routes one prediction to the next replica round-robin.
func (s *Shard) Predict(x mat.Vec) mat.Vec {
	i := int(s.next.Add(1)-1) % len(s.replicas)
	s.queries[i].Add(1)
	return s.replicas[i].Predict(x)
}

// PredictBatch splits the batch into contiguous chunks, evaluates one chunk
// per replica concurrently, and merges the answers in submission order.
// Replica r writes only its own out[lo:hi] segment, so the merge needs no
// reordering and no lock. The first replica error fails the whole batch —
// partial answers would silently corrupt an interpretation's linear system.
func (s *Shard) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	n := len(s.replicas)
	if n == 1 || len(xs) == 1 {
		s.queries[0].Add(int64(len(xs)))
		return predictAllErr(s.replicas[0], xs)
	}
	chunk := (len(xs) + n - 1) / n
	out := make([]mat.Vec, len(xs))
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for r := 0; r < n; r++ {
		lo := r * chunk
		if lo >= len(xs) {
			break
		}
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			s.queries[r].Add(int64(hi - lo))
			ys, err := predictAllErr(s.replicas[r], xs[lo:hi])
			if err != nil {
				errMu.Lock()
				if first == nil {
					first = fmt.Errorf("api: replica %d: %w", r, err)
				}
				errMu.Unlock()
				return
			}
			copy(out[lo:hi], ys)
		}(r, lo, hi)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

var _ plm.Model = (*Shard)(nil)
var _ plm.BatchPredictor = (*Shard)(nil)
