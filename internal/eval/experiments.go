package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/interpret/lime"
	"repro/internal/interpret/naive"
	"repro/internal/interpret/zoo"
	"repro/internal/mat"
	"repro/internal/plm"
)

// HGrid is the perturbation-distance grid of Figures 5-7.
var HGrid = []float64{1e-8, 1e-4, 1e-2}

// StandardBaselines builds the paper's four API-only baselines at a given
// perturbation distance h: the naive method (N), ZOO (Z), Linear Regression
// LIME (L) and Ridge Regression LIME (R).
func StandardBaselines(h float64, seed int64) []plm.Interpreter {
	return []plm.Interpreter{
		naive.New(naive.Config{H: h, Seed: seed}),
		zoo.New(zoo.Config{H: h}),
		lime.New(lime.Config{H: h, Seed: seed + 1}),
		lime.New(lime.Config{H: h, Ridge: 1.0, Seed: seed + 2}),
	}
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

// AccuracyRow is one row of Table I.
type AccuracyRow struct {
	Dataset  string
	Model    string
	TrainAcc float64
	TestAcc  float64
}

// Table1 reports train/test accuracy of both target models of a workbench.
func Table1(w *Workbench) []AccuracyRow {
	rows := make([]AccuracyRow, 0, 2)
	rows = append(rows, AccuracyRow{
		Dataset:  w.Config.Dataset,
		Model:    "PLNN",
		TrainAcc: w.PLNN.Net.Accuracy(w.Train.X, w.Train.Y),
		TestAcc:  w.PLNN.Net.Accuracy(w.Test.X, w.Test.Y),
	})
	rows = append(rows, AccuracyRow{
		Dataset:  w.Config.Dataset,
		Model:    "LMT",
		TrainAcc: w.LMT.Accuracy(w.Train.X, w.Train.Y),
		TestAcc:  w.LMT.Accuracy(w.Test.X, w.Test.Y),
	})
	return rows
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

// ClassHeatmap is one column of Figure 2: a class's averaged test image and
// its averaged OpenAPI decision features under each target model.
type ClassHeatmap struct {
	Class       int
	ClassName   string
	MeanImage   mat.Vec
	AvgDecision map[string]mat.Vec // model name -> averaged D_c
	Instances   int                // instances averaged per model
}

// Figure2 averages OpenAPI decision features per class. For each selected
// class it samples up to perClass test instances of that class, interprets
// each with OpenAPI against both models, and averages D_c.
func Figure2(w *Workbench, o *core.OpenAPI, classes []int, perClass int, rng *rand.Rand) ([]ClassHeatmap, error) {
	if perClass <= 0 {
		perClass = 10
	}
	out := make([]ClassHeatmap, 0, len(classes))
	for _, c := range classes {
		if c < 0 || c >= w.Test.Classes() {
			return nil, fmt.Errorf("eval: class %d out of range", c)
		}
		mean, err := w.Test.ClassMean(c)
		if err != nil {
			return nil, err
		}
		ids := w.Test.ByClass(c)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if len(ids) > perClass {
			ids = ids[:perClass]
		}
		hm := ClassHeatmap{
			Class:       c,
			ClassName:   w.Test.Names[c],
			MeanImage:   mean,
			AvgDecision: make(map[string]mat.Vec, 2),
			Instances:   len(ids),
		}
		for _, entry := range w.Models() {
			sum := mat.NewVec(w.Test.Dim())
			for _, id := range ids {
				interp, err := o.Interpret(entry.Model, w.Test.X[id], c)
				if err != nil {
					return nil, fmt.Errorf("eval: figure 2 %s class %d: %w", entry.Name, c, err)
				}
				sum.AddInPlace(interp.Features)
			}
			hm.AvgDecision[entry.Name] = sum.ScaleInPlace(1 / float64(len(ids)))
		}
		out = append(out, hm)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

// MethodCurves is one method's pair of Figure 3 series.
type MethodCurves struct {
	Method string
	CPP    []float64 // mean change of prediction probability per flip count
	NLCI   []float64 // number of label-changed instances per flip count
}

// Figure3 runs the feature-flipping protocol for every method over the given
// instances. The interpreted class of each instance is the model's predicted
// label.
func Figure3(model plm.Model, methods []plm.Interpreter, xs []mat.Vec, maxFlips int) ([]MethodCurves, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("eval: figure 3 needs at least one instance")
	}
	out := make([]MethodCurves, 0, len(methods))
	for _, m := range methods {
		traces := make([]*FlipResult, 0, len(xs))
		for _, x := range xs {
			c := model.Predict(x).ArgMax()
			interp, err := m.Interpret(model, x, c)
			if err != nil {
				return nil, fmt.Errorf("eval: figure 3 %s: %w", m.Name(), err)
			}
			trace, err := FlipCurve(model, x, interp, maxFlips)
			if err != nil {
				return nil, err
			}
			traces = append(traces, trace)
		}
		cpp, nlci, err := AggregateFlips(traces)
		if err != nil {
			return nil, err
		}
		out = append(out, MethodCurves{Method: m.Name(), CPP: cpp, NLCI: nlci})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

// ConsistencyCurve is one method's Figure 4 series: cosine similarities
// between each instance's interpretation and its nearest neighbour's,
// sorted in descending order.
type ConsistencyCurve struct {
	Method string
	CS     []float64
}

// Figure4 computes interpretation consistency over (instance, neighbour)
// pairs. Both ends of a pair are interpreted for the first instance's
// predicted class, mirroring the paper's setup.
func Figure4(model plm.Model, methods []plm.Interpreter, pairs [][2]mat.Vec) ([]ConsistencyCurve, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("eval: figure 4 needs at least one pair")
	}
	out := make([]ConsistencyCurve, 0, len(methods))
	for _, m := range methods {
		cs := make([]float64, 0, len(pairs))
		for _, pr := range pairs {
			c := model.Predict(pr[0]).ArgMax()
			ia, err := m.Interpret(model, pr[0], c)
			if err != nil {
				return nil, fmt.Errorf("eval: figure 4 %s: %w", m.Name(), err)
			}
			ib, err := m.Interpret(model, pr[1], c)
			if err != nil {
				return nil, fmt.Errorf("eval: figure 4 %s: %w", m.Name(), err)
			}
			cs = append(cs, CosineConsistency(ia, ib))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(cs)))
		out = append(out, ConsistencyCurve{Method: m.Name(), CS: cs})
	}
	return out, nil
}

// NeighbourPairs builds the Figure 4 instance pairs: each selected test
// instance with its nearest test-set neighbour.
func NeighbourPairs(w *Workbench, ids []int) ([][2]mat.Vec, error) {
	idx := newTestIndex(w)
	pairs := make([][2]mat.Vec, 0, len(ids))
	for _, id := range ids {
		n, err := idx.NearestOf(id)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, [2]mat.Vec{w.Test.X[id], w.Test.X[n]})
	}
	return pairs, nil
}

// ---------------------------------------------------------------------------
// Figures 5, 6, 7
// ---------------------------------------------------------------------------

// QualityRow is one (method) row of the Figures 5-7 grids: sample quality
// (RD, WD) and exactness (L1Dist) aggregated over instances, plus probing
// cost.
type QualityRow struct {
	Method        string
	AvgRD         float64
	WD            mat.Summary
	L1            mat.Summary
	AvgQueries    float64
	AvgIterations float64
	Failures      int // instances the method could not interpret
}

// SampleQuality evaluates RD, WD and L1Dist for every method over the given
// instances against a white-box model. Methods that expose no sample set
// (white-box gradient baselines) get RD/WD NaN-free zero summaries with
// N == 0.
func SampleQuality(model plm.RegionModel, methods []plm.Interpreter, xs []mat.Vec) ([]QualityRow, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("eval: sample quality needs at least one instance")
	}
	out := make([]QualityRow, 0, len(methods))
	for _, m := range methods {
		var rds, wds, l1s, queries, iters []float64
		failures := 0
		for _, x := range xs {
			c := model.Predict(x).ArgMax()
			interp, err := m.Interpret(model, x, c)
			if err != nil {
				failures++
				continue
			}
			l1, err := L1Dist(model, x, interp)
			if err != nil {
				return nil, err
			}
			l1s = append(l1s, l1)
			queries = append(queries, float64(interp.Queries))
			iters = append(iters, float64(interp.Iterations))
			if len(interp.Samples) > 0 {
				rds = append(rds, RegionDifference(model, x, interp.Samples))
				wd, err := WeightDifference(model, x, interp.Samples, c)
				if err != nil {
					return nil, err
				}
				wds = append(wds, wd)
			}
		}
		row := QualityRow{
			Method:        m.Name(),
			WD:            mat.Summarize(wds),
			L1:            mat.Summarize(l1s),
			AvgQueries:    mat.Summarize(queries).Mean,
			AvgIterations: mat.Summarize(iters).Mean,
			Failures:      failures,
		}
		row.AvgRD = mat.Summarize(rds).Mean
		out = append(out, row)
	}
	return out, nil
}

// QualityGrid runs SampleQuality for OpenAPI plus the standard baselines at
// every h in the grid — the full Figures 5-7 panel for one model.
func QualityGrid(model plm.RegionModel, xs []mat.Vec, hs []float64, seed int64) ([]QualityRow, error) {
	if len(hs) == 0 {
		hs = HGrid
	}
	methods := []plm.Interpreter{core.New(core.Config{Seed: seed})}
	for i, h := range hs {
		methods = append(methods, StandardBaselines(h, seed+int64(100*(i+1)))...)
	}
	return SampleQuality(model, methods, xs)
}
