package api

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func testModel(seed int64) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), 4, 6, 3)}
}

func TestCounterCounts(t *testing.T) {
	m := testModel(1)
	c := NewCounter(m)
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	if got := c.Predict(x); !got.EqualApprox(m.Predict(x), 0) {
		t.Fatal("counter changed predictions")
	}
	c.Predict(x)
	c.Predict(x)
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("Reset failed")
	}
	if c.Dim() != 4 || c.Classes() != 3 {
		t.Fatal("metadata not forwarded")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(testModel(2))
	x := mat.Vec{0, 0, 0, 0}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Predict(x)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 800 {
		t.Fatalf("Count = %d, want 800", c.Count())
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	m := testModel(3)
	counter := NewCounter(m)
	cache := NewCache(counter, 0)
	x := mat.Vec{0.5, 0.5, 0.5, 0.5}
	p1 := cache.Predict(x)
	p2 := cache.Predict(x.Clone()) // equal value, different storage
	if !p1.EqualApprox(p2, 0) {
		t.Fatal("cache returned different answers")
	}
	if counter.Count() != 1 {
		t.Fatalf("inner model called %d times, want 1", counter.Count())
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	// A different input misses.
	cache.Predict(mat.Vec{0.1, 0.5, 0.5, 0.5})
	if counter.Count() != 2 {
		t.Fatal("distinct input should reach the model")
	}
}

func TestCacheReturnsClones(t *testing.T) {
	cache := NewCache(testModel(4), 0)
	x := mat.Vec{0, 0, 0, 0}
	p := cache.Predict(x)
	p[0] = 42 // caller mutates its copy
	if cache.Predict(x)[0] == 42 {
		t.Fatal("cache leaked internal storage")
	}
}

func TestCacheBounded(t *testing.T) {
	counter := NewCounter(testModel(5))
	cache := NewCache(counter, 1)
	cache.Predict(mat.Vec{1, 0, 0, 0})
	cache.Predict(mat.Vec{0, 1, 0, 0}) // not stored: cache full
	cache.Predict(mat.Vec{0, 1, 0, 0}) // must hit the model again
	if counter.Count() != 3 {
		t.Fatalf("bounded cache: model called %d times, want 3", counter.Count())
	}
}

func TestFlakyInjectsFailures(t *testing.T) {
	m := testModel(6)
	f := NewFlaky(m, 1.0, rand.New(rand.NewSource(7)))
	p := f.Predict(mat.Vec{0, 0, 0, 0})
	want := 1.0 / 3
	for _, v := range p {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("always-flaky response = %v", p)
		}
	}
	if f.Failures() != 1 {
		t.Fatalf("Failures = %d", f.Failures())
	}
	healthy := NewFlaky(m, 0, rand.New(rand.NewSource(8)))
	if !healthy.Predict(mat.Vec{0, 0, 0, 0}).EqualApprox(m.Predict(mat.Vec{0, 0, 0, 0}), 0) {
		t.Fatal("rate 0 should never fail")
	}
	clamped := NewFlaky(m, 7, rand.New(rand.NewSource(9)))
	if clamped.rate != 1 {
		t.Fatalf("rate not clamped: %v", clamped.rate)
	}
}

func TestValidate(t *testing.T) {
	m := testModel(10)
	if err := Validate(m, mat.Vec{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, mat.Vec{0.1}); err == nil {
		t.Fatal("wrong probe length accepted")
	}
	if err := Validate(badModel{}, mat.Vec{0}); err == nil {
		t.Fatal("non-probability model accepted")
	}
}

type badModel struct{}

func (badModel) Predict(mat.Vec) mat.Vec { return mat.Vec{0.9, 0.9} }
func (badModel) Dim() int                { return 1 }
func (badModel) Classes() int            { return 2 }
