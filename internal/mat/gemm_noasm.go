//go:build !amd64 && !arm64

package mat

// No packed microkernel on this architecture; gemmBT falls back to the
// pure-Go register-tiled path, which computes identical bits.
const (
	haveNEON   = false
	haveAVX2   = false
	haveAVX512 = false
)

func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64) {
	panic("mat: dotPack4x4 without asm support")
}

func dotPack8x4(pack, b0, b1, b2, b3 *float64, k int, out *[32]float64) {
	panic("mat: dotPack8x4 without asm support")
}
