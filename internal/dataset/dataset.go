// Package dataset supplies the data substrate of the reproduction. The
// paper evaluates on MNIST and Fashion-MNIST; since this build is offline,
// the package generates *synthetic* 28x28 gray-scale datasets with the same
// shape (10 classes, 784 features, values in [0,1]) from parametric class
// templates, and also implements the real IDX binary codec so genuine MNIST
// files can be dropped in unchanged. See DESIGN.md §4 for why the
// substitution preserves the behaviour the experiments measure.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Dataset is a labeled collection of fixed-size gray-scale images flattened
// to feature vectors with pixel values normalized to [0, 1].
type Dataset struct {
	Name   string
	Width  int
	Height int
	X      []mat.Vec // len n, each Width*Height
	Y      []int     // len n, class labels
	Names  []string  // class names, len = number of classes
}

// Dim returns the feature dimensionality (Width*Height).
func (d *Dataset) Dim() int { return d.Width * d.Height }

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Classes returns the number of classes.
func (d *Dataset) Classes() int { return len(d.Names) }

// Validate checks internal consistency and value ranges.
func (d *Dataset) Validate() error {
	if d.Width <= 0 || d.Height <= 0 {
		return fmt.Errorf("dataset %s: invalid size %dx%d", d.Name, d.Width, d.Height)
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset %s: %d images vs %d labels", d.Name, len(d.X), len(d.Y))
	}
	if len(d.Names) < 2 {
		return fmt.Errorf("dataset %s: needs at least 2 classes, got %d", d.Name, len(d.Names))
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("dataset %s: image %d has %d pixels, want %d", d.Name, i, len(x), dim)
		}
		for j, v := range x {
			if v < 0 || v > 1 {
				return fmt.Errorf("dataset %s: image %d pixel %d = %v outside [0,1]", d.Name, i, j, v)
			}
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.Names) {
			return fmt.Errorf("dataset %s: label %d of image %d out of range", d.Name, y, i)
		}
	}
	return nil
}

// Split partitions the dataset into train and test halves with nTest
// instances held out, after a seeded shuffle. It panics if nTest is out of
// range.
func (d *Dataset) Split(rng *rand.Rand, nTest int) (train, test *Dataset) {
	if nTest < 0 || nTest > d.Len() {
		panic(fmt.Sprintf("dataset: nTest %d out of range [0,%d]", nTest, d.Len()))
	}
	order := rng.Perm(d.Len())
	pick := func(ids []int, name string) *Dataset {
		out := &Dataset{Name: name, Width: d.Width, Height: d.Height, Names: d.Names}
		out.X = make([]mat.Vec, len(ids))
		out.Y = make([]int, len(ids))
		for i, id := range ids {
			out.X[i] = d.X[id]
			out.Y[i] = d.Y[id]
		}
		return out
	}
	test = pick(order[:nTest], d.Name+"-test")
	train = pick(order[nTest:], d.Name+"-train")
	return train, test
}

// Subset returns a view (shared image storage) of the given indices.
func (d *Dataset) Subset(ids []int, name string) *Dataset {
	out := &Dataset{Name: name, Width: d.Width, Height: d.Height, Names: d.Names}
	out.X = make([]mat.Vec, len(ids))
	out.Y = make([]int, len(ids))
	for i, id := range ids {
		out.X[i] = d.X[id]
		out.Y[i] = d.Y[id]
	}
	return out
}

// ByClass returns the indices of every instance of class c.
func (d *Dataset) ByClass(c int) []int {
	var out []int
	for i, y := range d.Y {
		if y == c {
			out = append(out, i)
		}
	}
	return out
}

// ClassMean returns the pixelwise mean image of class c — the "averaged
// images" in the first row of the paper's Figure 2. It returns an error if
// the class is empty.
func (d *Dataset) ClassMean(c int) (mat.Vec, error) {
	ids := d.ByClass(c)
	if len(ids) == 0 {
		return nil, fmt.Errorf("dataset %s: class %d is empty", d.Name, c)
	}
	sum := mat.NewVec(d.Dim())
	for _, id := range ids {
		sum.AddInPlace(d.X[id])
	}
	return sum.ScaleInPlace(1 / float64(len(ids))), nil
}

// ClassCounts returns the per-class instance counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes())
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}
