package main

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/atlas"
	"repro/internal/jobs"
	"repro/internal/mat"
	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/openbox"
)

// TestLoadReplicasServesShardedStats exercises exactly what `plmserve
// -replicas 4` wires together: N loaded copies behind the shard router,
// served over HTTP, with bit-identical predictions to a single replica and
// a per-replica breakdown under /stats.
func TestLoadReplicasServesShardedStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.New(rng, 6, 8, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}

	single, err := loadReplicas(path, "plnn", 1, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := loadReplicas(path, "plnn", 4, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.(*api.Shard); !ok {
		t.Fatalf("replicas=4 returned %T, want *api.Shard", sharded)
	}

	ts := httptest.NewServer(api.NewServer(sharded, "sharded"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]mat.Vec, 12)
	for i := range xs {
		xs[i] = make(mat.Vec, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	got, err := client.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: sharded %v != single-replica %v", i, got[i], want)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries        int64   `json:"queries"`
		ReplicaQueries []int64 `json:"replica_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.ReplicaQueries) != 4 {
		t.Fatalf("replica_queries = %v, want 4 entries", stats.ReplicaQueries)
	}
	var sum int64
	for r, q := range stats.ReplicaQueries {
		if q == 0 {
			t.Fatalf("replica %d served no probes: %v", r, stats.ReplicaQueries)
		}
		sum += q
	}
	if sum != stats.Queries {
		t.Fatalf("replica queries sum to %d, server counted %d", sum, stats.Queries)
	}
}

func TestLoadReplicasBadInputs(t *testing.T) {
	if _, err := loadReplicas(filepath.Join(t.TempDir(), "missing.json"), "plnn", 2, api.ShardConfig{}); err == nil {
		t.Fatal("missing model file accepted")
	}
	rng := rand.New(rand.NewSource(2))
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := nn.New(rng, 4, 6, 2).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReplicas(path, "nope", 1, api.ShardConfig{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestCachedShardedServer exercises what `plmserve -replicas 2 -cache 64`
// wires together: the LRU response cache in front of the shard, repeat
// probes answered without growing the query count, and the cache counters
// visible under /stats alongside the replica breakdown.
func TestCachedShardedServer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := nn.New(rng, 5, 7, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	model, err := loadReplicas(path, "plnn", 2, api.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := api.NewResponseCache(model, 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewServer(cached, "cached"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make(mat.Vec, 5)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	first := client.Predict(x)
	second := client.Predict(x)
	if err := client.Err(); err != nil {
		t.Fatal(err)
	}
	if !first.EqualApprox(second, 0) {
		t.Fatalf("cached answer %v != first answer %v", second, first)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		CacheHits      *int64  `json:"cache_hits"`
		CacheMisses    *int64  `json:"cache_misses"`
		ReplicaQueries []int64 `json:"replica_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == nil || *stats.CacheHits != 1 || stats.CacheMisses == nil || *stats.CacheMisses != 1 {
		t.Fatalf("cache stats hits=%v misses=%v, want 1/1", stats.CacheHits, stats.CacheMisses)
	}
	if len(stats.ReplicaQueries) != 2 {
		t.Fatalf("replica_queries = %v, want the shard visible behind the cache", stats.ReplicaQueries)
	}
}

// TestBuildBackendsHeterogeneous exercises what `plmserve -replicas 2
// -backend host:port,host:port` wires together: 2 local replicas + 2
// remote plmserve instances behind one shard, bit-identical answers, a
// per-backend /stats breakdown with both kinds, and failover keeping the
// endpoint serving after a remote dies.
func TestBuildBackendsHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := nn.New(rng, 6, 10, 3)
	path := filepath.Join(t.TempDir(), "plnn.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	single, err := modelio.Load(path, "plnn")
	if err != nil {
		t.Fatal(err)
	}

	// Two inner plmserve stand-ins, each serving the same model file.
	var remotes []*httptest.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		m, err := modelio.Load(path, "plnn")
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(api.NewServer(m, "inner"))
		defer ts.Close()
		remotes = append(remotes, ts)
		addrs = append(addrs, ts.URL)
	}

	backends, err := buildBackends(path, "plnn", 2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 4 {
		t.Fatalf("built %d backends, want 4", len(backends))
	}
	shard, err := api.NewShardBackends(backends, api.ShardConfig{QuarantineBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewServer(shard, "hetero"))
	defer ts.Close()
	client, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	xs := make([]mat.Vec, 32)
	for i := range xs {
		xs[i] = make(mat.Vec, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	check := func(round string) {
		t.Helper()
		got, err := client.PredictBatch(xs)
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		for i, x := range xs {
			if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
				t.Fatalf("%s item %d: %v != %v", round, i, got[i], want)
			}
		}
	}
	check("all alive")

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Backends []api.BackendStatus `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	kinds := map[string]int{}
	for _, b := range stats.Backends {
		kinds[b.Kind]++
		if b.Queries == 0 {
			t.Fatalf("backend %s (%s) served nothing: %+v", b.Name, b.Kind, stats.Backends)
		}
	}
	if kinds["local"] != 2 || kinds["remote"] != 2 {
		t.Fatalf("kinds = %v, want 2 local + 2 remote", kinds)
	}

	// One remote dies; the endpoint keeps answering bit-identically.
	remotes[1].Close()
	check("one remote dead")
	check("one remote dead, second batch")
}

func TestBuildBackendsRejectsBadAddress(t *testing.T) {
	if _, err := buildBackends("", "plnn", 0, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("undialable backend accepted")
	}
}

// TestAtlasColdStartServesCensusedRegions is the acceptance gate for
// `plmserve -atlas`: a first process censuses regions into the disk atlas,
// a second cold-started process answers interpretation for the same probes
// bit-identically with zero closed-form compositions — the GEMM chains were
// paid for exactly once, before the restart.
func TestAtlasColdStartServesCensusedRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := nn.New(rng, 6, 10, 3)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "plnn.json")
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	atlasPath := filepath.Join(dir, "regions.plma")

	// build assembles exactly what main() wires for -atlas -jobs: the white
	// box backed by the RAM-fronted disk store, the runner, and the server
	// with the atlas endpoints and /stats section.
	build := func() (*httptest.Server, *atlas.Atlas, openbox.StoreReporter, *jobs.Runner) {
		a, err := atlas.Open(atlasPath)
		if err != nil {
			t.Fatal(err)
		}
		w, err := modelio.Load(modelPath, "plnn")
		if err != nil {
			t.Fatal(err)
		}
		white := openbox.CacheRegionModelOpts(w, openbox.StoreOptions{
			Capacity: atlasFrontEntries,
			Backing:  a,
		})
		reporter := white.(openbox.StoreReporter)
		m, err := modelio.Load(modelPath, "plnn")
		if err != nil {
			t.Fatal(err)
		}
		runner, err := jobs.NewRunner(m, white, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		srv := api.NewServer(m, "atlas-test")
		runner.Mount(srv)
		srv.SetRegionSource(a.Lookup)
		srv.SetAtlasStatus(func() api.AtlasStatus {
			st := a.Stats()
			done, total := runner.CensusProgress()
			return api.AtlasStatus{
				Regions: st.Size, Bytes: st.Bytes, Hits: st.Hits, ColdMisses: st.Misses,
				Compositions: reporter.RegionCompositions(),
				CensusDone:   done, CensusTotal: total,
			}
		})
		ts := httptest.NewServer(srv)
		return ts, a, reporter, runner
	}

	getStats := func(url string) api.AtlasStatus {
		t.Helper()
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Atlas *api.AtlasStatus `json:"atlas"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		if stats.Atlas == nil {
			t.Fatal("/stats has no atlas section")
		}
		return *stats.Atlas
	}

	pollDone := func(url, id string) jobs.View {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(url + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var v jobs.View
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if v.Status == jobs.StatusDone || v.Status == jobs.StatusFailed {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, v.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	submit := func(url, body string) jobs.View {
		t.Helper()
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var v jobs.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit answered %s", resp.Status)
		}
		return v
	}

	xs := make([]mat.Vec, 12)
	for i := range xs {
		xs[i] = make(mat.Vec, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	encode := func(op string, n int) string {
		req := map[string]any{"op": op, "xs": xs, "n": n}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// ---- Warm process: census + interpret, everything lands on disk.
	ts1, a1, rep1, _ := build()
	census := pollDone(ts1.URL, submit(ts1.URL, encode("census", 64)).ID)
	if census.Status != jobs.StatusDone || census.Census == nil || census.Census.Probes != 64 {
		t.Fatalf("census ended %s (%s) report=%+v", census.Status, census.Error, census.Census)
	}
	warm := pollDone(ts1.URL, submit(ts1.URL, encode("interpret", 0)).ID)
	if warm.Status != jobs.StatusDone || len(warm.Regions) == 0 {
		t.Fatalf("warm interpret ended %s with %d regions", warm.Status, len(warm.Regions))
	}
	warmStats := getStats(ts1.URL)
	if warmStats.Regions == 0 || warmStats.Compositions == 0 {
		t.Fatalf("warm atlas stats = %+v, want regions and compositions > 0", warmStats)
	}
	if warmStats.CensusDone != 64 || warmStats.CensusTotal != 64 {
		t.Fatalf("census progress %d/%d, want 64/64", warmStats.CensusDone, warmStats.CensusTotal)
	}
	if rep1.RegionCompositions() == 0 {
		t.Fatal("warm process composed nothing")
	}
	ts1.Close()
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- Cold process: same request, zero compositions, identical bits.
	ts2, a2, rep2, _ := build()
	defer ts2.Close()
	defer a2.Close()
	coldStats := getStats(ts2.URL)
	if coldStats.Regions != warmStats.Regions {
		t.Fatalf("cold atlas recovered %d regions, warm had %d", coldStats.Regions, warmStats.Regions)
	}
	cold := pollDone(ts2.URL, submit(ts2.URL, encode("interpret", 0)).ID)
	if cold.Status != jobs.StatusDone {
		t.Fatalf("cold interpret ended %s (%s)", cold.Status, cold.Error)
	}
	if got := rep2.RegionCompositions(); got != 0 {
		t.Fatalf("cold process composed %d regions, want 0 — the atlas was supposed to answer", got)
	}
	after := getStats(ts2.URL)
	if after.Compositions != 0 || after.ColdMisses != 0 {
		t.Fatalf("cold atlas stats = %+v, want 0 compositions and 0 cold misses", after)
	}
	if len(cold.Regions) != len(warm.Regions) {
		t.Fatalf("cold harvest has %d regions, warm had %d", len(cold.Regions), len(warm.Regions))
	}
	for i := range warm.Regions {
		w, c := warm.Regions[i], cold.Regions[i]
		for r := range w.RelW {
			for j := range w.RelW[r] {
				if math.Float64bits(w.RelW[r][j]) != math.Float64bits(c.RelW[r][j]) {
					t.Fatalf("region %d RelW[%d][%d] differs across restart", i, r, j)
				}
			}
		}
		for j := range w.RelB {
			if math.Float64bits(w.RelB[j]) != math.Float64bits(c.RelB[j]) {
				t.Fatalf("region %d RelB[%d] differs across restart", i, j)
			}
		}
	}

	// The stored closed forms are individually addressable.
	keys := a2.Keys()
	if len(keys) == 0 {
		t.Fatal("cold atlas has no keys")
	}
	resp, err := http.Get(ts2.URL + "/v1/regions/" + keys[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/regions/%s answered %s", keys[0], resp.Status)
	}
}

// TestAtlasSnapshotWarmsJoiningWorker is the snapshot-on-join handshake
// exactly as main() wires it: a router with a populated atlas, a worker
// whose FleetSession pulls /atlas/snapshot on register and ingests it.
func TestAtlasSnapshotWarmsJoiningWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := nn.New(rng, 5, 8, 3)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "plnn.json")
	if err := net.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	// Router side: an atlas populated by a census sweep.
	routerAtlas, err := atlas.Open(filepath.Join(dir, "router.plma"))
	if err != nil {
		t.Fatal(err)
	}
	defer routerAtlas.Close()
	w, err := modelio.Load(modelPath, "plnn")
	if err != nil {
		t.Fatal(err)
	}
	white := openbox.CacheRegionModelOpts(w, openbox.StoreOptions{Capacity: 64, Backing: routerAtlas})
	runner, err := jobs.NewRunner(white, white, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := api.NewDynamicShard(api.ShardConfig{})
	reg := api.NewRegistry(shard, api.RegistryConfig{TTL: time.Second})
	srv := api.NewServer(white, "router")
	reg.Mount(srv)
	runner.Mount(srv)
	srv.SetAtlasStatus(func() api.AtlasStatus {
		st := routerAtlas.Stats()
		return api.AtlasStatus{Regions: st.Size, Bytes: st.Bytes}
	})
	srv.Handle("GET /atlas/snapshot", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/octet-stream")
		if _, err := routerAtlas.WriteSnapshot(rw); err != nil {
			t.Errorf("snapshot write: %v", err)
		}
	})
	router := httptest.NewServer(srv)
	defer router.Close()

	anchors := []mat.Vec{make(mat.Vec, 5), make(mat.Vec, 5)}
	for _, a := range anchors {
		for j := range a {
			a[j] = rng.NormFloat64()
		}
	}
	id, err := runner.SubmitN(jobs.OpCensus, anchors, 64)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := runner.Get(id)
		if !ok {
			t.Fatal("census job vanished")
		}
		if v.Status == jobs.StatusDone {
			break
		}
		if v.Status == jobs.StatusFailed || time.Now().After(deadline) {
			t.Fatalf("census ended %s (%s)", v.Status, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if routerAtlas.Len() == 0 {
		t.Fatal("router atlas empty after census")
	}

	// Worker side: plmserve -join with its own (empty) atlas.
	workerAtlas, err := atlas.Open(filepath.Join(dir, "worker.plma"))
	if err != nil {
		t.Fatal(err)
	}
	defer workerAtlas.Close()
	wm, err := modelio.Load(modelPath, "plnn")
	if err != nil {
		t.Fatal(err)
	}
	workerSrv := httptest.NewServer(api.NewServer(wm, "worker"))
	defer workerSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := &api.FleetSession{Router: router.URL, Advertise: workerSrv.URL}
	sess.OnAtlas = func(ctx context.Context) {
		if _, err := pullAtlasSnapshot(ctx, router.URL, workerAtlas); err != nil {
			t.Errorf("snapshot pull: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sess.Run(ctx)
	}()
	deadline = time.Now().Add(5 * time.Second)
	for workerAtlas.Len() != routerAtlas.Len() {
		if time.Now().After(deadline) {
			t.Fatalf("worker atlas has %d regions, router has %d", workerAtlas.Len(), routerAtlas.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	// The pulled regions are bit-identical to the router's.
	for _, key := range routerAtlas.Keys() {
		rl, ok := routerAtlas.Lookup(key)
		if !ok {
			t.Fatalf("router lost %s", key)
		}
		wl, ok := workerAtlas.Lookup(key)
		if !ok {
			t.Fatalf("worker missing %s", key)
		}
		for i := 0; i < rl.W.Rows(); i++ {
			rr, wr := rl.W.RawRow(i), wl.W.RawRow(i)
			for j := range rr {
				if math.Float64bits(rr[j]) != math.Float64bits(wr[j]) {
					t.Fatalf("%s W[%d][%d] differs after snapshot ingest", key, i, j)
				}
			}
		}
		for j := range rl.B {
			if math.Float64bits(rl.B[j]) != math.Float64bits(wl.B[j]) {
				t.Fatalf("%s B[%d] differs after snapshot ingest", key, j)
			}
		}
	}
}
