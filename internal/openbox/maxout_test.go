package openbox

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
)

func TestMaxoutRegionModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &Maxout{Net: nn.NewMaxout(rng, 3, 5, 8, 4)}
	if m.Dim() != 5 || m.Classes() != 4 {
		t.Fatalf("shape %d/%d", m.Dim(), m.Classes())
	}
	x := randVec(rng, 5)
	p := m.Predict(x)
	if len(p) != 4 {
		t.Fatalf("probs len %d", len(p))
	}
	key := m.RegionKey(x)
	if !strings.HasPrefix(key, "maxout-") {
		t.Fatalf("key = %q", key)
	}
	if m.RegionKey(x) != key {
		t.Fatal("key not stable")
	}
	loc, err := m.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Key != key {
		t.Fatal("local key mismatch")
	}
	// Exactness of the extracted map at the probe.
	if !loc.Logits(x).EqualApprox(m.Net.Logits(x), 1e-9) {
		t.Fatal("local map disagrees with network")
	}
}

func TestMaxoutRegionKeyDistinguishesRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &Maxout{Net: nn.NewMaxout(rng, 2, 4, 6, 3)}
	// Find two instances with different winner patterns; their keys must
	// differ.
	a := randVec(rng, 4)
	for tries := 0; tries < 200; tries++ {
		b := randVec(rng, 4)
		pa, pb := m.Net.WinnerPattern(a), m.Net.WinnerPattern(b)
		diff := false
		for i := range pa {
			if pa[i] != pb[i] {
				diff = true
				break
			}
		}
		if diff {
			if m.RegionKey(a) == m.RegionKey(b) {
				t.Fatal("different patterns share a key")
			}
			return
		}
	}
	t.Skip("no second region found; network too flat for this seed")
}
