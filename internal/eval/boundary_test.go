package eval

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestBoundaryProfileShapes(t *testing.T) {
	model := plnnModel(200, 4, 10, 3)
	rng := rand.New(rand.NewSource(201))
	xs := []mat.Vec{randVec(rng, 4), randVec(rng, 4), randVec(rng, 4)}
	pts, err := BoundaryProfile(model, xs, 1e-2, []int{0, 6, 12}, 202)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no boundary points")
	}
	var sawClose, sawFar bool
	for _, p := range pts {
		if p.Distance <= 0 {
			t.Fatalf("non-positive distance %v", p.Distance)
		}
		if p.OpenAPIFailed {
			continue // legitimate at numerically-zero distance
		}
		if p.OpenAPIL1 > 0.05 {
			t.Fatalf("OpenAPI L1 = %v at distance %v — adaptivity broken", p.OpenAPIL1, p.Distance)
		}
		if p.Distance < 1e-2 {
			sawClose = true
		} else {
			sawFar = true
		}
	}
	if !sawClose || !sawFar {
		t.Skipf("profile did not cover both regimes (close=%v far=%v)", sawClose, sawFar)
	}
	// Figure 1's claim in numbers: near the boundary (distance < h) the
	// naive method's worst error is much larger than far from it.
	var worstClose, worstFar float64
	for _, p := range pts {
		if p.Distance < 1e-2 {
			if p.NaiveL1 > worstClose {
				worstClose = p.NaiveL1
			}
		} else if p.NaiveL1 > worstFar {
			worstFar = p.NaiveL1
		}
	}
	if worstClose <= worstFar {
		t.Fatalf("naive method should degrade near boundaries: close %v vs far %v", worstClose, worstFar)
	}
}

func TestBoundaryProfileErrors(t *testing.T) {
	model := plnnModel(203, 3, 5, 2)
	if _, err := BoundaryProfile(model, nil, 1e-4, nil, 1); err == nil {
		t.Fatal("empty instances accepted")
	}
}

func TestFindOtherRegionSingleRegionModel(t *testing.T) {
	// A purely linear model has one region; the search must give up
	// gracefully rather than loop forever.
	rng := rand.New(rand.NewSource(204))
	model := linearOnlyModel()
	if _, ok := findOtherRegion(model, mat.Vec{0, 0}, rng); ok {
		t.Fatal("found a second region in a single-region model")
	}
	if _, err := BoundaryProfile(model, []mat.Vec{{0, 0}}, 1e-4, nil, 1); err == nil {
		t.Fatal("single-region profile should report no boundaries")
	}
}
