package api

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Shard routes prediction traffic across N backends serving the same model.
// A backend is either a local in-process replica or a remote plmserve
// instance (see Backend); the router cannot tell them apart, which is the
// point — the paper's API setting assumes only that something answers
// probability queries.
//
// A /batch request is split into chunks and dispatched load-aware: every
// eligible backend pulls the next chunk off a shared queue as soon as it
// finishes the previous one, so fast backends serve more of the batch and a
// backend busy with another caller's work naturally takes less
// (least-outstanding-work, tracked by per-backend inflight counters). Each
// chunk writes only its own out[lo:hi] segment, so the merge preserves
// submission order with no reordering and no lock.
//
// Failures fail over instead of failing the batch: a backend whose chunk
// errors is quarantined with exponential backoff and its chunk re-enqueued
// for the remaining backends. Only when every backend has failed does the
// batch error — partial answers would silently corrupt an interpretation's
// linear system, so it is all of the batch or none of it. A quarantined
// backend rejoins after its backoff expires and a Healthy() recovery probe
// succeeds; a failed probe doubles the backoff. Caller cancellation is not
// failure: a chunk that dies because its context ended never quarantines
// the backend that was running it.
//
// The backend set is dynamic: AddBackend and RemoveBackend change it while
// traffic flows (the registry drives them as workers join, leave and
// expire). Removal cancels the backend's in-flight chunk attempts and
// drains those chunks back onto the shared queue for the survivors.
//
// With Hedge enabled, a chunk that sits on one backend past an adaptive
// threshold — a multiple of that backend's EWMA chunk round-trip time — is
// speculatively re-enqueued so another backend races it. The first answer
// wins and is merged (bit-identical either way — the backends are replicas);
// the loser's attempt is cancelled and its late answer, success or error,
// is discarded without touching quarantine accounting.
//
// Backends must be interchangeable (copies of one model, or remotes serving
// it): the split is then invisible to callers and sharded predictions are
// bit-identical to single-backend ones. A Shard is safe for concurrent use
// when its backends are.
type Shard struct {
	cfg ShardConfig

	// mu guards the copy-on-write backend set and the adopted model shape.
	// Readers snapshot the slice under mu and then work lock-free on it;
	// writers build a fresh slice and swap it in.
	mu       sync.Mutex
	backends []*backendState
	dim      int
	classes  int

	// next drives the round-robin tie-break for single predictions.
	next atomic.Int64
	// now is the clock, swappable in tests.
	now func() time.Time
	// afterFunc schedules hedge timers, swappable in tests.
	afterFunc func(d time.Duration, f func()) *time.Timer
}

// ShardConfig tunes the router. The zero value gives sensible defaults.
type ShardConfig struct {
	// MinChunk is the smallest chunk handed to one backend (default 4):
	// below it, dispatch overhead beats the batched forward's GEMM win.
	MinChunk int
	// ChunkFactor is how many chunks each backend would get of an evenly
	// split batch (default 2). More chunks re-balance better when backends
	// run at different speeds; fewer keep per-chunk batches wide.
	ChunkFactor int
	// QuarantineBase is the first backoff after a backend failure
	// (default 250ms); each further failure doubles it up to QuarantineMax
	// (default 30s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// ProbeTimeout bounds each quarantine-recovery Healthy probe
	// (default 2s) so a dead remote cannot stall the caller that happened
	// to trigger the probe.
	ProbeTimeout time.Duration
	// Hedge enables speculative re-dispatch of slow chunks.
	Hedge bool
	// HedgeFactor multiplies a backend's EWMA chunk RTT to get its hedge
	// threshold (default 3): a chunk outstanding for 3x the backend's
	// typical round trip is presumed stuck and raced elsewhere.
	HedgeFactor float64
	// HedgeMin floors the hedge threshold (default 25ms) so cold backends
	// (no RTT history yet) and micro-RTT fleets don't hedge every chunk.
	HedgeMin time.Duration
}

func (c *ShardConfig) setDefaults() {
	if c.MinChunk <= 0 {
		c.MinChunk = 4
	}
	if c.ChunkFactor <= 0 {
		c.ChunkFactor = 2
	}
	if c.QuarantineBase <= 0 {
		c.QuarantineBase = 250 * time.Millisecond
	}
	if c.QuarantineMax <= 0 {
		c.QuarantineMax = 30 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
}

// rttAlpha is the EWMA smoothing factor for per-backend chunk round-trip
// times — same constant the aggregator uses for its flush window.
const rttAlpha = 0.3

// backendState is the router's bookkeeping around one backend.
type backendState struct {
	b     Backend
	stats BackendStats

	queries  atomic.Int64 // probes answered successfully
	inflight atomic.Int64 // probes currently outstanding
	retries  atomic.Int64 // chunks re-dispatched away after this backend failed them
	failures atomic.Int64 // failed calls (chunks, singles, recovery probes)

	hedges       atomic.Int64 // hedges launched because this backend sat on a chunk
	hedgeWins    atomic.Int64 // hedged chunks this backend answered first
	hedgeCancels atomic.Int64 // attempts discarded because another copy won

	// removed flips when the backend leaves the set (RemoveBackend, registry
	// expiry). Workers bound to a pre-removal snapshot check it and stop
	// pulling; its in-flight attempts are cancelled and drained back.
	removed atomic.Bool

	// probing single-flights the quarantine-recovery Healthy() probe: a
	// remote ping can take up to its deadline, so exactly one caller pays
	// it (and doubles the backoff on failure) while everyone else keeps
	// treating the backend as quarantined.
	probing atomic.Bool

	mu               sync.Mutex
	quarantinedUntil time.Time
	backoff          time.Duration

	// rttEWMA smooths successful chunk round-trip times (nanoseconds);
	// zero until the first sample. Feeds the hedge threshold.
	rttMu   sync.Mutex
	rttEWMA float64

	// attempts registers the cancel funcs of in-flight chunk attempts so
	// RemoveBackend can cut them loose immediately instead of waiting for
	// transport timeouts. A registration-order slice: it holds at most one
	// entry per in-flight chunk, and cancelling in a deterministic order
	// keeps the drain reproducible.
	attemptMu  sync.Mutex
	attemptSeq int64
	attempts   []chunkAttempt
}

// chunkAttempt is one live chunk attempt's handle in a backend's registry.
type chunkAttempt struct {
	id     int64
	cancel context.CancelFunc
}

// quarantined reports whether the backend is sidelined at time now.
func (st *backendState) quarantined(now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.quarantinedUntil.IsZero() && now.Before(st.quarantinedUntil)
}

// observeRTT folds one successful chunk round trip into the backend's EWMA,
// seeding with the first sample like the aggregator's flush window.
func (st *backendState) observeRTT(d time.Duration) {
	st.rttMu.Lock()
	defer st.rttMu.Unlock()
	if st.rttEWMA == 0 {
		st.rttEWMA = float64(d)
		return
	}
	st.rttEWMA = rttAlpha*float64(d) + (1-rttAlpha)*st.rttEWMA
}

// rtt returns the current EWMA chunk round trip, zero before any sample.
func (st *backendState) rtt() time.Duration {
	st.rttMu.Lock()
	defer st.rttMu.Unlock()
	return time.Duration(st.rttEWMA)
}

// registerAttempt records a live chunk attempt's cancel func and returns
// its handle.
func (st *backendState) registerAttempt(cancel context.CancelFunc) int64 {
	st.attemptMu.Lock()
	defer st.attemptMu.Unlock()
	st.attemptSeq++
	st.attempts = append(st.attempts, chunkAttempt{id: st.attemptSeq, cancel: cancel})
	return st.attemptSeq
}

// unregisterAttempt drops a finished attempt's handle.
func (st *backendState) unregisterAttempt(id int64) {
	st.attemptMu.Lock()
	defer st.attemptMu.Unlock()
	for i, a := range st.attempts {
		if a.id == id {
			st.attempts = append(st.attempts[:i], st.attempts[i+1:]...)
			return
		}
	}
}

// takeAttempts detaches the live attempt set under the lock; the caller
// cancels outside it (a cancel fires dispatch bookkeeping — never run it
// while holding attemptMu).
func (st *backendState) takeAttempts() []chunkAttempt {
	st.attemptMu.Lock()
	defer st.attemptMu.Unlock()
	taken := st.attempts
	st.attempts = nil
	return taken
}

// cancelAttempts cancels every in-flight chunk attempt — the removal
// drain — in registration order.
func (st *backendState) cancelAttempts() {
	for _, a := range st.takeAttempts() {
		a.cancel()
	}
}

// NewShard builds a router over local in-process replicas — the original
// single-machine topology, kept as the convenience constructor. All
// replicas must agree on input dimensionality and class count.
func NewShard(replicas []plm.Model) (*Shard, error) {
	return NewShardBackends(LocalBackends(replicas, "replica"), ShardConfig{})
}

// NewShardBackends builds a router over the given backends, local or
// remote. All backends must agree on input dimensionality and class count.
func NewShardBackends(backends []Backend, cfg ShardConfig) (*Shard, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("api: shard needs at least one backend")
	}
	s := NewDynamicShard(cfg)
	for i, b := range backends {
		if err := s.AddBackend(b); err != nil {
			return nil, fmt.Errorf("api: backend %d: %w", i, err)
		}
	}
	return s, nil
}

// NewDynamicShard builds an initially empty router whose backend set is
// populated at runtime — the registry's control-plane entry point. Until
// the first backend joins, Dim and Classes report 0 and every prediction
// fails with "no backends"; the first AddBackend fixes the model shape all
// later members must match.
func NewDynamicShard(cfg ShardConfig) *Shard {
	cfg.setDefaults()
	return &Shard{cfg: cfg, now: time.Now, afterFunc: time.AfterFunc}
}

// snapshot returns the current backend set. The slice is copy-on-write:
// safe to range over lock-free, never mutated in place.
func (s *Shard) snapshot() []*backendState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backends
}

// AddBackend joins a backend to the set while traffic flows. The first
// backend fixes the shard's model shape; later ones must match it. A
// backend whose Stats().Name matches an existing member replaces it (the
// old member is removed and drained first) — how a restarted worker
// re-registering under its old address rejoins cleanly.
func (s *Shard) AddBackend(b Backend) error {
	bs := b.Stats()
	if bs.Dim <= 0 || bs.Classes < 2 {
		return fmt.Errorf("api: backend %s advertises implausible shape %dx%d", bs.Name, bs.Dim, bs.Classes)
	}
	replaced, err := s.adopt(&backendState{b: b, stats: bs})
	if err != nil {
		return err
	}
	if replaced != nil {
		replaced.removed.Store(true)
		replaced.cancelAttempts()
	}
	return nil
}

// adopt installs the new member under the membership lock, returning the
// same-named member it displaced, if any. The caller drains the displaced
// member outside the lock.
func (s *Shard) adopt(st *backendState) (*backendState, error) {
	bs := st.stats
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dim == 0 && len(s.backends) == 0 {
		s.dim, s.classes = bs.Dim, bs.Classes
	} else if bs.Dim != s.dim || bs.Classes != s.classes {
		return nil, fmt.Errorf("api: backend %s is %dx%d, shard serves %dx%d",
			bs.Name, bs.Dim, bs.Classes, s.dim, s.classes)
	}
	var replaced *backendState
	next := make([]*backendState, 0, len(s.backends)+1)
	for _, old := range s.backends {
		if old.stats.Name == bs.Name {
			replaced = old
			continue
		}
		next = append(next, old)
	}
	s.backends = append(next, st)
	return replaced, nil
}

// RemoveBackend drops the named backend from the set, cancelling its
// in-flight chunk attempts so dispatch drains those chunks back onto the
// shared queue for the survivors. Reports whether the backend was a member.
func (s *Shard) RemoveBackend(name string) bool {
	gone := s.detach(name)
	if gone == nil {
		return false
	}
	gone.removed.Store(true)
	gone.cancelAttempts()
	return true
}

// detach removes the named member under the membership lock; the caller
// drains it outside.
func (s *Shard) detach(name string) *backendState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var gone *backendState
	next := make([]*backendState, 0, len(s.backends))
	for _, st := range s.backends {
		if st.stats.Name == name && gone == nil {
			gone = st
			continue
		}
		next = append(next, st)
	}
	s.backends = next
	return gone
}

// Replicas returns the number of backends behind the router.
func (s *Shard) Replicas() int { return len(s.snapshot()) }

// ReplicaQueries returns the number of probes each backend has answered.
func (s *Shard) ReplicaQueries() []int64 {
	backends := s.snapshot()
	out := make([]int64, len(backends))
	for i, st := range backends {
		out[i] = st.queries.Load()
	}
	return out
}

// BackendStatus returns the live per-backend breakdown /stats reports. A
// remote backend that cannot currently be reached shows state "unreachable"
// instead of being omitted (or worse, panicking a reach-through): the
// router knows the backend exists even while it cannot serve.
func (s *Shard) BackendStatus() []BackendStatus {
	now := s.now()
	backends := s.snapshot()
	out := make([]BackendStatus, len(backends))
	for i, st := range backends {
		state := "ok"
		if st.quarantined(now) {
			state = "unreachable"
		}
		out[i] = BackendStatus{
			Kind:         st.stats.Kind,
			Name:         st.stats.Name,
			Queries:      st.queries.Load(),
			Inflight:     st.inflight.Load(),
			Retries:      st.retries.Load(),
			Failures:     st.failures.Load(),
			Hedges:       st.hedges.Load(),
			HedgeWins:    st.hedgeWins.Load(),
			HedgeCancels: st.hedgeCancels.Load(),
			State:        state,
		}
		// Wire reach-through: a remote backend exposes its client-side
		// codec traffic so /stats shows what each hop costs on the wire,
		// mirroring how cache counters reach through the response cache.
		if wc, ok := st.b.(wireCounter); ok {
			counts := wc.WireCounts()
			out[i].Wire = &counts
		}
	}
	return out
}

// Dim reports the shard's model input dimensionality (0 while a dynamic
// shard is still empty).
func (s *Shard) Dim() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dim
}

// Classes reports the shard's model class count (0 while a dynamic shard
// is still empty).
func (s *Shard) Classes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.classes
}

// quarantine sidelines a backend after a failure, doubling its backoff up
// to the configured maximum.
func (s *Shard) quarantine(st *backendState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.backoff == 0 {
		st.backoff = s.cfg.QuarantineBase
	} else if st.backoff < s.cfg.QuarantineMax {
		st.backoff *= 2
		if st.backoff > s.cfg.QuarantineMax {
			st.backoff = s.cfg.QuarantineMax
		}
	}
	st.quarantinedUntil = s.now().Add(st.backoff)
}

// eligible returns the backends allowed to serve right now. A backend whose
// quarantine has expired is given a Healthy() recovery probe under the
// configured ProbeTimeout — exactly one caller runs it (single-flight;
// concurrent callers keep treating the backend as quarantined): success
// clears its record, failure re-quarantines it with a doubled backoff. When
// everything is quarantined the full set is returned as a last resort — a
// batch that might succeed beats one refused outright, and a success clears
// the survivor's quarantine.
func (s *Shard) eligible(ctx context.Context) []*backendState {
	now := s.now()
	backends := s.snapshot()
	out := make([]*backendState, 0, len(backends))
	for _, st := range backends {
		st.mu.Lock()
		until := st.quarantinedUntil
		st.mu.Unlock()
		switch {
		case until.IsZero():
			out = append(out, st)
		case now.Before(until):
			// Still sidelined.
		case !st.probing.CompareAndSwap(false, true):
			// Another caller's recovery probe is in flight.
		default:
			pctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
			healthy := st.b.Healthy(pctx)
			cancel()
			if healthy {
				st.mu.Lock()
				st.quarantinedUntil = time.Time{}
				st.backoff = 0
				st.mu.Unlock()
			} else if ctx.Err() == nil {
				st.failures.Add(1)
				s.quarantine(st)
			}
			st.probing.Store(false)
			if healthy {
				out = append(out, st)
			}
		}
	}
	if len(out) == 0 {
		return backends
	}
	return out
}

// PredictErr routes one prediction to the eligible backend with the fewest
// outstanding probes, breaking ties round-robin. A failing backend is
// quarantined and the probe fails over to the next; when every backend has
// failed, the error surfaces — the HTTP server turns it into a 5xx instead
// of fabricating an answer.
func (s *Shard) PredictErr(x mat.Vec) (mat.Vec, error) {
	return s.PredictErrCtx(context.Background(), x)
}

// PredictErrCtx is PredictErr under a caller context: the context reaches
// the backend call, and a probe that dies because the context ended fails
// the call without quarantining the backend — a dead caller is not a dead
// backend.
func (s *Shard) PredictErrCtx(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	tried := make(map[*backendState]bool)
	var lastErr error
	for {
		st := s.pickLeastLoaded(ctx, tried)
		if st == nil {
			if lastErr == nil {
				return nil, fmt.Errorf("api: shard has no backends")
			}
			return nil, fmt.Errorf("api: all %d backends failed: %w", len(tried), lastErr)
		}
		tried[st] = true
		st.inflight.Add(1)
		p, err := st.b.Predict(ctx, x)
		st.inflight.Add(-1)
		if err != nil {
			if ctx.Err() != nil {
				// The caller's deadline or cancellation, not the backend's
				// fault: surface it without poisoning quarantine accounting
				// or burning retries on backends that never saw the probe.
				return nil, err
			}
			lastErr = err
			st.failures.Add(1)
			s.quarantine(st)
			continue
		}
		s.clearQuarantine(st)
		st.queries.Add(1)
		return p, nil
	}
}

// Predict is PredictErr behind the errorless plm.Model surface: when every
// backend fails it degrades to the uniform distribution, the same contract
// Client.Predict honours when its remote is gone. Servers should prefer
// PredictErr so a total outage answers 5xx, not fabricated probabilities.
func (s *Shard) Predict(x mat.Vec) mat.Vec {
	p, err := s.PredictErr(x)
	if err != nil {
		classes := s.Classes()
		if classes == 0 {
			return nil
		}
		out := make(mat.Vec, classes)
		return out.Fill(1 / float64(classes))
	}
	return p
}

// clearQuarantine wipes a backend's failure record after a success — a
// last-resort call that got through means the backend is back.
func (s *Shard) clearQuarantine(st *backendState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.quarantinedUntil.IsZero() {
		st.quarantinedUntil = time.Time{}
		st.backoff = 0
	}
}

// pickLeastLoaded returns the untried eligible backend with the fewest
// inflight probes, scanning from a rotating start so equal loads
// round-robin. Returns nil when every eligible backend has been tried.
func (s *Shard) pickLeastLoaded(ctx context.Context, tried map[*backendState]bool) *backendState {
	elig := s.eligible(ctx)
	if len(elig) == 0 {
		return nil
	}
	start := int(s.next.Add(1)-1) % len(elig)
	var best *backendState
	var bestLoad int64
	for i := 0; i < len(elig); i++ {
		st := elig[(start+i)%len(elig)]
		if tried[st] {
			continue
		}
		if load := st.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = st, load
		}
	}
	return best
}

// span is one contiguous chunk of a batch.
type span struct {
	lo, hi int
}

// chunkSpans splits n instances into roughly ChunkFactor chunks per worker,
// each at least MinChunk wide — small enough to re-balance across uneven
// backends, wide enough that every chunk still rides the batched forward.
// On batches too small for that many MinChunk-wide chunks, the floor yields
// to an even per-worker split so every backend still participates.
func (s *Shard) chunkSpans(n, workers int) []span {
	chunk := (n + workers*s.cfg.ChunkFactor - 1) / (workers * s.cfg.ChunkFactor)
	if chunk < s.cfg.MinChunk {
		chunk = s.cfg.MinChunk
		if even := (n + workers - 1) / workers; even < chunk {
			chunk = even
		}
	}
	spans := make([]span, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spans = append(spans, span{lo: lo, hi: hi})
	}
	return spans
}

// PredictBatch splits the batch into chunks and dispatches them load-aware
// across the eligible backends, merging the answers in submission order.
// A backend whose chunk fails is quarantined, its chunk re-enqueued for the
// others, and the batch still succeeds — bit-identical to a single healthy
// backend answering alone. The batch errors only when every backend has
// dropped out with work still pending.
func (s *Shard) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	return s.PredictBatchCtx(context.Background(), xs)
}

// PredictBatchCtx is PredictBatch under a caller context: cancellation
// reaches every in-flight chunk and stops the whole fan-out; the batch then
// fails with the context's error and no backend is quarantined for it.
func (s *Shard) PredictBatchCtx(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	elig := s.eligible(ctx)
	if len(elig) == 0 {
		return nil, fmt.Errorf("api: shard has no backends")
	}
	spans := s.chunkSpans(len(xs), len(elig))
	out := make([]mat.Vec, len(xs))
	if len(elig) == 1 || len(spans) == 1 {
		if err := s.runSpans(ctx, xs, out, spans, elig); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := s.dispatch(ctx, xs, out, spans, elig); err != nil {
		return nil, err
	}
	return out, nil
}

// runSpans answers the chunks serially with failover: each backend in turn
// (least-loaded first) tries the remaining work, so even a single-chunk
// batch survives a dead backend as long as one lives.
func (s *Shard) runSpans(ctx context.Context, xs []mat.Vec, out []mat.Vec, spans []span, elig []*backendState) error {
	var lastErr error
	tried := make(map[*backendState]bool, len(elig))
	for len(tried) < len(elig) {
		st := s.pickLeastLoaded(ctx, tried)
		if st == nil {
			break
		}
		tried[st] = true
		if err := s.runChunksOn(ctx, st, xs, out, spans); err != nil {
			if ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("api: all %d backends failed: %w", len(elig), lastErr)
}

// runChunksOn answers every span on one backend, quarantining it on the
// first failure.
func (s *Shard) runChunksOn(ctx context.Context, st *backendState, xs []mat.Vec, out []mat.Vec, spans []span) error {
	for _, sp := range spans {
		ys, err := s.runChunk(ctx, st, xs[sp.lo:sp.hi])
		if err != nil {
			return err
		}
		copy(out[sp.lo:sp.hi], ys)
	}
	return nil
}

// attemptChunk runs one chunk on one backend: inflight accounting and RTT
// observation, no routing policy — the serial and hedged paths layer their
// own quarantine/claim rules on top.
func (s *Shard) attemptChunk(ctx context.Context, st *backendState, xs []mat.Vec) ([]mat.Vec, error) {
	n := int64(len(xs))
	st.inflight.Add(n)
	start := s.now()
	ys, err := st.b.PredictBatch(ctx, xs)
	rtt := s.now().Sub(start)
	st.inflight.Add(-n)
	if err == nil && len(ys) != len(xs) {
		err = fmt.Errorf("api: backend %s answered %d of %d probes", st.stats.Name, len(ys), len(xs))
	}
	if err == nil {
		st.observeRTT(rtt)
	}
	return ys, err
}

// runChunk answers one chunk on one backend, maintaining the query and
// failure counters and the quarantine state machine. A chunk that dies
// because the context ended is not the backend's failure and does not
// quarantine it.
func (s *Shard) runChunk(ctx context.Context, st *backendState, xs []mat.Vec) ([]mat.Vec, error) {
	ys, err := s.attemptChunk(ctx, st, xs)
	if err != nil {
		if ctx.Err() == nil {
			st.failures.Add(1)
			s.quarantine(st)
		}
		return nil, err
	}
	s.clearQuarantine(st)
	st.queries.Add(int64(len(xs)))
	return ys, nil
}

// hedgeThreshold is how long a chunk may sit on this backend before a
// speculative copy races it elsewhere: HedgeFactor times the backend's
// EWMA chunk round trip, floored at HedgeMin (which alone governs cold
// backends with no history — including ones that have only ever hung).
func (s *Shard) hedgeThreshold(st *backendState) time.Duration {
	thr := time.Duration(s.cfg.HedgeFactor * float64(st.rtt()))
	if thr < s.cfg.HedgeMin {
		thr = s.cfg.HedgeMin
	}
	return thr
}

// chunkTask is one chunk's shared dispatch state: up to two copies of it
// circulate (the original and at most one hedge), whichever answers first
// claims the merge, and every other attempt is cancelled and discarded.
type chunkTask struct {
	lo, hi int
	// failed counts distinct genuine backend failures of this chunk; at
	// len(elig) the batch is out of backends and fails.
	failed atomic.Int64
	// claimed flips when a copy's answer has won the merge; late copies
	// (queued or in flight) see it and stand down.
	claimed atomic.Bool
	// hedged flips when the one allowed hedge copy has been enqueued.
	hedged atomic.Bool

	mu      sync.Mutex
	cancels []context.CancelFunc
}

func (t *chunkTask) addCancel(c context.CancelFunc) {
	t.mu.Lock()
	t.cancels = append(t.cancels, c)
	t.mu.Unlock()
}

// cancelAll cancels every live attempt on this task — called by the winner
// after the merge, so losers stop burning their backends.
func (t *chunkTask) cancelAll() {
	t.mu.Lock()
	cs := t.cancels
	t.cancels = nil
	t.mu.Unlock()
	for _, c := range cs {
		c()
	}
}

// taskRef is one circulating copy of a task; hedge marks the speculative
// duplicate so the winner can be credited as a hedge win.
type taskRef struct {
	t     *chunkTask
	hedge bool
}

// dispatch runs the load-aware chunk schedule. Each backend is seeded with
// one chunk — every backend participates, and on same-speed backends the
// split degenerates to the even one — while the remaining chunks sit on a
// shared queue that workers pull from as they finish, so faster (or less
// loaded) backends absorb more of the tail. A worker whose chunk genuinely
// fails re-enqueues it for the others and leaves the batch; pending counts
// chunks not yet merged and active counts workers still pulling — when the
// last worker leaves with work pending, the batch has run out of backends
// and fails.
//
// With hedging on, each original attempt arms a timer at the backend's
// hedge threshold; firing enqueues one speculative copy of the task for
// the other workers. The first copy to answer claims the merge (claimed
// CAS), cancels the other attempt, and only the claim increments query
// counters — so hedging never double-counts and the merged bytes are
// bit-identical whichever copy wins. A cancelled loser's error is absorbed
// without quarantine: losing a race is not being down.
//
// The queue holds at most two live refs per task (the original and one
// hedge — a failure consumes its ref before re-enqueueing), so capacity
// 2*len(spans) means no enqueue ever blocks.
func (s *Shard) dispatch(ctx context.Context, xs []mat.Vec, out []mat.Vec, spans []span, elig []*backendState) error {
	tasks := make([]*chunkTask, len(spans))
	for i, sp := range spans {
		tasks[i] = &chunkTask{lo: sp.lo, hi: sp.hi}
	}
	jobs := make(chan taskRef, 2*len(spans))
	for _, t := range tasks[min(len(tasks), len(elig)):] {
		jobs <- taskRef{t: t}
	}
	var (
		pending atomic.Int64
		active  atomic.Int64
		done    = make(chan struct{})
		once    sync.Once
		errMu   sync.Mutex
		first   error
	)
	pending.Store(int64(len(tasks)))
	active.Store(int64(len(elig)))
	recordErr := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if first == nil {
			first = err
		}
	}
	finish := func(err error) {
		if err != nil {
			recordErr(err)
		}
		once.Do(func() { close(done) })
	}
	enqueue := func(ref taskRef) {
		select {
		case jobs <- ref:
		default:
			// Unreachable under the two-refs-per-task invariant; never
			// block a worker on bookkeeping if it breaks.
		}
	}
	for i, st := range elig {
		var seed *chunkTask
		if i < len(tasks) {
			seed = tasks[i]
		}
		go func(st *backendState, seed *chunkTask) {
			defer func() {
				if active.Add(-1) == 0 && pending.Load() > 0 {
					finish(fmt.Errorf("api: all %d backends failed with %d chunks pending",
						len(elig), pending.Load()))
				}
			}()
			// run answers one task copy; false means this worker is done —
			// batch finished, backend failed or was removed, or the caller
			// is gone.
			run := func(ref taskRef) bool {
				t := ref.t
				if t.claimed.Load() {
					// Raced copy of an already-merged chunk: drop it and
					// keep pulling.
					return true
				}
				actx, cancel := context.WithCancel(ctx)
				t.addCancel(cancel)
				id := st.registerAttempt(cancel)
				var hedgeTimer *time.Timer
				if s.cfg.Hedge && !ref.hedge && len(elig) > 1 {
					hedgeTimer = s.afterFunc(s.hedgeThreshold(st), func() {
						if t.claimed.Load() || !t.hedged.CompareAndSwap(false, true) {
							return
						}
						st.hedges.Add(1)
						enqueue(taskRef{t: t, hedge: true})
					})
				}
				ys, err := s.attemptChunk(actx, st, xs[t.lo:t.hi])
				if hedgeTimer != nil {
					hedgeTimer.Stop()
				}
				st.unregisterAttempt(id)
				// Read the attempt context's state before releasing it:
				// after cancel() below, actx.Err() is always non-nil and
				// could no longer distinguish "cancelled by the winner or a
				// removal" from "the backend genuinely failed".
				attemptCancelled := actx.Err() != nil
				cancel()
				if err != nil {
					if ctx.Err() != nil {
						// The caller's deadline or cancellation: stop the
						// whole batch with its error, quarantine nobody.
						finish(ctx.Err())
						return false
					}
					if t.claimed.Load() {
						// Lost a hedge race and the winner's cancel tripped
						// this attempt (or it failed moot): not a failure.
						st.hedgeCancels.Add(1)
						return true
					}
					if attemptCancelled && !st.removed.Load() {
						// Cancelled without a claim or a removal — the
						// winner is merging right now (claim precedes
						// cancelAll, but this error can arrive between
						// them). Same absolution as a claimed loss.
						st.hedgeCancels.Add(1)
						return true
					}
					if st.removed.Load() {
						// Removal drain: the backend left the fleet with
						// this chunk in flight. Give the chunk back to the
						// survivors and retire the worker — no quarantine,
						// the backend isn't failing, it's gone.
						st.retries.Add(1)
						enqueue(taskRef{t: t, hedge: ref.hedge})
						return false
					}
					st.failures.Add(1)
					s.quarantine(st)
					if t.failed.Add(1) >= int64(len(elig)) {
						// Every backend has had its shot at this chunk.
						finish(fmt.Errorf("api: chunk [%d:%d) failed on %d backends: %w",
							t.lo, t.hi, t.failed.Load(), err))
						return false
					}
					st.retries.Add(1)
					enqueue(taskRef{t: t, hedge: ref.hedge})
					return false
				}
				if !t.claimed.CompareAndSwap(false, true) {
					// Answered correctly but second: the other copy already
					// merged bit-identical bytes. Discard without counting
					// queries — the batch saw this chunk once.
					st.hedgeCancels.Add(1)
					return true
				}
				copy(out[t.lo:t.hi], ys)
				t.cancelAll()
				s.clearQuarantine(st)
				st.queries.Add(int64(t.hi - t.lo))
				if ref.hedge {
					st.hedgeWins.Add(1)
				}
				if pending.Add(-1) == 0 {
					finish(nil)
					return false
				}
				return true
			}
			if seed != nil && !run(taskRef{t: seed}) {
				return
			}
			for {
				if st.removed.Load() {
					return
				}
				select {
				case <-done:
					return
				case ref := <-jobs:
					if !run(ref) {
						return
					}
				}
			}
		}(st, seed)
	}
	<-done
	errMu.Lock()
	defer errMu.Unlock()
	return first
}

var _ plm.Model = (*Shard)(nil)
var _ plm.BatchPredictor = (*Shard)(nil)
var _ ctxErrPredictor = (*Shard)(nil)
var _ ctxBatchPredictor = (*Shard)(nil)
