// Package api is the "cloud service" substrate of the reproduction: it hides
// a PLM behind the narrow surface the paper assumes — class probabilities
// in, nothing else out — and provides the middleware a real deployment has:
// query counting, response caching, retries, and fault injection for the
// failure-mode tests.
//
// Everything here consumes and produces plm.Model, so interpreters cannot
// tell a local model, an instrumented one, and an HTTP remote apart.
package api

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Counter wraps a model and counts Predict calls. It is safe for concurrent
// use. The paper's efficiency claims are stated in API queries; this is how
// the harness measures them.
type Counter struct {
	inner plm.Model
	n     atomic.Int64
}

// NewCounter wraps inner with a query counter.
func NewCounter(inner plm.Model) *Counter { return &Counter{inner: inner} }

// Predict forwards to the wrapped model and increments the counter.
func (c *Counter) Predict(x mat.Vec) mat.Vec {
	c.n.Add(1)
	return c.inner.Predict(x)
}

// Dim forwards to the wrapped model.
func (c *Counter) Dim() int { return c.inner.Dim() }

// Classes forwards to the wrapped model.
func (c *Counter) Classes() int { return c.inner.Classes() }

// PredictBatch forwards a batch to the wrapped model (using its batch
// endpoint when present), counting one query per item.
func (c *Counter) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	c.n.Add(int64(len(xs)))
	if bp, ok := c.inner.(plm.BatchPredictor); ok {
		return bp.PredictBatch(xs)
	}
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[i] = c.inner.Predict(x)
	}
	return out, nil
}

// Count returns the number of Predict calls so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Cache wraps a model with a memoizing layer keyed by the exact bit pattern
// of the input vector. Useful when an interpreter probes the same instance
// repeatedly (LIME does); harmless otherwise.
//
// A bounded cache evicts its oldest entry (FIFO) to admit a new one, so
// recent probes stay warm however long the run is. Concurrent misses for
// the same key are coalesced into a single model query: the first caller
// probes, the rest wait and share the answer.
type Cache struct {
	inner     plm.Model
	mu        sync.Mutex
	data      map[string]mat.Vec
	order     []string              // insertion order, oldest first, for FIFO eviction
	inflight  map[string]*cacheCall // misses currently being answered
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	max       int
}

// cacheCall is one in-flight miss; waiters block on done and read p.
type cacheCall struct {
	done chan struct{}
	p    mat.Vec
}

// NewCache wraps inner with a cache holding at most maxEntries responses
// (0 means unbounded).
func NewCache(inner plm.Model, maxEntries int) *Cache {
	return &Cache{
		inner:    inner,
		data:     make(map[string]mat.Vec),
		inflight: make(map[string]*cacheCall),
		max:      maxEntries,
	}
}

func cacheKey(x mat.Vec) string {
	// Exact binary key: two inputs hit the same entry iff bitwise equal.
	buf := make([]byte, 0, len(x)*8)
	for _, v := range x {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(b>>uint(s)))
		}
	}
	return string(buf)
}

// Predict returns the cached response when available, otherwise forwards.
// When another goroutine is already probing the same key, the call waits
// for that answer instead of issuing (and counting) a duplicate miss.
func (c *Cache) Predict(x mat.Vec) mat.Vec {
	key := cacheKey(x)
	// Audited manual-unlock fast path: the mutex must be released before
	// the <-call.done wait and before the inner probe, or one in-flight
	// miss would serialize every other key. Invariant: each of the three
	// exits from this region (hit, join, leader) unlocks exactly once
	// before it can block, and nothing between Lock and Unlock can panic.
	c.mu.Lock() //plmvet:allow(lockheld)
	if p, ok := c.data[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return p.Clone()
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		c.hits.Add(1)
		return call.p.Clone()
	}
	call := &cacheCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	c.misses.Add(1)
	p := c.inner.Predict(x)
	call.p = p.Clone()
	c.mu.Lock()
	delete(c.inflight, key)
	c.store(key, p.Clone())
	c.mu.Unlock()
	close(call.done)
	return p
}

// store inserts under mu, evicting the oldest entry when the cache is full.
// The order queue exists only for bounded caches; unbounded ones never
// evict, so tracking insertion order there would just leak memory.
func (c *Cache) store(key string, p mat.Vec) {
	if _, ok := c.data[key]; ok {
		return
	}
	if c.max > 0 {
		if len(c.data) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.data, oldest)
			c.evictions.Add(1)
		}
		c.order = append(c.order, key)
	}
	c.data[key] = p
}

// Dim forwards to the wrapped model.
func (c *Cache) Dim() int { return c.inner.Dim() }

// Classes forwards to the wrapped model.
func (c *Cache) Classes() int { return c.inner.Classes() }

// Stats returns the cache hit and miss counts. A call served by another
// goroutine's in-flight miss counts as a hit: it cost no model query.
func (c *Cache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }

// Evictions returns how many entries a bounded cache has displaced.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// StoreStats returns the unified accounting shape (see plm.StoreStats).
// Bytes counts the cached probability vectors' float payloads.
func (c *Cache) StoreStats() plm.StoreStats {
	c.mu.Lock()
	size := len(c.data)
	c.mu.Unlock()
	return plm.StoreStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
		Bytes:     int64(size) * int64(c.inner.Classes()) * 8,
	}
}

// Flaky wraps a model and corrupts a fraction of responses — the fault
// injector for robustness tests. A corrupted response is the uniform
// distribution over classes, which is what a degraded service might return.
type Flaky struct {
	inner plm.Model
	rate  float64
	mu    sync.Mutex
	rng   *rand.Rand
	fails atomic.Int64
}

// NewFlaky wraps inner; each Predict independently fails with probability
// rate (clamped to [0,1]). A nil rng defaults to a deterministically seeded
// source, mirroring core.Config.setDefaults.
func NewFlaky(inner plm.Model, rate float64, rng *rand.Rand) *Flaky {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}
	return &Flaky{inner: inner, rate: rate, rng: rng}
}

// Predict returns a uniform distribution with probability rate, otherwise
// forwards.
func (f *Flaky) Predict(x mat.Vec) mat.Vec {
	f.mu.Lock()
	bad := f.rng.Float64() < f.rate
	f.mu.Unlock()
	if bad {
		f.fails.Add(1)
		out := make(mat.Vec, f.inner.Classes())
		return out.Fill(1 / float64(f.inner.Classes()))
	}
	return f.inner.Predict(x)
}

// PredictBatch corrupts each row independently with probability rate —
// same seeded RNG as Predict, so a batched robustness test draws from the
// identical fault stream — and forwards the whole batch to the inner
// model's batched path, overwriting the corrupted rows afterwards. The
// batch itself never errors: Flaky models degraded answers, not transport
// failure (that's the chaos package's job).
func (f *Flaky) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	bad := f.rollRows(len(xs))
	ys, err := predictAllErr(f.inner, xs)
	if err != nil {
		return nil, err
	}
	classes := f.inner.Classes()
	for i := range ys {
		if !bad[i] {
			continue
		}
		f.fails.Add(1)
		u := make(mat.Vec, classes)
		ys[i] = u.Fill(1 / float64(classes))
	}
	return ys, nil
}

// rollRows draws one corruption decision per row from the seeded stream.
func (f *Flaky) rollRows(n int) []bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	bad := make([]bool, n)
	for i := range bad {
		bad[i] = f.rng.Float64() < f.rate
	}
	return bad
}

// Dim forwards to the wrapped model.
func (f *Flaky) Dim() int { return f.inner.Dim() }

// Classes forwards to the wrapped model.
func (f *Flaky) Classes() int { return f.inner.Classes() }

// Failures returns the number of corrupted responses so far.
func (f *Flaky) Failures() int64 { return f.fails.Load() }

// Budget wraps a model with a query quota, the way metered cloud APIs do.
// Once the quota is spent every further Predict returns the uniform
// distribution and the exhaustion is recorded; callers must check Exhausted
// after an interpretation run, exactly like checking Client.Err.
type Budget struct {
	inner plm.Model
	max   int64
	used  atomic.Int64
}

// NewBudget wraps inner with a quota of max queries (max <= 0 means
// unlimited, making the wrapper a plain pass-through counter).
func NewBudget(inner plm.Model, max int64) *Budget {
	return &Budget{inner: inner, max: max}
}

// Predict forwards while quota remains, then degrades to uniform responses.
func (b *Budget) Predict(x mat.Vec) mat.Vec {
	used := b.used.Add(1)
	if b.max > 0 && used > b.max {
		out := make(mat.Vec, b.inner.Classes())
		return out.Fill(1 / float64(b.inner.Classes()))
	}
	return b.inner.Predict(x)
}

// Dim forwards to the wrapped model.
func (b *Budget) Dim() int { return b.inner.Dim() }

// Classes forwards to the wrapped model.
func (b *Budget) Classes() int { return b.inner.Classes() }

// Used returns the number of queries attempted so far.
func (b *Budget) Used() int64 { return b.used.Load() }

// Remaining returns the quota left, or -1 when unlimited.
func (b *Budget) Remaining() int64 {
	if b.max <= 0 {
		return -1
	}
	rem := b.max - b.used.Load()
	if rem < 0 {
		return 0
	}
	return rem
}

// Exhausted reports whether any query was answered with the degraded
// uniform response.
func (b *Budget) Exhausted() bool { return b.max > 0 && b.used.Load() > b.max }

var _ plm.Model = (*Budget)(nil)

// Validate checks that a model behaves like a probability oracle on a probe
// input: correct output length, non-negative entries, sum ≈ 1. Useful as a
// handshake before running a long interpretation job against a remote.
func Validate(m plm.Model, probe mat.Vec) error {
	if len(probe) != m.Dim() {
		return fmt.Errorf("api: probe length %d != model dim %d", len(probe), m.Dim())
	}
	p := m.Predict(probe)
	if len(p) != m.Classes() {
		return fmt.Errorf("api: model returned %d probabilities, want %d", len(p), m.Classes())
	}
	var sum float64
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("api: probability %d is %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("api: probabilities sum to %v", sum)
	}
	return nil
}
