package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func randBatch(rng *rand.Rand, n, d int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for i := range xs {
		x := make(mat.Vec, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

func requireBitEqualVecs(t *testing.T, got, want []mat.Vec, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s[%d]: length %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s[%d][%d] = %v, want %v (bit-exact)", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestLogitsBatchBitIdentical covers plain ReLU and Leaky ReLU networks:
// the batched GEMM forward must reproduce the scalar path bit for bit.
func TestLogitsBatchBitIdentical(t *testing.T) {
	for _, leak := range []float64{0, 0.05} {
		rng := rand.New(rand.NewSource(21))
		n := New(rng, 9, 16, 11, 4).SetLeak(leak)
		xs := randBatch(rng, 33, 9) // odd size exercises the 4-row tile tail
		want := make([]mat.Vec, len(xs))
		for i, x := range xs {
			want[i] = n.Logits(x)
		}
		requireBitEqualVecs(t, n.LogitsBatch(xs), want, "LogitsBatch")

		wantP := make([]mat.Vec, len(xs))
		for i, x := range xs {
			wantP[i] = n.Predict(x)
		}
		requireBitEqualVecs(t, n.PredictBatch(xs), wantP, "PredictBatch")
	}
}

func TestMaxoutLogitsBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := NewMaxout(rng, 3, 7, 10, 8, 3)
	xs := randBatch(rng, 19, 7)
	want := make([]mat.Vec, len(xs))
	for i, x := range xs {
		want[i] = n.Logits(x)
	}
	requireBitEqualVecs(t, n.LogitsBatch(xs), want, "Maxout LogitsBatch")

	wantP := make([]mat.Vec, len(xs))
	for i, x := range xs {
		wantP[i] = n.Predict(x)
	}
	requireBitEqualVecs(t, n.PredictBatch(xs), wantP, "Maxout PredictBatch")
}

func TestActivationPatternBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := New(rng, 6, 12, 9, 3).SetLeak(0.01)
	xs := randBatch(rng, 17, 6)
	got := n.ActivationPatternBatch(xs)
	for i, x := range xs {
		want := n.ActivationPattern(x)
		if len(got[i]) != len(want) {
			t.Fatalf("pattern %d: length %d, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("pattern %d bit %d: %v, want %v", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestWinnerPatternBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := NewMaxout(rng, 4, 5, 8, 6, 2)
	xs := randBatch(rng, 9, 5)
	got := n.WinnerPatternBatch(xs)
	for i, x := range xs {
		want := n.WinnerPattern(x)
		if len(got[i]) != len(want) {
			t.Fatalf("winners %d: length %d, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("winners %d unit %d: %d, want %d", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestBatchEmptyAndShapePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := New(rng, 4, 6, 2)
	if got := n.LogitsBatch(nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged batch")
		}
	}()
	n.LogitsBatch([]mat.Vec{{1, 2, 3, 4}, {1, 2}})
}

// TestActivateInPlace pins the satellite fix: activate must transform its
// argument in place (no fresh allocation), and forward must still preserve
// the pre-activations that backprop and activation patterns read.
func TestActivateInPlace(t *testing.T) {
	n := &Network{leak: 0.5}
	z := mat.Vec{2, -2}
	out := n.activate(z)
	if &out[0] != &z[0] {
		t.Fatal("activate allocated a new slice; must work in place")
	}
	if z[0] != 2 || z[1] != -1 {
		t.Fatalf("activate gave %v, want [2 -1]", z)
	}
}

func TestForwardPreservesPreActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := New(rng, 5, 8, 3)
	x := randBatch(rng, 1, 5)[0]
	st := n.forward(x)
	// st.z[0] must be pre-activations: at least one strictly negative entry
	// should survive for a random net, and st.a[1] must be its ReLU.
	for j, v := range st.z[0] {
		want := v
		if v <= 0 {
			want = n.leak * v
		}
		if st.a[1][j] != want {
			t.Fatalf("a[1][%d] = %v, want activate(z[0][%d]) = %v", j, st.a[1][j], j, want)
		}
	}
}
