// Command plmserve loads a model saved by plmtrain and exposes it as an
// HTTP prediction API — the "cloud service" the paper interprets. Only
// probabilities leave the process; parameters stay hidden.
//
// With -replicas N the model is loaded N times and served behind the
// api.Shard router: each /batch request is dispatched load-aware across the
// replicas and /stats reports the per-backend breakdown (queries, inflight,
// retries, health).
//
// With -backend host:port,host:port the shard additionally routes to other
// plmserve instances as remote backends — a heterogeneous shard of local
// replicas and remote workers behind one endpoint. An unreachable backend
// is quarantined with exponential backoff, its work fails over to the
// others, and it rejoins after a successful health probe. With -backend
// alone (no -model) the instance is a pure router.
//
// With -cache N a bounded LRU response cache sits in front of the whole
// shard: repeated probes are answered without touching any backend, and
// /stats reports cache_hits / cache_misses / cache_evictions.
//
// With -fleet the backend set additionally becomes dynamic: the instance
// mounts the registry protocol (POST /register, /heartbeat, /leave) and
// other plmserve workers join and leave it at runtime. A worker that stops
// heartbeating past -expire is dropped and its in-flight work drained to
// the survivors; /stats grows a "registry" section tracking the churn. The
// worker side is -join router:port: register with the router, heartbeat on
// its advertised interval, re-register if the lease is lost, and leave
// cleanly on SIGINT/SIGTERM. -advertise overrides the URL the router dials
// back (default: derived from -addr).
//
// With -atlas path the closed-form regions the white box composes are
// persisted to a checksummed append-log and survive restarts: a cold-started
// instance answers interpretation for every previously seen region without
// recomposing a single GEMM chain. The atlas also mounts GET /regions/{key}
// (one stored closed form, bit-identical over the binary codec) and GET
// /atlas/snapshot (the committed log as a stream); a worker that -joins an
// atlas-bearing router pulls the snapshot on register and starts warm.
// Async census jobs (POST /jobs with op "census") sweep probes around
// submitted anchors purely to populate the store ahead of demand; /stats
// grows an "atlas" section (regions, bytes, hits, cold_misses,
// census_progress).
//
// With -hedge the shard router speculatively re-dispatches chunks that sit
// on one backend past an adaptive threshold (a multiple of that backend's
// EWMA chunk round trip); the first answer wins bit-identically and the
// loser is cancelled — tail latency insurance on heterogeneous fleets.
//
// With -jobs N the async job API is enabled: POST /jobs submits a bulk
// predict or interpret request (answered 202 with a job id), GET /jobs/{id}
// polls it, and a bounded worker pool runs the work on the batched fast
// paths. Interpret jobs harvest the exact locally linear regions of the
// submitted instances and need at least one local replica (-model).
//
// Payload encoding is negotiated per request (internal/wire): every
// endpoint speaks the legacy JSON envelopes, and peers that saw the
// server's /meta advertise the binary float-frame codec ship the same
// payloads as length-prefixed little-endian frames — bit-identical to the
// JSON path at a fraction of the bytes, with an opt-in float32 mode.
// Finished job results additionally page (GET /jobs/{id}?offset=O&limit=L)
// and, for binary clients, stream as one frame per result chunk. /stats
// reports the wire traffic (bytes_in/bytes_out and the binary/JSON request
// split), reaching through to remote backends' client-side counters.
//
// Usage:
//
//	plmserve -model plnn.json -type plnn -addr :8080
//	plmserve -model plnn.json -type plnn -replicas 4 -cache 4096 -jobs 64
//	plmserve -model plnn.json -replicas 2 -backend 10.0.0.2:8080,10.0.0.3:8080
//	plmserve -backend 10.0.0.2:8080,10.0.0.3:8080   # pure router, no local model
//	plmserve -fleet -hedge -addr :8080              # dynamic fleet router
//	plmserve -model plnn.json -addr :9001 -join 10.0.0.1:8080   # worker
//	plmserve -model lmt.json -type lmt -addr 127.0.0.1:9000 -latency 5ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/atlas"
	"repro/internal/jobs"
	"repro/internal/modelio"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// atlasFrontEntries is the RAM LRU capacity layered in front of the disk
// atlas: hot regions answer from memory, everything else from a pread.
const atlasFrontEntries = 1024

// pullAtlasSnapshot fetches the router's committed atlas log and merges it
// into the local store — the warm-start half of the fleet join handshake.
// Ingest dedups by key, so re-pulling after a re-register is idempotent.
func pullAtlasSnapshot(ctx context.Context, router string, store *atlas.Atlas) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, router+"/atlas/snapshot", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("atlas snapshot fetch: %s", resp.Status)
	}
	return store.Ingest(resp.Body)
}

// loadReplicas loads the model file n times — each replica owns its own
// parameters — and wraps them in the shard router when n > 1, so a single
// big coalesced batch from an aggregated client is evaluated across all
// replicas in parallel instead of serially on one.
func loadReplicas(path, kind string, n int, cfg api.ShardConfig) (plm.Model, error) {
	if n <= 1 {
		return modelio.Load(path, kind)
	}
	models, err := loadLocalModels(path, kind, n)
	if err != nil {
		return nil, err
	}
	return api.NewShardBackends(api.LocalBackends(models, path), cfg)
}

// loadLocalModels loads n independent copies of the model file.
func loadLocalModels(path, kind string, n int) ([]plm.Model, error) {
	models := make([]plm.Model, n)
	for i := range models {
		m, err := modelio.Load(path, kind)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}

// buildBackends assembles the heterogeneous backend set: n local replicas
// loaded from the model file (when a path is given) plus one remote backend
// per dialed address.
func buildBackends(path, kind string, n int, addrs []string) ([]api.Backend, error) {
	var backends []api.Backend
	if path != "" {
		models, err := loadLocalModels(path, kind, n)
		if err != nil {
			return nil, err
		}
		backends = api.LocalBackends(models, path)
	}
	for _, addr := range addrs {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		client, err := api.Dial(url, nil, 1)
		if err != nil {
			return nil, fmt.Errorf("backend %s: %w", addr, err)
		}
		backends = append(backends, api.NewRemoteBackend(client))
	}
	return backends, nil
}

// splitBackendList parses the -backend flag value.
func splitBackendList(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// normalizeURL turns a host:port flag value into a base URL.
func normalizeURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// advertiseURL derives the base URL a fleet router should dial this worker
// back on: the -advertise override when given, otherwise -addr with an
// empty host (":8080") filled in as loopback — the single-machine default.
func advertiseURL(addr, advertise string) string {
	if advertise != "" {
		return normalizeURL(advertise)
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return normalizeURL(addr)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("plmserve: ")

	var (
		modelPath  = flag.String("model", "", "model file saved by plmtrain (required unless -backend or -fleet is set)")
		modelType  = flag.String("type", "plnn", fmt.Sprintf("model family: one of %v", modelio.Kinds()))
		addr       = flag.String("addr", ":8080", "listen address")
		name       = flag.String("name", "", "advertised model name (default: file path or backend list)")
		replicas   = flag.Int("replicas", 1, "local model replicas served behind the shard router")
		backendsFl = flag.String("backend", "", "comma list of remote plmserve addresses to route to as shard backends")
		fleet      = flag.Bool("fleet", false, "mount the registry protocol so workers can -join this instance at runtime")
		expire     = flag.Duration("expire", 5*time.Second, "fleet heartbeat TTL: a worker silent this long is dropped")
		hedge      = flag.Bool("hedge", false, "speculatively re-dispatch slow chunks to another backend (tail-latency insurance)")
		joinFl     = flag.String("join", "", "fleet router address to register this instance with as a worker")
		advertise  = flag.String("advertise", "", "base URL the router should dial this worker back on (default: from -addr)")
		atlasPath  = flag.String("atlas", "", "persistent region atlas file: closed-form regions survive restarts and are served to joining workers")
		cacheN     = flag.Int("cache", 0, "LRU response cache entries in front of the model (0: off)")
		jobsN      = flag.Int("jobs", 0, "async job store capacity enabling POST /jobs (0: off)")
		jobWorkers = flag.Int("job-workers", runtime.NumCPU(), "async job pool workers")
		latency    = flag.Duration("latency", 0, "artificial per-request latency")
		logStats   = flag.Duration("log-stats", 0, "periodically log served queries and round trips (0: off)")
	)
	flag.Parse()
	backendAddrs := splitBackendList(*backendsFl)
	if *modelPath == "" && len(backendAddrs) == 0 && !*fleet {
		log.Fatal("-model is required (or -backend / -fleet for a pure router)")
	}
	if *name == "" {
		switch {
		case *modelPath != "":
			*name = *modelPath
		case len(backendAddrs) > 0:
			*name = "router(" + strings.Join(backendAddrs, ",") + ")"
		default:
			*name = "fleet-router"
		}
	}
	if *replicas < 1 {
		log.Fatalf("-replicas %d: need at least 1", *replicas)
	}
	if *expire <= 0 {
		log.Fatalf("-expire %v: need > 0", *expire)
	}

	shardCfg := api.ShardConfig{Hedge: *hedge}
	// A shard router is needed when the backend set is heterogeneous,
	// dynamic, or replicated; a plain single model otherwise.
	var model plm.Model
	var shard *api.Shard
	switch {
	case *fleet || len(backendAddrs) > 0:
		backends, err := buildBackends(*modelPath, *modelType, *replicas, backendAddrs)
		if err != nil {
			log.Fatal(err)
		}
		sh := api.NewDynamicShard(shardCfg)
		for _, b := range backends {
			if err := sh.AddBackend(b); err != nil {
				log.Fatal(err)
			}
		}
		shard, model = sh, sh
	default:
		m, err := loadReplicas(*modelPath, *modelType, *replicas, shardCfg)
		if err != nil {
			log.Fatal(err)
		}
		model = m
		if sh, ok := m.(*api.Shard); ok {
			shard = sh
		}
	}
	if *cacheN > 0 {
		// The cache fronts the whole shard: a repeated probe is answered
		// before any backend sees it, and /stats reports hits and misses.
		cached, err := api.NewResponseCache(model, *cacheN)
		if err != nil {
			log.Fatal(err)
		}
		model = cached
	} else if *cacheN < 0 {
		log.Fatalf("-cache %d: need >= 0", *cacheN)
	}

	var store *atlas.Atlas
	if *atlasPath != "" {
		a, err := atlas.Open(*atlasPath)
		if err != nil {
			log.Fatal(err)
		}
		defer a.Close()
		if n := a.Len(); n > 0 {
			log.Printf("atlas %s: %d region(s) recovered", *atlasPath, n)
		}
		store = a
	}

	srv := api.NewServer(model, *name)
	srv.Latency = *latency
	endpoints := "GET /meta, POST /predict, POST /batch, GET /stats"
	if *fleet {
		// The registry must control the raw shard, not the cache wrapper:
		// membership changes route around the cache either way, and the
		// cache keeps serving hits while the fleet churns underneath it.
		reg := api.NewRegistry(shard, api.RegistryConfig{TTL: *expire})
		reg.Mount(srv)
		reg.Start()
		defer reg.Stop()
		endpoints += ", POST /register, POST /heartbeat, POST /leave"
	}
	var runner *jobs.Runner
	var reporter openbox.StoreReporter
	if *jobsN > 0 {
		// Interpret jobs extract from a dedicated white-box copy, so the
		// closed-form compositions never contend with the serving replicas
		// (models are pure functions; the copy is cheap). Loaded only when
		// jobs are on — it would otherwise be dead weight.
		var white plm.RegionModel
		if *modelPath != "" {
			w, err := modelio.Load(*modelPath, *modelType)
			if err != nil {
				log.Fatal(err)
			}
			white = w
			if store != nil {
				// Every region the white box composes — interpret harvests
				// and census sweeps alike — lands in the durable atlas, with
				// a RAM LRU in front for the hot set. After a restart the
				// store answers without recomposing a single GEMM chain.
				white = openbox.CacheRegionModelOpts(w, openbox.StoreOptions{
					Capacity: atlasFrontEntries,
					Backing:  store,
				})
				reporter, _ = white.(openbox.StoreReporter)
			}
		}
		r, err := jobs.NewRunner(model, white, *jobsN, *jobWorkers)
		if err != nil {
			log.Fatal(err)
		}
		runner = r
		runner.Mount(srv)
		endpoints += ", POST /jobs, GET /jobs/{id}"
	} else if *jobsN < 0 {
		log.Fatalf("-jobs %d: need >= 0", *jobsN)
	}
	if store != nil {
		srv.SetRegionSource(store.Lookup)
		srv.AddStoreStats("regions", store.Stats)
		srv.Handle("GET /atlas/snapshot", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/octet-stream")
			if _, err := store.WriteSnapshot(w); err != nil {
				log.Printf("atlas snapshot: %v", err)
			}
		})
		srv.SetAtlasStatus(func() api.AtlasStatus {
			st := store.Stats()
			as := api.AtlasStatus{
				Regions:     st.Size,
				Bytes:       st.Bytes,
				Hits:        st.Hits,
				ColdMisses:  st.Misses,
				Quarantined: store.Quarantined(),
			}
			if reporter != nil {
				as.Compositions = reporter.RegionCompositions()
			}
			if runner != nil {
				done, total := runner.CensusProgress()
				as.CensusDone, as.CensusTotal = done, total
				if total > 0 {
					as.CensusProgress = float64(done) / float64(total)
				}
			}
			return as
		})
		endpoints += ", GET /regions/{key}, GET /atlas/snapshot"
	}
	fmt.Printf("serving %s (%d features, %d classes, %d local replica(s), %d remote backend(s)) on %s\n",
		*name, model.Dim(), model.Classes(), *replicas, len(backendAddrs), *addr)
	fmt.Println("endpoints: " + endpoints)

	if *logStats > 0 {
		// The queries/round-trips ratio shows how well clients batch: an
		// aggregated interpreter pool drives it far above 1.
		go func() {
			for range time.Tick(*logStats) {
				q, rt := srv.Queries(), srv.Requests()
				ratio := float64(q)
				if rt > 0 {
					ratio = float64(q) / float64(rt)
				}
				log.Printf("served %d queries over %d round trips (%.1f queries/trip)", q, rt, ratio)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var sessDone chan struct{}
	if *joinFl != "" {
		// Worker half of the fleet protocol: register with the router,
		// heartbeat, re-register on a lost lease, and leave on shutdown.
		sess := &api.FleetSession{
			Router:    normalizeURL(*joinFl),
			Advertise: advertiseURL(*addr, *advertise),
			Logf:      log.Printf,
		}
		if store != nil {
			// Routers that keep an atlas advertise it in the register ack;
			// pull their committed log so this worker starts warm instead of
			// recomposing regions the fleet has already paid for.
			router := sess.Router
			sess.OnAtlas = func(ctx context.Context) {
				added, err := pullAtlasSnapshot(ctx, router, store)
				if err != nil {
					log.Printf("atlas snapshot pull: %v", err)
					return
				}
				log.Printf("atlas: ingested %d region(s) from router snapshot", added)
			}
		}
		sessDone = make(chan struct{})
		go func() {
			defer close(sessDone)
			_ = sess.Run(ctx)
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		// Graceful exit: say goodbye to the router (so our chunks drain to
		// the survivors immediately instead of after the TTL), then stop
		// accepting traffic.
		if sessDone != nil {
			<-sessDone
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
	}
}
