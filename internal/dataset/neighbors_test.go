package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestNearestBasic(t *testing.T) {
	d := &Dataset{
		Name: "pts", Width: 2, Height: 1,
		X:     []mat.Vec{{0, 0}, {1, 0}, {0.4, 0}},
		Y:     []int{0, 1, 0},
		Names: []string{"a", "b"},
	}
	idx := NewNNIndex(d)
	if got := idx.Nearest(mat.Vec{0.1, 0}, -1); got != 0 {
		t.Fatalf("Nearest = %d", got)
	}
	if got := idx.Nearest(mat.Vec{0.1, 0}, 0); got != 2 {
		t.Fatalf("Nearest excluding 0 = %d", got)
	}
}

func TestNearestOf(t *testing.T) {
	d := &Dataset{
		Name: "pts", Width: 1, Height: 1,
		X:     []mat.Vec{{0}, {0.1}, {5}},
		Y:     []int{0, 0, 1},
		Names: []string{"a", "b"},
	}
	idx := NewNNIndex(d)
	n, err := idx.NearestOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("NearestOf(0) = %d", n)
	}
	if _, err := idx.NearestOf(9); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestNearestOfSingleton(t *testing.T) {
	d := &Dataset{Name: "one", Width: 1, Height: 1, X: []mat.Vec{{0}}, Y: []int{0}, Names: []string{"a", "b"}}
	if _, err := NewNNIndex(d).NearestOf(0); err == nil {
		t.Fatal("singleton should have no neighbour")
	}
}

func TestKNearestOrdering(t *testing.T) {
	d := &Dataset{
		Name: "pts", Width: 1, Height: 1,
		X:     []mat.Vec{{0}, {1}, {2}, {3}},
		Y:     []int{0, 0, 1, 1},
		Names: []string{"a", "b"},
	}
	idx := NewNNIndex(d)
	got := idx.KNearest(mat.Vec{0.2}, 3, -1)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("KNearest = %v", got)
	}
	all := idx.KNearest(mat.Vec{0}, 10, -1)
	if len(all) != 4 {
		t.Fatalf("k>n returned %d", len(all))
	}
	if none := idx.KNearest(mat.Vec{0}, 0, -1); len(none) != 0 {
		t.Fatalf("k=0 returned %v", none)
	}
}

func TestNearestMatchesBruteForceOnSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := SyntheticDigits(rng, SynthConfig{Size: 8, PerClass: 6})
	idx := NewNNIndex(d)
	// Cross-check early-abandon against a plain scan for a few probes.
	for probe := 0; probe < 10; probe++ {
		i := rng.Intn(d.Len())
		bestDist := 1e18
		for j, c := range d.X {
			if j == i {
				continue
			}
			if dist := d.X[i].L2Dist(c); dist < bestDist {
				bestDist = dist
			}
		}
		got, err := idx.NearestOf(i)
		if err != nil {
			t.Fatal(err)
		}
		// Ties can legitimately differ; compare distances instead of ids.
		if d.X[i].L2Dist(d.X[got]) > bestDist+1e-12 {
			t.Fatalf("probe %d: got dist %v, brute force %v", i, d.X[i].L2Dist(d.X[got]), bestDist)
		}
	}
}
