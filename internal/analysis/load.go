package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The standalone loader: resolve package patterns and type-check the
// matched packages without golang.org/x/tools. `go list -deps -export`
// compiles every dependency and hands back its export-data file in the
// build cache; the stdlib gc importer reads those files, so the only
// source we parse ourselves is the target packages' own.

// Package is one type-checked target package ready for RunAnalyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load resolves the patterns (e.g. "./...") and returns the matched
// packages, parsed and type-checked. Only packages in the current module
// are analyzed; dependencies are consumed as export data.
func Load(patterns []string) ([]*Package, error) {
	deps, err := goList(append([]string{"-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	targets, err := goList(append([]string{"-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, patterns...))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || t.Module == nil {
			continue
		}
		paths := make([]string, len(t.GoFiles))
		for i, name := range t.GoFiles {
			paths[i] = filepath.Join(t.Dir, name)
		}
		pkg, err := CheckFiles(fset, imp, t.ImportPath, paths, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from source files. An empty
// goVersion leaves the type-checker's language version at its default.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, filePaths []string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, p := range filePaths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// exportImporter returns a gc-export-data importer backed by the path →
// export-file map. Paths missing from the map are resolved with an extra
// `go list -export` call, so it also serves the test harness, whose fixture
// imports are not known up front.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return LookupImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			entries, err := goList([]string{"-export", "-json=ImportPath,Export", path})
			if err != nil {
				return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
			}
			for _, e := range entries {
				if e.Export != "" {
					exports[e.ImportPath] = e.Export
				}
			}
			if file, ok = exports[path]; !ok {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
		}
		return os.Open(file)
	})
}

// StdImporter returns an importer resolving any import path on demand via
// the go command — the test harness uses it to type-check fixtures.
func StdImporter(fset *token.FileSet) types.Importer {
	return exportImporter(fset, make(map[string]string))
}

// LookupImporter wraps the stdlib gc export-data importer around a lookup
// function, the hook both the standalone loader and the vet-tool driver
// plug their path-resolution tables into. ("unsafe" is resolved internally
// by the gc importer and never reaches lookup.)
func LookupImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// goList runs `go list` with the given arguments and decodes the JSON
// stream.
func goList(args []string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var out []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, e)
	}
	return out, nil
}
