package atlas_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/atlas"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// The atlas must satisfy the redesigned store contract.
var _ openbox.RegionStore = (*atlas.Atlas)(nil)

func testNet(seed int64, sizes ...int) *nn.Network {
	return nn.New(rand.New(rand.NewSource(seed)), sizes...)
}

// distinctRegions extracts up to want distinct closed forms from random
// instances of net.
func distinctRegions(t *testing.T, net *nn.Network, want int) []*plm.Linear {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	seen := make(map[string]bool)
	var out []*plm.Linear
	for tries := 0; len(out) < want && tries < want*50; tries++ {
		x := make(mat.Vec, net.InputDim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lin, err := openbox.Extract(net, x)
		if err != nil {
			t.Fatalf("extract: %v", err)
		}
		if seen[lin.Key] {
			continue
		}
		seen[lin.Key] = true
		out = append(out, lin)
	}
	if len(out) < want {
		t.Fatalf("only found %d distinct regions, want %d", len(out), want)
	}
	return out
}

func sameBits(a, b *plm.Linear) bool {
	if a.W.Rows() != b.W.Rows() || a.W.Cols() != b.W.Cols() || len(a.B) != len(b.B) {
		return false
	}
	for r := 0; r < a.W.Rows(); r++ {
		ra, rb := a.W.RawRow(r), b.W.RawRow(r)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				return false
			}
		}
	}
	for j := range a.B {
		if math.Float64bits(a.B[j]) != math.Float64bits(b.B[j]) {
			return false
		}
	}
	return true
}

func TestReopenBitIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(3, 6, 12, 10, 4)
	regions := distinctRegions(t, net, 8)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, lin := range regions {
		a.Insert(lin.Key, lin)
	}
	if a.Len() != len(regions) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(regions))
	}
	// Lookup through the live handle round-trips through disk already.
	for _, lin := range regions {
		got, ok := a.Lookup(lin.Key)
		if !ok {
			t.Fatalf("live lookup miss for %s", lin.Key)
		}
		if !sameBits(got, lin) {
			t.Fatalf("live lookup not bit-identical for %s", lin.Key)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b.Close()
	if b.Len() != len(regions) {
		t.Fatalf("reopened Len = %d, want %d", b.Len(), len(regions))
	}
	if b.TornBytes() != 0 || b.Quarantined() != 0 {
		t.Fatalf("clean reopen reported torn=%d quarantined=%d", b.TornBytes(), b.Quarantined())
	}
	for _, lin := range regions {
		got, ok := b.Lookup(lin.Key)
		if !ok {
			t.Fatalf("reopened lookup miss for %s", lin.Key)
		}
		if !sameBits(got, lin) {
			t.Fatalf("reopened lookup not bit-identical for %s", lin.Key)
		}
		if got.Key != lin.Key {
			t.Fatalf("key mangled: %q vs %q", got.Key, lin.Key)
		}
	}
	st := b.Stats()
	if st.Size != len(regions) || st.Hits != int64(len(regions)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateInsertKeepsOneRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(5, 5, 8, 3)
	regions := distinctRegions(t, net, 2)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer a.Close()
	a.Insert(regions[0].Key, regions[0])
	before := a.Stats().Bytes
	a.Insert(regions[0].Key, regions[0])
	if got := a.Stats().Bytes; got != before {
		t.Fatalf("duplicate insert grew log: %d -> %d", before, got)
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
}

// TestTornTailTruncated simulates a crash mid-append: a valid log followed
// by a partial record must reopen with the committed records intact and the
// torn bytes dropped, and the next insert must land cleanly.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(11, 6, 10, 8, 3)
	regions := distinctRegions(t, net, 5)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, lin := range regions[:4] {
		a.Insert(lin.Key, lin)
	}
	a.Close()

	// Tear the tail three ways: a few garbage bytes, a record prefix cut
	// mid-header, and a full prefix whose body never arrived.
	tails := [][]byte{
		{0xde, 0xad, 0xbe},
		[]byte("PLMR\x10"),
		append([]byte("PLMR"), 0x40, 0, 0, 0, 1, 2, 3, 4, 0xaa, 0xbb),
	}
	for i, tail := range tails {
		t.Run(fmt.Sprintf("tail%d", i), func(t *testing.T) {
			clean, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			torn := filepath.Join(t.TempDir(), "torn.atlas")
			if err := os.WriteFile(torn, append(append([]byte{}, clean...), tail...), 0o644); err != nil {
				t.Fatalf("write: %v", err)
			}
			b, err := atlas.Open(torn)
			if err != nil {
				t.Fatalf("reopen torn: %v", err)
			}
			defer b.Close()
			if b.TornBytes() != int64(len(tail)) {
				t.Fatalf("TornBytes = %d, want %d", b.TornBytes(), len(tail))
			}
			if b.Len() != 4 {
				t.Fatalf("Len = %d, want 4", b.Len())
			}
			for _, lin := range regions[:4] {
				got, ok := b.Lookup(lin.Key)
				if !ok || !sameBits(got, lin) {
					t.Fatalf("committed record lost after torn-tail recovery: %s", lin.Key)
				}
			}
			// The truncated log must accept appends on a clean boundary.
			b.Insert(regions[4].Key, regions[4])
			b.Close()
			c, err := atlas.Open(torn)
			if err != nil {
				t.Fatalf("reopen after append: %v", err)
			}
			defer c.Close()
			if c.Len() != 5 || c.TornBytes() != 0 {
				t.Fatalf("post-append reopen: len=%d torn=%d", c.Len(), c.TornBytes())
			}
		})
	}
}

// TestCorruptChecksumQuarantined flips a byte inside an early record's
// body: reopen must quarantine that record only, keep serving the rest,
// and not fail.
func TestCorruptChecksumQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(13, 6, 10, 8, 3)
	regions := distinctRegions(t, net, 4)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, lin := range regions {
		a.Insert(lin.Key, lin)
	}
	a.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// First record body starts at fileHeader(8) + recordPrefix(12) +
	// keyLen field(2); flip a byte well inside the float payload.
	raw[8+12+2+40] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	b, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("reopen with corrupt record: %v", err)
	}
	defer b.Close()
	if b.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", b.Quarantined())
	}
	if b.Len() != len(regions)-1 {
		t.Fatalf("Len = %d, want %d", b.Len(), len(regions)-1)
	}
	if _, ok := b.Lookup(regions[0].Key); ok {
		t.Fatalf("corrupt record served")
	}
	for _, lin := range regions[1:] {
		got, ok := b.Lookup(lin.Key)
		if !ok || !sameBits(got, lin) {
			t.Fatalf("record after quarantined one lost: %s", lin.Key)
		}
	}
}

// TestReadTimeCorruptionQuarantined corrupts a record after the index was
// built: Lookup must detect the checksum mismatch, quarantine, and miss.
func TestReadTimeCorruptionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(17, 5, 8, 3)
	regions := distinctRegions(t, net, 2)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer a.Close()
	a.Insert(regions[0].Key, regions[0])
	a.Insert(regions[1].Key, regions[1])

	// Corrupt the first record's payload on disk behind the live handle.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	if _, err := f.WriteAt([]byte{0x5a}, 8+12+2+50); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	if _, ok := a.Lookup(regions[0].Key); ok {
		t.Fatalf("corrupted record served from live handle")
	}
	if a.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", a.Quarantined())
	}
	// Second miss on the same key is a plain miss, not a second quarantine.
	if _, ok := a.Lookup(regions[0].Key); ok {
		t.Fatalf("quarantined key resurfaced")
	}
	if a.Quarantined() != 1 {
		t.Fatalf("Quarantined double-counted: %d", a.Quarantined())
	}
	if got, ok := a.Lookup(regions[1].Key); !ok || !sameBits(got, regions[1]) {
		t.Fatalf("untouched record lost")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notatlas")
	if err := os.WriteFile(path, []byte("definitely not an atlas file"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := atlas.Open(path); err == nil {
		t.Fatalf("Open clobbered a foreign file")
	}
}

func TestSnapshotIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	net := testNet(19, 6, 10, 8, 3)
	regions := distinctRegions(t, net, 6)

	src, err := atlas.Open(filepath.Join(dir, "src.atlas"))
	if err != nil {
		t.Fatalf("open src: %v", err)
	}
	defer src.Close()
	for _, lin := range regions {
		src.Insert(lin.Key, lin)
	}
	var snap bytes.Buffer
	if _, err := src.WriteSnapshot(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	dst, err := atlas.Open(filepath.Join(dir, "dst.atlas"))
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	defer dst.Close()
	// Pre-seed one region: ingest must dedup it.
	dst.Insert(regions[0].Key, regions[0])
	added, err := dst.Ingest(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if added != len(regions)-1 {
		t.Fatalf("added = %d, want %d", added, len(regions)-1)
	}
	// Re-ingest is idempotent.
	added, err = dst.Ingest(bytes.NewReader(snap.Bytes()))
	if err != nil || added != 0 {
		t.Fatalf("re-ingest added=%d err=%v", added, err)
	}
	for _, lin := range regions {
		got, ok := dst.Lookup(lin.Key)
		if !ok || !sameBits(got, lin) {
			t.Fatalf("ingested region wrong: %s", lin.Key)
		}
	}
}

// TestTieredStoreServesWithoutComposing is the acceptance-criteria core: a
// region cache layered over a warm atlas must answer LocalAt with zero
// compositions, bit-identical to a from-scratch extraction.
func TestTieredStoreServesWithoutComposing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(23, 6, 12, 10, 4)

	rng := rand.New(rand.NewSource(99))
	xs := make([]mat.Vec, 16)
	for i := range xs {
		x := make(mat.Vec, net.InputDim())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}

	// Warm pass: compose through a tiered store backed by the atlas.
	warm, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rc := openbox.NewRegionCacheOpts(net, openbox.StoreOptions{Capacity: 4, Backing: warm})
	want := make([]*plm.Linear, len(xs))
	for i, x := range xs {
		lin, err := rc.LocalAt(x)
		if err != nil {
			t.Fatalf("warm LocalAt: %v", err)
		}
		want[i] = lin
	}
	if rc.Compositions() == 0 {
		t.Fatalf("warm pass composed nothing")
	}
	warm.Close()

	// Cold restart: fresh process state, reopened atlas, zero compositions.
	cold, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cold.Close()
	rc2 := openbox.NewRegionCacheOpts(net, openbox.StoreOptions{Capacity: 4, Backing: cold})
	for i, x := range xs {
		lin, err := rc2.LocalAt(x)
		if err != nil {
			t.Fatalf("cold LocalAt: %v", err)
		}
		if !sameBits(lin, want[i]) {
			t.Fatalf("cold lookup %d not bit-identical to composition", i)
		}
	}
	if got := rc2.Compositions(); got != 0 {
		t.Fatalf("cold pass composed %d regions, want 0", got)
	}
	st := rc2.StoreStats()
	if st.Misses != 0 {
		t.Fatalf("cold pass had %d cold misses, want 0 (stats %+v)", st.Misses, st)
	}
}

// TestConcurrentReadersWriter is the -race battery: one writer appending
// fresh regions while readers look up, snapshot, and stat concurrently.
func TestConcurrentReadersWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.atlas")
	net := testNet(29, 6, 12, 10, 4)
	regions := distinctRegions(t, net, 24)

	a, err := atlas.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer a.Close()
	for _, lin := range regions[:8] {
		a.Insert(lin.Key, lin)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, lin := range regions[8:] {
			a.Insert(lin.Key, lin)
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				lin := regions[(seed+i)%len(regions)]
				if got, ok := a.Lookup(lin.Key); ok && !sameBits(got, lin) {
					t.Errorf("concurrent lookup returned wrong bits for %s", lin.Key)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			var buf bytes.Buffer
			if _, err := a.WriteSnapshot(&buf); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			_ = a.Stats()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()

	if a.Len() != len(regions) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(regions))
	}
	for _, lin := range regions {
		got, ok := a.Lookup(lin.Key)
		if !ok || !sameBits(got, lin) {
			t.Fatalf("post-battery lookup wrong for %s", lin.Key)
		}
	}
}
