package openbox

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/plm"
)

// ExtractAll's per-batch dedup must be independent of map iteration order:
// out[i] is pinned to xs[i], so permuting the batch must permute the
// outputs and nothing else, and instances sharing a region must share the
// bit-identical classifier whichever of them was seen first.

func TestExtractAllOrderIndependent(t *testing.T) {
	n := randNet(21, 5, 12, 8, 3)
	rng := rand.New(rand.NewSource(22))

	// Clustered batch: each base instance repeated with same-region jitter.
	var xs []mat.Vec
	for b := 0; b < 6; b++ {
		base := randVec(rng, 5)
		for p := 0; p < 4; p++ {
			x := base.Clone()
			for i := range x {
				x[i] += 1e-9 * rng.NormFloat64()
			}
			xs = append(xs, x)
		}
	}
	perm := rand.New(rand.NewSource(23)).Perm(len(xs))
	shuffled := make([]mat.Vec, len(xs))
	for i, j := range perm {
		shuffled[j] = xs[i]
	}

	fwd, err := ExtractAll(n, xs)
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := ExtractAll(n, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range perm {
		if !linearsBitIdentical(fwd[i], shuf[j]) {
			t.Fatalf("instance %d: classifier differs when the batch is permuted", i)
		}
	}

	// Run-to-run: same batch, identical bits every time.
	for run := 0; run < 3; run++ {
		again, err := ExtractAll(n, xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if !linearsBitIdentical(fwd[i], again[i]) {
				t.Fatalf("run %d instance %d: classifier differs run to run", run, i)
			}
		}
	}
}

func linearsBitIdentical(a, b *plm.Linear) bool {
	if a.Dim() != b.Dim() || a.Classes() != b.Classes() {
		return false
	}
	for c := 0; c < a.Classes(); c++ {
		ra, rb := a.W.RawRow(c), b.W.RawRow(c)
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
		if a.B[c] != b.B[c] {
			return false
		}
	}
	return true
}
