package core

import (
	"fmt"
	"sync"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Pool interprets many instances concurrently. A single OpenAPI value is
// not safe for concurrent use (it owns one RNG stream), so the pool keeps
// one interpreter per worker, seeded deterministically from the base
// configuration: results are reproducible for a fixed worker count.
type Pool struct {
	workers []*OpenAPI
}

// NewPool builds a pool of n workers derived from cfg; worker i uses seed
// cfg.Seed + i. It panics if n <= 0. A caller-supplied cfg.RNG is ignored —
// shared RNG state is exactly what the pool exists to avoid.
func NewPool(cfg Config, n int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("core: pool size %d", n))
	}
	p := &Pool{workers: make([]*OpenAPI, n)}
	for i := range p.workers {
		wcfg := cfg
		wcfg.RNG = nil
		wcfg.Seed = cfg.Seed + int64(i)
		p.workers[i] = New(wcfg)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Result pairs one instance's interpretation with its slot and any error.
type Result struct {
	Index  int
	Interp *plm.Interpretation
	Err    error
}

// InterpretMany explains model's prediction on every instance for its
// predicted class, fanning the work across the pool. The returned slice is
// ordered like xs; failed instances carry their error.
func (p *Pool) InterpretMany(model plm.Model, xs []mat.Vec) []Result {
	results := make([]Result, len(xs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := range p.workers {
		wg.Add(1)
		go func(o *OpenAPI) {
			defer wg.Done()
			for i := range jobs {
				c := model.Predict(xs[i]).ArgMax()
				interp, err := o.Interpret(model, xs[i], c)
				results[i] = Result{Index: i, Interp: interp, Err: err}
			}
		}(p.workers[w])
	}
	for i := range xs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
