//go:build race

package mat

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are skipped under it (the instrumentation
// itself allocates).
const raceEnabled = true
