//go:build !amd64

package mat

// useAVX2 is always false without the amd64 microkernel; gemmBT falls back
// to the pure-Go register-tiled path, which computes identical bits.
const useAVX2 = false

func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64) {
	panic("mat: dotPack4x4 without asm support")
}
