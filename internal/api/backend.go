package api

import (
	"context"
	"fmt"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

// Backend is one prediction worker behind the shard router. The paper's
// OpenAPI setting never assumes the model runs in-process — only that
// something answers probability queries — so the router speaks to an
// abstract worker: a local model replica, or a remote plmserve instance
// reached over HTTP. Unlike plm.Model, every call returns an error: a
// backend is allowed to be down, and the router's job is to notice and
// route around it rather than corrupt a batch.
//
// Every call takes a context: a caller's timeout or cancellation must reach
// the wire (a hedged chunk's losing attempt is cancelled the moment the
// winner answers; a dead caller's fan-out stops instead of running to
// completion for nobody). Local backends are pure compute and only check
// the context between probes; remote ones thread it into the HTTP request.
//
// Implementations must be safe for concurrent use; the shard dispatches
// chunks to one backend from at most one goroutine at a time, but single
// predictions, hedged duplicates and /stats reads interleave freely.
type Backend interface {
	// Predict answers one probe.
	Predict(ctx context.Context, x mat.Vec) (mat.Vec, error)
	// PredictBatch answers a batch of probes, one output per input.
	PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error)
	// Stats describes the backend: kind, name and model shape. The shape is
	// what NewShardBackends validates replica interchangeability against.
	Stats() BackendStats
	// Healthy reports whether the backend can currently answer. Local
	// backends are always healthy; remote ones ping their server under the
	// context's deadline. The shard calls this only on quarantine-recovery
	// probes, never on the hot path.
	Healthy(ctx context.Context) bool
}

// BackendStats identifies a backend: its kind ("local" or "remote"), a
// human-readable name, and the model shape it serves.
type BackendStats struct {
	Kind    string
	Name    string
	Dim     int
	Classes int
}

// BackendStatus is the live per-backend view /stats reports: identity plus
// the router's inflight, retry, failure and hedge counters and the health
// state.
type BackendStatus struct {
	Kind string `json:"kind"` // "local" or "remote"
	Name string `json:"name"`
	// Queries counts probes this backend answered successfully.
	Queries int64 `json:"queries"`
	// Inflight counts probes currently outstanding on this backend.
	Inflight int64 `json:"inflight"`
	// Retries counts chunks re-dispatched to another backend after this one
	// failed them.
	Retries int64 `json:"retries"`
	// Failures counts calls (chunk, single or recovery probe) that errored.
	Failures int64 `json:"failures"`
	// Hedges counts speculative duplicate dispatches launched because this
	// backend sat on a chunk past its hedge threshold.
	Hedges int64 `json:"hedges"`
	// HedgeWins counts hedged chunks this backend answered first.
	HedgeWins int64 `json:"hedge_wins"`
	// HedgeCancels counts this backend's attempts cancelled or discarded
	// because another backend's copy of the same chunk won the race.
	HedgeCancels int64 `json:"hedge_cancels"`
	// State is "ok" for a serving backend and "unreachable" while the
	// backend is quarantined after failures. It reflects the router's
	// bookkeeping, not a live probe — /stats stays cheap.
	State string `json:"state"`
	// Wire is the backend's client-side codec traffic (bytes and the
	// binary/JSON request split) when the backend is remote; local
	// backends have no wire hop and omit it.
	Wire *wire.Counts `json:"wire,omitempty"`
}

// wireCounter is the optional wire-traffic surface a backend may expose:
// remote backends forward their HTTP client's counters for the /stats
// reach-through.
type wireCounter interface {
	WireCounts() wire.Counts
}

// localBackend adapts an in-process plm.Model to the Backend interface —
// today's replicas, unchanged except for the explicit error surface.
type localBackend struct {
	model plm.Model
	name  string
}

// NewLocalBackend wraps an in-process model as a shard backend.
func NewLocalBackend(model plm.Model, name string) Backend {
	return &localBackend{model: model, name: name}
}

// Predict answers in-process. A local forward is not interruptible compute,
// so the context is only consulted before it starts: an already-cancelled
// caller gets its cancellation instead of a result it will discard.
func (b *localBackend) Predict(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.model.Predict(x), nil
}

func (b *localBackend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return predictAllErr(b.model, xs)
}

func (b *localBackend) Stats() BackendStats {
	return BackendStats{Kind: "local", Name: b.name, Dim: b.model.Dim(), Classes: b.model.Classes()}
}

func (b *localBackend) Healthy(context.Context) bool { return true }

// remoteBackend adapts an api.Client to the Backend interface: a shard
// replica that is itself another plmserve instance, reached over HTTP —
// the topology `plmserve -backend host:port` wires up, and the backend a
// dynamically registered worker (`plmserve -join`) turns into on the
// router side.
type remoteBackend struct {
	client *Client
}

// NewRemoteBackend wraps a dialed client as a shard backend.
func NewRemoteBackend(client *Client) Backend {
	return &remoteBackend{client: client}
}

func (b *remoteBackend) Predict(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	return b.client.PredictErrCtx(ctx, x)
}

func (b *remoteBackend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	return b.client.PredictBatchCtx(ctx, xs)
}

func (b *remoteBackend) Stats() BackendStats {
	return BackendStats{
		Kind:    "remote",
		Name:    b.client.BaseURL(),
		Dim:     b.client.Dim(),
		Classes: b.client.Classes(),
	}
}

// Healthy pings the remote's /meta endpoint under the caller's context and
// the client's own PingTimeout, whichever ends first. Used by the shard's
// quarantine-recovery probe.
func (b *remoteBackend) Healthy(ctx context.Context) bool { return b.client.PingCtx(ctx) == nil }

// WireCounts forwards the dialed client's wire counters — the /stats
// per-backend reach-through.
func (b *remoteBackend) WireCounts() wire.Counts { return b.client.WireCounts() }

// LocalBackends wraps each model as a local backend, named name-0, name-1…
func LocalBackends(models []plm.Model, name string) []Backend {
	out := make([]Backend, len(models))
	for i, m := range models {
		out[i] = NewLocalBackend(m, fmt.Sprintf("%s-%d", name, i))
	}
	return out
}
