package mat

// cpuHasAVX2 reports whether the CPU and OS support AVX2 execution.
// Implemented in gemm_amd64.s.
func cpuHasAVX2() bool

// dotPack4x4 computes four 4-lane dot products over a shared k dimension:
// out[4j+l] = Σ_t pack[4t+l]·bj[t]. Implemented in gemm_amd64.s with AVX2
// mul-then-add per lane, bit-identical to scalar evaluation. Callers must
// have checked useAVX2 and k > 0.
//
// The assembly only dereferences its pointers during the call and retains
// none of them, so the noescape pragma is sound; without it every gemmBT
// call heap-allocates its 16-element accumulator tile, which dominated the
// allocation profile of batched training.
//
//go:noescape
func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64)

// useAVX2 gates the vector microkernel; resolved once at startup.
var useAVX2 = cpuHasAVX2()
