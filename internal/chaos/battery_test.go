package chaos

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/eval"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func chaosModel(seed int64) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), 4, 6, 3)}
}

func chaosProbes(rng *rand.Rand, n int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for i := range xs {
		xs[i] = mat.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return xs
}

func TestBackendInjectsSeededFaults(t *testing.T) {
	// Determinism first: two backends over the same seed inject the same
	// fault sequence, and every fault is loud — an answered call is always
	// bit-identical to the clean model.
	model := chaosModel(900)
	f := Faults{Seed: 7, ErrorRate: 0.3}
	a := Wrap(api.NewLocalBackend(chaosModel(900), "a"), f)
	b := Wrap(api.NewLocalBackend(chaosModel(900), "b"), f)
	ctx := context.Background()
	xs := chaosProbes(rand.New(rand.NewSource(901)), 200)
	for i, x := range xs {
		ya, erra := a.Predict(ctx, x)
		yb, errb := b.Predict(ctx, x)
		if (erra == nil) != (errb == nil) {
			t.Fatalf("probe %d: same seed diverged (%v vs %v)", i, erra, errb)
		}
		if erra != nil {
			if !errors.Is(erra, ErrInjected) {
				t.Fatalf("probe %d: unexpected error %v", i, erra)
			}
			continue
		}
		if want := model.Predict(x); !ya.EqualApprox(want, 0) || !yb.EqualApprox(want, 0) {
			t.Fatalf("probe %d: injected fault corrupted an answer", i)
		}
	}
	c := a.Counts()
	if c.Errors == 0 || c.Errors == int64(len(xs)) {
		t.Fatalf("ErrorRate 0.3 over %d probes injected %d errors", len(xs), c.Errors)
	}
	if c != b.Counts() {
		t.Fatalf("same seed, different counts: %+v vs %+v", c, b.Counts())
	}
}

func TestBackendHangRespectsContext(t *testing.T) {
	b := Wrap(api.NewLocalBackend(chaosModel(902), "hang"), Faults{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Predict(ctx, mat.Vec{0, 0, 0, 0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung predict returned %v, want DeadlineExceeded", err)
	}
	if b.Counts().Hangs != 1 {
		t.Fatalf("counts = %+v, want 1 hang", b.Counts())
	}
}

// TestChaosBatteryBitIdenticalUnderChurn is the fleet acceptance battery:
// four backends — one clean, one flapping, one hanging on most batches,
// one killed mid-run — serve a 4096-instance batch plus concurrent
// foreground traffic under hedged dispatch, and every answer must be
// bit-identical to a healthy single replica, inside a bounded wall clock.
// Run under -race in CI; the seeds make each fault plan reproducible.
func TestChaosBatteryBitIdenticalUnderChurn(t *testing.T) {
	const seed = 910
	single := chaosModel(seed)

	clean := api.NewLocalBackend(chaosModel(seed), "clean")
	flappy := Wrap(api.NewLocalBackend(chaosModel(seed), "flappy"), Faults{
		Seed: 1, LatencyRate: 0.2, Latency: 2 * time.Millisecond, ErrorRate: 0.2,
	})
	hangs := Wrap(api.NewLocalBackend(chaosModel(seed), "hangs"), Faults{
		Seed: 2, HangRate: 0.75,
	})
	doomed := Wrap(api.NewLocalBackend(chaosModel(seed), "doomed"), Faults{
		Seed: 3, LatencyRate: 0.3, Latency: 2 * time.Millisecond,
	})

	s := api.NewDynamicShard(api.ShardConfig{
		QuarantineBase: time.Millisecond,
		Hedge:          true,
		HedgeMin:       5 * time.Millisecond,
	})
	for _, b := range []api.Backend{clean, flappy, hangs, doomed} {
		if err := s.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}

	churnCtx, stopChurn := context.WithCancel(context.Background())
	defer stopChurn()
	flapper := &Flapper{Backend: flappy, Period: 3 * time.Millisecond}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() { defer churn.Done(); flapper.Run(churnCtx) }()

	// Kill the doomed backend mid-run, the way a registry expiry would:
	// removal must drain its in-flight chunks back to the survivors.
	churn.Add(1)
	go func() {
		defer churn.Done()
		time.Sleep(30 * time.Millisecond)
		if !s.RemoveBackend("doomed") {
			t.Error("RemoveBackend(doomed) found nothing")
		}
	}()

	start := time.Now()
	var workers sync.WaitGroup
	failures := make(chan error, 16)

	// The headline batch: 4096 instances through the churning fleet.
	batch := chaosProbes(rand.New(rand.NewSource(seed+1)), 4096)
	workers.Add(1)
	go func() {
		defer workers.Done()
		got, err := s.PredictBatch(batch)
		if err != nil {
			failures <- err
			return
		}
		for i, x := range batch {
			if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
				failures <- errors.New("batch answer not bit-identical to healthy replica")
				return
			}
		}
	}()

	// Foreground traffic riding alongside, with per-call tail latency.
	const callers, rounds = 4, 25
	lat := make([][]float64, callers)
	for g := 0; g < callers; g++ {
		g := g
		workers.Add(1)
		go func() {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed + 10 + int64(g)))
			for r := 0; r < rounds; r++ {
				xs := chaosProbes(rng, 32)
				t0 := time.Now()
				got, err := s.PredictBatch(xs)
				if err != nil {
					failures <- err
					return
				}
				lat[g] = append(lat[g], time.Since(t0).Seconds())
				for i, x := range xs {
					if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
						failures <- errors.New("foreground answer not bit-identical")
						return
					}
				}
			}
		}()
	}
	workers.Wait()
	stopChurn()
	churn.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}

	// Bounded tail: hedging must keep the hanging backend from dragging
	// p99 anywhere near a caller-visible stall. The bound is generous —
	// it exists to catch "a hang leaked into the answer path", not to
	// benchmark the machine.
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	if p99 := eval.Percentile(all, 0.99); p99 > 5.0 {
		t.Fatalf("foreground p99 %.2fs under churn, want bounded (<5s)", p99)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("battery took %v, want bounded wall clock", elapsed)
	}
	if flapper.Flips.Load() == 0 {
		t.Fatal("flapper never flipped: the battery did not churn")
	}
	if hangs.Counts().Hangs == 0 {
		t.Fatal("hanging backend never hung: the battery did not exercise hedging")
	}
	if got := s.Replicas(); got != 3 {
		t.Fatalf("fleet has %d backends after the kill, want 3", got)
	}
}

// TestChaosMiddlewareWireFaultsStayBitIdentical exercises the wire-level
// faults a remote backend's client actually sees — connection resets and
// truncated response bodies — and asserts the shard still answers
// bit-identically by routing around the sick peer.
func TestChaosMiddlewareWireFaultsStayBitIdentical(t *testing.T) {
	const seed = 920
	single := chaosModel(seed)

	mw := NewMiddleware(api.NewServer(chaosModel(seed), "sick"), Faults{
		Seed: 4, ResetRate: 0.2, TruncateRate: 0.2,
	})
	sick := httptest.NewServer(mw)
	defer sick.Close()
	// Dial itself crosses the faulty wire; retry it the way any client
	// facing a resetting peer would.
	var c *api.Client
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if c, err = api.Dial(sick.URL, nil, 0); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatal(err)
	}

	s, err := api.NewShardBackends([]api.Backend{
		api.NewLocalBackend(chaosModel(seed), "clean"),
		api.NewRemoteBackend(c),
	}, api.ShardConfig{QuarantineBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for round := 0; round < 20; round++ {
		xs := chaosProbes(rng, 64)
		got, err := s.PredictBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
				t.Fatalf("round %d item %d: wire faults corrupted an answer", round, i)
			}
		}
	}
	counts := mw.Counts()
	if counts.Resets == 0 && counts.Truncates == 0 {
		t.Fatalf("middleware injected nothing: %+v", counts)
	}
}
