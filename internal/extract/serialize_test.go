package extract

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
)

func TestSurrogateSaveLoadRoundTrip(t *testing.T) {
	model := plnnModel(20, 4, 8, 3)
	rng := rand.New(rand.NewSource(21))
	probes := []mat.Vec{randVec(rng, 4), randVec(rng, 4), randVec(rng, 4)}
	ext := New(core.Config{Seed: 22})
	s, err := ext.Harvest(model, probes)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clone.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != s.Dim() || loaded.Classes() != s.Classes() || loaded.NumRegions() != s.NumRegions() {
		t.Fatal("loaded metadata differs")
	}
	for trial := 0; trial < 20; trial++ {
		x := randVec(rng, 4)
		if !s.Predict(x).EqualApprox(loaded.Predict(x), 0) {
			t.Fatal("loaded surrogate predicts differently")
		}
	}
}

func TestSurrogateLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSurrogateUnmarshalRejectsGarbage(t *testing.T) {
	var s Surrogate
	cases := []string{
		`junk`,
		`{"format":"wrong","dim":2,"classes":2,"regions":[]}`,
		`{"format":"openapi-surrogate-v1","dim":0,"classes":2,"regions":[]}`,
		`{"format":"openapi-surrogate-v1","dim":2,"classes":2,"regions":[{"probe":[1],"rel_w":[[0,0],[1,1]],"rel_b":[0,0]}]}`,
		`{"format":"openapi-surrogate-v1","dim":2,"classes":2,"regions":[{"probe":[1,2],"rel_w":[[0,0]],"rel_b":[0]}]}`,
		`{"format":"openapi-surrogate-v1","dim":2,"classes":2,"regions":[{"probe":[1,2],"rel_w":[[0,0],[1]],"rel_b":[0,0]}]}`,
	}
	for i, c := range cases {
		if err := s.UnmarshalJSON([]byte(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}
