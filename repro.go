package repro

import (
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// Core vocabulary, re-exported so downstream users never import internal
// packages directly.
type (
	// Vec is a dense feature vector.
	Vec = mat.Vec
	// Model is the black-box probability oracle an API exposes.
	Model = plm.Model
	// RegionModel is the white-box view used for ground truth.
	RegionModel = plm.RegionModel
	// Interpretation is the result of interpreting one instance.
	Interpretation = plm.Interpretation
	// Interpreter is the common surface of OpenAPI and all baselines.
	Interpreter = plm.Interpreter
	// OpenAPIConfig tunes the OpenAPI interpreter (Algorithm 1).
	OpenAPIConfig = core.Config
	// Dataset is a labeled image collection with [0,1] features.
	Dataset = dataset.Dataset
)

// NewOpenAPI returns the paper's interpreter with the given configuration.
// The zero config reproduces the paper's settings (r = 1.0, m = 100).
func NewOpenAPI(cfg OpenAPIConfig) Interpreter { return core.New(cfg) }

// Interpret is the one-call path: run OpenAPI with default settings and
// return the exact decision features of model at x for class c.
func Interpret(model Model, x Vec, c int) (*Interpretation, error) {
	return core.New(core.Config{}).Interpret(model, x, c)
}

// InterpretAll recovers the decision features of every class from a single
// converged sample set.
func InterpretAll(model Model, x Vec) ([]*Interpretation, error) {
	return core.New(core.Config{}).InterpretAll(model, x)
}

// DemoModel is a small trained PLNN exposed as both a Model and a
// RegionModel, with a convenience instance generator for demos and tests.
type DemoModel struct {
	*openbox.PLNN
	rng  *rand.Rand
	data *dataset.Dataset
}

// Example returns a test instance from the demo model's dataset.
func (m *DemoModel) Example() Vec {
	return m.data.X[m.rng.Intn(m.data.Len())]
}

// Data returns the demo model's dataset.
func (m *DemoModel) Data() *Dataset { return m.data }

// MustTrainDemoPLNN trains a small ReLU network on the synthetic digits
// dataset. It panics on failure (demo/test convenience only).
func MustTrainDemoPLNN(seed int64) *DemoModel {
	rng := rand.New(rand.NewSource(seed))
	data := dataset.SyntheticDigits(rng, dataset.SynthConfig{Size: 10, PerClass: 40})
	net := nn.New(rng, data.Dim(), 32, 16, data.Classes())
	if _, err := net.Train(rng, data.X, data.Y, nn.TrainConfig{Epochs: 15}); err != nil {
		panic(fmt.Sprintf("repro: demo training failed: %v", err))
	}
	return &DemoModel{
		PLNN: &openbox.PLNN{Net: net},
		rng:  rng,
		data: data,
	}
}

// MustTrainDemoPLNNBinary trains a small two-class demo model (even vs odd
// synthetic digits). It panics on failure (demo/test convenience only).
func MustTrainDemoPLNNBinary(seed int64) *DemoModel {
	rng := rand.New(rand.NewSource(seed))
	data := dataset.SyntheticDigits(rng, dataset.SynthConfig{Size: 10, PerClass: 40})
	labels := make([]int, data.Len())
	for i, y := range data.Y {
		labels[i] = y % 2
	}
	binary := &dataset.Dataset{
		Name: "synth-mnist-parity", Width: data.Width, Height: data.Height,
		X: data.X, Y: labels, Names: []string{"even", "odd"},
	}
	net := nn.New(rng, binary.Dim(), 24, 12, 2)
	if _, err := net.Train(rng, binary.X, binary.Y, nn.TrainConfig{Epochs: 15}); err != nil {
		panic(fmt.Sprintf("repro: binary demo training failed: %v", err))
	}
	return &DemoModel{PLNN: &openbox.PLNN{Net: net}, rng: rng, data: binary}
}

// TrainPLNN trains a fully connected ReLU network on (xs, labels) and
// returns it wrapped as a RegionModel. hidden lists the hidden-layer widths.
func TrainPLNN(seed int64, xs []Vec, labels []int, classes int, hidden []int, epochs int) (RegionModel, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("repro: empty training set")
	}
	rng := rand.New(rand.NewSource(seed))
	sizes := append([]int{len(xs[0])}, hidden...)
	sizes = append(sizes, classes)
	net := nn.New(rng, sizes...)
	if _, err := net.Train(rng, xs, labels, nn.TrainConfig{Epochs: epochs}); err != nil {
		return nil, err
	}
	return &openbox.PLNN{Net: net}, nil
}

// TrainLMT trains a logistic model tree on (xs, labels) with the paper's
// default stopping rules and returns it as a RegionModel.
func TrainLMT(seed int64, xs []Vec, labels []int, classes int) (RegionModel, error) {
	rng := rand.New(rand.NewSource(seed))
	return lmt.Train(rng, xs, labels, classes, lmt.Config{})
}

// SyntheticDataset generates one of the paper's dataset stand-ins by name
// ("mnist" or "fmnist") at the given image size and per-class count.
func SyntheticDataset(name string, seed int64, size, perClass int) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	return dataset.SyntheticByName(name, rng, dataset.SynthConfig{Size: size, PerClass: perClass})
}

// ServeModel exposes a model as an HTTP prediction API (see internal/api for
// the wire protocol). Mount it on any mux or pass it to http.ListenAndServe.
func ServeModel(model Model, name string) http.Handler {
	return api.NewServer(model, name)
}

// DialModel connects to a served model and returns it as a Model. The
// returned client records transport errors stickily; see api.Client.
func DialModel(baseURL string) (*api.Client, error) {
	return api.Dial(baseURL, nil, 2)
}

// CountQueries wraps a model with a query counter for measuring probing
// cost.
func CountQueries(model Model) *api.Counter { return api.NewCounter(model) }

// NewPool returns a pool of worker interpreters for concurrent
// InterpretMany runs; results are bit-reproducible for a fixed worker
// count. See core.Pool.
func NewPool(cfg OpenAPIConfig, workers int) *core.Pool { return core.NewPool(cfg, workers) }

// AggregateQueries wraps a model so that probe batches from concurrent
// interpretation jobs coalesce into shared round trips — point a NewPool
// at the returned aggregator and close it when the jobs finish. maxBatch
// and window zero-default to the aggregator's settings.
func AggregateQueries(model Model, maxBatch int, window time.Duration) *api.Aggregator {
	return api.NewAggregator(model, api.AggregatorConfig{MaxBatch: maxBatch, Window: window})
}

// AggregateQueriesAdaptive is AggregateQueries with the flush window tracked
// from observed round-trip time instead of fixed: local models flush
// near-instantly, slow remotes batch aggressively. See api.AggregatorConfig.
func AggregateQueriesAdaptive(model Model) *api.Aggregator {
	return api.NewAggregator(model, api.AggregatorConfig{Adaptive: true})
}

// ShardModel routes prediction traffic across interchangeable replicas of
// one model: /batch-style bulk requests are split into chunks evaluated on
// all replicas in parallel and merged back in order. Serve the returned
// shard with ServeModel for a multi-replica prediction service.
func ShardModel(replicas ...Model) (*api.Shard, error) {
	return api.NewShard(replicas)
}

// WrapBinaryScore adapts a single-probability API (P(positive | x), the
// most common real-world binary-classifier surface) into a two-class Model,
// so OpenAPI runs unchanged against score-only services.
func WrapBinaryScore(score func(Vec) float64, dim int) Model {
	return plm.NewBinary(func(x mat.Vec) float64 { return score(x) }, dim)
}

// GroundTruth returns the exact decision features of a white-box model at x
// for class c — the reference the evaluation compares against.
func GroundTruth(model RegionModel, x Vec, c int) (Vec, error) {
	loc, err := model.LocalAt(x)
	if err != nil {
		return nil, err
	}
	return loc.DecisionFeatures(c), nil
}

// NewWorkbench builds a full experiment environment (dataset + trained PLNN
// and LMT). See eval.WorkbenchConfig for scaling knobs.
func NewWorkbench(cfg eval.WorkbenchConfig) (*eval.Workbench, error) {
	return eval.NewWorkbench(cfg)
}

// QualityRow aggregates the paper's RD / WD / L1Dist metrics for one
// interpretation method.
type QualityRow = eval.QualityRow

// Baselines returns the paper's four API-only baselines at perturbation
// distance h: the naive determined-system method, ZOO, Linear-Regression
// LIME and Ridge-Regression LIME.
func Baselines(h float64, seed int64) []Interpreter {
	return eval.StandardBaselines(h, seed)
}

// CompareQuality evaluates every method's sample quality (RD, WD) and
// exactness (L1Dist) against a white-box model over the given instances —
// the Figures 5-7 computation as a library call.
func CompareQuality(model RegionModel, methods []Interpreter, xs []Vec) ([]QualityRow, error) {
	return eval.SampleQuality(model, methods, xs)
}

// Surrogate is a patchwork clone of a hidden PLM assembled from regions
// recovered through its API (the paper's §VI future work).
type Surrogate = extract.Surrogate

// ExtractSurrogate reverse-engineers the locally linear regions of model
// around each probe instance and assembles them into a functional clone.
// Within a probed region the surrogate's output distribution is exactly the
// hidden model's; between regions assignment falls back to the nearest
// probe.
func ExtractSurrogate(model Model, probes []Vec) (*Surrogate, error) {
	return extract.New(core.Config{}).Harvest(model, probes)
}

// ExtractSurrogatePooled is ExtractSurrogate across a pool of concurrent
// workers — the bulk-extraction fast path. Wrap the model with
// AggregateQueriesAdaptive (and serve it sharded) to collapse the harvest
// into a few wide round trips; results are deterministic for a fixed
// worker count.
func ExtractSurrogatePooled(model Model, probes []Vec, workers int) (*Surrogate, error) {
	return extract.New(core.Config{}).HarvestPool(model, probes, workers)
}

// VerifySurrogate measures label agreement and mean total-variation distance
// between a surrogate and the hidden model on test instances.
func VerifySurrogate(s *Surrogate, model Model, xs []Vec) (extract.Fidelity, error) {
	return extract.Verify(s, model, xs)
}

// ExtractSurrogateExact builds a surrogate straight from a white-box model —
// the model owner's export path. No API probing: activation patterns come
// from the batched forward and each distinct locally linear region is
// composed exactly once through the region cache.
func ExtractSurrogateExact(model RegionModel, probes []Vec) (*Surrogate, error) {
	return extract.HarvestExact(model, probes)
}

// CacheRegions wraps a white-box model so repeated ground-truth LocalAt
// queries for instances in an already-seen region return the memoized
// closed-form classifier instead of re-running the GEMM composition chain
// (capacity <= 0 keeps every region). The returned classifiers are shared:
// treat them as read-only.
func CacheRegions(model RegionModel, capacity int) RegionModel {
	return openbox.CacheRegionModel(model, capacity)
}
