package extract

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// The harvest dedup must not leak map iteration order: the surrogate's
// region list is ordered by first occurrence in the probe list, so the same
// probes in the same order must serialize to identical bytes on every run,
// and permuting the probes must permute — never change — the harvested
// region set. (The detfloat analyzer forbids the map-ranged shape that
// would break this; these tests pin the behavior itself.)

// clusteredProbes returns probes where each base point appears several
// times with tiny same-region jitter, so the harvest genuinely dedups.
func clusteredProbes(rng *rand.Rand, dim, bases, per int) []mat.Vec {
	probes := make([]mat.Vec, 0, bases*per)
	for b := 0; b < bases; b++ {
		base := randVec(rng, dim)
		for p := 0; p < per; p++ {
			x := base.Clone()
			for i := range x {
				x[i] += 1e-9 * rng.NormFloat64()
			}
			probes = append(probes, x)
		}
	}
	return probes
}

func TestHarvestExactRunToRunIdentical(t *testing.T) {
	model := plnnModel(11, 5, 12, 8, 3)
	rng := rand.New(rand.NewSource(12))
	probes := clusteredProbes(rng, 5, 6, 5)

	var first []byte
	for run := 0; run < 5; run++ {
		s, err := HarvestExact(model, probes)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumRegions() >= len(probes) {
			t.Fatalf("no dedup happened (%d regions from %d probes); test ineffective", s.NumRegions(), len(probes))
		}
		data, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = data
			continue
		}
		if !bytes.Equal(data, first) {
			t.Fatalf("run %d serialized differently from run 0:\n%s\nvs\n%s", run, data, first)
		}
	}
}

func TestHarvestExactInsertionOrderDeterminesOutput(t *testing.T) {
	model := plnnModel(13, 5, 12, 8, 3)
	rng := rand.New(rand.NewSource(14))
	probes := clusteredProbes(rng, 5, 6, 5)

	reversed := make([]mat.Vec, len(probes))
	for i, p := range probes {
		reversed[len(probes)-1-i] = p
	}

	fwd, err := HarvestExact(model, probes)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := HarvestExact(model, reversed)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.NumRegions() != rev.NumRegions() {
		t.Fatalf("region count depends on probe order: %d vs %d", fwd.NumRegions(), rev.NumRegions())
	}
	// Same region set either way: match each forward region to a reversed
	// one with bit-identical classifier rows.
	for i, fr := range fwd.Regions() {
		found := false
		for _, rr := range rev.Regions() {
			if regionsBitIdentical(fr, rr) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("forward region %d has no bit-identical counterpart after permuting probes", i)
		}
	}
	// And the dedup keeps first occurrence: region 0 of the forward harvest
	// is anchored on the earliest probe of its region, which for reversed
	// input is some later probe — but both anchors must select the same
	// classifier.
	if !fwd.Predict(probes[0]).EqualApprox(rev.Predict(probes[0]), 0) {
		t.Fatal("prediction at probe 0 differs between probe orders")
	}
}

func regionsBitIdentical(a, b *Region) bool {
	if len(a.RelW) != len(b.RelW) || len(a.RelB) != len(b.RelB) {
		return false
	}
	for c := range a.RelW {
		if len(a.RelW[c]) != len(b.RelW[c]) {
			return false
		}
		for i := range a.RelW[c] {
			if a.RelW[c][i] != b.RelW[c][i] {
				return false
			}
		}
		if a.RelB[c] != b.RelB[c] {
			return false
		}
	}
	return true
}
