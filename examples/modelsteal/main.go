// Modelsteal: the paper's §VI future work made concrete — reverse
// engineering a PLM hidden behind an API. Each converged OpenAPI run
// recovers the complete locally linear classifier of one region (exactly,
// up to the softmax shift), so a batch of probes yields a functional clone
// of the remote model. The demo measures clone fidelity as probes grow.
//
// This is a defensive demonstration on our own locally-trained model; it
// shows why prediction APIs leak more than their providers may expect
// (cf. Tramèr et al., USENIX Security 2016, cited by the paper).
//
// Run with:
//
//	go run ./examples/modelsteal
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"

	"repro"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func main() {
	log.SetFlags(0)

	// The "victim": a PLM served over HTTP; parameters never leave it.
	rng := rand.New(rand.NewSource(21))
	const dim = 12
	victim := &openbox.PLNN{Net: nn.New(rng, dim, 24, 12, 4)}
	server := httptest.NewServer(repro.ServeModel(victim, "victim-v1"))
	defer server.Close()

	remote, err := repro.DialModel(server.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim model served at %s (%d features, %d classes)\n",
		server.URL, remote.Dim(), remote.Classes())

	// Held-out instances for fidelity measurement.
	tests := make([]repro.Vec, 300)
	for i := range tests {
		tests[i] = gauss(rng, dim)
	}

	fmt.Println("\nstealing regions through the API:")
	fmt.Printf("  %-8s %-9s %-16s %-12s\n", "probes", "regions", "label-agreement", "mean-TV-dist")
	var clone *repro.Surrogate
	for _, n := range []int{1, 5, 20, 60} {
		probes := make([]repro.Vec, n)
		for i := range probes {
			probes[i] = gauss(rng, dim)
		}
		counted := repro.CountQueries(remote)
		clone, err = repro.ExtractSurrogate(counted, probes)
		if err != nil {
			log.Fatal(err)
		}
		fid, err := repro.VerifySurrogate(clone, remote, tests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8d %-9d %-16.3f %-12.4f  (%d queries)\n",
			n, clone.NumRegions(), fid.LabelAgreement, fid.MeanTVDistance, counted.Count())
	}
	if err := remote.Err(); err != nil {
		log.Fatalf("transport errors: %v", err)
	}

	// The punchline: inside a probed region the clone is *bitwise exact*.
	probe := gauss(rng, dim)
	clone, err = repro.ExtractSurrogate(remote, []repro.Vec{probe})
	if err != nil {
		log.Fatal(err)
	}
	near := probe.Clone()
	near[0] += 1e-8
	want := remote.Predict(near)
	got := clone.Predict(near)
	fmt.Printf("\nexactness inside a stolen region: |clone - victim|_inf = %.3g\n",
		got.Sub(want).NormInf())
	fmt.Println("a prediction API for a PLM leaks the model region by region.")
}

func gauss(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
