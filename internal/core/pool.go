package core

import (
	"fmt"
	"sync"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Pool interprets many instances concurrently. A single OpenAPI value is
// not safe for concurrent use (it owns one RNG stream), so the pool keeps
// one interpreter per worker, seeded deterministically from the base
// configuration. Jobs are assigned by static striping — worker i handles
// instances i, i+n, i+2n, ... — so each instance is always interpreted by
// the same worker with the same RNG stream position: results are
// bit-reproducible for a fixed worker count, independent of goroutine
// scheduling and of how the model batches queries.
type Pool struct {
	workers []*OpenAPI
}

// NewPool builds a pool of n workers derived from cfg; worker i uses seed
// cfg.Seed + i. It panics if n <= 0. A caller-supplied cfg.RNG is ignored —
// shared RNG state is exactly what the pool exists to avoid.
func NewPool(cfg Config, n int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("core: pool size %d", n))
	}
	p := &Pool{workers: make([]*OpenAPI, n)}
	for i := range p.workers {
		wcfg := cfg
		wcfg.RNG = nil
		wcfg.Seed = cfg.Seed + int64(i)
		p.workers[i] = New(wcfg)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Result pairs one instance's interpretation with its slot and any error.
type Result struct {
	Index  int
	Interp *plm.Interpretation
	Err    error
}

// InterpretMany explains model's prediction on every instance for its
// predicted class, fanning the work across the pool. The returned slice is
// ordered like xs; failed instances carry their error.
//
// The argmax pre-query for all instances is issued as one batch up front —
// a single round trip against a batch-capable service — and each prediction
// doubles as the anchor probe of its interpretation, so no instance is
// predicted twice. While one worker solves its linear systems, the others'
// sample-set probes are in flight; wrap the model in an api.Aggregator to
// coalesce those concurrent probes into shared round trips.
//
// Remote models degrade transport failures to uniform responses and record
// them stickily rather than erroring per probe, so a Result can be clean
// while the wire was not: after a run against an api.Client or
// api.Aggregator, check its Err before trusting the interpretations.
func (p *Pool) InterpretMany(model plm.Model, xs []mat.Vec) []Result {
	results := make([]Result, len(xs))
	if len(xs) == 0 {
		return results
	}
	y0s := plm.PredictAll(model, xs)
	n := len(p.workers)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int, o *OpenAPI) {
			defer wg.Done()
			for i := w; i < len(xs); i += n {
				c := y0s[i].ArgMax()
				interp, err := o.InterpretWithPrediction(model, xs[i], y0s[i], c)
				results[i] = Result{Index: i, Interp: interp, Err: err}
			}
		}(w, p.workers[w])
	}
	wg.Wait()
	return results
}
