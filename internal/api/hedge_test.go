package api

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mat"
)

// hangingBackend blocks every batch until its context is cancelled — a
// worker that accepted the request and went silent. Singles answer normally
// so routing tests can still warm it up.
type hangingBackend struct {
	Backend
	hung atomic.Int64 // batches currently parked
}

func (b *hangingBackend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	b.hung.Add(1)
	defer b.hung.Add(-1)
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestShardHedgeRescuesHangingBackend(t *testing.T) {
	// A backend that hangs mid-batch must not hang the batch: past the
	// hedge threshold its chunk is speculatively re-dispatched, the healthy
	// backend's answer wins bit-identically, and the hang is cancelled —
	// all without quarantining anyone (the hang lost a race; it did not
	// report an error of its own).
	single := testModel(600)
	hang := &hangingBackend{Backend: NewLocalBackend(testModel(600), "hang")}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(600), "good"),
		hang,
	}, ShardConfig{Hedge: true, HedgeMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	xs := shardProbes(64)
	done := make(chan error, 1)
	var got []mat.Vec
	go func() {
		var err error
		got, err = s.PredictBatch(xs)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedging did not rescue the batch from the hanging backend")
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}
	status := map[string]BackendStatus{}
	for _, st := range s.BackendStatus() {
		status[st.Name] = st
	}
	if status["hang"].Hedges == 0 {
		t.Fatalf("no hedge launched against the hanging backend: %+v", status)
	}
	if status["good"].HedgeWins == 0 {
		t.Fatalf("healthy backend recorded no hedge wins: %+v", status)
	}
	if status["hang"].State != "ok" || status["hang"].Failures != 0 {
		t.Fatalf("losing a hedge race quarantined the backend: %+v", status["hang"])
	}
}

// gatedErrBackend parks every batch on a gate, then errors — the slow
// backend whose failure lands after the hedge winner already answered.
type gatedErrBackend struct {
	Backend
	gate   chan struct{}
	parked atomic.Int64
}

func (b *gatedErrBackend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	b.parked.Add(1)
	<-b.gate
	return nil, errors.New("late failure")
}

func TestShardHedgedLoserErrorAfterWinnerDoesNotQuarantine(t *testing.T) {
	// The quarantine/hedge interaction the satellite task pins down: a
	// hedged loser that errors after the winner returned must be absorbed
	// as a cancelled race, not booked as a backend failure — otherwise one
	// slow-but-healthy worker gets quarantined every time it loses.
	loser := &gatedErrBackend{
		Backend: NewLocalBackend(testModel(601), "loser"),
		gate:    make(chan struct{}),
	}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(601), "winner"),
		loser,
	}, ShardConfig{Hedge: true, HedgeMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	single := testModel(601)
	xs := shardProbes(64)
	got, err := s.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}
	// Release the loser's parked attempts: each now returns its error into
	// a batch that already finished without it.
	close(loser.gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st BackendStatus
		for _, b := range s.BackendStatus() {
			if b.Name == "loser" {
				st = b
			}
		}
		if st.Failures > 0 {
			t.Fatalf("late loser error was booked as a failure: %+v", st)
		}
		if st.State != "ok" {
			t.Fatalf("late loser error quarantined a healthy backend: %+v", st)
		}
		if st.HedgeCancels > 0 {
			break // the race losses were absorbed as cancels — done
		}
		if time.Now().After(deadline) {
			t.Fatalf("loser's late errors never accounted as hedge cancels: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShardCallerCancellationDoesNotPoisonQuarantine(t *testing.T) {
	// Deadline propagation's accounting rule: a caller timeout must cancel
	// the fan-out and surface the context error, and the backend that was
	// innocently parked on the cancelled chunk stays unquarantined and
	// failure-free.
	hang := &hangingBackend{Backend: NewLocalBackend(testModel(602), "hang")}
	s, err := NewShardBackends([]Backend{hang}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.PredictBatchCtx(ctx, shardProbes(16)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled batch returned %v, want DeadlineExceeded", err)
	}
	st := s.BackendStatus()[0]
	if st.State != "ok" || st.Failures != 0 {
		t.Fatalf("caller cancellation poisoned quarantine accounting: %+v", st)
	}

	// Same rule on the single-prediction path.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	blocked := &ctxWaitBackend{Backend: NewLocalBackend(testModel(602), "wait")}
	s2, err := NewShardBackends([]Backend{blocked}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PredictErrCtx(ctx2, mat.Vec{0.1, 0.2, 0.3, 0.4}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled single returned %v, want DeadlineExceeded", err)
	}
	if st := s2.BackendStatus()[0]; st.State != "ok" || st.Failures != 0 {
		t.Fatalf("cancelled single poisoned quarantine accounting: %+v", st)
	}
}

// ctxWaitBackend parks singles until the caller's context dies.
type ctxWaitBackend struct{ Backend }

func (b *ctxWaitBackend) Predict(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestShardRemoveBackendDrainsInFlightChunks(t *testing.T) {
	// The registry-expiry drain end to end: a worker hangs mid-batch and is
	// then removed from the fleet (as an expired heartbeat would do); its
	// cancelled chunk must flow back onto the shared queue and the
	// surviving backend must complete the batch bit-identically.
	single := testModel(603)
	hang := &hangingBackend{Backend: NewLocalBackend(testModel(603), "hang")}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(603), "good"),
		hang,
	}, ShardConfig{}) // no hedging: only removal can rescue the chunk
	if err != nil {
		t.Fatal(err)
	}
	xs := shardProbes(64)
	done := make(chan error, 1)
	var got []mat.Vec
	go func() {
		var err error
		got, err = s.PredictBatch(xs)
		done <- err
	}()
	// Wait for the hanging backend to park a chunk, then expire it.
	deadline := time.Now().Add(5 * time.Second)
	for hang.hung.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hanging backend never received a chunk")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.RemoveBackend("hang") {
		t.Fatal("RemoveBackend did not find the hanging backend")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("removal did not drain the hung chunk back to the survivor")
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}
	if got := s.Replicas(); got != 1 {
		t.Fatalf("shard has %d backends after removal, want 1", got)
	}
}

func TestShardDynamicMembershipBitIdentical(t *testing.T) {
	// Membership churn while serving: a dynamic shard grows from empty to
	// two backends and shrinks back to one, answering bit-identically at
	// every size (and refusing, rather than fabricating, at size zero).
	s := NewDynamicShard(ShardConfig{})
	if _, err := s.PredictBatch(shardProbes(4)); err == nil {
		t.Fatal("empty shard served a batch")
	}
	if _, err := s.PredictErr(mat.Vec{1, 0, 0, 0}); err == nil {
		t.Fatal("empty shard served a single")
	}
	if err := s.AddBackend(NewLocalBackend(testModel(604), "a")); err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 4 || s.Classes() != 3 {
		t.Fatalf("adopted shape %dx%d, want 4x3", s.Dim(), s.Classes())
	}
	single := testModel(604)
	xs := shardProbes(32)
	check := func(round string) {
		t.Helper()
		got, err := s.PredictBatch(xs)
		if err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		for i, x := range xs {
			if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
				t.Fatalf("%s item %d: %v != %v", round, i, got[i], want)
			}
		}
	}
	check("one backend")
	if err := s.AddBackend(NewLocalBackend(testModel(604), "b")); err != nil {
		t.Fatal(err)
	}
	check("two backends")
	if err := s.AddBackend(NewLocalBackend(benchShardModel(604), "c")); err == nil {
		t.Fatal("shape-mismatched backend joined")
	}
	if !s.RemoveBackend("a") {
		t.Fatal("RemoveBackend(a) found nothing")
	}
	if s.RemoveBackend("a") {
		t.Fatal("second RemoveBackend(a) succeeded")
	}
	check("after removal")
}

func TestShardFlappingUnderHedgeLoadConverges(t *testing.T) {
	// The satellite's -race gate: concurrent hedged batches against a
	// flapping backend must all come back bit-identical and in order, and
	// once the flapping stops the fleet serves cleanly again.
	single := testModel(605)
	flaky := &scriptedBackend{Backend: NewLocalBackend(testModel(605), "flaky")}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(605), "a"),
		NewLocalBackend(testModel(605), "b"),
		flaky,
	}, ShardConfig{
		QuarantineBase: time.Nanosecond, // immediate retry: maximum churn
		Hedge:          true,
		HedgeMin:       time.Microsecond, // hedge constantly: maximum racing
	})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	go func() {
		for !stop.Load() {
			flaky.down.Store(!flaky.down.Load())
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const callers, perCaller = 8, 23
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, perCaller)
			for i := range xs {
				xs[i] = mat.Vec{float64(g) / callers, float64(i) / perCaller, 0.1, -0.1}
			}
			for round := 0; round < 6; round++ {
				out, err := s.PredictBatch(xs)
				if err != nil {
					errs <- err
					return
				}
				for i, x := range xs {
					if want := single.Predict(x); !out[i].EqualApprox(want, 0) {
						errs <- errors.New("hedged batch not bit-identical")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Convergence: the flapper settles up, and after its quarantine clears
	// it serves traffic again instead of being hedged into starvation.
	flaky.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		before := s.BackendStatus()[2].Queries
		if _, err := s.PredictBatch(shardProbes(64)); err != nil {
			t.Fatal(err)
		}
		if s.BackendStatus()[2].Queries > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flapper never converged back to serving: %+v", s.BackendStatus()[2])
		}
	}
}
