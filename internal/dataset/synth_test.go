package dataset

import (
	"math/rand"
	"testing"
)

func TestSyntheticDigitsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := SyntheticDigits(rng, SynthConfig{Size: 16, PerClass: 5})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 50 || d.Dim() != 256 || d.Classes() != 10 {
		t.Fatalf("shape: n=%d dim=%d classes=%d", d.Len(), d.Dim(), d.Classes())
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 5 {
			t.Fatalf("class %d count = %d", c, n)
		}
	}
}

func TestSyntheticFashionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := SyntheticFashion(rng, SynthConfig{Size: 16, PerClass: 4})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 40 || d.Classes() != 10 {
		t.Fatalf("shape: n=%d classes=%d", d.Len(), d.Classes())
	}
}

func TestSyntheticReproducible(t *testing.T) {
	a := SyntheticDigits(rand.New(rand.NewSource(7)), SynthConfig{Size: 12, PerClass: 3})
	b := SyntheticDigits(rand.New(rand.NewSource(7)), SynthConfig{Size: 12, PerClass: 3})
	for i := range a.X {
		if !a.X[i].EqualApprox(b.X[i], 0) || a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestSyntheticClassesAreDistinguishable(t *testing.T) {
	// Class means should differ pairwise by a clear margin — otherwise the
	// downstream models could not learn anything.
	rng := rand.New(rand.NewSource(3))
	d := SyntheticDigits(rng, SynthConfig{Size: 20, PerClass: 20})
	means := make([]struct {
		ok bool
		v  []float64
	}, 10)
	for c := 0; c < 10; c++ {
		m, err := d.ClassMean(c)
		if err != nil {
			t.Fatal(err)
		}
		means[c].v = m
		means[c].ok = true
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			var dist float64
			for j := range means[a].v {
				dv := means[a].v[j] - means[b].v[j]
				dist += dv * dv
			}
			if dist < 0.5 {
				t.Fatalf("classes %d and %d have nearly identical means (d2=%v)", a, b, dist)
			}
		}
	}
}

func TestSyntheticHasInk(t *testing.T) {
	// Every image must contain some bright pixels (the template) and, at the
	// default noise level, not be saturated everywhere.
	rng := rand.New(rand.NewSource(4))
	d := SyntheticFashion(rng, SynthConfig{Size: 20, PerClass: 3})
	for i, x := range d.X {
		var bright, dark int
		for _, v := range x {
			if v > 0.5 {
				bright++
			}
			if v < 0.2 {
				dark++
			}
		}
		if bright < 5 {
			t.Fatalf("image %d (class %d) has almost no ink", i, d.Y[i])
		}
		if dark < 5 {
			t.Fatalf("image %d is saturated", i)
		}
	}
}

func TestSyntheticByName(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"mnist", "fmnist", "digits", "fashion"} {
		d, err := SyntheticByName(name, rng, SynthConfig{Size: 10, PerClass: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Len() != 10 {
			t.Fatalf("%s: len = %d", name, d.Len())
		}
	}
	if _, err := SyntheticByName("cifar", rng, SynthConfig{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := newCanvas(10, 10)
	c.set(5, 5, 0.5)
	if c.pix[5*10+5] != 0.5 {
		t.Fatal("set failed")
	}
	c.set(5, 5, 0.3) // lower value must not overwrite
	if c.pix[5*10+5] != 0.5 {
		t.Fatal("set overwrote with lower value")
	}
	c.set(-1, 0, 1) // out of bounds ignored
	c.set(0, 99, 1)
	c.rect(2, 2, 4, 4, 1)
	if c.pix[3*10+3] != 1 {
		t.Fatal("rect did not fill")
	}
	c2 := newCanvas(10, 10)
	c2.line(0, 0, 9, 9, 1, 1)
	if c2.pix[0] == 0 || c2.pix[99] == 0 {
		t.Fatal("line endpoints not drawn")
	}
	c3 := newCanvas(12, 12)
	c3.ellipse(6, 6, 4, 4, 1, 1)
	if c3.pix[6*12+6] != 0 {
		t.Fatal("ellipse should be an outline, center must stay empty")
	}
	c4 := newCanvas(12, 12)
	c4.triangle(1, 1, 10, 1, 5, 10, 1)
	if c4.pix[2*12+5] == 0 {
		t.Fatal("triangle did not fill")
	}
	// Degenerate triangle is a no-op.
	c5 := newCanvas(4, 4)
	c5.triangle(0, 0, 1, 1, 2, 2, 1)
}
