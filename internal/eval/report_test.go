package eval

import (
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestWriteTable1(t *testing.T) {
	rows := []AccuracyRow{
		{Dataset: "mnist", Model: "PLNN", TrainAcc: 0.98, TestAcc: 0.97},
		{Dataset: "mnist", Model: "LMT", TrainAcc: 0.99, TestAcc: 0.95},
	}
	var sb strings.Builder
	if err := WriteTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PLNN", "LMT", "0.980", "0.950", "| Dataset |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteCurvesCSV(t *testing.T) {
	curves := []MethodCurves{
		{Method: "OpenAPI", CPP: []float64{0.1, 0.2}, NLCI: []float64{1, 2}},
		{Method: "LIME", CPP: []float64{0.05, 0.1}, NLCI: []float64{0, 1}},
	}
	var sb strings.Builder
	if err := WriteCurvesCSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "flips,OpenAPI_cpp,OpenAPI_nlci,LIME_cpp") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.100000,1") {
		t.Fatalf("row = %q", lines[1])
	}
	if err := WriteCurvesCSV(&sb, nil); err == nil {
		t.Fatal("empty curves accepted")
	}
}

func TestWriteConsistencyCSV(t *testing.T) {
	curves := []ConsistencyCurve{
		{Method: "OpenAPI", CS: []float64{1, 0.9}},
		{Method: "Saliency", CS: []float64{0.8, 0.2}},
	}
	var sb strings.Builder
	if err := WriteConsistencyCSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rank,OpenAPI,Saliency") {
		t.Fatalf("header missing: %s", out)
	}
	if !strings.Contains(out, "2,0.900000,0.200000") {
		t.Fatalf("row missing: %s", out)
	}
	if err := WriteConsistencyCSV(&sb, nil); err == nil {
		t.Fatal("empty curves accepted")
	}
}

func TestWriteQuality(t *testing.T) {
	rows := []QualityRow{{
		Method: "OpenAPI",
		AvgRD:  0,
		WD:     mat.Summarize([]float64{0, 0}),
		L1:     mat.Summarize([]float64{1e-9, 2e-9}),
	}}
	var sb strings.Builder
	if err := WriteQuality(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "OpenAPI") || !strings.Contains(out, "AvgRD") {
		t.Fatalf("output missing fields:\n%s", out)
	}
}
