package extract

import (
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestHarvestExactWithinRegion(t *testing.T) {
	// The surrogate must reproduce the hidden model's distribution exactly
	// at points that share the probe's region.
	model := plnnModel(1, 5, 10, 4)
	rng := rand.New(rand.NewSource(2))
	probe := randVec(rng, 5)
	ext := New(core.Config{Seed: 3})
	s, err := ext.Harvest(model, []mat.Vec{probe})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 1 {
		t.Fatalf("regions = %d", s.NumRegions())
	}
	hits := 0
	for trial := 0; trial < 100; trial++ {
		x := probe.Clone()
		for i := range x {
			x[i] += 1e-7 * rng.NormFloat64()
		}
		if model.RegionKey(x) != model.RegionKey(probe) {
			continue
		}
		hits++
		want := model.Predict(x)
		got := s.Predict(x)
		if !got.EqualApprox(want, 1e-6) {
			t.Fatalf("surrogate %v != model %v inside probed region", got, want)
		}
	}
	if hits == 0 {
		t.Fatal("no same-region test points; test ineffective")
	}
}

func TestHarvestMultiRegionFidelity(t *testing.T) {
	// More probes -> better coverage. Fidelity of a 30-probe surrogate must
	// be high on fresh instances and no worse than a 1-probe surrogate.
	model := plnnModel(4, 4, 8, 3)
	rng := rand.New(rand.NewSource(5))
	probes := make([]mat.Vec, 30)
	for i := range probes {
		probes[i] = randVec(rng, 4)
	}
	ext := New(core.Config{Seed: 6})
	big, err := ext.Harvest(model, probes)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ext.Harvest(model, probes[:1])
	if err != nil {
		t.Fatal(err)
	}
	tests := make([]mat.Vec, 150)
	for i := range tests {
		tests[i] = randVec(rng, 4)
	}
	fBig, err := Verify(big, model, tests)
	if err != nil {
		t.Fatal(err)
	}
	fSmall, err := Verify(small, model, tests)
	if err != nil {
		t.Fatal(err)
	}
	if fBig.LabelAgreement < 0.8 {
		t.Fatalf("30-probe surrogate agreement = %v", fBig.LabelAgreement)
	}
	if fBig.LabelAgreement+1e-9 < fSmall.LabelAgreement-0.1 {
		t.Fatalf("more probes made fidelity much worse: %v vs %v",
			fBig.LabelAgreement, fSmall.LabelAgreement)
	}
	if fBig.MeanTVDistance < 0 || fBig.MeanTVDistance > 1 {
		t.Fatalf("TV distance out of range: %v", fBig.MeanTVDistance)
	}
}

func TestHarvestThroughCountedAPI(t *testing.T) {
	// Extraction consumes only Predict calls — count them.
	model := plnnModel(7, 4, 6, 3)
	counter := api.NewCounter(model)
	ext := New(core.Config{Seed: 8})
	rng := rand.New(rand.NewSource(9))
	if _, err := ext.Harvest(counter, []mat.Vec{randVec(rng, 4), randVec(rng, 4)}); err != nil {
		t.Fatal(err)
	}
	if counter.Count() == 0 {
		t.Fatal("no API queries recorded")
	}
}

func TestHarvestPoolExactWithinRegion(t *testing.T) {
	// HarvestPool anchors each region at the probe's *predicted* class and
	// rebases onto class 0, so its surrogate must be exact within probed
	// regions exactly like the serial Harvest.
	model := plnnModel(20, 5, 10, 4)
	rng := rand.New(rand.NewSource(21))
	probes := make([]mat.Vec, 6)
	for i := range probes {
		probes[i] = randVec(rng, 5)
	}
	ext := New(core.Config{Seed: 22})
	s, err := ext.HarvestPool(model, probes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != len(probes) {
		t.Fatalf("regions = %d, want %d", s.NumRegions(), len(probes))
	}
	hits := 0
	for pi, probe := range probes {
		for trial := 0; trial < 40; trial++ {
			x := probe.Clone()
			for i := range x {
				x[i] += 1e-7 * rng.NormFloat64()
			}
			if model.RegionKey(x) != model.RegionKey(probe) {
				continue
			}
			hits++
			want := model.Predict(x)
			got := s.Predict(x)
			if !got.EqualApprox(want, 1e-6) {
				t.Fatalf("probe %d: surrogate %v != model %v inside region", pi, got, want)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no same-region test points; test ineffective")
	}
}

func TestHarvestPoolDeterministicAndConcurrent(t *testing.T) {
	// Fixed worker count -> bit-identical surrogates across runs; changing
	// nothing else, the pooled harvest through an aggregator must agree
	// with itself too (run with -race).
	model := plnnModel(23, 4, 8, 3)
	rng := rand.New(rand.NewSource(24))
	probes := make([]mat.Vec, 8)
	for i := range probes {
		probes[i] = randVec(rng, 4)
	}
	first, err := New(core.Config{Seed: 25}).HarvestPool(model, probes, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := api.NewAggregator(model, api.AggregatorConfig{Adaptive: true})
	defer agg.Close()
	second, err := New(core.Config{Seed: 25}).HarvestPool(agg, probes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first.NumRegions() != second.NumRegions() {
		t.Fatalf("regions differ: %d vs %d", first.NumRegions(), second.NumRegions())
	}
	for trial := 0; trial < 50; trial++ {
		x := randVec(rng, 4)
		a, b := first.Predict(x), second.Predict(x)
		if !a.EqualApprox(b, 0) {
			t.Fatalf("aggregated pooled harvest differs at %v: %v vs %v", x, a, b)
		}
	}
}

func TestHarvestPoolSkipsFailedProbes(t *testing.T) {
	model := plnnModel(26, 3, 6, 2)
	rng := rand.New(rand.NewSource(27))
	ext := New(core.Config{Seed: 28})
	if _, err := ext.HarvestPool(model, nil, 2); err == nil {
		t.Fatal("empty probes accepted")
	}
	// A wrong-dimension probe fails its job; the good probe still lands.
	s, err := ext.HarvestPool(model, []mat.Vec{{1}, randVec(rng, 3)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 1 {
		t.Fatalf("regions = %d, want 1", s.NumRegions())
	}
}

func TestHarvestErrors(t *testing.T) {
	model := plnnModel(10, 3, 4, 2)
	ext := New(core.Config{Seed: 11})
	if _, err := ext.Harvest(model, nil); err == nil {
		t.Fatal("empty probes accepted")
	}
	// A probe of the wrong dimension fails interpretation; with only that
	// probe, Harvest must fail too.
	if _, err := ext.Harvest(model, []mat.Vec{{1}}); err == nil {
		t.Fatal("all-failed harvest should error")
	}
	// A mix of bad and good probes succeeds with the good one.
	rng := rand.New(rand.NewSource(12))
	s, err := ext.Harvest(model, []mat.Vec{{1}, randVec(rng, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 1 {
		t.Fatalf("regions = %d", s.NumRegions())
	}
}

func TestVerifyErrors(t *testing.T) {
	model := plnnModel(13, 3, 4, 2)
	s := &Surrogate{dim: 3, classes: 2}
	if _, err := Verify(s, model, nil); err == nil {
		t.Fatal("empty verification set accepted")
	}
}

func TestEmptySurrogatePredictsUniform(t *testing.T) {
	s := &Surrogate{dim: 2, classes: 4}
	p := s.Predict(mat.Vec{0, 0})
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("empty surrogate = %v", p)
		}
	}
	if s.RegionAt(mat.Vec{0, 0}) != nil {
		t.Fatal("empty surrogate has a region")
	}
}

func TestSurrogateMetadata(t *testing.T) {
	s := &Surrogate{dim: 7, classes: 3}
	if s.Dim() != 7 || s.Classes() != 3 || s.NumRegions() != 0 {
		t.Fatal("metadata wrong")
	}
}

// TestHarvestExactWhiteBox exercises the owner-side export path: no API
// probing, one region per distinct activation pattern, exact predictions on
// every probe.
func TestHarvestExactWhiteBox(t *testing.T) {
	model := plnnModel(31, 6, 12, 8, 4)
	rng := rand.New(rand.NewSource(32))
	// 5 distinct base points, each probed 4 times (exact duplicates share a
	// region by construction).
	var probes []mat.Vec
	for i := 0; i < 5; i++ {
		base := randVec(rng, 6)
		for r := 0; r < 4; r++ {
			probes = append(probes, base.Clone())
		}
	}
	s, err := HarvestExact(model, probes)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, p := range probes {
		distinct[model.RegionKey(p)] = true
	}
	if s.NumRegions() != len(distinct) {
		t.Fatalf("harvested %d regions, want one per distinct region (%d)", s.NumRegions(), len(distinct))
	}
	if s.NumRegions() >= len(probes) {
		t.Fatalf("harvested %d regions from %d clustered probes; dedup failed", s.NumRegions(), len(probes))
	}
	for i, p := range probes {
		want := model.Predict(p)
		got := s.Predict(p)
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("probe %d: surrogate %v != model %v", i, got, want)
		}
	}
	fid, err := Verify(s, model, probes)
	if err != nil {
		t.Fatal(err)
	}
	if fid.LabelAgreement != 1 {
		t.Fatalf("label agreement %v on probed regions, want 1", fid.LabelAgreement)
	}
}

// TestHarvestExactMaxout covers the generic (non-PLNN) white-box path.
func TestHarvestExactMaxout(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	model := &openbox.Maxout{Net: nn.NewMaxout(rng, 3, 5, 8, 3)}
	probe := randVec(rng, 5)
	s, err := HarvestExact(model, []mat.Vec{probe, probe.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 1 {
		t.Fatalf("duplicate probes harvested %d regions, want 1", s.NumRegions())
	}
	want := model.Predict(probe)
	if got := s.Predict(probe); !got.EqualApprox(want, 1e-9) {
		t.Fatalf("surrogate %v != model %v", got, want)
	}
}

func TestHarvestExactErrors(t *testing.T) {
	model := plnnModel(34, 4, 6, 2)
	if _, err := HarvestExact(model, nil); err == nil {
		t.Fatal("no probes accepted")
	}
	if _, err := HarvestExact(model, []mat.Vec{{1, 2}}); err == nil {
		t.Fatal("wrong-dimension probe accepted")
	}
}
