package core

import (
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/mat"
)

func TestPoolInterpretsAllInstances(t *testing.T) {
	model := plnnModel(80, 5, 8, 3)
	pool := NewPool(Config{Seed: 81}, 4)
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	rng := rand.New(rand.NewSource(82))
	xs := make([]mat.Vec, 12)
	for i := range xs {
		xs[i] = randVec(rng, 5)
	}
	results := pool.InterpretMany(model, xs)
	if len(results) != len(xs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		truth, err := model.LocalAt(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		c := r.Interp.Class
		if dist := r.Interp.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-4 {
			t.Fatalf("instance %d: L1Dist %v", i, dist)
		}
	}
}

func TestPoolSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(Config{}, 0)
}

func TestPoolConcurrentModelAccessIsCounted(t *testing.T) {
	// The counter is concurrency-safe; totals must match the sum of the
	// reported per-instance query counts.
	model := plnnModel(83, 4, 6, 2)
	counter := api.NewCounter(model)
	pool := NewPool(Config{Seed: 84}, 3)
	rng := rand.New(rand.NewSource(85))
	xs := make([]mat.Vec, 9)
	for i := range xs {
		xs[i] = randVec(rng, 4)
	}
	results := pool.InterpretMany(counter, xs)
	var want int64
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want += int64(r.Interp.Queries)
	}
	want += int64(len(xs)) // the per-instance argmax Predict in InterpretMany
	if counter.Count() != want {
		t.Fatalf("counter %d != sum of reported queries %d", counter.Count(), want)
	}
}

func TestPoolEmptyInput(t *testing.T) {
	model := plnnModel(86, 3, 4, 2)
	pool := NewPool(Config{Seed: 87}, 2)
	if got := pool.InterpretMany(model, nil); len(got) != 0 {
		t.Fatalf("got %d results for empty input", len(got))
	}
}
