package plm

import (
	"errors"
	"testing"

	"repro/internal/mat"
)

// fakeModel counts per-instance and batch calls.
type fakeModel struct {
	perCall    int
	batchCall  int
	failBatch  bool
	shortBatch bool
}

func (f *fakeModel) Predict(x mat.Vec) mat.Vec {
	f.perCall++
	return mat.Vec{0.5, 0.5}
}
func (f *fakeModel) Dim() int     { return 1 }
func (f *fakeModel) Classes() int { return 2 }

type fakeBatchModel struct {
	fakeModel
}

func (f *fakeBatchModel) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	f.batchCall++
	if f.failBatch {
		return nil, errors.New("batch endpoint down")
	}
	n := len(xs)
	if f.shortBatch {
		n-- // malformed server: one answer missing
	}
	out := make([]mat.Vec, n)
	for i := range out {
		out[i] = mat.Vec{0.9, 0.1}
	}
	return out, nil
}

func TestPredictAllUsesBatchWhenAvailable(t *testing.T) {
	m := &fakeBatchModel{}
	xs := []mat.Vec{{1}, {2}, {3}}
	out := PredictAll(m, xs)
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if m.batchCall != 1 || m.perCall != 0 {
		t.Fatalf("batch=%d per=%d", m.batchCall, m.perCall)
	}
	if out[0][0] != 0.9 {
		t.Fatal("batch results not used")
	}
}

func TestPredictAllFallsBackOnBatchError(t *testing.T) {
	m := &fakeBatchModel{fakeModel: fakeModel{failBatch: true}}
	xs := []mat.Vec{{1}, {2}}
	out := PredictAll(m, xs)
	if len(out) != 2 || out[0][0] != 0.5 {
		t.Fatal("fallback results wrong")
	}
	if m.perCall != 2 {
		t.Fatalf("per-instance calls = %d", m.perCall)
	}
}

func TestPredictAllFallsBackOnShortBatch(t *testing.T) {
	m := &fakeBatchModel{fakeModel: fakeModel{shortBatch: true}}
	xs := []mat.Vec{{1}, {2}}
	out := PredictAll(m, xs)
	if len(out) != 2 || out[1][0] != 0.5 {
		t.Fatal("short batch should trigger fallback")
	}
}

func TestPredictAllPlainModel(t *testing.T) {
	m := &fakeModel{}
	xs := []mat.Vec{{1}, {2}, {3}, {4}}
	out := PredictAll(m, xs)
	if len(out) != 4 || m.perCall != 4 {
		t.Fatalf("plain path wrong: %d results, %d calls", len(out), m.perCall)
	}
}

func TestPredictAllEmpty(t *testing.T) {
	m := &fakeModel{}
	if out := PredictAll(m, nil); len(out) != 0 {
		t.Fatalf("empty input gave %d results", len(out))
	}
}
