#include "textflag.h"

// func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64)
//
// NEON port of the packed microkernel: pack interleaves four A rows
// (pack[4t+l] = A[i+l][t]); float64 NEON vectors are 2-lane, so each quad
// of packed values is the register pair {V8, V9} and each B row j owns the
// accumulator pair {V(2j), V(2j+1)} — V0..V7 carry the full 4x4 tile.
// Per k step: one 32-byte pack load, then per B row a replicating load of
// bj[t] and an UNFUSED multiply + add per lane pair. Every lane performs
// mul-then-add in ascending-t order — the same two roundings, in the same
// order, as the scalar path — so results are bit-identical to naive dot
// products.
//
// The Go assembler has no mnemonics for the unfused NEON FMUL/FADD vector
// forms (only VFMLA, which contracts to one rounding and would break the
// scalar/vector bit-identity contract), so those two instructions are
// WORD-encoded:
//
//	FMUL Vd.2D, Vn.2D, Vm.2D = 0x6E60DC00 | Rm<<16 | Rn<<5 | Rd
//	FADD Vd.2D, Vn.2D, Vm.2D = 0x4E60D400 | Rm<<16 | Rn<<5 | Rd
//
// Each WORD comment below is the decoded instruction (verified against
// `go tool objdump`, which disassembles them back to FMUL/FADD .D2).
TEXT ·dotPack4x4(SB), NOSPLIT, $0-56
	MOVD pack+0(FP), R0
	MOVD b0+8(FP), R1
	MOVD b1+16(FP), R2
	MOVD b2+24(FP), R3
	MOVD b3+32(FP), R4
	MOVD k+40(FP), R5
	MOVD out+48(FP), R6
	VEOR V0.B16, V0.B16, V0.B16 // acc b0, lanes 0-1
	VEOR V1.B16, V1.B16, V1.B16 // acc b0, lanes 2-3
	VEOR V2.B16, V2.B16, V2.B16 // acc b1, lanes 0-1
	VEOR V3.B16, V3.B16, V3.B16 // acc b1, lanes 2-3
	VEOR V4.B16, V4.B16, V4.B16 // acc b2, lanes 0-1
	VEOR V5.B16, V5.B16, V5.B16 // acc b2, lanes 2-3
	VEOR V6.B16, V6.B16, V6.B16 // acc b3, lanes 0-1
	VEOR V7.B16, V7.B16, V7.B16 // acc b3, lanes 2-3
	CBZ  R5, done
loop:
	VLD1.P  32(R0), [V8.D2, V9.D2] // [A[i][t] A[i+1][t]], [A[i+2][t] A[i+3][t]]
	VLD1R.P 8(R1), [V10.D2]        // broadcast b0[t]
	WORD $0x6E6ADD0B               // FMUL V11.2D, V8.2D, V10.2D
	WORD $0x4E6BD400               // FADD V0.2D, V0.2D, V11.2D
	WORD $0x6E6ADD2C               // FMUL V12.2D, V9.2D, V10.2D
	WORD $0x4E6CD421               // FADD V1.2D, V1.2D, V12.2D
	VLD1R.P 8(R2), [V10.D2]        // broadcast b1[t]
	WORD $0x6E6ADD0B               // FMUL V11.2D, V8.2D, V10.2D
	WORD $0x4E6BD442               // FADD V2.2D, V2.2D, V11.2D
	WORD $0x6E6ADD2C               // FMUL V12.2D, V9.2D, V10.2D
	WORD $0x4E6CD463               // FADD V3.2D, V3.2D, V12.2D
	VLD1R.P 8(R3), [V10.D2]        // broadcast b2[t]
	WORD $0x6E6ADD0B               // FMUL V11.2D, V8.2D, V10.2D
	WORD $0x4E6BD484               // FADD V4.2D, V4.2D, V11.2D
	WORD $0x6E6ADD2C               // FMUL V12.2D, V9.2D, V10.2D
	WORD $0x4E6CD4A5               // FADD V5.2D, V5.2D, V12.2D
	VLD1R.P 8(R4), [V10.D2]        // broadcast b3[t]
	WORD $0x6E6ADD0B               // FMUL V11.2D, V8.2D, V10.2D
	WORD $0x4E6BD4C6               // FADD V6.2D, V6.2D, V11.2D
	WORD $0x6E6ADD2C               // FMUL V12.2D, V9.2D, V10.2D
	WORD $0x4E6CD4E7               // FADD V7.2D, V7.2D, V12.2D
	SUBS $1, R5, R5
	BNE  loop
done:
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R6) // out[0..15]: j=0,1 tiles
	VST1   [V4.D2, V5.D2, V6.D2, V7.D2], (R6)   // out[16..31]: j=2,3 tiles
	RET
