// Fixtures for the atomicfield analyzer: a field touched by sync/atomic
// anywhere must be touched by sync/atomic everywhere.
package a

import "sync/atomic"

type counters struct {
	hits   int64 // accessed atomically AND plainly: every plain site flags
	misses int64 // consistently atomic: clean
	config int64 // never atomic: plain access is fine
}

func (c *counters) recordHit()  { atomic.AddInt64(&c.hits, 1) }
func (c *counters) recordMiss() { atomic.AddInt64(&c.misses, 1) }

func (c *counters) snapshotRacy() int64 {
	return c.hits // want "field hits is accessed with sync/atomic elsewhere"
}

func (c *counters) resetRacy() {
	c.hits = 0 // want "field hits is accessed with sync/atomic elsewhere"
}

func (c *counters) snapshotSafe() int64 {
	return atomic.LoadInt64(&c.misses)
}

func (c *counters) tune(v int64) {
	c.config = v
}

func newCounters(seed int64) *counters {
	c := &counters{}
	// Pre-publication setup: no concurrent atomic writer can exist yet.
	c.hits = seed //plmvet:allow(atomicfield) single-goroutine init before the struct escapes
	return c
}
