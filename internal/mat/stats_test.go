package mat

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEqual(s.Median, 2.5, 1e-12) {
		t.Fatalf("Median = %v", s.Median)
	}
	if !almostEqual(s.StdDev, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.AbsMaxElem != 4 {
		t.Fatalf("AbsMaxElem = %v", s.AbsMaxElem)
	}
}

func TestSummarizeDropsNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 2 || s.Mean != 2 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summary of empty = %+v", s)
	}
	allNaN := Summarize([]float64{math.NaN()})
	if allNaN.N != 0 {
		t.Fatalf("Summary of all-NaN = %+v", allNaN)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {0.25, 7.5}, {-1, 0}, {2, 30},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	single := []float64{7}
	if Quantile(single, 0.3) != 7 {
		t.Fatal("single-element quantile")
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 5}
	h := Histogram(xs, 0, 1, 2)
	// -5 clamps into bin 0; 5 and 0.9 and 0.6 into bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeanVec(t *testing.T) {
	got := MeanVec([]Vec{{1, 2}, {3, 4}})
	if !got.EqualApprox(Vec{2, 3}, 1e-15) {
		t.Fatalf("MeanVec = %v", got)
	}
}

func TestMeanVecPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MeanVec(nil) },
		func() { MeanVec([]Vec{{1}, {1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
