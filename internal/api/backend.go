package api

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

// Backend is one prediction worker behind the shard router. The paper's
// OpenAPI setting never assumes the model runs in-process — only that
// something answers probability queries — so the router speaks to an
// abstract worker: a local model replica, or a remote plmserve instance
// reached over HTTP. Unlike plm.Model, every call returns an error: a
// backend is allowed to be down, and the router's job is to notice and
// route around it rather than corrupt a batch.
//
// Implementations must be safe for concurrent use; the shard dispatches
// chunks to one backend from at most one goroutine at a time, but single
// predictions and /stats reads interleave freely.
type Backend interface {
	// Predict answers one probe.
	Predict(x mat.Vec) (mat.Vec, error)
	// PredictBatch answers a batch of probes, one output per input.
	PredictBatch(xs []mat.Vec) ([]mat.Vec, error)
	// Stats describes the backend: kind, name and model shape. The shape is
	// what NewShardBackends validates replica interchangeability against.
	Stats() BackendStats
	// Healthy reports whether the backend can currently answer. Local
	// backends are always healthy; remote ones ping their server. The shard
	// calls this only on quarantine-recovery probes, never on the hot path.
	Healthy() bool
}

// BackendStats identifies a backend: its kind ("local" or "remote"), a
// human-readable name, and the model shape it serves.
type BackendStats struct {
	Kind    string
	Name    string
	Dim     int
	Classes int
}

// BackendStatus is the live per-backend view /stats reports: identity plus
// the router's inflight, retry and failure counters and the health state.
type BackendStatus struct {
	Kind string `json:"kind"` // "local" or "remote"
	Name string `json:"name"`
	// Queries counts probes this backend answered successfully.
	Queries int64 `json:"queries"`
	// Inflight counts probes currently outstanding on this backend.
	Inflight int64 `json:"inflight"`
	// Retries counts chunks re-dispatched to another backend after this one
	// failed them.
	Retries int64 `json:"retries"`
	// Failures counts calls (chunk, single or recovery probe) that errored.
	Failures int64 `json:"failures"`
	// State is "ok" for a serving backend and "unreachable" while the
	// backend is quarantined after failures. It reflects the router's
	// bookkeeping, not a live probe — /stats stays cheap.
	State string `json:"state"`
	// Wire is the backend's client-side codec traffic (bytes and the
	// binary/JSON request split) when the backend is remote; local
	// backends have no wire hop and omit it.
	Wire *wire.Counts `json:"wire,omitempty"`
}

// wireCounter is the optional wire-traffic surface a backend may expose:
// remote backends forward their HTTP client's counters for the /stats
// reach-through.
type wireCounter interface {
	WireCounts() wire.Counts
}

// localBackend adapts an in-process plm.Model to the Backend interface —
// today's replicas, unchanged except for the explicit error surface.
type localBackend struct {
	model plm.Model
	name  string
}

// NewLocalBackend wraps an in-process model as a shard backend.
func NewLocalBackend(model plm.Model, name string) Backend {
	return &localBackend{model: model, name: name}
}

func (b *localBackend) Predict(x mat.Vec) (mat.Vec, error) {
	return b.model.Predict(x), nil
}

func (b *localBackend) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	return predictAllErr(b.model, xs)
}

func (b *localBackend) Stats() BackendStats {
	return BackendStats{Kind: "local", Name: b.name, Dim: b.model.Dim(), Classes: b.model.Classes()}
}

func (b *localBackend) Healthy() bool { return true }

// remoteBackend adapts an api.Client to the Backend interface: a shard
// replica that is itself another plmserve instance, reached over HTTP —
// the topology `plmserve -backend host:port` wires up.
type remoteBackend struct {
	client *Client
}

// NewRemoteBackend wraps a dialed client as a shard backend.
func NewRemoteBackend(client *Client) Backend {
	return &remoteBackend{client: client}
}

func (b *remoteBackend) Predict(x mat.Vec) (mat.Vec, error) {
	return b.client.PredictErr(x)
}

func (b *remoteBackend) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	return b.client.PredictBatch(xs)
}

func (b *remoteBackend) Stats() BackendStats {
	return BackendStats{
		Kind:    "remote",
		Name:    b.client.BaseURL(),
		Dim:     b.client.Dim(),
		Classes: b.client.Classes(),
	}
}

// Healthy pings the remote's /meta endpoint with a short deadline. Used by
// the shard's quarantine-recovery probe.
func (b *remoteBackend) Healthy() bool { return b.client.Ping() == nil }

// WireCounts forwards the dialed client's wire counters — the /stats
// per-backend reach-through.
func (b *remoteBackend) WireCounts() wire.Counts { return b.client.WireCounts() }

// LocalBackends wraps each model as a local backend, named name-0, name-1…
func LocalBackends(models []plm.Model, name string) []Backend {
	out := make([]Backend, len(models))
	for i, m := range models {
		out[i] = NewLocalBackend(m, fmt.Sprintf("%s-%d", name, i))
	}
	return out
}
