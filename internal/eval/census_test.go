package eval

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func TestRegionCensusMultiRegionNetwork(t *testing.T) {
	model := plnnModel(1, 4, 10, 3)
	rng := rand.New(rand.NewSource(2))
	anchors := []mat.Vec{randVec(rng, 4), randVec(rng, 4)}
	c, err := RegionCensus(model, anchors, 60, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Probes != 60 {
		t.Fatalf("Probes = %d", c.Probes)
	}
	if c.DistinctRegions < 2 {
		t.Fatalf("a 10-unit ReLU net should expose several regions, got %d", c.DistinctRegions)
	}
	if c.LargestShare <= 0 || c.LargestShare > 1 {
		t.Fatalf("LargestShare = %v", c.LargestShare)
	}
	if c.MinEdge < 0 || c.MedianEdge < c.MinEdge || c.MaxEdge < c.MedianEdge {
		t.Fatalf("edge ordering broken: %v %v %v", c.MinEdge, c.MedianEdge, c.MaxEdge)
	}
}

func TestRegionCensusSingleRegionModel(t *testing.T) {
	// A pure linear model has exactly one region: census must report it and
	// the edge search should hit its upper bound region size.
	rng := rand.New(rand.NewSource(3))
	w := mat.FromRows(mat.Vec{1, 0}, mat.Vec{0, 1})
	net := nn.FromLayers(nn.Layer{W: w, B: mat.Vec{0, 0}})
	model := &openbox.PLNN{Net: net}
	c, err := RegionCensus(model, []mat.Vec{{0, 0}}, 25, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.DistinctRegions != 1 {
		t.Fatalf("linear model census found %d regions", c.DistinctRegions)
	}
	if c.LargestShare != 1 {
		t.Fatalf("LargestShare = %v", c.LargestShare)
	}
}

func TestRegionCensusErrors(t *testing.T) {
	model := plnnModel(4, 3, 4, 2)
	rng := rand.New(rand.NewSource(5))
	if _, err := RegionCensus(model, nil, 10, 10, rng); err == nil {
		t.Fatal("empty anchors accepted")
	}
}

func TestSweepRegionsPopulatesStoreAndReportsProgress(t *testing.T) {
	net := nn.New(rand.New(rand.NewSource(10)), 4, 10, 3)
	model := openbox.NewCachedPLNNOpts(net, openbox.StoreOptions{Capacity: 1024})
	rng := rand.New(rand.NewSource(11))
	anchors := []mat.Vec{randVec(rng, 4), randVec(rng, 4)}

	var ticks []int
	rep, err := SweepRegions(model, anchors, 300, rng, func(done int) { ticks = append(ticks, done) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 300 {
		t.Fatalf("Probes = %d, want 300", rep.Probes)
	}
	if rep.DistinctRegions < 2 {
		t.Fatalf("a 10-unit ReLU net should expose several regions, got %d", rep.DistinctRegions)
	}
	// Progress is chunked (256 probes per batch), cumulative, and ends at n.
	if len(ticks) != 2 || ticks[0] != 256 || ticks[1] != 300 {
		t.Fatalf("progress ticks = %v, want [256 300]", ticks)
	}
	// The sweep's point is its side effect: every distinct region it touched
	// is now in the model's region store.
	if st := model.RegionStoreStats(); st.Size != rep.DistinctRegions {
		t.Fatalf("store holds %d regions, sweep reported %d distinct", st.Size, rep.DistinctRegions)
	}
}

func TestSweepRegionsDefaultBudgetAndFallback(t *testing.T) {
	// A model without the batched LocalAtAll surface sweeps probe-by-probe
	// through LocalAt; the default budget is 64 probes per anchor.
	net := nn.New(rand.New(rand.NewSource(12)), 4, 8, 3)
	model := localOnly{openbox.NewCachedPLNNOpts(net, openbox.StoreOptions{Capacity: 1024})}
	rng := rand.New(rand.NewSource(13))
	anchors := []mat.Vec{randVec(rng, 4), randVec(rng, 4)}
	rep, err := SweepRegions(model, anchors, 0, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 64*len(anchors) {
		t.Fatalf("default budget swept %d probes, want %d", rep.Probes, 64*len(anchors))
	}
	if rep.DistinctRegions < 1 {
		t.Fatal("fallback sweep found no regions")
	}
	if _, err := SweepRegions(model, nil, 10, rng, nil); err == nil {
		t.Fatal("empty anchors accepted")
	}
}

// localOnly hides LocalAtAll so SweepRegions exercises the per-probe path.
type localOnly struct{ plm.RegionModel }

func TestAblateSolversAgreeOnExactness(t *testing.T) {
	model := plnnModel(6, 5, 8, 3)
	rng := rand.New(rand.NewSource(7))
	xs := []mat.Vec{randVec(rng, 5), randVec(rng, 5), randVec(rng, 5)}
	rows, err := AblateSolvers(model, xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	solvers := map[core.Solver]bool{}
	for _, r := range rows {
		solvers[r.Solver] = true
		if r.Failures > 0 {
			t.Fatalf("%v failed on %d instances", r.Solver, r.Failures)
		}
		if r.MeanL1 > 1e-4 {
			t.Fatalf("%v mean L1 = %v", r.Solver, r.MeanL1)
		}
		if r.MeanMillis < 0 {
			t.Fatalf("%v negative timing", r.Solver)
		}
	}
	if len(solvers) != 3 {
		t.Fatal("solvers not distinct")
	}
	if _, err := AblateSolvers(model, nil, 9); err == nil {
		t.Fatal("empty instances accepted")
	}
}
