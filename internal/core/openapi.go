// Package core implements OpenAPI, the paper's contribution: exact and
// consistent interpretation of a piecewise linear model that is reachable
// only through a prediction API.
//
// For an instance x0 and class pair (c, c'), the locally linear classifier
// around x0 satisfies the log-odds identity
//
//	D_{c,c'}^T x + B_{c,c'} = ln(y_c / y_{c'})         (paper Eq. 2)
//
// for every x in the region. OpenAPI samples d+k points in a hypercube
// around x0 (k = Config.ExtraChecks; the paper's Ω_{d+2} is k = 1), solves
// the square system built from x0 and the first d samples, and accepts the
// solution only when every held-out equation is consistent — which, by the
// paper's Theorem 2, happens exactly when all points share x0's region
// (with probability 1). On inconsistency — or on a numerically singular
// draw, a probability-0 event under Lemma 1 — it divides the hypercube edge
// by Config.ShrinkFactor and resamples (Algorithm 1).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Solver selects how Ω_{d+2} is solved and checked.
type Solver int

const (
	// SolverSharedLU (default) factors the square coefficient matrix of the
	// first d+1 equations once per sample set and reuses it for every class
	// pair, checking the (d+2)-th equation's residual. This turns the
	// paper's O(C·(d+2)^3) inner loop into O((d+2)^3 + C·(d+2)^2).
	SolverSharedLU Solver = iota
	// SolverSharedQR factors the full (d+2)x(d+1) system once per sample
	// set with Householder QR and reads consistency off the least-squares
	// residual. Same asymptotics as SolverSharedLU, different numerics.
	SolverSharedQR
	// SolverPerPairLU refactors the coefficient matrix for every class pair
	// — the paper-literal O(C·(d+2)^3) formulation, kept for the ablation
	// benchmarks.
	SolverPerPairLU
)

// String returns the solver's name.
func (s Solver) String() string {
	switch s {
	case SolverSharedLU:
		return "shared-lu"
	case SolverSharedQR:
		return "shared-qr"
	case SolverPerPairLU:
		return "per-pair-lu"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// Config tunes Algorithm 1. The zero value gives the paper's settings.
type Config struct {
	// MaxIterations is the paper's m: the cap on resample-and-halve rounds.
	// The paper uses 100 and observes convergence within 20. Default 100.
	MaxIterations int
	// InitialEdge is the starting hypercube edge length r. Default 1.0.
	InitialEdge float64
	// Tolerance bounds the accepted residual of each consistency equation,
	// relative to the magnitude of the log-odds involved. Default 1e-9.
	// The paper works in exact arithmetic where any nonzero residual means
	// inconsistency; in float64 the tolerance separates rounding error
	// (accept) from region mixing (reject). 1e-9 sits about three orders
	// above observed round-off at image dimensionalities while rejecting
	// mixes reliably; see DESIGN.md §5.
	Tolerance float64
	// ExtraChecks is the number of held-out verification equations. The
	// paper uses one (Ω has d+2 rows); every additional check multiplies
	// the false-accept probability of a mixed sample set by another
	// near-zero factor for one extra query per iteration. Default 2.
	ExtraChecks int
	// ShrinkFactor divides the hypercube edge after an inconsistent round.
	// The paper halves (2.0, the default); larger factors reach small
	// regions in fewer rounds at the cost of overshooting, smaller factors
	// shrink gently. Must exceed 1.
	ShrinkFactor float64
	// Solver selects the linear-algebra strategy. Default SolverSharedLU.
	Solver Solver
	// Seed seeds the sampler when RNG is nil. Ignored otherwise.
	Seed int64
	// RNG, when non-nil, supplies all randomness.
	RNG *rand.Rand
}

func (c *Config) setDefaults() {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.InitialEdge <= 0 {
		c.InitialEdge = 1.0
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-9
	}
	if c.ExtraChecks <= 0 {
		c.ExtraChecks = 2
	}
	if c.ShrinkFactor <= 1 {
		c.ShrinkFactor = 2
	}
	if c.RNG == nil {
		c.RNG = rand.New(rand.NewSource(c.Seed))
	}
}

// ErrNoConvergence is returned when MaxIterations rounds never produced a
// consistent system — per the paper this has probability 0 unless x0 sits
// exactly on a region boundary.
var ErrNoConvergence = errors.New("core: OpenAPI did not converge within the iteration budget")

// OpenAPI is the interpreter. Create it with New; the zero value works too
// (defaults are applied on first use).
type OpenAPI struct {
	cfg Config
}

// New returns an OpenAPI interpreter with the given configuration.
func New(cfg Config) *OpenAPI {
	cfg.setDefaults()
	return &OpenAPI{cfg: cfg}
}

var _ plm.Interpreter = (*OpenAPI)(nil)

// Name implements plm.Interpreter.
func (o *OpenAPI) Name() string { return "OpenAPI" }

// Interpret recovers the exact decision features D_c of model at x0 for
// class c, using only Predict calls.
func (o *OpenAPI) Interpret(model plm.Model, x0 mat.Vec, c int) (*plm.Interpretation, error) {
	o.cfg.setDefaults()
	if err := checkInstance(model, x0, c); err != nil {
		return nil, err
	}
	// The anchor probe goes through the batch path so it coalesces with
	// concurrent callers when the model aggregates queries (api.Aggregator);
	// against a plain model this is the same single Predict as before.
	y0 := plm.PredictAll(model, []mat.Vec{x0})[0]
	return o.interpret(model, x0, y0, c)
}

// InterpretWithPrediction is Interpret for callers that already hold the
// model's prediction at x0 — a pool that pre-queried the argmax of many
// instances in one batched round trip hands each worker its y0 here, so the
// anchor probe is never re-issued. The supplied prediction still counts as
// one query in the returned Interpretation, keeping the accounting identical
// to Interpret.
func (o *OpenAPI) InterpretWithPrediction(model plm.Model, x0, y0 mat.Vec, c int) (*plm.Interpretation, error) {
	o.cfg.setDefaults()
	if err := checkInstance(model, x0, c); err != nil {
		return nil, err
	}
	if len(y0) != model.Classes() {
		return nil, fmt.Errorf("core: prediction length %d != model classes %d", len(y0), model.Classes())
	}
	return o.interpret(model, x0, y0, c)
}

func checkInstance(model plm.Model, x0 mat.Vec, c int) error {
	d := model.Dim()
	C := model.Classes()
	if len(x0) != d {
		return fmt.Errorf("core: instance length %d != model dim %d", len(x0), d)
	}
	if c < 0 || c >= C {
		return fmt.Errorf("core: class %d out of range [0,%d)", c, C)
	}
	if C < 2 {
		return fmt.Errorf("core: model has %d classes, need at least 2", C)
	}
	return nil
}

// interpret runs Algorithm 1 from a known anchor prediction y0. Each
// iteration issues its d+k sample-set probes as one batch (plm.PredictAll),
// so a batch-capable or aggregated model sees one round trip per iteration.
func (o *OpenAPI) interpret(model plm.Model, x0, y0 mat.Vec, c int) (*plm.Interpretation, error) {
	d := model.Dim()
	C := model.Classes()
	queries := 1 // the anchor probe, issued here or by the caller
	r := o.cfg.InitialEdge

	for iter := 1; iter <= o.cfg.MaxIterations; iter++ {
		cube := sample.NewHypercube(x0, r)
		pts := cube.SampleN(o.cfg.RNG, d+o.cfg.ExtraChecks)
		// One batch round trip when the API supports it, per-point probes
		// otherwise; either way each point costs one query.
		ys := plm.PredictAll(model, pts)
		queries += len(pts)

		pairs, ok := o.solveAll(x0, y0, pts, ys, c, C)
		if !ok {
			r /= o.cfg.ShrinkFactor
			continue
		}
		features := assembleDc(pairs, c, C, d)
		biases := make([]float64, C)
		diffs := make([]mat.Vec, C)
		for cp, pr := range pairs {
			if pr == nil {
				continue
			}
			diffs[cp] = pr.D
			biases[cp] = pr.B
		}
		return &plm.Interpretation{
			Class:      c,
			Features:   features,
			PairDiffs:  diffs,
			Biases:     biases,
			Samples:    pts,
			Queries:    queries,
			Iterations: iter,
			FinalEdge:  r,
			Exact:      true,
		}, nil
	}
	return nil, fmt.Errorf("%w (instance may lie on a region boundary)", ErrNoConvergence)
}

// pairSolution is one recovered core-parameter tuple.
type pairSolution struct {
	D mat.Vec
	B float64
}

// solveAll recovers (D_{c,c'}, B_{c,c'}) for every c' ≠ c from one sample
// set, or reports inconsistency. pts holds d + ExtraChecks points: x0 and
// the first d form the square system, the tail are held-out verification
// equations.
func (o *OpenAPI) solveAll(x0 mat.Vec, y0 mat.Vec, pts []mat.Vec, ys []mat.Vec, c, C int) ([]*pairSolution, bool) {
	d := len(x0)
	eqX := make([]mat.Vec, 0, len(pts)+1)
	eqX = append(eqX, x0)
	eqX = append(eqX, pts...)
	eqY := make([]mat.Vec, 0, len(ys)+1)
	eqY = append(eqY, y0)
	eqY = append(eqY, ys...)

	rhsFor := func(cp int) mat.Vec {
		rhs := make(mat.Vec, len(eqX))
		for i := range eqX {
			rhs[i] = plm.LogOdds(eqY[i], c, cp)
		}
		return rhs
	}
	extras := eqX[d+1:] // verification points

	switch o.cfg.Solver {
	case SolverSharedQR:
		full := designMatrix(eqX) // (d+1+k) x (d+1)
		qr, err := mat.FactorQR(full)
		if err != nil {
			return nil, false
		}
		out := make([]*pairSolution, C)
		for cp := 0; cp < C; cp++ {
			if cp == c {
				continue
			}
			rhs := rhsFor(cp)
			res, err := qr.ResidualNorm(rhs)
			if err != nil || res > o.cfg.Tolerance*(1+rhs.NormInf()) {
				return nil, false
			}
			beta, err := qr.SolveVec(rhs)
			if err != nil || mat.Vec(beta).HasNaN() {
				return nil, false
			}
			out[cp] = &pairSolution{D: beta[1:], B: beta[0]}
		}
		return out, true

	case SolverPerPairLU:
		square := designMatrix(eqX[:d+1])
		out := make([]*pairSolution, C)
		for cp := 0; cp < C; cp++ {
			if cp == c {
				continue
			}
			// Paper-literal: factor anew for every pair.
			lu, err := mat.Factor(square)
			if err != nil {
				return nil, false
			}
			sol, ok := o.solveAndCheck(lu, rhsFor(cp), extras)
			if !ok {
				return nil, false
			}
			out[cp] = sol
		}
		return out, true

	default: // SolverSharedLU
		square := designMatrix(eqX[:d+1])
		lu, err := mat.Factor(square)
		if err != nil {
			return nil, false
		}
		out := make([]*pairSolution, C)
		for cp := 0; cp < C; cp++ {
			if cp == c {
				continue
			}
			sol, ok := o.solveAndCheck(lu, rhsFor(cp), extras)
			if !ok {
				return nil, false
			}
			out[cp] = sol
		}
		return out, true
	}
}

// solveAndCheck solves the square system and verifies every held-out
// consistency equation: extras[i] must satisfy the solution with right-hand
// side rhs[n+i].
func (o *OpenAPI) solveAndCheck(lu *mat.LU, rhs mat.Vec, extras []mat.Vec) (*pairSolution, bool) {
	n := lu.N() // d+1
	beta, err := lu.SolveVec(rhs[:n])
	if err != nil || mat.Vec(beta).HasNaN() {
		return nil, false
	}
	dvec := mat.Vec(beta[1:])
	for i, extra := range extras {
		pred := beta[0] + dvec.Dot(extra)
		want := rhs[n+i]
		if math.Abs(pred-want) > o.cfg.Tolerance*(1+math.Abs(want)+rhs[:n].NormInf()) {
			return nil, false
		}
	}
	return &pairSolution{D: beta[1:], B: beta[0]}, true
}

// designMatrix stacks rows [1, x_i...] — the paper's coefficient matrix A.
func designMatrix(xs []mat.Vec) *mat.Dense {
	d := len(xs[0])
	m := mat.NewDense(len(xs), d+1)
	for i, x := range xs {
		row := m.RawRow(i)
		row[0] = 1
		copy(row[1:], x)
	}
	return m
}

// assembleDc averages the recovered pair differences into D_c (Eq. 1).
func assembleDc(pairs []*pairSolution, c, C, d int) mat.Vec {
	out := mat.NewVec(d)
	for cp, pr := range pairs {
		if cp == c || pr == nil {
			continue
		}
		out.AddInPlace(pr.D)
	}
	return out.ScaleInPlace(1 / float64(C-1))
}

// InterpretAll recovers D_c for every class from a single converged sample
// set by solving only C−1 systems against a reference class and differencing
// (W_c − W_{c'} = (W_c − W_ref) − (W_{c'} − W_ref)). It returns one
// Interpretation per class, all sharing the same query cost.
func (o *OpenAPI) InterpretAll(model plm.Model, x0 mat.Vec) ([]*plm.Interpretation, error) {
	o.cfg.setDefaults()
	d := model.Dim()
	C := model.Classes()
	if len(x0) != d {
		return nil, fmt.Errorf("core: instance length %d != model dim %d", len(x0), d)
	}
	if C < 2 {
		return nil, fmt.Errorf("core: model has %d classes, need at least 2", C)
	}
	// Reference class 0: recover β_c for pairs (c, 0), c = 1..C-1.
	ref, err := o.Interpret(model, x0, 0)
	if err != nil {
		return nil, err
	}
	// β_c relative to class 0 is -D_{0,c} (antisymmetry).
	rel := make([]mat.Vec, C) // rel[c] = W_c − W_0
	relB := make([]float64, C)
	rel[0] = mat.NewVec(d)
	for cp := 1; cp < C; cp++ {
		if ref.PairDiffs[cp] == nil {
			return nil, fmt.Errorf("core: missing pair solution for class %d", cp)
		}
		rel[cp] = ref.PairDiffs[cp].Scale(-1)
		relB[cp] = -ref.Biases[cp]
	}
	out := make([]*plm.Interpretation, C)
	for c := 0; c < C; c++ {
		diffs := make([]mat.Vec, C)
		biases := make([]float64, C)
		features := mat.NewVec(d)
		for cp := 0; cp < C; cp++ {
			if cp == c {
				continue
			}
			dcc := rel[c].Sub(rel[cp])
			diffs[cp] = dcc
			biases[cp] = relB[c] - relB[cp]
			features.AddInPlace(dcc)
		}
		features.ScaleInPlace(1 / float64(C-1))
		out[c] = &plm.Interpretation{
			Class:      c,
			Features:   features,
			PairDiffs:  diffs,
			Biases:     biases,
			Queries:    ref.Queries,
			Iterations: ref.Iterations,
			FinalEdge:  ref.FinalEdge,
			Exact:      true,
		}
	}
	return out, nil
}
