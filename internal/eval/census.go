package eval

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Census quantifies the locally-linear-region structure the paper's §II
// argument rests on (region counts grow exponentially with network width,
// citing Montúfar et al.): how many distinct regions a probe sample touches
// and how large the regions around data points are.
type Census struct {
	Probes          int
	DistinctRegions int
	// LargestShare is the fraction of probes landing in the most popular
	// region (1.0 = the sampler never left one region).
	LargestShare float64
	// MedianEdge is the median edge length of the largest same-region
	// hypercube found around each probe by bisection — an empirical proxy
	// for local region size, the quantity OpenAPI's adaptive shrinking has
	// to discover per instance.
	MedianEdge float64
	// MinEdge and MaxEdge bound the same measurement.
	MinEdge, MaxEdge float64
}

// RegionCensus probes the model at n points drawn around the given anchors
// (uniform in a unit hypercube centred on a random anchor each) and reports
// region statistics. maxBisect bounds the per-probe edge search.
func RegionCensus(model plm.RegionModel, anchors []mat.Vec, n, maxBisect int, rng *rand.Rand) (Census, error) {
	if len(anchors) == 0 {
		return Census{}, fmt.Errorf("eval: census needs at least one anchor")
	}
	if n <= 0 {
		n = 100
	}
	if maxBisect <= 0 {
		maxBisect = 20
	}
	counts := make(map[string]int, n)
	edges := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		anchor := anchors[rng.Intn(len(anchors))]
		probe := sample.NewHypercube(anchor, 1.0).Sample(rng)
		counts[model.RegionKey(probe)]++
		edges = append(edges, sameRegionEdge(model, probe, rng, maxBisect))
	}
	var largest int
	for _, c := range counts {
		if c > largest {
			largest = c
		}
	}
	s := mat.Summarize(edges)
	return Census{
		Probes:          n,
		DistinctRegions: len(counts),
		LargestShare:    float64(largest) / float64(n),
		MedianEdge:      s.Median,
		MinEdge:         s.Min,
		MaxEdge:         s.Max,
	}, nil
}

// sameRegionEdge bisects for the largest hypercube edge around x whose
// sampled corners stay in x's region (8 probe corners per candidate edge).
func sameRegionEdge(model plm.RegionModel, x mat.Vec, rng *rand.Rand, maxBisect int) float64 {
	key := model.RegionKey(x)
	inRegion := func(edge float64) bool {
		cube := sample.NewHypercube(x, edge)
		for i := 0; i < 8; i++ {
			if model.RegionKey(cube.Sample(rng)) != key {
				return false
			}
		}
		return true
	}
	// Exponential search down from 1.0 until inside, then refine upward.
	edge := 1.0
	steps := 0
	for !inRegion(edge) && steps < maxBisect {
		edge /= 2
		steps++
	}
	if steps >= maxBisect {
		return edge
	}
	lo, hi := edge, edge*2
	for i := steps; i < maxBisect; i++ {
		mid := (lo + hi) / 2
		if inRegion(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SolverAblation compares OpenAPI's three linear-algebra strategies on the
// same instances: identical answers, different cost. It backs the A1
// ablation in DESIGN.md.
type SolverAblation struct {
	Solver     core.Solver
	MeanL1     float64 // distance to ground truth, should match across solvers
	MeanMillis float64 // wall time per instance
	Failures   int
}

// AblateSolvers runs every solver over the instances and reports exactness
// and timing.
func AblateSolvers(model plm.RegionModel, xs []mat.Vec, seed int64) ([]SolverAblation, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("eval: solver ablation needs instances")
	}
	solvers := []core.Solver{core.SolverSharedLU, core.SolverSharedQR, core.SolverPerPairLU}
	out := make([]SolverAblation, 0, len(solvers))
	for _, s := range solvers {
		o := core.New(core.Config{Seed: seed, Solver: s})
		var l1s []float64
		failures := 0
		start := time.Now()
		for _, x := range xs {
			c := model.Predict(x).ArgMax()
			interp, err := o.Interpret(model, x, c)
			if err != nil {
				failures++
				continue
			}
			l1, err := L1Dist(model, x, interp)
			if err != nil {
				return nil, err
			}
			l1s = append(l1s, l1)
		}
		elapsed := time.Since(start)
		out = append(out, SolverAblation{
			Solver:     s,
			MeanL1:     mat.Summarize(l1s).Mean,
			MeanMillis: float64(elapsed.Milliseconds()) / float64(len(xs)),
			Failures:   failures,
		})
	}
	return out, nil
}
