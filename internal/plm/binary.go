package plm

import (
	"fmt"

	"repro/internal/mat"
)

// ScoreFunc is the narrowest realistic API surface: a single probability
// P(class 1 | x), the way many production binary classifiers are served.
type ScoreFunc func(x mat.Vec) float64

// Binary adapts a single-score API into the two-class Model the
// interpreters consume: Predict(x) = [1-s(x), s(x)]. The paper treats
// sigmoid as the two-class special case of softmax (§III); this adapter is
// the practical bridge, so OpenAPI runs unchanged against score-only APIs.
type Binary struct {
	score ScoreFunc
	dim   int
}

// NewBinary wraps score as a 2-class model over d-dimensional inputs.
// It panics if score is nil or d is not positive.
func NewBinary(score ScoreFunc, d int) *Binary {
	if score == nil {
		panic("plm: NewBinary needs a score function")
	}
	if d <= 0 {
		panic(fmt.Sprintf("plm: NewBinary dimension %d", d))
	}
	return &Binary{score: score, dim: d}
}

var _ Model = (*Binary)(nil)

// Predict returns the two-class distribution [1-s, s], clamping scores to
// [0, 1] so a slightly out-of-range upstream API cannot produce negative
// probabilities.
func (b *Binary) Predict(x mat.Vec) mat.Vec {
	s := b.score(x)
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return mat.Vec{1 - s, s}
}

// Dim returns the input dimensionality.
func (b *Binary) Dim() int { return b.dim }

// Classes returns 2.
func (b *Binary) Classes() int { return 2 }
