package jobs

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/plm"
	"repro/internal/wire"
)

// streamServer mounts a runner on a prediction server and returns both plus
// a dialed (binary-negotiated) client.
func streamServer(t *testing.T, model plm.Model, white plm.RegionModel, streamRows int) (*Runner, *api.Server, *api.Client) {
	t.Helper()
	r, err := NewRunner(model, white, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.StreamRows = streamRows
	srv := api.NewServer(model, "stream-test")
	r.Mount(srv)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r, srv, c
}

func rowBitsEqual(t *testing.T, got, want [][]float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d cols, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("%s row %d col %d not bit-identical", what, i, j)
			}
		}
	}
}

func TestJSONPaginationWindow(t *testing.T) {
	model := jobModel(21)
	r, _, c := streamServer(t, model, model, 0)
	xs := jobProbes(rand.New(rand.NewSource(22)), 10, model.Dim())
	id, err := r.Submit(OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	full := waitDone(t, r, id)

	get := func(url string) View {
		t.Helper()
		resp, err := c.HTTPClient().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s answered %s", url, resp.Status)
		}
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	// A windowed fetch answers just the slice, stamped with the window.
	page := get(c.BaseURL() + "/jobs/" + id + "?offset=3&limit=4")
	if page.Total != 10 || page.Offset != 3 || len(page.Probs) != 4 {
		t.Fatalf("page = total %d offset %d rows %d, want 10/3/4", page.Total, page.Offset, len(page.Probs))
	}
	rowBitsEqual(t, page.Probs, full.Probs[3:7], "page")

	// A window past the end is empty, not an error.
	if past := get(c.BaseURL() + "/jobs/" + id + "?offset=50"); past.Total != 10 || len(past.Probs) != 0 {
		t.Fatalf("past-the-end page = total %d rows %d", past.Total, len(past.Probs))
	}

	// The legacy parameterless fetch still ships everything, unstamped —
	// exactly what a pre-pagination client expects.
	legacy := get(c.BaseURL() + "/jobs/" + id)
	if legacy.Total != 0 || legacy.Offset != 0 {
		t.Fatalf("legacy fetch grew window fields: total %d offset %d", legacy.Total, legacy.Offset)
	}
	rowBitsEqual(t, legacy.Probs, full.Probs, "legacy fetch")

	// Malformed windows answer 400.
	for _, q := range []string{"?offset=-1", "?limit=-2", "?offset=abc"} {
		resp, err := c.HTTPClient().Get(c.BaseURL() + "/jobs/" + id + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("window %s answered %s, want 400", q, resp.Status)
		}
	}
}

func TestBinarySubmitAndStreamProbs(t *testing.T) {
	model := jobModel(23)
	// StreamRows 4 forces multi-frame streams out of a 10-row result.
	r, srv, c := streamServer(t, model, model, 4)
	if c.CodecName() != wire.NameBinary {
		t.Fatalf("client negotiated %s", c.CodecName())
	}
	xs := jobProbes(rand.New(rand.NewSource(24)), 10, model.Dim())
	ack, err := Submit(c, OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" || ack.Op != OpPredict || ack.N != 10 {
		t.Fatalf("ack = %+v", ack)
	}
	// The submission itself rode the frame codec.
	if counts := srv.WireCounts(); counts.BinaryRequests == 0 {
		t.Fatalf("server counted no binary requests after a binary submit: %+v", counts)
	}
	full := waitDone(t, r, ack.ID)

	// Poll ships metadata without dragging the results over.
	polled, err := Poll(c, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.Status != StatusDone || len(polled.Probs) != 0 || polled.Total != 10 {
		t.Fatalf("poll = status %s rows %d total %d", polled.Status, len(polled.Probs), polled.Total)
	}

	// Full stream: chunk offsets follow StreamRows, rows arrive bit-identical.
	var got [][]float64
	var offsets []int
	err = StreamProbs(c, ack.ID, 0, -1, func(offset int, probs [][]float64) error {
		offsets = append(offsets, offset)
		got = append(got, probs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 3 || offsets[0] != 0 || offsets[1] != 4 || offsets[2] != 8 {
		t.Fatalf("chunk offsets = %v, want [0 4 8]", offsets)
	}
	rowBitsEqual(t, got, full.Probs, "streamed probs")

	// A windowed stream covers exactly the requested slice.
	got, offsets = nil, nil
	err = StreamProbs(c, ack.ID, 3, 5, func(offset int, probs [][]float64) error {
		offsets = append(offsets, offset)
		got = append(got, probs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if offsets[0] != 3 {
		t.Fatalf("windowed stream starts at %d, want 3", offsets[0])
	}
	rowBitsEqual(t, got, full.Probs[3:8], "windowed stream")
}

func TestBinaryStreamRegionsBitIdentical(t *testing.T) {
	model := jobModel(25)
	r, _, c := streamServer(t, model, model, 0)
	xs := jobProbes(rand.New(rand.NewSource(26)), 20, model.Dim())
	ack, err := Submit(c, OpInterpret, xs)
	if err != nil {
		t.Fatal(err)
	}
	full := waitDone(t, r, ack.ID)
	if len(full.Regions) == 0 {
		t.Fatal("harvest found no regions")
	}

	var got []Region
	err = StreamRegions(c, ack.ID, 0, -1, func(offset int, regions []Region) error {
		if offset != len(got) {
			t.Fatalf("region chunk at offset %d, expected %d", offset, len(got))
		}
		got = append(got, regions...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full.Regions) {
		t.Fatalf("streamed %d regions, want %d", len(got), len(full.Regions))
	}
	for i, want := range full.Regions {
		rowBitsEqual(t, [][]float64{got[i].Probe}, [][]float64{want.Probe}, "probe")
		rowBitsEqual(t, got[i].RelW, want.RelW, "rel_w")
		rowBitsEqual(t, [][]float64{got[i].RelB}, [][]float64{want.RelB}, "rel_b")
	}
}

func TestStreamRejectsWrongOpAndUnfinishedJobs(t *testing.T) {
	inner := jobModel(27)
	stalled := &stallModel{Model: inner, gate: make(chan struct{})}
	r, err := NewRunner(stalled, inner, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(inner, "stall")
	r.Mount(srv)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := api.Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	xs := jobProbes(rand.New(rand.NewSource(28)), 2, inner.Dim())
	ack, err := Submit(c, OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	// Still running behind the gate: a result stream must refuse, not hang.
	if err := StreamProbs(c, ack.ID, 0, -1, func(int, [][]float64) error { return nil }); err == nil {
		t.Fatal("streamed results of an unfinished job")
	} else if !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("unfinished stream error = %v", err)
	}
	close(stalled.gate)
	waitDone(t, r, ack.ID)

	// Asking for the wrong result kind names the mismatch.
	err = StreamRegions(c, ack.ID, 0, -1, func(int, []Region) error { return nil })
	if err == nil || !strings.Contains(err.Error(), OpPredict) {
		t.Fatalf("wrong-op stream error = %v", err)
	}

	// Unknown job ids surface the 404.
	if err := StreamProbs(c, "job-9999", 0, -1, func(int, [][]float64) error { return nil }); err == nil {
		t.Fatal("streamed an unknown job")
	}
}

func TestJSONClientPagesThroughLargeResult(t *testing.T) {
	// 5000 rows forces the JSON fallback through more than one page
	// (jsonPageRows = 4096) — the loop must stitch them back seamlessly.
	model := jobModel(29)
	r, _, c := streamServer(t, model, model, 0)
	if err := c.SetCodec(wire.NameJSON); err != nil {
		t.Fatal(err)
	}
	xs := jobProbes(rand.New(rand.NewSource(30)), 5000, model.Dim())
	ack, err := Submit(c, OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	full := waitDone(t, r, ack.ID)

	var got [][]float64
	var pages int
	err = StreamProbs(c, ack.ID, 0, -1, func(offset int, probs [][]float64) error {
		if offset != len(got) {
			t.Fatalf("page at offset %d, expected %d", offset, len(got))
		}
		pages++
		got = append(got, probs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pages != 2 {
		t.Fatalf("result crossed %d pages, want 2", pages)
	}
	rowBitsEqual(t, got, full.Probs, "paged probs")

	// A bounded window stays one short page.
	got = nil
	err = StreamProbs(c, ack.ID, 4990, 5, func(offset int, probs [][]float64) error {
		if offset != 4990 {
			t.Fatalf("window page at offset %d", offset)
		}
		got = append(got, probs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rowBitsEqual(t, got, full.Probs[4990:4995], "windowed page")
}
