// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic dataset stand-ins: Table I and Figures
// 2 through 7, for both datasets and both target models. Results are written
// as markdown, CSV and PNG files under -out.
//
// Usage:
//
//	experiments -exp all -scale small -out results
//	experiments -exp table1,fig5 -scale medium -out results -seed 7
//	experiments -scale paper -out results     # the full-size run (slow)
package main

import (
	"flag"
	"fmt"
	"image"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/heatmap"
	"repro/internal/interpret/gradient"
	"repro/internal/interpret/lime"
	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/openbox"
	"repro/internal/plm"
)

type scaleSpec struct {
	size, perClass int
	hidden         []int
	nnEpochs       int
	instances      int // interpreted instances per (dataset, model)
	maxFlips       int
	fig2PerClass   int
	remoteReps     int // remote-quality repetitions over one persistent server
}

var scales = map[string]scaleSpec{
	"small":  {size: 10, perClass: 60, hidden: []int{32, 16}, nnEpochs: 20, instances: 15, maxFlips: 20, fig2PerClass: 5, remoteReps: 2},
	"medium": {size: 16, perClass: 200, hidden: []int{64, 32}, nnEpochs: 15, instances: 50, maxFlips: 60, fig2PerClass: 10, remoteReps: 2},
	"paper":  {size: 28, perClass: 7000, hidden: []int{256, 128, 100}, nnEpochs: 10, instances: 1000, maxFlips: 200, fig2PerClass: 40, remoteReps: 3},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		expList = flag.String("exp", "all", "comma list: table1,fig2,fig3,fig4,fig5,fig6,fig7,census,ablation,boundary,remote or all")
		scale   = flag.String("scale", "small", "small, medium or paper")
		outDir  = flag.String("out", "results", "output directory")
		seed    = flag.Int64("seed", 1, "master seed")
	)
	flag.Parse()

	spec, ok := scales[*scale]
	if !ok {
		log.Fatalf("unknown -scale %q", *scale)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	var table1Rows []eval.AccuracyRow
	for _, ds := range []string{"fmnist", "mnist"} {
		start := time.Now()
		fmt.Printf("== dataset %s: building workbench (%s scale)\n", ds, *scale)
		w, err := eval.NewWorkbench(eval.WorkbenchConfig{
			Dataset:  ds,
			Size:     spec.size,
			PerClass: spec.perClass,
			Hidden:   spec.hidden,
			NNEpochs: spec.nnEpochs,
			LMT: lmt.Config{
				MinLeaf:      100,
				StopAccuracy: 0.99,
				MaxDepth:     8,
				MaxFeatures:  maxFeatures(spec.size),
				LogReg:       lmt.LogRegConfig{Epochs: 80},
			},
			Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   trained in %v: PLNN %v (batched GEMM epoch, test acc %.3f), LMT %v (test acc %.3f, %d leaves)\n",
			time.Since(start).Round(time.Millisecond),
			w.PLNNTrainTime.Round(time.Millisecond),
			w.PLNN.Net.Accuracy(w.Test.X, w.Test.Y),
			w.LMTTrainTime.Round(time.Millisecond),
			w.LMT.Accuracy(w.Test.X, w.Test.Y),
			w.LMT.NumLeaves())

		if all || want["table1"] {
			table1Rows = append(table1Rows, eval.Table1(w)...)
		}
		if all || want["fig2"] {
			if err := runFig2(w, ds, *outDir, spec, *seed); err != nil {
				log.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(*seed + 77))
		ids := w.SampleTestInstances(rng, spec.instances)
		xs := w.Test.Subset(ids, "probe").X

		for _, entry := range w.Models() {
			if all || want["fig3"] {
				if err := runFig3(w, entry, ds, *outDir, xs, spec, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["fig4"] {
				if err := runFig4(w, entry, ds, *outDir, ids, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["fig5"] || want["fig6"] || want["fig7"] {
				if err := runQuality(entry, ds, *outDir, xs, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["census"] {
				if err := runCensus(entry, ds, *outDir, xs, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["ablation"] {
				if err := runAblation(entry, ds, *outDir, xs, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["boundary"] {
				if err := runBoundary(entry, ds, *outDir, xs, *seed); err != nil {
					log.Fatal(err)
				}
			}
			if all || want["remote"] {
				if err := runRemote(entry, ds, *outDir, xs, *seed, spec.remoteReps); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if all || want["table1"] {
		path := filepath.Join(*outDir, "table1.md")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.WriteTable1(f, table1Rows); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
	if err := writeIndex(*outDir, *scale, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}

// writeIndex emits results/INDEX.md describing every artifact the harness
// can produce, so a reader landing in the output directory knows which file
// regenerates which paper figure.
func writeIndex(outDir, scale string, seed int64) error {
	entries, err := os.ReadDir(outDir)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "INDEX.md")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Experiment artifacts (scale %s, seed %d)\n\n", scale, seed)
	fmt.Fprintln(f, "| File pattern | Paper artifact |")
	fmt.Fprintln(f, "|---|---|")
	fmt.Fprintln(f, "| table1.md | Table I: train/test accuracy |")
	fmt.Fprintln(f, "| fig2_*_grid.png | Figure 2 montage (mean / PLNN / LMT rows) |")
	fmt.Fprintln(f, "| fig2_*_{mean,plnn,lmt}.png | Figure 2 individual heatmaps |")
	fmt.Fprintln(f, "| fig3_*.csv | Figure 3: CPP and NLCI curves |")
	fmt.Fprintln(f, "| fig4_*.csv | Figure 4: consistency (cosine) curves |")
	fmt.Fprintln(f, "| fig567_*.md | Figures 5-7: RD / WD / L1Dist grids |")
	fmt.Fprintln(f, "| census_*.md | Region census (paper §II structure) |")
	fmt.Fprintln(f, "| ablation_*.md | Solver ablation A1 (DESIGN.md) |")
	fmt.Fprintln(f, "| boundary_*.csv | Boundary profile (paper Figure 1, quantified) |")
	fmt.Fprintln(f, "| remote_*.md | Over-the-API quality + wire cost (sharded, adaptive window) |")
	fmt.Fprintf(f, "\n%d files in this run:\n\n", len(entries))
	for _, e := range entries {
		if e.Name() == "INDEX.md" {
			continue
		}
		fmt.Fprintf(f, "- %s\n", e.Name())
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func maxFeatures(size int) int {
	if size >= 24 {
		return 64 // cap split search on paper-scale images
	}
	return 0
}

func runFig2(w *eval.Workbench, ds, outDir string, spec scaleSpec, seed int64) error {
	// The paper shows five FMNIST classes: boot, pullover, coat, sneaker,
	// t-shirt. For the digit dataset use digits 0-4.
	classes := []int{0, 1, 2, 3, 4}
	if ds == "fmnist" {
		classes = []int{9, 2, 4, 7, 0}
	}
	o := core.New(core.Config{Seed: seed + 10})
	rng := rand.New(rand.NewSource(seed + 11))
	hms, err := eval.Figure2(w, o, classes, spec.fig2PerClass, rng)
	if err != nil {
		return err
	}
	// Three montage rows like the paper's figure: mean images, PLNN
	// decision features, LMT decision features; one column per class.
	grid := make([][]image.Image, 3)
	for i := range grid {
		grid[i] = make([]image.Image, len(hms))
	}
	for col, hm := range hms {
		gray, err := heatmap.Grayscale(hm.MeanImage, w.Test.Width, w.Test.Height)
		if err != nil {
			return err
		}
		grid[0][col] = gray
		if err := heatmap.SavePNG(filepath.Join(outDir, fmt.Sprintf("fig2_%s_%s_mean.png", ds, hm.ClassName)), gray); err != nil {
			return err
		}
		for name, dv := range hm.AvgDecision {
			img, err := heatmap.Diverging(dv, w.Test.Width, w.Test.Height)
			if err != nil {
				return err
			}
			switch name {
			case "PLNN":
				grid[1][col] = img
			case "LMT":
				grid[2][col] = img
			}
			path := filepath.Join(outDir, fmt.Sprintf("fig2_%s_%s_%s.png", ds, hm.ClassName, strings.ToLower(name)))
			if err := heatmap.SavePNG(path, img); err != nil {
				return err
			}
		}
	}
	montage, err := heatmap.Montage(grid, 2)
	if err != nil {
		return err
	}
	if err := heatmap.SavePNG(filepath.Join(outDir, fmt.Sprintf("fig2_%s_grid.png", ds)), montage); err != nil {
		return err
	}
	fmt.Printf("   fig2: wrote %d heatmap sets + grid for %s\n", len(hms), ds)
	return nil
}

// fig34Methods builds the Figure 3/4 method set for one model: the three
// white-box gradient baselines, classic LIME, and OpenAPI.
func fig34Methods(w *eval.Workbench, entry eval.ModelEntry, seed int64) []plm.Interpreter {
	var grad func(cfg gradient.Config) *gradient.Interpreter
	if entry.Name == "PLNN" {
		grad = func(cfg gradient.Config) *gradient.Interpreter {
			return gradient.New(w.PLNN.Net, cfg)
		}
	} else {
		grad = func(cfg gradient.Config) *gradient.Interpreter {
			return gradient.NewFromRegionModel(entry.Model, cfg)
		}
	}
	return []plm.Interpreter{
		grad(gradient.Config{Method: gradient.Saliency}),
		core.New(core.Config{Seed: seed + 20}),
		grad(gradient.Config{Method: gradient.IntegratedGradients}),
		grad(gradient.Config{Method: gradient.GradientInput}),
		lime.New(lime.Config{H: 1e-2, Mode: lime.FitProbability, Seed: seed + 21}),
	}
}

func runFig3(w *eval.Workbench, entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, spec scaleSpec, seed int64) error {
	curves, err := eval.Figure3(entry.Model, fig34Methods(w, entry, seed), xs, spec.maxFlips)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("fig3_%s_%s.csv", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eval.WriteCurvesCSV(f, curves); err != nil {
		return err
	}
	fmt.Printf("   fig3: wrote %s\n", path)
	return nil
}

func runFig4(w *eval.Workbench, entry eval.ModelEntry, ds, outDir string, ids []int, seed int64) error {
	pairs, err := eval.NeighbourPairs(w, ids)
	if err != nil {
		return err
	}
	curves, err := eval.Figure4(entry.Model, fig34Methods(w, entry, seed+30), pairs)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("fig4_%s_%s.csv", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eval.WriteConsistencyCSV(f, curves); err != nil {
		return err
	}
	fmt.Printf("   fig4: wrote %s\n", path)
	return nil
}

func runCensus(entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 50))
	census, err := eval.RegionCensus(entry.Model, xs, 200, 18, rng)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("census_%s_%s.md", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Region census: %s / %s\n\n", ds, entry.Name)
	fmt.Fprintf(f, "- probes: %d\n- distinct regions: %d\n- largest region share: %.3f\n",
		census.Probes, census.DistinctRegions, census.LargestShare)
	fmt.Fprintf(f, "- same-region hypercube edge around probes: min %.3g / median %.3g / max %.3g\n",
		census.MinEdge, census.MedianEdge, census.MaxEdge)
	fmt.Printf("   census: %d regions over %d probes -> %s\n", census.DistinctRegions, census.Probes, path)
	return nil
}

func runAblation(entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, seed int64) error {
	rows, err := eval.AblateSolvers(entry.Model, xs, seed+60)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("ablation_%s_%s.md", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Solver ablation: %s / %s\n\n", ds, entry.Name)
	fmt.Fprintln(f, "| Solver | Mean L1 | ms/instance | Failures |")
	fmt.Fprintln(f, "|--------|---------|-------------|----------|")
	for _, r := range rows {
		fmt.Fprintf(f, "| %s | %.3g | %.1f | %d |\n", r.Solver, r.MeanL1, r.MeanMillis, r.Failures)
	}
	fmt.Printf("   ablation: wrote %s\n", path)
	return nil
}

func runBoundary(entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, seed int64) error {
	limit := xs
	if len(limit) > 6 {
		limit = limit[:6] // bisection is per-instance expensive
	}
	pts, err := eval.BoundaryProfile(entry.Model, limit, 1e-2, []int{0, 4, 8, 12}, seed+70)
	if err != nil {
		// Single-region models legitimately have no boundaries to profile.
		fmt.Printf("   boundary: skipped for %s/%s (%v)\n", ds, entry.Name, err)
		return nil
	}
	path := filepath.Join(outDir, fmt.Sprintf("boundary_%s_%s.csv", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "distance,naive_l1,openapi_l1,openapi_iters,openapi_failed")
	for _, p := range pts {
		fmt.Fprintf(f, "%.6g,%.6g,%.6g,%d,%t\n",
			p.Distance, p.NaiveL1, p.OpenAPIL1, p.OpenAPIIters, p.OpenAPIFailed)
	}
	fmt.Printf("   boundary: wrote %s (%d points)\n", path, len(pts))
	return nil
}

// runRemote reruns the quality computation with the model genuinely behind
// HTTP — served across 4 shard replicas, probed through the adaptive
// aggregator via DialAggregated — and reports what each repetition cost on
// the wire. The server is started once and reused across repetitions (the
// paper-scale run repeats the remote experiment; spinning a fresh server
// per repetition would re-pay startup, dialing and the adaptive window
// warm-up every time, and the warmed window is visible in the per-rep
// stats below).
func runRemote(entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, seed int64, reps int) error {
	if reps < 1 {
		reps = 1
	}
	bench, err := eval.ServeRemote(entry.Model, strings.ToLower(entry.Name), 4,
		api.AggregatorConfig{Adaptive: true})
	if err != nil {
		return err
	}
	defer bench.Close()
	white := openbox.CacheRegionModel(entry.Model, 0)
	var rows []eval.QualityRow
	wires := make([]eval.WireStats, 0, reps)
	for rep := 0; rep < reps; rep++ {
		// A fresh interpreter per rep, same seed: repetitions are identical
		// work, so the per-rep wire stats isolate the serving-layer effects.
		methods := []plm.Interpreter{core.New(core.Config{Seed: seed + 50})}
		r, wire, err := bench.Quality(white, methods, xs)
		if err != nil {
			return err
		}
		rows = r
		wires = append(wires, wire)
	}
	path := filepath.Join(outDir, fmt.Sprintf("remote_%s_%s.md", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Over-the-API quality: %s / %s (4 replicas, adaptive window, %d reps on one persistent server)\n\n", ds, entry.Name, reps)
	for i, wire := range wires {
		fmt.Fprintf(f, "- rep %d: %d queries over %d round trips (%.1f queries/trip), window %v, RTT estimate %v\n",
			i+1, wire.Queries, wire.RoundTrips, wire.QueriesPerTrip(), wire.Window, wire.RTT)
	}
	fmt.Fprintln(f)
	if err := eval.WriteQuality(f, rows); err != nil {
		return err
	}
	last := wires[len(wires)-1]
	fmt.Printf("   remote: wrote %s (%.1f queries/trip on rep %d)\n", path, last.QueriesPerTrip(), len(wires))
	return nil
}

func runQuality(entry eval.ModelEntry, ds, outDir string, xs []mat.Vec, seed int64) error {
	rows, err := eval.QualityGrid(entry.Model, xs, eval.HGrid, seed+40)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, fmt.Sprintf("fig567_%s_%s.md", ds, strings.ToLower(entry.Name)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Figures 5-7 grid: %s / %s\n\n", ds, entry.Name)
	fmt.Fprintln(f, "Fig. 5 = AvgRD column, Fig. 6 = WD columns, Fig. 7 = L1 columns.")
	fmt.Fprintln(f)
	if err := eval.WriteQuality(f, rows); err != nil {
		return err
	}
	fmt.Printf("   fig5/6/7: wrote %s\n", path)
	return nil
}
