package modelio

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lmt"
	"repro/internal/mat"
	"repro/internal/nn"
)

func TestLoadAllKindsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))

	// PLNN.
	plnn := nn.New(rng, 3, 5, 2)
	plnnPath := filepath.Join(dir, "plnn.json")
	if err := plnn.Save(plnnPath); err != nil {
		t.Fatal(err)
	}
	// LMT.
	xs := []mat.Vec{}
	ys := []int{}
	for i := 0; i < 60; i++ {
		x := mat.Vec{rng.NormFloat64() + 3, rng.NormFloat64()}
		label := 0
		if i%2 == 1 {
			x[0] -= 6
			label = 1
		}
		xs = append(xs, x)
		ys = append(ys, label)
	}
	tree, err := lmt.Train(rng, xs, ys, 2, lmt.Config{MinLeaf: 20, LogReg: lmt.LogRegConfig{Epochs: 20}})
	if err != nil {
		t.Fatal(err)
	}
	lmtPath := filepath.Join(dir, "lmt.json")
	if err := tree.Save(lmtPath); err != nil {
		t.Fatal(err)
	}
	// MaxOut.
	mo := nn.NewMaxout(rng, 2, 3, 4, 2)
	moPath := filepath.Join(dir, "maxout.json")
	if err := mo.Save(moPath); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path, kind string
		dim        int
	}{
		{plnnPath, KindPLNN, 3},
		{lmtPath, KindLMT, 2},
		{moPath, KindMaxout, 3},
	}
	for _, c := range cases {
		m, err := Load(c.path, c.kind)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if m.Dim() != c.dim || m.Classes() != 2 {
			t.Fatalf("%s: shape %d/%d", c.kind, m.Dim(), m.Classes())
		}
		// Every kind exposes white-box access.
		x := make(mat.Vec, c.dim)
		if _, err := m.LocalAt(x); err != nil {
			t.Fatalf("%s: LocalAt: %v", c.kind, err)
		}
		if m.RegionKey(x) == "" {
			t.Fatalf("%s: empty region key", c.kind)
		}
	}
}

func TestLoadUnknownKind(t *testing.T) {
	if _, err := Load("whatever.json", "resnet"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), kind); err == nil {
			t.Fatalf("%s: missing file accepted", kind)
		}
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	want := mat.Vec{0.1, -2, 3.5}
	if err := SaveInstance(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 0) {
		t.Fatalf("round trip: %v != %v", got, want)
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadInstance(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	for i, content := range []string{"not json", "[]", `{"a":1}`} {
		if err := writeFile(bad, content); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadInstance(bad); err == nil {
			t.Fatalf("case %d: bad content accepted", i)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestKindsSorted(t *testing.T) {
	ks := Kinds()
	if len(ks) != 3 {
		t.Fatalf("Kinds = %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			t.Fatalf("Kinds not sorted: %v", ks)
		}
	}
}
