package repro

// Integration tests that exercise the whole stack in one motion: workbench
// training, the HTTP API layer, the OpenAPI interpreter, the evaluation
// metrics, and the extraction extension — everything a downstream adopter
// would wire together.

import (
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func TestIntegrationQualityGridOverHTTP(t *testing.T) {
	// The Figures 5-7 pipeline with the model genuinely behind HTTP:
	// metrics still need the white-box model for ground truth, but every
	// interpreter probe crosses the wire.
	w, err := NewWorkbench(evalConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ServeModel(w.PLNN, "wb-plnn"))
	defer ts.Close()
	remote, err := DialModel(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// remoteRegionModel probes over HTTP but answers region questions from
	// the local white box — the evaluation harness's legitimate dual role.
	rm := &remoteRegionModel{Client: remote, white: w.PLNN}
	xs := w.Test.X[:4]
	methods := []plm.Interpreter{core.New(core.Config{Seed: 1})}
	rows, err := eval.SampleQuality(rm, methods, xs)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Err() != nil {
		t.Fatalf("transport errors: %v", remote.Err())
	}
	oa := rows[0]
	if oa.Failures > 0 || oa.AvgRD != 0 || oa.WD.Mean != 0 {
		t.Fatalf("over-the-wire quality broken: %+v", oa)
	}
	if oa.L1.Mean > 1e-4 {
		t.Fatalf("over-the-wire L1 = %v", oa.L1.Mean)
	}
}

// remoteRegionModel predicts through an HTTP client while deferring
// white-box region questions to the local model.
type remoteRegionModel struct {
	*api.Client
	white plm.RegionModel
}

func (r *remoteRegionModel) RegionKey(x Vec) string { return r.white.RegionKey(x) }
func (r *remoteRegionModel) LocalAt(x Vec) (*plm.Linear, error) {
	return r.white.LocalAt(x)
}

func TestIntegrationBudgetedInterpretation(t *testing.T) {
	// A metered API with a quota too small for one OpenAPI run: the run
	// must NOT silently return a wrong answer — either it fails to
	// converge, or the caller sees Exhausted() and discards the result.
	model := MustTrainDemoPLNN(41)
	budget := api.NewBudget(model, 30) // one iteration needs d+2 ≈ 102
	o := core.New(core.Config{Seed: 42, MaxIterations: 6})
	x := model.Example()
	interp, err := o.Interpret(budget, x, 0)
	if err == nil && !budget.Exhausted() {
		t.Fatal("tiny budget neither failed nor reported exhaustion")
	}
	if err == nil && budget.Exhausted() {
		// Degraded-to-uniform responses admit the all-zero interpretation;
		// a caller checking Exhausted() knows to discard it.
		if interp.Features.NormInf() > 1e-6 {
			t.Fatalf("budget-degraded run returned non-trivial features: %v",
				interp.Features.NormInf())
		}
	}
}

func TestIntegrationExtractThenServeSurrogate(t *testing.T) {
	// Full extraction loop: steal regions over HTTP, then serve the clone
	// itself as an API and verify the two services agree near the probes.
	victim := MustTrainDemoPLNN(43)
	vs := httptest.NewServer(ServeModel(victim, "victim"))
	defer vs.Close()
	remote, err := DialModel(vs.URL)
	if err != nil {
		t.Fatal(err)
	}
	probes := []Vec{victim.Example(), victim.Example()}
	clone, err := ExtractSurrogate(remote, probes)
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(ServeModel(clone, "clone"))
	defer cs.Close()
	cloneRemote, err := DialModel(cs.URL)
	if err != nil {
		t.Fatal(err)
	}
	// At a probe the two services must agree exactly (same region).
	want := remote.Predict(probes[0])
	got := cloneRemote.Predict(probes[0])
	if !got.EqualApprox(want, 1e-9) {
		t.Fatalf("served clone %v != victim %v at probe", got, want)
	}
}

func TestIntegrationAggregatedPoolSavesRoundTrips(t *testing.T) {
	// The batching acceptance gate: at pool size 8, routing every worker's
	// probes through one aggregator must cost at most half the HTTP round
	// trips of per-job batching (server-counted), while every recovered
	// interpretation stays bit-identical.
	rng := rand.New(rand.NewSource(46))
	model := &openbox.PLNN{Net: nn.New(rng, 16, 32, 16, 4)}
	xs := make([]Vec, 16)
	for i := range xs {
		xs[i] = make(Vec, 16)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}

	run := func(aggregate bool) (int64, []core.Result) {
		srv := api.NewServer(model, "agg-gate")
		ts := httptest.NewServer(srv)
		defer ts.Close()
		remote, err := DialModel(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		var m Model = remote
		var agg *api.Aggregator
		if aggregate {
			// A generous window keeps the workers' waves coalescing even on
			// a slow CI machine; wall-clock latency is not under test here.
			agg = api.NewAggregator(remote, api.AggregatorConfig{Window: 25 * time.Millisecond})
			m = agg
		}
		results := core.NewPool(core.Config{Seed: 47}, 8).InterpretMany(m, xs)
		if agg != nil {
			agg.Close()
		}
		if err := remote.Err(); err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("instance %d failed: %v", i, r.Err)
			}
		}
		return srv.Requests(), results
	}

	perJobTrips, plain := run(false)
	aggTrips, batched := run(true)
	t.Logf("round trips: per-job %d, aggregated %d", perJobTrips, aggTrips)
	if aggTrips*2 > perJobTrips {
		t.Fatalf("aggregation saved too little: %d round trips vs %d per-job (need >= 2x fewer)",
			aggTrips, perJobTrips)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Interp, batched[i].Interp) {
			t.Fatalf("instance %d: aggregated interpretation differs from per-job", i)
		}
	}
}

func TestIntegrationShardedReplicasBitIdentical(t *testing.T) {
	// The sharding acceptance gate: the exact serving stack of
	// `plmserve -replicas N` (shard router behind api.Server) must hand a
	// pooled, aggregated InterpretMany bit-identical interpretations at
	// every replica count — the split is pure routing, never science.
	rng := rand.New(rand.NewSource(48))
	model := &openbox.PLNN{Net: nn.New(rng, 16, 32, 16, 4)}
	xs := make([]Vec, 16)
	for i := range xs {
		xs[i] = make(Vec, 16)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}

	run := func(replicas int) []core.Result {
		slots := make([]Model, replicas)
		for i := range slots {
			slots[i] = model
		}
		shard, err := ShardModel(slots...)
		if err != nil {
			t.Fatal(err)
		}
		srv := api.NewServer(shard, "shard-gate")
		ts := httptest.NewServer(srv)
		defer ts.Close()
		agg, client, err := api.DialAggregated(ts.URL, nil, 0, api.AggregatorConfig{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		results := core.NewPool(core.Config{Seed: 49}, 8).InterpretMany(agg, xs)
		agg.Close()
		if err := client.Err(); err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("replicas=%d instance %d failed: %v", replicas, i, r.Err)
			}
		}
		if replicas > 1 {
			// The fan-out must actually engage: every replica slot serves
			// part of the batched waves.
			for slot, q := range shard.ReplicaQueries() {
				if q == 0 {
					t.Fatalf("replicas=%d: slot %d served nothing", replicas, slot)
				}
			}
		}
		return results
	}

	base := run(1)
	for _, n := range []int{2, 4} {
		got := run(n)
		for i := range base {
			if !reflect.DeepEqual(base[i].Interp, got[i].Interp) {
				t.Fatalf("instance %d: %d-replica interpretation differs from 1-replica", i, n)
			}
		}
	}
}

func TestIntegrationPoolOverHTTP(t *testing.T) {
	// Concurrent interpretation against one HTTP server: the server must
	// survive parallel load and every result must be exact.
	model := MustTrainDemoPLNN(44)
	ts := httptest.NewServer(ServeModel(model, "pool-target"))
	defer ts.Close()
	remote, err := DialModel(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(core.Config{Seed: 45}, 3)
	xs := []Vec{model.Example(), model.Example(), model.Example(), model.Example()}
	results := pool.InterpretMany(remote, xs)
	if remote.Err() != nil {
		t.Fatalf("transport errors under concurrency: %v", remote.Err())
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		truth, err := GroundTruth(model, xs[i], r.Interp.Class)
		if err != nil {
			t.Fatal(err)
		}
		if r.Interp.Features.L1Dist(truth) > 1e-4 {
			t.Fatalf("instance %d inexact over HTTP pool", i)
		}
	}
}
