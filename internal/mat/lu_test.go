package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorRejectsNonSquare(t *testing.T) {
	_, err := Factor(NewDense(2, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestFactorSingular(t *testing.T) {
	a := FromRows(Vec{1, 2}, Vec{2, 4}) // rank 1
	_, err := Factor(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows(Vec{2, 1}, Vec{1, 3})
	x, err := SolveSquare(a, Vec{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if !x.EqualApprox(Vec{1, 3}, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := FromRows(Vec{0, 1}, Vec{1, 0})
	x, err := SolveSquare(a, Vec{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(Vec{7, 3}, 1e-14) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveVecRhsLengthMismatch(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVec(Vec{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDet(t *testing.T) {
	a := FromRows(Vec{1, 2}, Vec{3, 4})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); !almostEqual(got, -2, 1e-12) {
		t.Fatalf("Det = %v, want -2", got)
	}
	fi, err := Factor(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Det(); got != 1 {
		t.Fatalf("Det(I) = %v", got)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 6, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).EqualApprox(Identity(6), 1e-9) {
		t.Fatal("A * A^{-1} != I")
	}
}

func TestSolveMultiRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 5, 5)
	b := randDense(rng, 5, 3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).EqualApprox(b, 1e-9) {
		t.Fatal("A X != B")
	}
}

func TestResidual(t *testing.T) {
	a := FromRows(Vec{1, 0}, Vec{0, 1})
	r := Residual(a, Vec{1, 1}, Vec{3, 1})
	if !r.EqualApprox(Vec{2, 0}, 0) {
		t.Fatalf("Residual = %v", r)
	}
}

func TestMinPivotAndCondEst(t *testing.T) {
	// Well conditioned.
	f, err := Factor(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if f.MinPivot() != 1 {
		t.Fatalf("MinPivot(I) = %v", f.MinPivot())
	}
	if c := f.CondEst(Identity(4)); !almostEqual(c, 1, 1e-12) {
		t.Fatalf("CondEst(I) = %v", c)
	}
	// Badly conditioned.
	a := FromRows(Vec{1, 1}, Vec{1, 1 + 1e-12})
	fb, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if c := fb.CondEst(a); c < 1e10 {
		t.Fatalf("CondEst of near-singular = %v, want large", c)
	}
}

// Property: for random well-conditioned systems, solve then multiply
// recovers the right-hand side.
func TestPropertyLUSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(n8 uint8) bool {
		n := int(n8%12) + 2
		a := randDense(rng, n, n)
		// Diagonal boost keeps the sample well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make(Vec, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSquare(a, b)
		if err != nil {
			return false
		}
		return got.EqualApprox(want, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A) = 0 detection — scaling a row by 0 always errors.
func TestPropertyZeroRowSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(n8, r8 uint8) bool {
		n := int(n8%8) + 2
		a := randDense(rng, n, n)
		row := int(r8) % n
		for j := 0; j < n; j++ {
			a.Set(row, j, 0)
		}
		_, err := Factor(a)
		return errors.Is(err, ErrSingular)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the determinant changes sign under a row swap.
func TestPropertyDetRowSwapSign(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(n8 uint8) bool {
		n := int(n8%6) + 2
		a := randDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		fa, err := Factor(a)
		if err != nil {
			return false
		}
		b := a.Clone()
		r0, r1 := b.Row(0), b.Row(1)
		b.SetRow(0, r1)
		b.SetRow(1, r0)
		fb, err := Factor(b)
		if err != nil {
			return false
		}
		da, db := fa.Det(), fb.Det()
		return almostEqual(da, -db, 1e-8) || (math.Abs(da) < 1e-12 && math.Abs(db) < 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
