// Command openapi interprets one prediction of a PLM that is reachable only
// through its API — the end-to-end workflow of the paper. It dials a served
// model (or loads one locally for offline use), runs the OpenAPI algorithm,
// and reports the exact decision features.
//
// Usage:
//
//	openapi -url http://127.0.0.1:8080 -instance x.json
//	openapi -url http://127.0.0.1:8080 -instance x.json -class 3 -png out.png -width 16
//	openapi -model plnn.json -type plnn -instance x.json -ascii
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/heatmap"
	"repro/internal/mat"
	"repro/internal/modelio"
	"repro/internal/plm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("openapi: ")

	var (
		url       = flag.String("url", "", "base URL of a served model")
		modelPath = flag.String("model", "", "local model file (alternative to -url)")
		modelType = flag.String("type", "plnn", fmt.Sprintf("local model family: one of %v", modelio.Kinds()))
		instance  = flag.String("instance", "", "JSON file holding the instance as a number array (required)")
		class     = flag.Int("class", -1, "class to interpret (-1: the predicted class)")
		topK      = flag.Int("top", 10, "how many top features to print")
		iters     = flag.Int("max-iters", 100, "OpenAPI iteration budget")
		edge      = flag.Float64("edge", 1.0, "initial hypercube edge length")
		seed      = flag.Int64("seed", 1, "sampler seed")
		pngPath   = flag.String("png", "", "write a diverging heatmap PNG here")
		width     = flag.Int("width", 0, "image width for -png/-ascii (default: square)")
		ascii     = flag.Bool("ascii", false, "print an ASCII heatmap")
	)
	flag.Parse()
	if *instance == "" {
		log.Fatal("-instance is required")
	}

	x, err := loadInstance(*instance)
	if err != nil {
		log.Fatal(err)
	}
	model, cleanup, err := connect(*url, *modelPath, *modelType)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	if len(x) != model.Dim() {
		log.Fatalf("instance has %d features, model wants %d", len(x), model.Dim())
	}
	probs := model.Predict(x)
	c := *class
	if c < 0 {
		c = probs.ArgMax()
	}
	fmt.Printf("model: %d features, %d classes\n", model.Dim(), model.Classes())
	fmt.Printf("prediction: class %d with probability %.4f\n", probs.ArgMax(), probs[probs.ArgMax()])
	fmt.Printf("interpreting class %d\n", c)

	counted := api.NewCounter(model)
	o := core.New(core.Config{MaxIterations: *iters, InitialEdge: *edge, Seed: *seed})
	interp, err := o.Interpret(counted, x, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iteration(s), final edge %.3g, %d API queries\n",
		interp.Iterations, interp.FinalEdge, counted.Count())

	fmt.Printf("top %d decision features (positive supports the class):\n", *topK)
	for _, f := range interp.TopK(*topK) {
		fmt.Printf("  feature %4d: %+.6f\n", f.Index, f.Weight)
	}

	w := *width
	if w <= 0 {
		w = intSqrt(len(x))
	}
	if w > 0 && len(x)%w == 0 {
		h := len(x) / w
		if *ascii {
			art, err := heatmap.ASCII(interp.Features, w, h, true)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("decision features (uppercase ramp = supports, lowercase = opposes):")
			fmt.Print(art)
		}
		if *pngPath != "" {
			img, err := heatmap.Diverging(interp.Features, w, h)
			if err != nil {
				log.Fatal(err)
			}
			if err := heatmap.SavePNG(*pngPath, img); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("heatmap written to %s\n", *pngPath)
		}
	} else if *ascii || *pngPath != "" {
		log.Printf("cannot render: %d features do not form a %d-wide image", len(x), w)
	}
}

func loadInstance(path string) (mat.Vec, error) { return modelio.LoadInstance(path) }

func connect(url, modelPath, modelType string) (plm.Model, func(), error) {
	noop := func() {}
	switch {
	case url != "" && modelPath != "":
		return nil, noop, fmt.Errorf("give either -url or -model, not both")
	case url != "":
		client, err := api.Dial(url, nil, 2)
		if err != nil {
			return nil, noop, err
		}
		return client, func() {
			if err := client.Err(); err != nil {
				log.Printf("transport errors during interpretation: %v", err)
			}
		}, nil
	case modelPath != "":
		model, err := modelio.Load(modelPath, modelType)
		if err != nil {
			return nil, noop, err
		}
		return model, noop, nil
	}
	return nil, noop, fmt.Errorf("one of -url or -model is required")
}

func intSqrt(n int) int {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return 0
}
