// Package sample provides the randomized instance generators the paper's
// interpreters rely on: independent uniform sampling inside an axis-aligned
// hypercube (Lemma 1's precondition), ZOO-style symmetric axis probes, and a
// few general-purpose helpers. All randomness flows through an explicit
// *rand.Rand so every experiment is bit-reproducible.
package sample

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Hypercube describes the axis-aligned cube {p : |p_i - Center_i| <= Edge/2}.
// The paper defines the neighbourhood of x as the hypercube of edge length r
// centred at x (§IV-B defines it via |p_i - x_i| <= r; we follow the
// algorithm's usage where r is the edge length and halving r halves the
// neighbourhood).
type Hypercube struct {
	Center mat.Vec
	Edge   float64
}

// NewHypercube returns the hypercube of the given edge length around center.
// It panics if edge is negative.
func NewHypercube(center mat.Vec, edge float64) Hypercube {
	if edge < 0 {
		panic(fmt.Sprintf("sample: negative edge %g", edge))
	}
	return Hypercube{Center: center.Clone(), Edge: edge}
}

// Dim returns the dimensionality of the cube.
func (h Hypercube) Dim() int { return len(h.Center) }

// Contains reports whether p lies inside the cube (closed boundary).
func (h Hypercube) Contains(p mat.Vec) bool {
	if len(p) != len(h.Center) {
		return false
	}
	half := h.Edge / 2
	for i, c := range h.Center {
		d := p[i] - c
		if d > half || d < -half {
			return false
		}
	}
	return true
}

// Halved returns a cube with half the edge length, as used by Algorithm 1's
// adaptive shrinking step.
func (h Hypercube) Halved() Hypercube {
	return Hypercube{Center: h.Center, Edge: h.Edge / 2}
}

// Sample draws one point independently and uniformly from the cube.
func (h Hypercube) Sample(rng *rand.Rand) mat.Vec {
	p := make(mat.Vec, len(h.Center))
	half := h.Edge / 2
	for i, c := range h.Center {
		p[i] = c + (2*rng.Float64()-1)*half
	}
	return p
}

// SampleN draws n independent uniform points from the cube.
func (h Hypercube) SampleN(rng *rand.Rand, n int) []mat.Vec {
	out := make([]mat.Vec, n)
	for i := range out {
		out[i] = h.Sample(rng)
	}
	return out
}

// AxisPairs returns the 2d points x ± h·e_i used by ZOO's symmetric
// difference quotients: result[i][0] = x + h e_i, result[i][1] = x - h e_i.
func AxisPairs(x mat.Vec, h float64) [][2]mat.Vec {
	out := make([][2]mat.Vec, len(x))
	for i := range x {
		plus := x.Clone()
		minus := x.Clone()
		plus[i] += h
		minus[i] -= h
		out[i] = [2]mat.Vec{plus, minus}
	}
	return out
}

// UniformVec draws a d-dimensional vector with entries uniform in [lo, hi).
func UniformVec(rng *rand.Rand, d int, lo, hi float64) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

// GaussianVec draws a d-dimensional vector with N(mean, sd^2) entries.
func GaussianVec(rng *rand.Rand, d int, mean, sd float64) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = mean + sd*rng.NormFloat64()
	}
	return v
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Subsample returns k indices drawn uniformly without replacement from
// [0, n). If k >= n it returns the identity permutation of all n indices.
// The result order is random.
func Subsample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return rng.Perm(n)
	}
	return rng.Perm(n)[:k]
}

// LinearPath returns steps+1 points evenly spaced from a to b inclusive, the
// integration path of Integrated Gradients.
func LinearPath(a, b mat.Vec, steps int) []mat.Vec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sample: LinearPath length mismatch %d vs %d", len(a), len(b)))
	}
	if steps < 1 {
		panic("sample: LinearPath needs steps >= 1")
	}
	out := make([]mat.Vec, steps+1)
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		p := make(mat.Vec, len(a))
		for i := range p {
			p[i] = a[i] + t*(b[i]-a[i])
		}
		out[s] = p
	}
	return out
}
