package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// MaxoutLayer computes h_j = max_p (W_p x + b_p)_j over k affine pieces
// (Goodfellow et al., ICML 2013). Like ReLU, the max of affine pieces is
// piecewise linear, so MaxOut networks are PLMs — the other family member
// the paper names explicitly.
type MaxoutLayer struct {
	Pieces []Layer // k affine maps with identical shapes
}

// In returns the layer's input width.
func (l *MaxoutLayer) In() int { return l.Pieces[0].W.Cols() }

// Out returns the layer's output width.
func (l *MaxoutLayer) Out() int { return l.Pieces[0].W.Rows() }

// K returns the number of affine pieces.
func (l *MaxoutLayer) K() int { return len(l.Pieces) }

// MaxoutNetwork is a stack of MaxOut hidden layers with a linear read-out
// into softmax. Its locally linear regions are indexed by which piece wins
// at every hidden unit.
type MaxoutNetwork struct {
	hidden []MaxoutLayer
	out    Layer
}

// NewMaxout builds a MaxOut network with k pieces per hidden unit and the
// given layer widths (input first, classes last).
func NewMaxout(rng *rand.Rand, k int, sizes ...int) *MaxoutNetwork {
	if len(sizes) < 2 {
		panic("nn: NewMaxout needs at least input and output sizes")
	}
	if k < 2 {
		panic(fmt.Sprintf("nn: maxout needs k >= 2 pieces, got %d", k))
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size %d", s))
		}
	}
	n := &MaxoutNetwork{hidden: make([]MaxoutLayer, len(sizes)-2)}
	newAffine := func(in, out int) Layer {
		w := mat.NewDense(out, in)
		sd := math.Sqrt(2 / float64(in))
		for r := 0; r < out; r++ {
			row := w.RawRow(r)
			for c := range row {
				row[c] = sd * rng.NormFloat64()
			}
		}
		return Layer{W: w, B: mat.NewVec(out)}
	}
	for i := 0; i < len(sizes)-2; i++ {
		pieces := make([]Layer, k)
		for p := range pieces {
			pieces[p] = newAffine(sizes[i], sizes[i+1])
		}
		n.hidden[i] = MaxoutLayer{Pieces: pieces}
	}
	n.out = newAffine(sizes[len(sizes)-2], sizes[len(sizes)-1])
	return n
}

// InputDim returns the expected input dimensionality.
func (n *MaxoutNetwork) InputDim() int {
	if len(n.hidden) > 0 {
		return n.hidden[0].In()
	}
	return n.out.In()
}

// Classes returns the number of output classes.
func (n *MaxoutNetwork) Classes() int { return n.out.Out() }

// NumHidden returns the number of MaxOut hidden layers.
func (n *MaxoutNetwork) NumHidden() int { return len(n.hidden) }

// maxoutState caches per-layer winner indices and activations.
type maxoutState struct {
	winners [][]int   // winners[l][j] = argmax piece of unit j in layer l
	acts    []mat.Vec // acts[0] = input; acts[l+1] = hidden layer l output
	logits  mat.Vec
}

func (n *MaxoutNetwork) forward(x mat.Vec) maxoutState {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: maxout input length %d != %d", len(x), n.InputDim()))
	}
	st := maxoutState{
		winners: make([][]int, len(n.hidden)),
		acts:    make([]mat.Vec, len(n.hidden)+1),
	}
	st.acts[0] = x
	cur := x
	for li, l := range n.hidden {
		outs := make([]mat.Vec, l.K())
		for p, piece := range l.Pieces {
			outs[p] = piece.W.MulVec(cur).AddInPlace(piece.B)
		}
		h := make(mat.Vec, l.Out())
		win := make([]int, l.Out())
		for j := 0; j < l.Out(); j++ {
			best := 0
			for p := 1; p < l.K(); p++ {
				if outs[p][j] > outs[best][j] {
					best = p
				}
			}
			win[j] = best
			h[j] = outs[best][j]
		}
		st.winners[li] = win
		st.acts[li+1] = h
		cur = h
	}
	st.logits = n.out.W.MulVec(cur).AddInPlace(n.out.B)
	return st
}

// Logits returns the raw pre-softmax scores for x.
func (n *MaxoutNetwork) Logits(x mat.Vec) mat.Vec { return n.forward(x).logits }

// Predict returns softmax class probabilities.
func (n *MaxoutNetwork) Predict(x mat.Vec) mat.Vec { return Softmax(n.Logits(x)) }

// PredictLabel returns the argmax class.
func (n *MaxoutNetwork) PredictLabel(x mat.Vec) int { return n.Logits(x).ArgMax() }

// WinnerPattern returns the per-unit winning piece indices of every hidden
// layer — the MaxOut analogue of a ReLU activation pattern. Two inputs with
// the same pattern share a locally linear region.
func (n *MaxoutNetwork) WinnerPattern(x mat.Vec) []int {
	return flattenWinners(n.forward(x).winners)
}

// LocalAffine folds the network at x into the exact affine map (W, b) of
// x's locally linear region: within the region, logits = W·x + b.
func (n *MaxoutNetwork) LocalAffine(x mat.Vec) (*mat.Dense, mat.Vec) {
	st := n.forward(x)
	w, b, err := n.AffineFromWinners(flattenWinners(st.winners))
	if err != nil {
		panic(err) // a pattern from forward is valid by construction
	}
	return w, b
}

// HiddenUnits returns the total number of hidden units — the length of a
// flat winner pattern.
func (n *MaxoutNetwork) HiddenUnits() int {
	total := 0
	for _, l := range n.hidden {
		total += l.Out()
	}
	return total
}

// flattenWinners concatenates per-layer winner slices into the flat
// pattern WinnerPattern exposes.
func flattenWinners(winners [][]int) []int {
	var pat []int
	for _, w := range winners {
		pat = append(pat, w...)
	}
	return pat
}

// AffineFromWinners folds the exact affine map (W, b) of the locally
// linear region a flat winner pattern selects, without any forward pass —
// the MaxOut analogue of composing a ReLU region from its activation
// pattern. The result is bit-identical to LocalAffine at any x inside the
// region (the fold is the same arithmetic in the same order; only the
// source of the winner indices differs).
func (n *MaxoutNetwork) AffineFromWinners(pattern []int) (*mat.Dense, mat.Vec, error) {
	if len(pattern) != n.HiddenUnits() {
		return nil, nil, fmt.Errorf("nn: winner pattern length %d != %d hidden units", len(pattern), n.HiddenUnits())
	}
	d := n.InputDim()
	curW := mat.Identity(d)
	curB := mat.NewVec(d)
	off := 0
	for _, l := range n.hidden {
		nextW := mat.NewDense(l.Out(), curW.Cols())
		nextB := mat.NewVec(l.Out())
		for j := 0; j < l.Out(); j++ {
			win := pattern[off+j]
			if win < 0 || win >= l.K() {
				return nil, nil, fmt.Errorf("nn: winner %d of unit %d out of range %d", win, off+j, l.K())
			}
			piece := l.Pieces[win]
			// Row j of the effective map: piece.W[j] composed with cur.
			wj := piece.W.RawRow(j)
			outRow := nextW.RawRow(j)
			for c := 0; c < curW.Cols(); c++ {
				var s float64
				for t := 0; t < curW.Rows(); t++ {
					s += wj[t] * curW.At(t, c)
				}
				outRow[c] = s
			}
			nextB[j] = wj.Dot(curB) + piece.B[j]
		}
		off += l.Out()
		curW, curB = nextW, nextB
	}
	finalW := n.out.W.Mul(curW)
	finalB := n.out.W.MulVec(curB).AddInPlace(n.out.B)
	return finalW, finalB, nil
}

// InputGradient returns the gradient of logit c with respect to the input,
// backpropagated through the winning pieces.
func (n *MaxoutNetwork) InputGradient(x mat.Vec, c int) mat.Vec {
	if c < 0 || c >= n.Classes() {
		panic(fmt.Sprintf("nn: class %d out of range %d", c, n.Classes()))
	}
	w, _ := n.LocalAffine(x)
	return w.Row(c)
}

// maxoutGradients accumulates parameter gradients for one mini-batch of
// MaxOut training: one (dW, dB) pair per affine piece per hidden layer,
// plus the linear read-out.
type maxoutGradients struct {
	hidden [][]gradPair
	out    gradPair
}

// gradPair is the gradient accumulator of one affine map.
type gradPair struct {
	dW *mat.Dense
	dB mat.Vec
}

func newMaxoutGradients(n *MaxoutNetwork) *maxoutGradients {
	g := &maxoutGradients{hidden: make([][]gradPair, len(n.hidden))}
	for li, l := range n.hidden {
		pairs := make([]gradPair, l.K())
		for p, piece := range l.Pieces {
			pairs[p] = gradPair{
				dW: mat.NewDense(piece.W.Rows(), piece.W.Cols()),
				dB: mat.NewVec(len(piece.B)),
			}
		}
		g.hidden[li] = pairs
	}
	g.out = gradPair{dW: mat.NewDense(n.out.W.Rows(), n.out.W.Cols()), dB: mat.NewVec(len(n.out.B))}
	return g
}

func (g *maxoutGradients) zero() {
	zeroPair := func(p *gradPair) {
		for r := 0; r < p.dW.Rows(); r++ {
			p.dW.RawRow(r).Fill(0)
		}
		p.dB.Fill(0)
	}
	for li := range g.hidden {
		for p := range g.hidden[li] {
			zeroPair(&g.hidden[li][p])
		}
	}
	zeroPair(&g.out)
}

// paramBlocks pairs every parameter span with its gradient accumulator, in
// layer order: each hidden layer's pieces (rows of W, then B), then the
// read-out.
func (n *MaxoutNetwork) paramBlocks(g *maxoutGradients) []paramBlock {
	var blocks []paramBlock
	affine := func(l *Layer, gp *gradPair) {
		for r := 0; r < l.W.Rows(); r++ {
			blocks = append(blocks, paramBlock{w: l.W.RawRow(r), g: gp.dW.RawRow(r)})
		}
		blocks = append(blocks, paramBlock{w: l.B, g: gp.dB, bias: true})
	}
	for li := range n.hidden {
		for p := range n.hidden[li].Pieces {
			affine(&n.hidden[li].Pieces[p], &g.hidden[li][p])
		}
	}
	affine(&n.out, &g.out)
	return blocks
}

// accumulate runs one forward/backward pass for (x, label), adds the
// parameter gradients into g, and returns the sample's cross-entropy loss.
// Gradients flow through the winning piece of every unit only — inside the
// sample's locally linear region, the max IS that piece. The loop nesting
// mirrors the batched path's per-piece GEMM schedule (one partial delta sum
// per piece, summed piece-ascending), so both paths accumulate every
// gradient in the same order and stay bit-identical.
func (n *MaxoutNetwork) accumulate(g *maxoutGradients, x mat.Vec, label int) float64 {
	st := n.forward(x)
	probs := Softmax(st.logits)
	loss := CrossEntropy(probs, label)
	delta := probs.Clone()
	delta[label] -= 1

	// Read-out layer: dW += delta ⊗ h_last ; dB += delta.
	hlast := st.acts[len(st.acts)-1]
	for r, dr := range delta {
		row := g.out.dW.RawRow(r)
		for c, av := range hlast {
			row[c] += dr * av
		}
	}
	g.out.dB.AddInPlace(delta)

	// Backprop into the last hidden activation, then through the winners.
	gv := n.out.W.MulVecT(delta)
	for li := len(n.hidden) - 1; li >= 0; li-- {
		l := n.hidden[li]
		in := st.acts[li]
		win := st.winners[li]
		var next mat.Vec
		if li > 0 {
			next = mat.NewVec(len(in))
		}
		for p := range l.Pieces {
			gp := &g.hidden[li][p]
			var sp mat.Vec
			if li > 0 {
				sp = mat.NewVec(len(in))
			}
			for j, gj := range gv {
				if win[j] != p {
					continue
				}
				row := gp.dW.RawRow(j)
				for c, iv := range in {
					row[c] += gj * iv
				}
				gp.dB[j] += gj
				if li > 0 {
					wrow := l.Pieces[p].W.RawRow(j)
					for c, wv := range wrow {
						sp[c] += gj * wv
					}
				}
			}
			if li > 0 {
				next.AddInPlace(sp)
			}
		}
		if li > 0 {
			gv = next
		}
	}
	return loss
}

// Train runs mini-batch training on the MaxOut network with the same
// optimizer semantics as Network.Train (SGD with momentum, Adam, weight
// decay). Gradients flow through the winning piece of each unit only (the
// max is locally that piece). By default the whole mini-batch flows through
// the network as matrices — per-piece GEMMs with winner-routed masking, see
// train_batch.go — bit-identical to the per-sample reference loop
// (cfg.PerSample). Returns the mean loss of the final epoch.
func (n *MaxoutNetwork) Train(rng *rand.Rand, xs []mat.Vec, labels []int, cfg TrainConfig) (float64, error) {
	if err := checkTrainingSet(xs, labels, n.Classes()); err != nil {
		return 0, err
	}
	cfg.setDefaults()
	grads := newMaxoutGradients(n)
	blocks := n.paramBlocks(grads)
	var accumulate func(batch []int) float64
	if cfg.PerSample {
		accumulate = func(batch []int) float64 {
			grads.zero()
			var loss float64
			for _, idx := range batch {
				loss += n.accumulate(grads, xs[idx], labels[idx])
			}
			return loss
		}
	} else {
		s := newMaxoutScratch(n, batchCap(cfg.BatchSize, len(xs)))
		accumulate = func(batch []int) float64 {
			return n.accumulateBatch(s, grads, xs, labels, batch)
		}
	}
	return runEpochs(rng, len(xs), &cfg, blocks, accumulate), nil
}

// Clone returns a deep copy of the network.
func (n *MaxoutNetwork) Clone() *MaxoutNetwork {
	out := &MaxoutNetwork{hidden: make([]MaxoutLayer, len(n.hidden))}
	for li, l := range n.hidden {
		pieces := make([]Layer, l.K())
		for p, piece := range l.Pieces {
			pieces[p] = Layer{W: piece.W.Clone(), B: piece.B.Clone()}
		}
		out.hidden[li] = MaxoutLayer{Pieces: pieces}
	}
	out.out = Layer{W: n.out.W.Clone(), B: n.out.B.Clone()}
	return out
}

// Accuracy returns the fraction of xs classified as labels.
func (n *MaxoutNetwork) Accuracy(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if n.PredictLabel(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
