// Package repro is an open-source reproduction of "Exact and Consistent
// Interpretation of Piecewise Linear Models Hidden behind APIs: A Closed
// Form Solution" (Cong, Chu, Wang, Hu, Pei — ICDE 2020).
//
// The package is a facade over the internal building blocks:
//
//   - internal/core — the OpenAPI interpreter (the paper's contribution)
//   - internal/nn, internal/lmt — the two target PLM families
//   - internal/openbox — white-box ground truth for PLNNs
//   - internal/api — the HTTP "model behind an API" substrate, including
//     the backend-abstracted shard router (local replicas and remote
//     plmserve instances behind one endpoint, with health-aware failover)
//   - internal/jobs — the async bulk predict/interpret job subsystem
//     behind plmserve's POST /jobs and GET /jobs/{id}
//   - internal/interpret/... — the naive, ZOO, LIME and gradient baselines
//   - internal/eval — metrics and per-figure experiment drivers
//   - internal/dataset, internal/heatmap — data and visualization
//
// # Quick start
//
//	model := repro.MustTrainDemoPLNN(1)               // a small trained PLM
//	x := model.Example()                              // an instance
//	interp, err := repro.Interpret(model, x, model.Predict(x).ArgMax())
//	// interp.Features now holds the *exact* decision features D_c,
//	// recovered through Predict calls alone.
//
// See the examples/ directory for runnable programs and cmd/experiments for
// the harness that regenerates every table and figure of the paper.
package repro
