package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// The PR 7 trajectory set: one op is a full /batch payload round trip —
// encode rows probability vectors, decode them back — through each codec.
// wirebytes/op records the encoded body size, the number the binary codec
// exists to shrink: the acceptance gate is ≥2x fewer bytes and less time
// than JSON at batch 256, bit-identically.

// benchRows builds a /batch-shaped payload: rows probability vectors with
// full-precision mantissas, the worst case for decimal formatting.
func benchRows(rows, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(rows)))
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.Float64()
		}
	}
	return m
}

func benchCodec(b *testing.B, codec Codec, rows int) {
	const cols = 8
	m := benchRows(rows, cols)
	var buf bytes.Buffer
	if err := codec.EncodeMat(&buf, "xs", m); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := codec.EncodeMat(&buf, "xs", m); err != nil {
			b.Fatal(err)
		}
		got, err := codec.DecodeMat(bytes.NewReader(buf.Bytes()), 0, "xs")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != rows {
			b.Fatalf("%d rows decoded, want %d", len(got), rows)
		}
	}
	// After the loop: ResetTimer deletes user-reported metrics.
	b.ReportMetric(float64(buf.Len()), "wirebytes/op")
}

func BenchmarkWireBatchJSON_16(b *testing.B)      { benchCodec(b, JSON{}, 16) }
func BenchmarkWireBatchJSON_256(b *testing.B)     { benchCodec(b, JSON{}, 256) }
func BenchmarkWireBatchJSON_4096(b *testing.B)    { benchCodec(b, JSON{}, 4096) }
func BenchmarkWireBatchBinary_16(b *testing.B)    { benchCodec(b, Binary{}, 16) }
func BenchmarkWireBatchBinary_256(b *testing.B)   { benchCodec(b, Binary{}, 256) }
func BenchmarkWireBatchBinary_4096(b *testing.B)  { benchCodec(b, Binary{}, 4096) }
func BenchmarkWireBatchFloat32_256(b *testing.B)  { benchCodec(b, Binary{Float32: true}, 256) }
func BenchmarkWireBatchFloat32_4096(b *testing.B) { benchCodec(b, Binary{Float32: true}, 4096) }
