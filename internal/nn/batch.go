package nn

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mat"
)

// This file holds the batched compute fast path: an entire batch of inputs
// is forwarded as one matrix-matrix product per layer (X · Wᵀ, both operands
// walked along contiguous rows) instead of one matrix-vector product per
// instance per layer. Every logit is still the same ascending-k dot product
// plus bias the scalar path computes, so batched outputs are bit-identical
// to per-instance Logits/Predict — the batching buys independent
// floating-point chains and O(layers) allocations per batch, not different
// arithmetic.

// fusedForward gates the fused GEMM-epilogue forward paths: when on (the
// default), bias add, activation-mask capture and activation run inside the
// GEMM's row blocks via mat.MulBTIntoEpilogue while the output tile is still
// cache-hot; when off, the original reference path (MulBTInto, then
// addBiasRows, then a separate activation sweep) runs instead. Both orders
// apply bias then activation per element only after that element's
// accumulator chain has finished, so the two paths are bit-identical —
// pinned by the fused parity tests, which flip this toggle.
var fusedForward atomic.Bool

func init() { fusedForward.Store(true) }

// SetFusedForward enables or disables the fused forward/training paths and
// returns the previous setting. The unfused path is kept reachable as the
// bit-parity reference; production callers never need to touch this.
func SetFusedForward(on bool) bool { return fusedForward.Swap(on) }

// FusedForward reports whether the fused GEMM-epilogue paths are enabled.
func FusedForward() bool { return fusedForward.Load() }

// hiddenEpilogue fills e with the fused hidden-layer epilogue for bias b:
// bias add, optional (z > 0) mask capture into mask, then the network's
// activation — plain ReLU when leak is zero, leaky otherwise. Both kinds
// compute leak·z on the non-positive side (leak = 0 reproduces the -0.0
// bits of the reference's 0·z), so fused outputs match the unfused sweep
// bit-for-bit.
func (n *Network) hiddenEpilogue(e *mat.Epilogue, b mat.Vec, mask []bool) {
	*e = mat.Epilogue{Bias: b, Mask: mask, Act: mat.ActLeakyReLU, Leak: n.leak}
	if n.leak == 0 {
		e.Act = mat.ActReLU
	}
}

// stackBatch copies xs into a len(xs)-by-dim matrix, validating every row.
func stackBatch(xs []mat.Vec, dim int, what string) *mat.Dense {
	m := mat.NewDense(len(xs), dim)
	for i, x := range xs {
		if len(x) != dim {
			panic(fmt.Sprintf("nn: %s batch item %d length %d != %d", what, i, len(x), dim))
		}
		m.SetRow(i, x)
	}
	return m
}

// addBiasRows adds b to every row of z.
func addBiasRows(z *mat.Dense, b mat.Vec) {
	for i := 0; i < z.Rows(); i++ {
		z.RawRow(i).AddInPlace(b)
	}
}

// forwardBatch pushes the whole batch through the network, one GEMM per
// layer. When wantMasks is true it also records each instance's concatenated
// hidden-layer activity mask (the activation pattern indexing its locally
// linear region). The returned matrix holds one row of logits per instance.
func (n *Network) forwardBatch(xs []mat.Vec, wantMasks bool) (*mat.Dense, [][]bool) {
	B := len(xs)
	fused := fusedForward.Load()
	var masks [][]bool
	var maskBuf []bool
	if wantMasks {
		hidden, widest := 0, 0
		for _, h := range n.HiddenSizes() {
			hidden += h
			if h > widest {
				widest = h
			}
		}
		masks = make([][]bool, B)
		for i := range masks {
			masks[i] = make([]bool, 0, hidden)
		}
		if fused {
			maskBuf = make([]bool, B*widest)
		}
	}
	cur := stackBatch(xs, n.InputDim(), "forward")
	last := len(n.layers) - 1
	for li, l := range n.layers {
		z := mat.NewDense(B, l.Out())
		if fused {
			var epi mat.Epilogue
			if li < last {
				var mbuf []bool
				if wantMasks {
					mbuf = maskBuf[:B*l.Out()]
				}
				n.hiddenEpilogue(&epi, l.B, mbuf)
			} else {
				epi = mat.Epilogue{Bias: l.B}
			}
			cur.MulBTIntoEpilogue(l.W, z, &epi)
			if wantMasks && li < last {
				w := l.Out()
				for i := 0; i < B; i++ {
					masks[i] = append(masks[i], epi.Mask[i*w:i*w+w]...)
				}
			}
		} else {
			cur.MulBTInto(l.W, z)
			addBiasRows(z, l.B)
			if li < last {
				leak := n.leak
				for i := 0; i < B; i++ {
					row := z.RawRow(i)
					if wantMasks {
						for _, v := range row {
							masks[i] = append(masks[i], v > 0)
						}
					}
					for j, v := range row {
						if v <= 0 {
							row[j] = leak * v
						}
					}
				}
			}
		}
		cur = z
	}
	return cur, masks
}

// LogitsBatch returns the raw pre-softmax scores of every input, computed
// with one GEMM per layer. Each returned vector is bit-identical to
// Logits(xs[i]); the rows alias one freshly allocated backing matrix.
func (n *Network) LogitsBatch(xs []mat.Vec) []mat.Vec {
	if len(xs) == 0 {
		return nil
	}
	z, _ := n.forwardBatch(xs, false)
	out := make([]mat.Vec, len(xs))
	for i := range out {
		out[i] = z.RawRow(i)
	}
	return out
}

// PredictBatch returns the softmax class probabilities of every input —
// bit-identical to calling Predict per instance, at one GEMM per layer.
func (n *Network) PredictBatch(xs []mat.Vec) []mat.Vec {
	logits := n.LogitsBatch(xs)
	out := make([]mat.Vec, len(logits))
	for i, z := range logits {
		out[i] = Softmax(z)
	}
	return out
}

// ActivationPatternBatch returns every input's activation pattern (the
// concatenated hidden-layer ReLU masks), identical to per-instance
// ActivationPattern but computed via the batched forward.
func (n *Network) ActivationPatternBatch(xs []mat.Vec) [][]bool {
	if len(xs) == 0 {
		return nil
	}
	_, masks := n.forwardBatch(xs, true)
	return masks
}

// LogitsBatch is the MaxoutNetwork batched forward: per hidden layer, each
// affine piece is one GEMM over the whole batch and the elementwise max is
// taken across the piece outputs, first-piece-wins on ties exactly like the
// scalar forward. Outputs are bit-identical to per-instance Logits.
func (n *MaxoutNetwork) LogitsBatch(xs []mat.Vec) []mat.Vec {
	if len(xs) == 0 {
		return nil
	}
	z, _ := n.forwardBatchMaxout(xs, false)
	out := make([]mat.Vec, len(xs))
	for i := range out {
		out[i] = z.RawRow(i)
	}
	return out
}

// PredictBatch returns softmax probabilities for every input, bit-identical
// to per-instance Predict.
func (n *MaxoutNetwork) PredictBatch(xs []mat.Vec) []mat.Vec {
	logits := n.LogitsBatch(xs)
	out := make([]mat.Vec, len(logits))
	for i, z := range logits {
		out[i] = Softmax(z)
	}
	return out
}

// WinnerPatternBatch returns every input's winner pattern (which piece wins
// at each hidden unit), identical to per-instance WinnerPattern.
func (n *MaxoutNetwork) WinnerPatternBatch(xs []mat.Vec) [][]int {
	if len(xs) == 0 {
		return nil
	}
	_, winners := n.forwardBatchMaxout(xs, true)
	return winners
}

// forwardBatchMaxout runs the batch through all hidden MaxOut layers and the
// linear read-out. When wantWinners is true it records each instance's
// concatenated winning-piece indices.
func (n *MaxoutNetwork) forwardBatchMaxout(xs []mat.Vec, wantWinners bool) (*mat.Dense, [][]int) {
	B := len(xs)
	var winners [][]int
	if wantWinners {
		total := 0
		for _, l := range n.hidden {
			total += l.Out()
		}
		winners = make([][]int, B)
		for i := range winners {
			winners[i] = make([]int, 0, total)
		}
	}
	cur := stackBatch(xs, n.InputDim(), "maxout forward")
	fused := fusedForward.Load()
	for _, l := range n.hidden {
		// One GEMM per piece over the whole batch; in fused mode the bias
		// rides inside the GEMM's epilogue (identity activation — the max
		// fold below is the nonlinearity).
		outs := make([]*mat.Dense, l.K())
		for p, piece := range l.Pieces {
			zp := mat.NewDense(B, l.Out())
			if fused {
				epi := mat.Epilogue{Bias: piece.B}
				cur.MulBTIntoEpilogue(piece.W, zp, &epi)
			} else {
				cur.MulBTInto(piece.W, zp)
				addBiasRows(zp, piece.B)
			}
			outs[p] = zp
		}
		h := mat.NewDense(B, l.Out())
		for i := 0; i < B; i++ {
			hrow := h.RawRow(i)
			best := outs[0].RawRow(i)
			if !wantWinners {
				copy(hrow, best)
				for p := 1; p < l.K(); p++ {
					prow := outs[p].RawRow(i)
					for j, v := range prow {
						if v > hrow[j] {
							hrow[j] = v
						}
					}
				}
				continue
			}
			win := make([]int, l.Out())
			copy(hrow, best)
			for p := 1; p < l.K(); p++ {
				prow := outs[p].RawRow(i)
				for j, v := range prow {
					if v > hrow[j] {
						hrow[j] = v
						win[j] = p
					}
				}
			}
			winners[i] = append(winners[i], win...)
		}
		cur = h
	}
	z := mat.NewDense(B, n.out.Out())
	if fused {
		epi := mat.Epilogue{Bias: n.out.B}
		cur.MulBTIntoEpilogue(n.out.W, z, &epi)
	} else {
		cur.MulBTInto(n.out.W, z)
		addBiasRows(z, n.out.B)
	}
	return z, winners
}
