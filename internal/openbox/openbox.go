// Package openbox computes the exact locally linear classifier of a PLNN at
// a given instance from the network's parameters (Chu et al., KDD 2018),
// which the paper uses as ground truth for its PLNN experiments.
//
// For a ReLU network, fixing the activation pattern of an input x turns
// every hidden nonlinearity into a diagonal 0/1 matrix, so the logits become
// an exact affine function  z = W_eff x + b_eff  valid on the whole locally
// linear region containing x. This package folds the layers into (W_eff,
// b_eff), exposes the result as a plm.Linear, and fingerprints the region
// for the Region Difference metric.
package openbox

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// Extract folds the network's layers at x into the affine map of the
// locally linear region containing x: the activation pattern at x selects
// the region, composeFromPattern folds the layers. Results are shared
// per-pattern by RegionCache, so callers must treat the returned Linear as
// read-only (every consumer in this repository does).
func Extract(n *nn.Network, x mat.Vec) (*plm.Linear, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("openbox: input length %d != %d", len(x), n.InputDim())
	}
	return composeFromPattern(n, n.ActivationPattern(x))
}

// composeFromPattern folds the network's layers into the closed-form affine
// map (W_eff, b_eff) of the region a full activation pattern selects. The
// chain starts from layer 0's parameters directly (composing with the
// identity would only burn a d-cubed GEMM) and runs every later layer as one
// W_l · curW product on the blocked kernel.
//
// For a Leaky/Parametric ReLU network the inactive side multiplies by the
// negative slope instead of zeroing — still piecewise linear, same region
// structure.
func composeFromPattern(n *nn.Network, pattern []bool) (*plm.Linear, error) {
	L := n.NumLayers()
	total := 0
	for _, h := range n.HiddenSizes() {
		total += h
	}
	if len(pattern) != total {
		return nil, fmt.Errorf("openbox: pattern length %d != %d hidden units", len(pattern), total)
	}
	leak := n.Leak()
	l0 := n.LayerShared(0)
	curW := l0.W.Clone()
	curB := l0.B.Clone()
	off := 0
	applyMask := func(w *mat.Dense, b mat.Vec, width int) {
		mask := pattern[off : off+width]
		off += width
		for r, active := range mask {
			if active {
				continue
			}
			w.RawRow(r).ScaleInPlace(leak)
			b[r] *= leak
		}
	}
	if L > 1 {
		applyMask(curW, curB, l0.Out())
	}
	for li := 1; li < L; li++ {
		l := n.LayerShared(li)
		// Affine composition: z = W_l (curW x + curB) + B_l.
		nextW := l.W.Mul(curW)
		nextB := l.W.MulVec(curB).AddInPlace(l.B)
		if li < L-1 {
			applyMask(nextW, nextB, l.Out())
		}
		curW, curB = nextW, nextB
	}
	return plm.NewLinear(curW, curB, PatternKey(pattern))
}

// PatternKey returns a stable string fingerprint of an activation pattern.
func PatternKey(pattern []bool) string {
	h := fnv.New64a()
	buf := make([]byte, (len(pattern)+7)/8)
	for i, b := range pattern {
		if b {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	h.Write(buf)
	return fmt.Sprintf("plnn-%d-%016x", len(pattern), h.Sum64())
}

// SameRegion reports whether two instances share a locally linear region of
// the network (identical activation patterns).
func SameRegion(n *nn.Network, a, b mat.Vec) bool {
	pa := n.ActivationPattern(a)
	pb := n.ActivationPattern(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// PLNN adapts an nn.Network to the plm.RegionModel interface, giving the
// evaluation harness a uniform white-box view of the network.
type PLNN struct {
	Net *nn.Network
	// Regions, when non-nil, memoizes LocalAt's closed-form composition per
	// locally linear region (see RegionCache). NewCachedPLNN sets it.
	Regions *RegionCache
}

var _ plm.RegionModel = (*PLNN)(nil)
var _ plm.BatchPredictor = (*PLNN)(nil)

// NewCachedPLNNOpts wraps net with a region cache whose storage stack is
// built from opts, so repeated LocalAt calls for instances in already-seen
// regions return the memoized composed map — from RAM, or from the durable
// backing tier when one is configured.
func NewCachedPLNNOpts(net *nn.Network, opts StoreOptions) *PLNN {
	return &PLNN{Net: net, Regions: NewRegionCacheOpts(net, opts)}
}

// NewCachedPLNN wraps net with a region cache of the given capacity
// (capacity <= 0 means unbounded).
//
// Deprecated: use NewCachedPLNNOpts with StoreOptions{Capacity: capacity};
// the options form is where backing tiers live.
func NewCachedPLNN(net *nn.Network, capacity int) *PLNN {
	return NewCachedPLNNOpts(net, StoreOptions{Capacity: capacity})
}

// RegionStoreStats implements StoreReporter: the attached region cache's
// unified store counters (zero without a cache).
func (p *PLNN) RegionStoreStats() plm.StoreStats {
	if p.Regions == nil {
		return plm.StoreStats{}
	}
	return p.Regions.StoreStats()
}

// RegionCompositions implements StoreReporter: how many closed forms the
// attached cache actually composed (zero without a cache).
func (p *PLNN) RegionCompositions() int64 {
	if p.Regions == nil {
		return 0
	}
	return p.Regions.Compositions()
}

// Predict returns softmax class probabilities.
func (p *PLNN) Predict(x mat.Vec) mat.Vec { return p.Net.Predict(x) }

// PredictBatch answers the whole batch with one GEMM per layer —
// bit-identical to per-instance Predict. It implements plm.BatchPredictor,
// so api.Server's batch handler and plm.PredictAll pick it up via the usual
// type assertion.
func (p *PLNN) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	for i, x := range xs {
		if len(x) != p.Net.InputDim() {
			return nil, fmt.Errorf("openbox: batch item %d length %d != %d", i, len(x), p.Net.InputDim())
		}
	}
	return p.Net.PredictBatch(xs), nil
}

// Dim returns the network's input dimensionality.
func (p *PLNN) Dim() int { return p.Net.InputDim() }

// Classes returns the number of output classes.
func (p *PLNN) Classes() int { return p.Net.Classes() }

// RegionKey fingerprints the activation pattern at x.
func (p *PLNN) RegionKey(x mat.Vec) string {
	return PatternKey(p.Net.ActivationPattern(x))
}

// LocalAt extracts the locally linear classifier at x, through the region
// cache when one is attached. The result is shared storage — read-only.
func (p *PLNN) LocalAt(x mat.Vec) (*plm.Linear, error) {
	if p.Regions != nil {
		return p.Regions.LocalAt(x)
	}
	return Extract(p.Net, x)
}

// LocalAtAll extracts the locally linear classifier of every instance,
// computing activation patterns with the batched forward and composing each
// distinct region only once. Without an attached cache a transient one
// scopes the memoization to this call.
func (p *PLNN) LocalAtAll(xs []mat.Vec) ([]*plm.Linear, error) {
	rc := p.Regions
	if rc == nil {
		rc = NewRegionCache(p.Net, 0)
	}
	return rc.ExtractAll(xs)
}
