package api

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/plm"
)

func rcProbe(rng *rand.Rand, d int) mat.Vec {
	x := make(mat.Vec, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestResponseCacheRejectsNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		if _, err := NewResponseCache(testModel(1), c); err == nil {
			t.Fatalf("capacity %d accepted", c)
		}
	}
}

func TestResponseCacheLRUPromotesOnHit(t *testing.T) {
	inner := NewCounter(testModel(2))
	rc, err := NewResponseCache(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a, b, c := rcProbe(rng, 4), rcProbe(rng, 4), rcProbe(rng, 4)

	rc.Predict(a) // miss
	rc.Predict(b) // miss
	rc.Predict(a) // hit: promotes a over b
	rc.Predict(c) // miss: evicts b (least recently used), not a
	base := inner.Count()
	rc.Predict(a) // must still be cached
	if inner.Count() != base {
		t.Fatal("a was evicted although it was more recently used than b")
	}
	rc.Predict(b) // must have been evicted
	if inner.Count() != base+1 {
		t.Fatal("b survived although it was the least recently used entry")
	}
	hits, misses, evictions := rc.CacheStats()
	if hits != 2 || misses != 4 || evictions != 2 {
		t.Fatalf("stats %d/%d/%d, want hits=2 misses=4 evictions=2", hits, misses, evictions)
	}
	if rc.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", rc.Len())
	}
}

func TestResponseCachePredictMatchesInner(t *testing.T) {
	model := testModel(4)
	rc, err := NewResponseCache(model, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := rcProbe(rng, 4)
	want := model.Predict(x)
	for round := 0; round < 2; round++ { // miss then hit
		got := rc.Predict(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d class %d: %v != %v", round, i, got[i], want[i])
			}
		}
	}
}

func TestResponseCacheBatchCoalescesAndPreservesOrder(t *testing.T) {
	inner := NewCounter(testModel(6))
	rc, err := NewResponseCache(inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a, b := rcProbe(rng, 4), rcProbe(rng, 4)
	rc.Predict(a) // warm a
	base := inner.Count()

	batch := []mat.Vec{b, a, b.Clone(), a.Clone()} // one real miss (b), rest cached/coalesced
	got, err := rc.PredictBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Count() != base+1 {
		t.Fatalf("inner answered %d probes, want 1 (the distinct miss)", inner.Count()-base)
	}
	wantA, wantB := testModel(6).Predict(a), testModel(6).Predict(b)
	for i, want := range []mat.Vec{wantB, wantA, wantB, wantA} {
		for c := range want {
			if got[i][c] != want[c] {
				t.Fatalf("batch item %d class %d: %v != %v", i, c, got[i][c], want[c])
			}
		}
	}
	hits, misses, _ := rc.CacheStats()
	if misses != 2 { // a's warmup + b
		t.Fatalf("misses = %d, want 2", misses)
	}
	if hits != 3 { // a hit twice, duplicate b coalesced as hit
		t.Fatalf("hits = %d, want 3", hits)
	}
}

type failingBatchModel struct{ plm.Model }

func (f failingBatchModel) PredictBatch([]mat.Vec) ([]mat.Vec, error) {
	return nil, fmt.Errorf("replica down")
}

func TestResponseCacheBatchPropagatesInnerError(t *testing.T) {
	rc, err := NewResponseCache(failingBatchModel{testModel(8)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if _, err := rc.PredictBatch([]mat.Vec{rcProbe(rng, 4)}); err == nil {
		t.Fatal("inner batch failure was swallowed")
	}
}

func TestResponseCacheConcurrent(t *testing.T) {
	rc, err := NewResponseCache(testModel(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	probes := make([]mat.Vec, 8)
	for i := range probes {
		probes[i] = rcProbe(rng, 4)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				x := probes[(w+round)%len(probes)]
				if p := rc.Predict(x); len(p) != rc.Classes() {
					panic("short prediction")
				}
				if _, err := rc.PredictBatch(probes[:2]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServerStatsReportsCacheCounters drives a cached, sharded server over
// HTTP and checks the /stats reach-through: cache counters present and the
// replica breakdown still visible behind the cache.
func TestServerStatsReportsCacheCounters(t *testing.T) {
	model := testModel(12)
	shard, err := NewShard([]plm.Model{model, model})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewResponseCache(shard, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(rc, "cached"))
	defer srv.Close()
	client, err := Dial(srv.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	x := rcProbe(rng, 4)
	client.Predict(x)
	client.Predict(x)
	if err := client.Err(); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries        int64   `json:"queries"`
		CacheHits      *int64  `json:"cache_hits"`
		CacheMisses    *int64  `json:"cache_misses"`
		CacheEvictions *int64  `json:"cache_evictions"`
		CacheSize      *int    `json:"cache_size"`
		ReplicaQueries []int64 `json:"replica_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == nil || *stats.CacheHits != 1 {
		t.Fatalf("cache_hits = %v, want 1", stats.CacheHits)
	}
	if stats.CacheMisses == nil || *stats.CacheMisses != 1 {
		t.Fatalf("cache_misses = %v, want 1", stats.CacheMisses)
	}
	if stats.CacheEvictions == nil || *stats.CacheEvictions != 0 {
		t.Fatalf("cache_evictions = %v, want 0", stats.CacheEvictions)
	}
	if stats.CacheSize == nil || *stats.CacheSize != 1 {
		t.Fatalf("cache_size = %v, want 1", stats.CacheSize)
	}
	if len(stats.ReplicaQueries) != 2 {
		t.Fatalf("replica_queries = %v, want 2 replicas behind the cache", stats.ReplicaQueries)
	}
}
