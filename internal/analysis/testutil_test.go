package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: fixture files under
// testdata/src/<dir>/ carry `// want "regex"` comments on the lines where a
// diagnostic is expected, and the test fails on any unmatched expectation
// or unexpected diagnostic. Because several analyzers scope themselves by
// package path, the harness type-checks each fixture directory under a
// caller-chosen import path (e.g. "repro/internal/mat") rather than the
// directory name.

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runFixtures type-checks testdata/src/<dir>, runs the analyzers, and
// diffs diagnostics against the `// want` comments.
func runFixtures(t *testing.T, analyzers []*Analyzer, pkgPath, dir string) {
	t.Helper()
	glob := filepath.Join("testdata", "src", dir, "*.go")
	paths, err := filepath.Glob(glob)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures match %s (err=%v)", glob, err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, StdImporter(fset), pkgPath, paths, "")
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}

	diags, err := RunAnalyzers(analyzers, fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s: %s [%s]", pos, d.Message, d.Analyzer)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant finds an unmatched expectation on the diagnostic's line whose
// pattern matches the message.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			return w
		}
	}
	return nil
}

// runExpectClean asserts the analyzers report nothing for the fixture
// directory under the given package path — the scope-negative case.
func runExpectClean(t *testing.T, analyzers []*Analyzer, pkgPath, dir string) {
	t.Helper()
	glob := filepath.Join("testdata", "src", dir, "*.go")
	paths, err := filepath.Glob(glob)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures match %s (err=%v)", glob, err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, StdImporter(fset), pkgPath, paths, "")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(analyzers, fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic under package path %s at %s: %s [%s]",
			pkgPath, fmt.Sprint(fset.Position(d.Pos)), d.Message, d.Analyzer)
	}
}
