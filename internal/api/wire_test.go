package api

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/wire"
)

// The codec interop battery: every pairing of old (JSON-only) and new
// (binary-capable) peer must interoperate, the binary path must be
// bit-identical to JSON, and malformed or oversized bodies must answer
// clean 4xx statuses whatever codec they claimed to be.

func wireProbes() []mat.Vec {
	return []mat.Vec{
		{0.1, -0.2, 0.3, 0.4},
		{1, 1, 1, 1},
		{-2.5, 0, 1.0 / 3.0, math.Pi},
	}
}

func TestClientNegotiatesBinaryAutomatically(t *testing.T) {
	srv, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodecName() != wire.NameBinary {
		t.Fatalf("dialed codec = %s, want binary against an advertising server", c.CodecName())
	}
	local := testModel(100)
	xs := wireProbes()
	got, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := local.Predict(x)
		for j := range want {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("batch item %d class %d: binary path not bit-identical", i, j)
			}
		}
	}
	// Both sides metered the exchange as binary.
	if sc := srv.WireCounts(); sc.BinaryRequests == 0 || sc.BytesIn == 0 || sc.BytesOut == 0 {
		t.Fatalf("server wire counts = %+v", sc)
	}
	if cc := c.WireCounts(); cc.BinaryRequests == 0 || cc.BytesIn == 0 || cc.BytesOut == 0 {
		t.Fatalf("client wire counts = %+v", cc)
	}
}

func TestOldJSONClientAgainstNewServer(t *testing.T) {
	// An old peer knows nothing of codecs: bare POSTs with JSON bodies and
	// no Accept header must behave exactly as before the codec layer.
	_, ts := newTestServer(t)
	local := testModel(100)
	x := mat.Vec{0.1, -0.2, 0.3, 0.4}
	body, _ := json.Marshal(map[string]any{"x": x})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("old client answered with Content-Type %q", ct)
	}
	var out struct {
		Probs []float64 `json:"probs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := local.Predict(x)
	for j := range want {
		if math.Float64bits(out.Probs[j]) != math.Float64bits(want[j]) {
			t.Fatalf("class %d: JSON path not bit-identical", j)
		}
	}
}

// legacyServer is a test double of the pre-codec server: /meta without a
// codecs list, JSON-only bodies, Accept ignored. It is what a new client
// must keep working against.
func legacyServer(t *testing.T, model plm.Model) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"name": "legacy", "dim": model.Dim(), "classes": model.Classes(),
		})
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var in struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"probs": model.Predict(mat.Vec(in.X))})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var in struct {
			Xs [][]float64 `json:"xs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := make([][]float64, len(in.Xs))
		for i, x := range in.Xs {
			out[i] = model.Predict(mat.Vec(x))
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"probs": out})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestNewClientAgainstLegacyJSONServer(t *testing.T) {
	local := testModel(100)
	ts := legacyServer(t, local)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodecName() != wire.NameJSON {
		t.Fatalf("codec against a non-advertising server = %s, want json", c.CodecName())
	}
	if err := c.SetCodec(wire.NameBinary); err == nil {
		t.Fatal("binary codec forced onto a server that cannot parse it")
	}
	xs := wireProbes()
	got, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := local.Predict(x)
		for j := range want {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("batch item %d class %d differs against legacy server", i, j)
			}
		}
	}
	if cc := c.WireCounts(); cc.JSONRequests == 0 || cc.BinaryRequests != 0 {
		t.Fatalf("client wire counts = %+v, want json-only traffic", cc)
	}
}

func TestBatchProbsBitIdenticalAcrossCodecs(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := wireProbes()
	viaBinary, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetCodec(wire.NameJSON); err != nil {
		t.Fatal(err)
	}
	viaJSON, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		for j := range viaBinary[i] {
			if math.Float64bits(viaBinary[i][j]) != math.Float64bits(viaJSON[i][j]) {
				t.Fatalf("item %d class %d: binary %x != json %x", i, j,
					math.Float64bits(viaBinary[i][j]), math.Float64bits(viaJSON[i][j]))
			}
		}
	}
	// Back to binary for good measure — the server still advertises it.
	if err := c.SetCodec(wire.NameBinary); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedBinaryRequestsAnswer400(t *testing.T) {
	_, ts := newTestServer(t)
	valid := func() []byte {
		var buf bytes.Buffer
		if err := wire.WriteFrame(&buf, [][]float64{{1, 2, 3, 4}}, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"empty body":        {},
		"garbage":           []byte("this is not a frame at all"),
		"bad magic":         append([]byte("NOPE"), valid[4:]...),
		"bad version":       append([]byte("PLMB\x09"), valid[5:]...),
		"truncated header":  valid[:10],
		"truncated payload": valid[:len(valid)-8],
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/predict", wire.ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s answered %s, want 400", name, resp.Status)
		}
	}
	// A frame whose header lies about a gigantic payload is a size refusal,
	// not a syntax error.
	huge := append([]byte{}, valid[:16]...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0xff // rows
	resp, err := http.Post(ts.URL+"/batch", wire.ContentTypeBinary, bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("hostile dims answered %s, want 413", resp.Status)
	}
}

func TestOversizedBodyAnswers413(t *testing.T) {
	// Regression: a body stopped by the size cap used to answer 400 — the
	// client would conclude its request was malformed and never retry with
	// a smaller batch. Both codecs must map the cap to 413.
	srv := NewServer(testModel(100), "small")
	srv.MaxBody = 256
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	bigRows := make([][]float64, 64)
	for i := range bigRows {
		bigRows[i] = []float64{1, 2, 3, 4}
	}
	var jsonBody, binBody bytes.Buffer
	if err := (wire.JSON{}).EncodeMat(&jsonBody, "xs", bigRows); err != nil {
		t.Fatal(err)
	}
	if err := (wire.Binary{}).EncodeMat(&binBody, "xs", bigRows); err != nil {
		t.Fatal(err)
	}
	for name, post := range map[string]struct {
		ct   string
		body *bytes.Buffer
	}{
		"json":   {wire.ContentTypeJSON, &jsonBody},
		"binary": {wire.ContentTypeBinary, &binBody},
	} {
		resp, err := http.Post(ts.URL+"/batch", post.ct, bytes.NewReader(post.body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body answered %s, want 413", name, resp.Status)
		}
	}
	// A body that fits still works.
	small, _ := json.Marshal(map[string]any{"xs": [][]float64{{1, 2, 3, 4}}})
	resp, err := http.Post(ts.URL+"/batch", wire.ContentTypeJSON, bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget body answered %s", resp.Status)
	}
}

func TestStatsExposeWireCounters(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.1, -0.2, 0.3, 0.4}
	if _, err := c.PredictErr(x); err != nil { // binary
		t.Fatal(err)
	}
	if err := c.SetCodec(wire.NameJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictErr(x); err != nil { // json
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries        int64 `json:"queries"`
		BytesIn        int64 `json:"bytes_in"`
		BytesOut       int64 `json:"bytes_out"`
		BinaryRequests int64 `json:"binary_requests"`
		JSONRequests   int64 `json:"json_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 2 || stats.BinaryRequests != 1 || stats.JSONRequests != 1 {
		t.Fatalf("stats = %+v, want 2 queries split 1 binary / 1 json", stats)
	}
	if stats.BytesIn == 0 || stats.BytesOut == 0 {
		t.Fatalf("stats = %+v, want nonzero wire bytes", stats)
	}
}

func TestShardStatsReachThroughRemoteWireCounters(t *testing.T) {
	// A shard fronting a remote backend reports that backend's client-side
	// wire counters in /stats, next to its health and retry counters —
	// same reach-through pattern the cache counters use.
	inner := httptest.NewServer(NewServer(testModel(100), "inner"))
	t.Cleanup(inner.Close)
	client, err := Dial(inner.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardBackends([]Backend{
		NewRemoteBackend(client),
		NewLocalBackend(testModel(100), "local-0"),
	}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	outer := httptest.NewServer(NewServer(s, "outer"))
	t.Cleanup(outer.Close)

	// Enough traffic that the remote backend certainly served some of it.
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = []float64{0.1, 0.2, 0.3, 0.4}
	}
	body, _ := json.Marshal(map[string]any{"xs": xs})
	resp, err := http.Post(outer.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch answered %s", resp.Status)
	}

	sr, err := http.Get(outer.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		Backends []struct {
			Kind string       `json:"kind"`
			Wire *wire.Counts `json:"wire"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Backends) != 2 {
		t.Fatalf("%d backends in stats", len(stats.Backends))
	}
	for _, b := range stats.Backends {
		switch b.Kind {
		case "remote":
			if b.Wire == nil {
				t.Fatal("remote backend has no wire counters")
			}
			// The dialed inner hop negotiated binary automatically.
			if b.Wire.BinaryRequests == 0 || b.Wire.BytesOut == 0 {
				t.Fatalf("remote wire counters = %+v", *b.Wire)
			}
		case "local":
			if b.Wire != nil {
				t.Fatalf("local backend reports wire counters %+v", *b.Wire)
			}
		}
	}
}

func TestFloat32OptIn(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFloat32(true)
	local := testModel(100)
	x := mat.Vec{0.1, -0.2, 0.3, 0.4}
	got, err := c.PredictErr(x)
	if err != nil {
		t.Fatal(err)
	}
	// f32 is lossy by contract: approximately right, no bit guarantees.
	if !got.EqualApprox(local.Predict(x), 1e-6) {
		t.Fatalf("f32 answer %v too far from %v", got, local.Predict(x))
	}
	// The response really did ride 4-byte elements: 16-byte header plus
	// classes×4 payload, as the client's received-bytes counter shows.
	if cc := c.WireCounts(); cc.BytesIn != int64(16+4*local.Classes()) {
		t.Fatalf("f32 response was %d bytes, want %d", cc.BytesIn, 16+4*local.Classes())
	}
}
