package lmt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// blobs builds k Gaussian clusters, one per class, at spread-out centers.
func blobs(rng *rand.Rand, perClass, classes, d int) ([]mat.Vec, []int) {
	xs := make([]mat.Vec, 0, perClass*classes)
	ys := make([]int, 0, perClass*classes)
	for c := 0; c < classes; c++ {
		center := make(mat.Vec, d)
		for j := range center {
			// Deterministic well-separated centers on a hypercube lattice.
			if (c>>uint(j%4))&1 == 1 {
				center[j] = 3
			} else {
				center[j] = -3
			}
		}
		for i := 0; i < perClass; i++ {
			x := center.Clone()
			for j := range x {
				x[j] += rng.NormFloat64() * 0.4
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return xs, ys
}

func TestTrainLogRegSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := blobs(rng, 60, 3, 4)
	lr, err := TrainLogReg(xs, ys, 3, LogRegConfig{Epochs: 150})
	if err != nil {
		t.Fatal(err)
	}
	if acc := lr.Accuracy(xs, ys); acc < 0.98 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestTrainLogRegErrors(t *testing.T) {
	cases := []struct {
		name    string
		xs      []mat.Vec
		ys      []int
		classes int
	}{
		{"empty", nil, nil, 2},
		{"mismatch", []mat.Vec{{1}}, []int{0, 1}, 2},
		{"one class", []mat.Vec{{1}}, []int{0}, 1},
		{"bad label", []mat.Vec{{1}}, []int{5}, 2},
		{"ragged", []mat.Vec{{1}, {1, 2}}, []int{0, 1}, 2},
	}
	for _, c := range cases {
		if _, err := TrainLogReg(c.xs, c.ys, c.classes, LogRegConfig{Epochs: 1}); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestLogRegPredictIsProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys := blobs(rng, 20, 2, 3)
	lr, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	p := lr.Predict(mat.Vec{0.5, -0.5, 1})
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", p.Sum())
	}
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
	}
}

func TestL1InducesSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Only the first dimension is informative; the other nine are noise.
	n := 200
	xs := make([]mat.Vec, n)
	ys := make([]int, n)
	for i := range xs {
		x := make(mat.Vec, 10)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if i%2 == 0 {
			x[0] += 4
			ys[i] = 0
		} else {
			x[0] -= 4
			ys[i] = 1
		}
		xs[i] = x
	}
	dense, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 100, L1: -1}) // -1 -> clamp to 0: no penalty
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 100, L1: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Sparsity() <= dense.Sparsity() {
		t.Fatalf("L1 did not increase sparsity: %v vs %v", sparse.Sparsity(), dense.Sparsity())
	}
	if acc := sparse.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("sparse model accuracy = %v", acc)
	}
}

func TestLogRegLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys := blobs(rng, 30, 2, 2)
	short, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 80})
	if err != nil {
		t.Fatal(err)
	}
	if long.Loss(xs, ys) >= short.Loss(xs, ys) {
		t.Fatalf("more epochs did not reduce loss: %v vs %v", long.Loss(xs, ys), short.Loss(xs, ys))
	}
}

func TestLogRegLinearView(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := blobs(rng, 20, 2, 2)
	lr, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := lr.Linear("leaf-0")
	if err != nil {
		t.Fatal(err)
	}
	if lin.Key != "leaf-0" {
		t.Fatalf("key = %q", lin.Key)
	}
	// The linear view must reproduce the classifier's own probabilities.
	x := xs[0]
	logits := lin.Logits(x)
	p := lr.Predict(x)
	// argmax agreement is enough to catch transposition bugs; check exact
	// probabilities too via softmax of logits.
	if logits.ArgMax() != p.ArgMax() {
		t.Fatal("linear view disagrees with classifier")
	}
}

func TestLogRegDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs, ys := blobs(rng, 20, 2, 3)
	a, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLogReg(xs, ys, 2, LogRegConfig{Epochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !a.W.EqualApprox(b.W, 0) || !a.B.EqualApprox(b.B, 0) {
		t.Fatal("full-batch training should be deterministic")
	}
}

func TestSparsityEdgeCases(t *testing.T) {
	lr := &LogReg{W: mat.NewDense(2, 3), B: mat.NewVec(2)}
	if lr.Sparsity() != 1 {
		t.Fatalf("all-zero sparsity = %v", lr.Sparsity())
	}
	if (&LogReg{W: mat.NewDense(0, 0), B: nil}).Sparsity() != 0 {
		t.Fatal("empty sparsity should be 0")
	}
}
