// Package nn implements the piecewise linear neural network (PLNN) substrate
// of the paper: a fully connected ReLU network with a softmax read-out,
// trained by mini-batch SGD. Because every activation is piecewise linear,
// the network is a PLM by construction — inside the region selected by an
// activation pattern the logits are an exact affine function of the input,
// which is what the OpenBox extractor (internal/openbox) recovers as ground
// truth for the experiments.
package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// ReLU applies max(0, x) elementwise, returning a new vector.
func ReLU(x mat.Vec) mat.Vec {
	out := make(mat.Vec, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// ReLUMask returns the 0/1 activity mask of x: 1 where x > 0.
// The concatenated masks of all hidden layers form the activation pattern
// that indexes the locally linear region of the PLNN.
func ReLUMask(x mat.Vec) []bool {
	m := make([]bool, len(x))
	for i, v := range x {
		m[i] = v > 0
	}
	return m
}

// Softmax returns the softmax of z with the max-subtraction trick, so it is
// finite for any finite input. The output sums to 1.
func Softmax(z mat.Vec) mat.Vec {
	return SoftmaxInto(make(mat.Vec, len(z)), z)
}

// SoftmaxInto writes softmax(z) into dst, which must have the same length
// and may alias z, and returns dst. Softmax delegates here, so the two are
// bit-identical by construction — a contract the training parity tests
// rely on; the variant exists so the batched training path can reuse one
// row buffer per mini-batch instead of allocating per sample.
func SoftmaxInto(dst, z mat.Vec) mat.Vec {
	if len(dst) != len(z) {
		panic(fmt.Sprintf("nn: SoftmaxInto dst length %d != %d", len(dst), len(z)))
	}
	if len(z) == 0 {
		return dst
	}
	m := z.Max()
	var sum float64
	for i, v := range z {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// LogSoftmax returns log(softmax(z)) computed stably.
func LogSoftmax(z mat.Vec) mat.Vec {
	if len(z) == 0 {
		return mat.Vec{}
	}
	m := z.Max()
	var sum float64
	for _, v := range z {
		sum += math.Exp(v - m)
	}
	lse := m + math.Log(sum)
	out := make(mat.Vec, len(z))
	for i, v := range z {
		out[i] = v - lse
	}
	return out
}

// CrossEntropy returns -log(p[label]) with a floor to avoid -Inf on
// saturated probabilities.
func CrossEntropy(p mat.Vec, label int) float64 {
	const floor = 1e-300
	v := p[label]
	if v < floor {
		v = floor
	}
	return -math.Log(v)
}
