//go:build !race

package mat

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
