package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// The PR-3 headline benchmarks: a 256-instance server-side batch forward
// through the paper's image architecture (784-256-128-100-10), batched GEMM
// versus the per-instance loop the server ran before. Outputs are
// bit-identical; only the schedule differs.

const benchBatch = 256

func benchNetAndBatch(b *testing.B) (*Network, []mat.Vec) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	n := New(rng, 784, 256, 128, 100, 10)
	xs := randBatch(rng, benchBatch, 784)
	return n, xs
}

func BenchmarkLogitsLoop256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Logits(x)
		}
	}
}

func BenchmarkLogitsBatch256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkPredictLoop256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Predict(x)
		}
	}
}

func BenchmarkPredictBatch256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.PredictBatch(xs)
	}
}

func BenchmarkMaxoutLogitsBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	n := NewMaxout(rng, 3, 128, 64, 32, 10)
	xs := randBatch(rng, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkMaxoutLogitsLoop64(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	n := NewMaxout(rng, 3, 128, 64, 32, 10)
	xs := randBatch(rng, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Logits(x)
		}
	}
}
