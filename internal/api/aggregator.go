package api

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// AggregatorConfig tunes cross-caller query batching. The zero value gives
// usable defaults.
type AggregatorConfig struct {
	// MaxBatch flushes the pending queue as soon as it holds this many
	// probes, without waiting for the window to elapse. Default 256.
	MaxBatch int
	// Window bounds how long the earliest pending probe waits before the
	// queue is flushed regardless of size. It trades a little latency per
	// probe for fewer round trips; keep it well below the service's own
	// round-trip time budget. Default 2ms. With Adaptive set it only seeds
	// the window until the first flush has been timed.
	Window time.Duration
	// Adaptive replaces the fixed Window with one tracked from observation:
	// the aggregator keeps an exponentially weighted moving average of each
	// flush's round-trip time and sets the wait window to WindowFraction of
	// it, clamped to [MinWindow, MaxWindow]. A local in-process model (RTT
	// in microseconds) then flushes near-instantly, while a slow remote
	// (RTT in tens of milliseconds) batches aggressively — no hand tuning
	// per deployment. See DESIGN.md §7.
	Adaptive bool
	// WindowFraction is the fraction of the RTT estimate used as the wait
	// window when Adaptive is set. Default 0.5.
	WindowFraction float64
	// MinWindow and MaxWindow bound the adaptive window. Defaults 50µs and
	// 20ms.
	MinWindow time.Duration
	MaxWindow time.Duration
}

func (c *AggregatorConfig) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.Adaptive {
		if c.WindowFraction <= 0 {
			c.WindowFraction = 0.5
		}
		if c.MinWindow <= 0 {
			c.MinWindow = 50 * time.Microsecond
		}
		if c.MaxWindow <= 0 {
			c.MaxWindow = 20 * time.Millisecond
		}
		if c.MinWindow > c.MaxWindow {
			c.MinWindow = c.MaxWindow
		}
	}
}

// Aggregator coalesces probe batches from many concurrent callers into
// single PredictBatch round trips against the wrapped model. Interpretation
// jobs running in parallel — a core.Pool's workers, say — each submit their
// own d+k sample-set probes; the aggregator holds them briefly and ships one
// combined batch, so the per-job round trips of a naive pool collapse into
// one wire exchange per "wave" of concurrent work.
//
// A flush is triggered by whichever comes first: the pending queue reaching
// MaxBatch probes, or the oldest pending probe having waited Window. Each
// caller receives exactly its own results, in the order it submitted them,
// so callers cannot observe each other. The wrapped model's responses are a
// pure function of the input, hence interpretations computed through an
// aggregator are bit-identical to unaggregated ones.
//
// An Aggregator is safe for concurrent use. Close it when the concurrent
// jobs finish; a closed aggregator degrades to a transparent pass-through,
// so late stragglers still get answers.
type Aggregator struct {
	inner plm.Model
	cfg   AggregatorConfig

	mu      sync.Mutex
	pending []*aggWaiter
	count   int
	timer   *time.Timer
	closed  bool

	flushes atomic.Int64
	probes  atomic.Int64

	// window is the current wait window in nanoseconds. Fixed configs set
	// it once; adaptive configs rewrite it after every timed flush.
	window atomic.Int64
	// rttEWMA tracks the smoothed flush round-trip time in nanoseconds
	// (0 until the first flush completes). Guarded by rttMu, not mu: RTT
	// updates happen during flushes, outside the queue lock.
	rttMu   sync.Mutex
	rttEWMA float64

	errMu sync.Mutex
	err   error
}

// aggWaiter is one caller's submission: its probes, the slot its results
// land in, and the latch the caller blocks on until some flush serves it.
type aggWaiter struct {
	xs   []mat.Vec
	out  []mat.Vec
	err  error
	done chan struct{}
}

// NewAggregator wraps inner with a query aggregator. inner should offer a
// batch endpoint (plm.BatchPredictor) for the coalescing to save round
// trips; without one the aggregator still works but each probe reaches the
// model individually.
func NewAggregator(inner plm.Model, cfg AggregatorConfig) *Aggregator {
	cfg.setDefaults()
	a := &Aggregator{inner: inner, cfg: cfg}
	a.window.Store(int64(cfg.Window))
	return a
}

// Dim forwards to the wrapped model.
func (a *Aggregator) Dim() int { return a.inner.Dim() }

// Classes forwards to the wrapped model.
func (a *Aggregator) Classes() int { return a.inner.Classes() }

// Flushes returns the number of batches shipped to the wrapped model so
// far — the aggregator's round-trip count when the model is remote. Probes
// forwarded individually because the model offers no batch endpoint are
// counted in Probes but never as flushes.
func (a *Aggregator) Flushes() int64 { return a.flushes.Load() }

// Probes returns the total number of probes served across all flushes.
func (a *Aggregator) Probes() int64 { return a.probes.Load() }

// CurrentWindow returns the wait window currently in force: the configured
// Window for fixed setups, the latest RTT-derived value for adaptive ones.
func (a *Aggregator) CurrentWindow() time.Duration {
	return time.Duration(a.window.Load())
}

// RTT returns the smoothed flush round-trip time an adaptive aggregator has
// observed so far (0 before the first flush, or when Adaptive is off).
func (a *Aggregator) RTT() time.Duration {
	a.rttMu.Lock()
	defer a.rttMu.Unlock()
	return time.Duration(a.rttEWMA)
}

// observeRTT folds one flush's measured round trip into the EWMA and derives
// the next wait window from it.
func (a *Aggregator) observeRTT(rtt time.Duration) {
	w := time.Duration(a.cfg.WindowFraction * a.updateEWMA(rtt))
	if w < a.cfg.MinWindow {
		w = a.cfg.MinWindow
	}
	if w > a.cfg.MaxWindow {
		w = a.cfg.MaxWindow
	}
	a.window.Store(int64(w))
}

// updateEWMA folds one measured round trip into the smoothed RTT and
// returns the new value.
func (a *Aggregator) updateEWMA(rtt time.Duration) float64 {
	// alpha 0.3: reacts to a genuine latency shift within a few flushes
	// while one slow outlier moves the window under a third of the way.
	const alpha = 0.3
	a.rttMu.Lock()
	defer a.rttMu.Unlock()
	if a.rttEWMA == 0 {
		a.rttEWMA = float64(rtt)
	} else {
		a.rttEWMA = alpha*float64(rtt) + (1-alpha)*a.rttEWMA
	}
	return a.rttEWMA
}

// Err returns the first batch error encountered via Predict, if any
// (PredictBatch reports errors directly). Mirrors Client.Err.
func (a *Aggregator) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// ResetErr clears the sticky error.
func (a *Aggregator) ResetErr() {
	a.errMu.Lock()
	a.err = nil
	a.errMu.Unlock()
}

func (a *Aggregator) record(err error) {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	if a.err == nil {
		a.err = err
	}
}

// Predict implements plm.Model: the probe joins the pending queue and the
// call blocks until a flush serves it. Batch errors degrade to the uniform
// distribution and are recorded stickily, like Client.Predict.
func (a *Aggregator) Predict(x mat.Vec) mat.Vec {
	out, err := a.submit([]mat.Vec{x})
	if err != nil {
		a.record(err)
		u := make(mat.Vec, a.inner.Classes())
		return u.Fill(1 / float64(a.inner.Classes()))
	}
	return out[0]
}

// PredictBatch implements plm.BatchPredictor: the whole batch joins the
// pending queue as one unit and is answered in submission order.
func (a *Aggregator) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	return a.submit(xs)
}

// Close flushes whatever is pending and turns the aggregator into a
// pass-through. Safe to call more than once.
func (a *Aggregator) Close() {
	a.mu.Lock()
	a.closed = true
	batch := a.takeLocked()
	a.mu.Unlock()
	a.flush(batch)
}

// submit enqueues one caller's probes and blocks until they are answered.
//
// Liveness invariant: at every mu release, a nonempty pending queue has an
// armed timer, so every waiter is collected by a size-triggered take, a
// timer flush, or Close. A stale timer firing after its batch was already
// taken either finds the queue empty (no-op) or flushes a newer batch a
// little early (harmless).
func (a *Aggregator) submit(xs []mat.Vec) ([]mat.Vec, error) {
	w, batch, closed := a.enqueue(xs)
	if closed {
		// A flush is one shipped batch. Without a batch endpoint the
		// pass-through probes go out individually, so counting a flush here
		// would overstate how well the run batched.
		a.probes.Add(int64(len(xs)))
		if _, ok := a.inner.(plm.BatchPredictor); ok {
			a.flushes.Add(1)
		}
		return predictAllErr(a.inner, xs)
	}
	a.flush(batch)
	<-w.done
	return w.out, w.err
}

// enqueue adds the caller's probes to the pending queue under the lock,
// returning a full batch when this submission tripped the size trigger and
// closed=true when the aggregator is a pass-through. The flush itself and
// the wait both happen outside the lock, in submit.
func (a *Aggregator) enqueue(xs []mat.Vec) (w *aggWaiter, batch []*aggWaiter, closed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, nil, true
	}
	w = &aggWaiter{xs: xs, done: make(chan struct{})}
	a.pending = append(a.pending, w)
	a.count += len(xs)
	if a.count >= a.cfg.MaxBatch {
		batch = a.takeLocked()
	} else if a.timer == nil {
		a.timer = time.AfterFunc(a.CurrentWindow(), a.timerFlush)
	}
	return w, batch, false
}

// takeLocked detaches the entire pending queue. Callers hold mu.
func (a *Aggregator) takeLocked() []*aggWaiter {
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	batch := a.pending
	a.pending = nil
	a.count = 0
	return batch
}

func (a *Aggregator) timerFlush() {
	a.mu.Lock()
	batch := a.takeLocked()
	a.mu.Unlock()
	a.flush(batch)
}

// flush ships one combined batch and demuxes the answers back to each
// waiter in submission order. It runs outside mu, so new submissions queue
// up for the next flush while this round trip is in flight — that overlap
// is where a pool's solve-one-while-probing-others concurrency comes from.
func (a *Aggregator) flush(batch []*aggWaiter) {
	if len(batch) == 0 {
		return
	}
	n := 0
	for _, w := range batch {
		n += len(w.xs)
	}
	xs := make([]mat.Vec, 0, n)
	for _, w := range batch {
		xs = append(xs, w.xs...)
	}
	// Same rule as the pass-through: a flush is counted only when the
	// probes actually ship as one batch round trip.
	a.probes.Add(int64(n))
	if _, ok := a.inner.(plm.BatchPredictor); ok {
		a.flushes.Add(1)
	}
	start := time.Now()
	ys, err := predictAllErr(a.inner, xs)
	if a.cfg.Adaptive && err == nil {
		a.observeRTT(time.Since(start))
	}
	off := 0
	for _, w := range batch {
		if err != nil {
			w.err = err
		} else {
			w.out = ys[off : off+len(w.xs)]
		}
		off += len(w.xs)
		close(w.done)
	}
}

// predictAllErr is plm.PredictAll with the batch error surfaced instead of
// swallowed, so PredictBatch callers see the failure directly. Callers that
// reach the aggregator through plm.PredictAll still get that helper's
// per-probe fallback (each probe re-submitted individually, failures
// degrading to uniform with a sticky record) — the Client convention: check
// Err when the interpretation run finishes.
func predictAllErr(m plm.Model, xs []mat.Vec) ([]mat.Vec, error) {
	if bp, ok := m.(plm.BatchPredictor); ok {
		out, err := bp.PredictBatch(xs)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out, nil
}

// DialAggregated dials a served model and wraps the client in an
// aggregator: the one-call path for pointing a pool of interpreters at a
// remote API. Close the aggregator when the jobs finish; the client is also
// returned for error inspection (Client.Err).
func DialAggregated(baseURL string, httpc *http.Client, retries int, cfg AggregatorConfig) (*Aggregator, *Client, error) {
	client, err := Dial(baseURL, httpc, retries)
	if err != nil {
		return nil, nil, err
	}
	return NewAggregator(client, cfg), client, nil
}

var _ plm.Model = (*Aggregator)(nil)
var _ plm.BatchPredictor = (*Aggregator)(nil)
