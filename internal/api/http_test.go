package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mat"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(testModel(100), "test-model")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestDialFetchesMeta(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "test-model" || c.Dim() != 4 || c.Classes() != 3 {
		t.Fatalf("meta = %s %d %d", c.Name(), c.Dim(), c.Classes())
	}
}

func TestDialBadURL(t *testing.T) {
	if _, err := Dial("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond}, 0); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestRemotePredictMatchesLocal(t *testing.T) {
	srv, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	local := testModel(100)
	x := mat.Vec{0.1, -0.2, 0.3, 0.4}
	got, err := c.PredictErr(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(local.Predict(x), 1e-12) {
		t.Fatalf("remote %v vs local %v", got, local.Predict(x))
	}
	if srv.Queries() != 1 {
		t.Fatalf("server counted %d queries", srv.Queries())
	}
	// Through the plm.Model interface too.
	if !c.Predict(x).EqualApprox(local.Predict(x), 1e-12) {
		t.Fatal("interface path differs")
	}
	if c.Err() != nil {
		t.Fatalf("unexpected sticky error: %v", c.Err())
	}
}

func TestRemoteBatch(t *testing.T) {
	srv, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := []mat.Vec{{0, 0, 0, 0}, {1, 1, 1, 1}, {0.5, 0, 0.5, 0}}
	got, err := c.PredictBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	local := testModel(100)
	for i, x := range xs {
		if !got[i].EqualApprox(local.Predict(x), 1e-12) {
			t.Fatalf("batch item %d differs", i)
		}
	}
	if srv.Queries() != 3 {
		t.Fatalf("batch should count per item, got %d", srv.Queries())
	}
	if srv.Requests() != 1 {
		t.Fatalf("one batch is one round trip, got %d", srv.Requests())
	}
}

func TestServerCountsRoundTrips(t *testing.T) {
	srv, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0, 0, 0, 0}
	c.Predict(x)                                                     // 1 trip, 1 query
	if _, err := c.PredictBatch([]mat.Vec{x, x, x, x}); err != nil { // 1 trip, 4 queries
		t.Fatal(err)
	}
	if srv.Requests() != 2 || srv.Queries() != 5 {
		t.Fatalf("server saw %d trips / %d queries, want 2 / 5", srv.Requests(), srv.Queries())
	}
	// Aggregating two callers' probes halves the trips a naive client pays.
	agg := NewAggregator(c, AggregatorConfig{MaxBatch: 2, Window: time.Minute})
	defer agg.Close()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			agg.Predict(x)
		}()
	}
	wg.Wait()
	if srv.Requests() != 3 {
		t.Fatalf("aggregated pair should add one trip, server saw %d", srv.Requests())
	}
}

func TestDialAggregated(t *testing.T) {
	srv, ts := newTestServer(t)
	agg, client, err := DialAggregated(ts.URL, nil, 0, AggregatorConfig{MaxBatch: 3, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if agg.Dim() != 4 || agg.Classes() != 3 {
		t.Fatalf("meta not forwarded: %d/%d", agg.Dim(), agg.Classes())
	}
	local := testModel(100)
	x := mat.Vec{0.2, 0.1, 0, 0.4}
	out, err := agg.PredictBatch([]mat.Vec{x, x, x}) // exactly MaxBatch: one trip
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if !out[i].EqualApprox(local.Predict(x), 1e-12) {
			t.Fatalf("item %d differs from local model", i)
		}
	}
	if srv.Requests() != 1 {
		t.Fatalf("server saw %d round trips, want 1", srv.Requests())
	}
	if client.Err() != nil {
		t.Fatal(client.Err())
	}
	if _, _, err := DialAggregated("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond}, 0, AggregatorConfig{}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictErr(mat.Vec{1, 2}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := c.PredictBatch([]mat.Vec{{1, 2}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	// Raw malformed JSON.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON -> %s", resp.Status)
	}
	// Unknown fields rejected.
	resp, err = http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"x":[0,0,0,0],"extra":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field -> %s", resp.Status)
	}
}

func TestStickyErrorOnServerLoss(t *testing.T) {
	srv := NewServer(testModel(100), "gone")
	ts := httptest.NewServer(srv)
	c, err := Dial(ts.URL, &http.Client{Timeout: 300 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	p := c.Predict(mat.Vec{0, 0, 0, 0})
	if len(p) != 3 {
		t.Fatalf("fallback has %d entries", len(p))
	}
	if c.Err() == nil {
		t.Fatal("sticky error not recorded")
	}
	c.ResetErr()
	if c.Err() != nil {
		t.Fatal("ResetErr failed")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Predict(mat.Vec{0, 0, 0, 0})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats -> %s", resp.Status)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 1 || stats.RoundTrips != 1 {
		t.Fatalf("stats = %+v, want 1 query over 1 round trip", stats)
	}
}

func TestValidateOverHTTP(t *testing.T) {
	// End to end: the handshake validator works through the remote client.
	_, ts := newTestServer(t)
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(c, mat.Vec{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
}

func TestServerSurvivesConcurrentClients(t *testing.T) {
	// Interpreters hammer the service; predictions are read-only so the
	// server must be race-free under parallel load (run with -race).
	srv, ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(ts.URL, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				x := mat.Vec{float64(i) / 20, 0.5, float64(seed) / 8, 0}
				if _, err := c.PredictErr(x); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Queries() != 8*20 {
		t.Fatalf("served %d queries, want 160", srv.Queries())
	}
}

func TestRetryStopsOnClientError(t *testing.T) {
	// Regression: a 4xx means the request itself is wrong — re-sending the
	// identical payload N more times wasted round trips and delayed the
	// caller seeing its own mistake. Count the attempts that reach the
	// server: a 400 must arrive exactly once, however many retries the
	// client was built with.
	var attempts atomic.Int64
	inner := NewServer(testModel(100), "strict")
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch strings.TrimPrefix(r.URL.Path, "/v1") {
		case "/predict", "/batch":
			attempts.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer counting.Close()
	c, err := Dial(counting.URL, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong input length -> server responds 400.
	if _, err := c.PredictErr(mat.Vec{1, 2}); err == nil {
		t.Fatal("bad request accepted")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("400 response was sent %d times, want 1", got)
	}
	attempts.Store(0)
	if _, err := c.PredictBatch([]mat.Vec{{1, 2}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("batch 400 was sent %d times, want 1", got)
	}
}

func TestRetryStillCoversServerErrors(t *testing.T) {
	// 5xx stays retryable: a persistent 503 is attempted 1 + retries times.
	var attempts atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/predict" || r.URL.Path == "/v1/predict" {
			attempts.Add(1)
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		NewServer(testModel(100), "down").ServeHTTP(w, r)
	}))
	defer down.Close()
	c, err := Dial(down.URL, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictErr(mat.Vec{0, 0, 0, 0}); err == nil {
		t.Fatal("persistent 503 succeeded")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("503 attempted %d times, want 3 (1 + 2 retries)", got)
	}
}

func TestEmptyBatchIsNotARoundTrip(t *testing.T) {
	// Regression: an empty /batch used to count a round trip with zero
	// queries, skewing the queries/round_trips ratio the integration gate
	// reads off /stats.
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`{"xs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch -> %s", resp.Status)
	}
	var out struct {
		Probs [][]float64 `json:"probs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Probs) != 0 {
		t.Fatalf("empty batch answered %d items", len(out.Probs))
	}
	if srv.Requests() != 0 || srv.Queries() != 0 {
		t.Fatalf("empty batch counted: %d trips / %d queries", srv.Requests(), srv.Queries())
	}
	// Client side: an empty batch never reaches the wire at all.
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := c.PredictBatch(nil); err != nil || out != nil {
		t.Fatalf("client empty batch: %v, %v", out, err)
	}
	if srv.Requests() != 0 {
		t.Fatalf("client shipped an empty batch: %d trips", srv.Requests())
	}
}

func TestAdaptiveWindowConvergesOverLatentHTTP(t *testing.T) {
	// The end-to-end form of the adaptive-window contract: against a
	// served model with injected latency, DialAggregated's window must
	// converge to a fraction of the genuinely observed HTTP round trip.
	srv, ts := newTestServer(t)
	srv.Latency = 8 * time.Millisecond
	agg, client, err := DialAggregated(ts.URL, nil, 0, AggregatorConfig{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 6; i++ {
		agg.Predict(x)
	}
	if err := client.Err(); err != nil {
		t.Fatal(err)
	}
	rtt, window := agg.RTT(), agg.CurrentWindow()
	if rtt < srv.Latency {
		t.Fatalf("RTT estimate %v below injected server latency %v", rtt, srv.Latency)
	}
	if window < srv.Latency/4 || window > 20*time.Millisecond {
		t.Fatalf("window %v out of range for %v RTT", window, rtt)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	// A proxy that fails the first attempt of every request path.
	inner := NewServer(testModel(100), "flaky-remote")
	var failNext bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/predict" {
			failNext = !failNext
			if failNext {
				http.Error(w, "transient", http.StatusBadGateway)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer proxy.Close()
	c, err := Dial(proxy.URL, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictErr(mat.Vec{0, 0, 0, 0}); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
}
