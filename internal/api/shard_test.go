package api

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/plm"
)

func shardOf(t *testing.T, n int, seed int64) *Shard {
	t.Helper()
	replicas := make([]plm.Model, n)
	for i := range replicas {
		// Same seed: interchangeable copies, each its own value.
		replicas[i] = testModel(seed)
	}
	s, err := NewShard(replicas)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardBitIdenticalAcrossReplicaCounts(t *testing.T) {
	// The split must be invisible: sharded batch predictions are
	// bit-identical to the single model's, whatever the replica count.
	single := testModel(200)
	xs := make([]mat.Vec, 13) // deliberately not divisible by 2 or 4
	for i := range xs {
		xs[i] = mat.Vec{float64(i) / 13, 0.5, -float64(i) / 7, 0.25}
	}
	want := make([]mat.Vec, len(xs))
	for i, x := range xs {
		want[i] = single.Predict(x)
	}
	for _, n := range []int{1, 2, 4} {
		s := shardOf(t, n, 200)
		got, err := s.PredictBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if !got[i].EqualApprox(want[i], 0) {
				t.Fatalf("replicas=%d item %d: %v != %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestShardOrderPreservedUnderConcurrentBatches(t *testing.T) {
	// Many goroutines fire interleaved batches; each must get its own
	// answers in its own submission order. Run with -race.
	s := shardOf(t, 4, 201)
	single := testModel(201)
	const callers, perCaller = 12, 11
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, perCaller)
			for i := range xs {
				xs[i] = mat.Vec{float64(g) / callers, float64(i) / perCaller, 0.1, -0.1}
			}
			out, err := s.PredictBatch(xs)
			if err != nil {
				errs <- err
				return
			}
			for i, x := range xs {
				if want := single.Predict(x); !out[i].EqualApprox(want, 0) {
					errs <- fmt.Errorf("caller %d item %d: got %v want %v", g, i, out[i], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	queries := s.ReplicaQueries()
	var sum int64
	for _, q := range queries {
		sum += q
	}
	if sum != callers*perCaller {
		t.Fatalf("replica queries sum to %d, want %d (%v)", sum, callers*perCaller, queries)
	}
}

func TestShardSpreadsBatchAcrossReplicas(t *testing.T) {
	s := shardOf(t, 4, 202)
	xs := make([]mat.Vec, 16)
	for i := range xs {
		xs[i] = mat.Vec{float64(i), 0, 0, 0}
	}
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	for r, q := range s.ReplicaQueries() {
		if q != 4 {
			t.Fatalf("replica %d served %d of a 16-item batch over 4 replicas, want 4", r, q)
		}
	}
}

func TestShardRoundRobinsSinglePredictions(t *testing.T) {
	s := shardOf(t, 3, 203)
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 9; i++ {
		s.Predict(x)
	}
	for r, q := range s.ReplicaQueries() {
		if q != 3 {
			t.Fatalf("replica %d served %d singles, want 3", r, q)
		}
	}
}

// failingModel errors on the batch endpoint — a dead remote replica.
type failingModel struct{ plm.Model }

func (f failingModel) PredictBatch([]mat.Vec) ([]mat.Vec, error) {
	return nil, errors.New("replica down")
}

func TestShardPropagatesReplicaFailure(t *testing.T) {
	// A partial answer would silently corrupt interpretations, so one dead
	// replica must fail the whole batch.
	s, err := NewShard([]plm.Model{testModel(204), failingModel{testModel(204)}})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]mat.Vec, 8)
	for i := range xs {
		xs[i] = mat.Vec{1, 0, 0, 0}
	}
	if _, err := s.PredictBatch(xs); err == nil {
		t.Fatal("dead replica did not fail the batch")
	}
}

func TestFailedBatchIsNotARoundTrip(t *testing.T) {
	// A batch the model could not answer delivered nothing: counting it
	// would skew the queries/round_trips ratio, and the client's 5xx retry
	// loop would multiply the skew.
	srv := NewServer(failingModel{testModel(208)}, "broken")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictBatch([]mat.Vec{{1, 0, 0, 0}, {0, 1, 0, 0}}); err == nil {
		t.Fatal("failing model answered the batch")
	}
	if srv.Requests() != 0 || srv.Queries() != 0 {
		t.Fatalf("failed batch counted: %d trips / %d queries", srv.Requests(), srv.Queries())
	}
}

func TestShardRejectsBadReplicaSets(t *testing.T) {
	if _, err := NewShard(nil); err == nil {
		t.Fatal("empty replica set accepted")
	}
	mismatched := []plm.Model{testModel(205), plainModel{&echoBatcher{}}}
	if _, err := NewShard(mismatched); err == nil {
		t.Fatal("dim/class mismatch accepted")
	}
}

func TestShardEmptyBatch(t *testing.T) {
	s := shardOf(t, 2, 206)
	out, err := s.PredictBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestShardedServerReportsPerReplicaStats(t *testing.T) {
	// The full plmserve -replicas wiring: shard behind Server, /batch fans
	// out, /stats carries the per-replica breakdown.
	s := shardOf(t, 4, 207)
	srv := NewServer(s, "sharded")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]mat.Vec, 8)
	for i := range xs {
		xs[i] = mat.Vec{float64(i) / 8, 0, 0, 0}
	}
	if _, err := c.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	if srv.Queries() != 8 || srv.Requests() != 1 {
		t.Fatalf("server saw %d queries / %d trips, want 8 / 1", srv.Queries(), srv.Requests())
	}
	for r, q := range s.ReplicaQueries() {
		if q != 2 {
			t.Fatalf("replica %d served %d, want 2", r, q)
		}
	}
}
