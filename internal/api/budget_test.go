package api

import (
	"testing"

	"repro/internal/mat"
)

func TestBudgetPassesThroughUnderQuota(t *testing.T) {
	m := testModel(40)
	b := NewBudget(m, 5)
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 5; i++ {
		if !b.Predict(x).EqualApprox(m.Predict(x), 0) {
			t.Fatal("under-quota response differs")
		}
	}
	if b.Exhausted() {
		t.Fatal("exactly-at-quota should not be exhausted")
	}
	if b.Used() != 5 || b.Remaining() != 0 {
		t.Fatalf("Used=%d Remaining=%d", b.Used(), b.Remaining())
	}
}

func TestBudgetDegradesOverQuota(t *testing.T) {
	m := testModel(41)
	b := NewBudget(m, 2)
	x := mat.Vec{0, 0, 0, 0}
	b.Predict(x)
	b.Predict(x)
	p := b.Predict(x) // over quota
	for _, v := range p {
		if v != 1.0/3 {
			t.Fatalf("degraded response = %v", p)
		}
	}
	if !b.Exhausted() {
		t.Fatal("exhaustion not recorded")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
}

func TestBudgetUnlimited(t *testing.T) {
	m := testModel(42)
	b := NewBudget(m, 0)
	x := mat.Vec{0, 0, 0, 0}
	for i := 0; i < 50; i++ {
		b.Predict(x)
	}
	if b.Exhausted() {
		t.Fatal("unlimited budget exhausted")
	}
	if b.Remaining() != -1 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
	if b.Used() != 50 {
		t.Fatalf("Used = %d", b.Used())
	}
	if b.Dim() != 4 || b.Classes() != 3 {
		t.Fatal("metadata not forwarded")
	}
}
