package openbox

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

func TestMaxoutRegionPatternMatchesLocalAt(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	m := &Maxout{Net: nn.NewMaxout(rng, 3, 6, 10, 5, 4)}
	for i := 0; i < 10; i++ {
		x := randVec(rng, 6)
		key, compose, err := m.RegionPattern(x)
		if err != nil {
			t.Fatal(err)
		}
		if key != m.RegionKey(x) {
			t.Fatalf("pattern key %q != RegionKey %q", key, m.RegionKey(x))
		}
		got, err := compose()
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key != want.Key || !got.B.EqualApprox(want.B, 0) {
			t.Fatalf("composed bias differs: %v vs %v", got.B, want.B)
		}
		for r := 0; r < got.W.Rows(); r++ {
			if !got.W.RawRow(r).EqualApprox(want.W.RawRow(r), 0) {
				t.Fatalf("composed row %d differs", r)
			}
		}
	}
	if _, _, err := m.RegionPattern(mat.Vec{1, 2}); err == nil {
		t.Fatal("wrong-dim input accepted")
	}
}

// hookCounter is a RegionModel that counts which surface the region cache
// uses: the per-family pattern hook, or the generic RegionKey + LocalAt
// fallback that re-derives the region from x on every call.
type hookCounter struct {
	inner                  *Maxout
	patterns, keys, locals int
	composes               int
}

func (h *hookCounter) Predict(x mat.Vec) mat.Vec { return h.inner.Predict(x) }
func (h *hookCounter) Dim() int                  { return h.inner.Dim() }
func (h *hookCounter) Classes() int              { return h.inner.Classes() }

func (h *hookCounter) RegionKey(x mat.Vec) string {
	h.keys++
	return h.inner.RegionKey(x)
}

func (h *hookCounter) LocalAt(x mat.Vec) (*plm.Linear, error) {
	h.locals++
	return h.inner.LocalAt(x)
}

func (h *hookCounter) RegionPattern(x mat.Vec) (string, func() (*plm.Linear, error), error) {
	h.patterns++
	key, compose, err := h.inner.RegionPattern(x)
	if err != nil {
		return "", nil, err
	}
	return key, func() (*plm.Linear, error) {
		h.composes++
		return compose()
	}, nil
}

var _ plm.PatternRegionModel = (*hookCounter)(nil)

func TestCacheRegionModelUsesPatternHook(t *testing.T) {
	// The satellite's contract: on families with the pattern hook (MaxOut,
	// LMT) the generic region cache pays one pattern pass per call and one
	// composition per distinct region — it never falls back to the
	// RegionKey + LocalAt pair that re-derives the region from x.
	rng := rand.New(rand.NewSource(52))
	h := &hookCounter{inner: &Maxout{Net: nn.NewMaxout(rng, 3, 5, 8, 3)}}
	cached := CacheRegionModel(h, 0)

	x := randVec(rng, 5)
	first, err := cached.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("cache hit did not return the shared region value")
	}
	if want, err := h.inner.LocalAt(x); err != nil || first.Key != want.Key {
		t.Fatalf("cached classifier wrong: %v / %v", first.Key, err)
	}
	if h.patterns != 2 {
		t.Fatalf("RegionPattern called %d times for 2 lookups, want 2", h.patterns)
	}
	if h.composes != 1 {
		t.Fatalf("composed %d times for 1 distinct region, want 1", h.composes)
	}
	if h.keys != 0 || h.locals != 0 {
		t.Fatalf("generic fallback used (keys=%d locals=%d), hook should cover both", h.keys, h.locals)
	}
}

func TestCacheRegionModelFallbackWithoutHook(t *testing.T) {
	// A family without the hook still caches correctly through the
	// RegionKey + LocalAt pair.
	rng := rand.New(rand.NewSource(54))
	m := &Maxout{Net: nn.NewMaxout(rng, 3, 5, 8, 3)}
	cached := CacheRegionModel(plainRegionModel{m}, 0)
	x := randVec(rng, 5)
	first, err := cached.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("fallback cache hit did not return the shared value")
	}
}

// plainRegionModel hides the pattern hook, leaving only plm.RegionModel.
type plainRegionModel struct{ plm.RegionModel }
