package api

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

func shardOf(t *testing.T, n int, seed int64) *Shard {
	t.Helper()
	replicas := make([]plm.Model, n)
	for i := range replicas {
		// Same seed: interchangeable copies, each its own value.
		replicas[i] = testModel(seed)
	}
	s, err := NewShard(replicas)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardBitIdenticalAcrossReplicaCounts(t *testing.T) {
	// The split must be invisible: sharded batch predictions are
	// bit-identical to the single model's, whatever the replica count.
	single := testModel(200)
	xs := make([]mat.Vec, 13) // deliberately not divisible by 2 or 4
	for i := range xs {
		xs[i] = mat.Vec{float64(i) / 13, 0.5, -float64(i) / 7, 0.25}
	}
	want := make([]mat.Vec, len(xs))
	for i, x := range xs {
		want[i] = single.Predict(x)
	}
	for _, n := range []int{1, 2, 4} {
		s := shardOf(t, n, 200)
		got, err := s.PredictBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if !got[i].EqualApprox(want[i], 0) {
				t.Fatalf("replicas=%d item %d: %v != %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestShardOrderPreservedUnderConcurrentBatches(t *testing.T) {
	// Many goroutines fire interleaved batches; each must get its own
	// answers in its own submission order. Run with -race.
	s := shardOf(t, 4, 201)
	single := testModel(201)
	const callers, perCaller = 12, 11
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, perCaller)
			for i := range xs {
				xs[i] = mat.Vec{float64(g) / callers, float64(i) / perCaller, 0.1, -0.1}
			}
			out, err := s.PredictBatch(xs)
			if err != nil {
				errs <- err
				return
			}
			for i, x := range xs {
				if want := single.Predict(x); !out[i].EqualApprox(want, 0) {
					errs <- fmt.Errorf("caller %d item %d: got %v want %v", g, i, out[i], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	queries := s.ReplicaQueries()
	var sum int64
	for _, q := range queries {
		sum += q
	}
	if sum != callers*perCaller {
		t.Fatalf("replica queries sum to %d, want %d (%v)", sum, callers*perCaller, queries)
	}
}

func TestShardSpreadsBatchAcrossReplicas(t *testing.T) {
	s := shardOf(t, 4, 202)
	xs := make([]mat.Vec, 16)
	for i := range xs {
		xs[i] = mat.Vec{float64(i), 0, 0, 0}
	}
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	for r, q := range s.ReplicaQueries() {
		if q != 4 {
			t.Fatalf("replica %d served %d of a 16-item batch over 4 replicas, want 4", r, q)
		}
	}
}

func TestShardRoundRobinsSinglePredictions(t *testing.T) {
	s := shardOf(t, 3, 203)
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 9; i++ {
		s.Predict(x)
	}
	for r, q := range s.ReplicaQueries() {
		if q != 3 {
			t.Fatalf("replica %d served %d singles, want 3", r, q)
		}
	}
}

// failingModel errors on the batch endpoint — a dead remote replica.
type failingModel struct{ plm.Model }

func (f failingModel) PredictBatch([]mat.Vec) ([]mat.Vec, error) {
	return nil, errors.New("replica down")
}

// scriptedBackend wraps a backend with switchable failure: while down, every
// call errors and Healthy reports false — an unreachable remote, scripted.
type scriptedBackend struct {
	Backend
	down atomic.Bool
}

func (b *scriptedBackend) Predict(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	if b.down.Load() {
		return nil, errors.New("backend down")
	}
	return b.Backend.Predict(ctx, x)
}

func (b *scriptedBackend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if b.down.Load() {
		return nil, errors.New("backend down")
	}
	return b.Backend.PredictBatch(ctx, xs)
}

func (b *scriptedBackend) Healthy(context.Context) bool { return !b.down.Load() }

func shardProbes(n int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for i := range xs {
		xs[i] = mat.Vec{float64(i) / float64(n), 0.5, -float64(i) / 7, 0.25}
	}
	return xs
}

func TestShardFailsOverDeadBackendPreservingOrder(t *testing.T) {
	// A dead backend no longer fails the batch: its chunk is re-dispatched
	// to the survivors and the merged answer stays bit-identical to a
	// single healthy backend, in submission order.
	single := testModel(204)
	dead := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "dead")}
	dead.down.Store(true)
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(204), "good"),
		dead,
	}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	xs := shardProbes(16)
	got, err := s.PredictBatch(xs)
	if err != nil {
		t.Fatalf("one dead backend failed the batch: %v", err)
	}
	for i, x := range xs {
		if want := single.Predict(x); !got[i].EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, got[i], want)
		}
	}
	status := s.BackendStatus()
	if status[0].Queries != 16 || status[1].Queries != 0 {
		t.Fatalf("queries = %d/%d, want 16/0", status[0].Queries, status[1].Queries)
	}
	if status[1].State != "unreachable" {
		t.Fatalf("dead backend state %q, want unreachable", status[1].State)
	}
	if status[1].Failures == 0 || status[1].Retries == 0 {
		t.Fatalf("dead backend failures=%d retries=%d, want both > 0", status[1].Failures, status[1].Retries)
	}
}

func TestShardErrorsWhenAllBackendsFail(t *testing.T) {
	// Failover has a floor: with every backend gone the batch must error —
	// a partial or fabricated answer would silently corrupt an
	// interpretation's linear system.
	a := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "a")}
	b := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "b")}
	a.down.Store(true)
	b.down.Store(true)
	s, err := NewShardBackends([]Backend{a, b}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictBatch(shardProbes(16)); err == nil {
		t.Fatal("all backends dead, batch succeeded")
	}
}

func TestShardQuarantineBackoffAndRecovery(t *testing.T) {
	// The health state machine: a failing backend is quarantined and takes
	// no traffic; when its backoff expires, a recovery probe (Healthy)
	// decides whether it rejoins or is re-quarantined with doubled backoff.
	var clock atomic.Int64 // nanos, swapped under test control
	flaky := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "flaky")}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(204), "steady"),
		flaky,
	}, ShardConfig{QuarantineBase: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.now = func() time.Time { return time.Unix(0, clock.Load()) }

	xs := shardProbes(16)
	flaky.down.Store(true)
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	if got := s.BackendStatus()[1].State; got != "unreachable" {
		t.Fatalf("after failure: state %q, want unreachable", got)
	}

	// Inside the backoff window the quarantined backend takes no traffic,
	// even though it would answer again.
	flaky.down.Store(false)
	before := s.BackendStatus()[1].Queries
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	if got := s.BackendStatus()[1].Queries; got != before {
		t.Fatalf("quarantined backend served %d probes inside backoff", got-before)
	}

	// Backoff expired, but the backend is still down: the recovery probe
	// fails and the quarantine doubles instead of lifting.
	flaky.down.Store(true)
	clock.Store(int64(300 * time.Millisecond))
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	if got := s.BackendStatus()[1].State; got != "unreachable" {
		t.Fatalf("failed recovery probe lifted quarantine: state %q", got)
	}

	// Doubled backoff expired and the backend is healthy again: it rejoins
	// and serves its share.
	flaky.down.Store(false)
	clock.Store(int64(2 * time.Second))
	if _, err := s.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	st := s.BackendStatus()[1]
	if st.State != "ok" {
		t.Fatalf("recovered backend state %q, want ok", st.State)
	}
	if st.Queries == before {
		t.Fatal("recovered backend served nothing")
	}
}

func TestShardPredictFailsOverSingles(t *testing.T) {
	single := testModel(204)
	dead := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "dead")}
	dead.down.Store(true)
	s, err := NewShardBackends([]Backend{dead, NewLocalBackend(testModel(204), "good")}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.1, 0.2, 0.3, 0.4}
	if got, want := s.Predict(x), single.Predict(x); !got.EqualApprox(want, 0) {
		t.Fatalf("failover single: %v != %v", got, want)
	}
	// With everything dead, Predict degrades to the uniform distribution —
	// the same contract Client.Predict honours when its remote is gone.
	allDead := &scriptedBackend{Backend: NewLocalBackend(testModel(204), "dead2")}
	allDead.down.Store(true)
	s2, err := NewShardBackends([]Backend{allDead}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := s2.Predict(x)
	for _, v := range p {
		if v != 1.0/3 {
			t.Fatalf("degraded single = %v, want uniform", p)
		}
	}
}

func TestShardFailoverBitIdenticalUnderConcurrentBatches(t *testing.T) {
	// The race + ordering gate, run with -race in CI: concurrent batches
	// against a shard whose backend keeps flapping must each come back in
	// their own submission order, bit-identical to the single model.
	single := testModel(205)
	flaky := &scriptedBackend{Backend: NewLocalBackend(testModel(205), "flaky")}
	s, err := NewShardBackends([]Backend{
		NewLocalBackend(testModel(205), "a"),
		NewLocalBackend(testModel(205), "b"),
		flaky,
	}, ShardConfig{QuarantineBase: time.Nanosecond}) // immediate retry: maximum churn
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	go func() {
		for !stop.Load() {
			flaky.down.Store(!flaky.down.Load())
			time.Sleep(50 * time.Microsecond)
		}
	}()
	defer stop.Store(true)

	const callers, perCaller = 8, 23
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]mat.Vec, perCaller)
			for i := range xs {
				xs[i] = mat.Vec{float64(g) / callers, float64(i) / perCaller, 0.1, -0.1}
			}
			for round := 0; round < 6; round++ {
				out, err := s.PredictBatch(xs)
				if err != nil {
					errs <- err
					return
				}
				for i, x := range xs {
					if want := single.Predict(x); !out[i].EqualApprox(want, 0) {
						errs <- fmt.Errorf("caller %d round %d item %d: got %v want %v", g, round, i, out[i], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFailedBatchIsNotARoundTrip(t *testing.T) {
	// A batch the model could not answer delivered nothing: counting it
	// would skew the queries/round_trips ratio, and the client's 5xx retry
	// loop would multiply the skew.
	srv := NewServer(failingModel{testModel(208)}, "broken")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictBatch([]mat.Vec{{1, 0, 0, 0}, {0, 1, 0, 0}}); err == nil {
		t.Fatal("failing model answered the batch")
	}
	if srv.Requests() != 0 || srv.Queries() != 0 {
		t.Fatalf("failed batch counted: %d trips / %d queries", srv.Requests(), srv.Queries())
	}
}

func TestShardRejectsBadReplicaSets(t *testing.T) {
	if _, err := NewShard(nil); err == nil {
		t.Fatal("empty replica set accepted")
	}
	mismatched := []plm.Model{testModel(205), plainModel{&echoBatcher{}}}
	if _, err := NewShard(mismatched); err == nil {
		t.Fatal("dim/class mismatch accepted")
	}
}

func TestShardEmptyBatch(t *testing.T) {
	s := shardOf(t, 2, 206)
	out, err := s.PredictBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestShardedServerReportsPerReplicaStats(t *testing.T) {
	// The full plmserve -replicas wiring: shard behind Server, /batch fans
	// out, /stats carries the per-replica breakdown.
	s := shardOf(t, 4, 207)
	srv := NewServer(s, "sharded")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]mat.Vec, 8)
	for i := range xs {
		xs[i] = mat.Vec{float64(i) / 8, 0, 0, 0}
	}
	if _, err := c.PredictBatch(xs); err != nil {
		t.Fatal(err)
	}
	if srv.Queries() != 8 || srv.Requests() != 1 {
		t.Fatalf("server saw %d queries / %d trips, want 8 / 1", srv.Queries(), srv.Requests())
	}
	for r, q := range s.ReplicaQueries() {
		if q != 2 {
			t.Fatalf("replica %d served %d, want 2", r, q)
		}
	}
}
