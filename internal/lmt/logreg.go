// Package lmt implements the paper's second target model family: logistic
// model trees (Landwehr et al., 2005) — a C4.5-style decision tree whose
// leaves carry sparse multinomial logistic regression classifiers. Each leaf
// is an axis-aligned box of the input space and therefore an exact locally
// linear region, which makes the LMT a PLM with trivially extractable ground
// truth: the leaf's (W, b) are the region's core parameters.
package lmt

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/plm"
)

// LogReg is a multinomial (softmax) logistic regression classifier with
// weights stored row-per-class.
type LogReg struct {
	W *mat.Dense // C x d
	B mat.Vec    // C
}

// LogRegConfig controls full-batch proximal gradient training. The L1
// penalty implements the paper's "sparse multinomial logistic regression"
// via soft-thresholding after each gradient step.
type LogRegConfig struct {
	Epochs       int     // gradient steps (default 200)
	LearningRate float64 // step size (default 0.5)
	L1           float64 // L1 penalty weight (default 1e-4)
}

func (c *LogRegConfig) setDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.L1 < 0 {
		c.L1 = 0
	} else if c.L1 == 0 {
		c.L1 = 1e-4
	}
}

// TrainLogReg fits a softmax regression on (xs, labels) with classes in
// [0, classes). Training is deterministic (full-batch), so no RNG is needed.
func TrainLogReg(xs []mat.Vec, labels []int, classes int, cfg LogRegConfig) (*LogReg, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("lmt: empty training set")
	}
	if len(xs) != len(labels) {
		return nil, fmt.Errorf("lmt: %d inputs vs %d labels", len(xs), len(labels))
	}
	if classes < 2 {
		return nil, fmt.Errorf("lmt: need at least 2 classes, got %d", classes)
	}
	d := len(xs[0])
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("lmt: ragged input %d: %d vs %d", i, len(x), d)
		}
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("lmt: label %d of sample %d out of range [0,%d)", y, i, classes)
		}
	}
	cfg.setDefaults()

	lr := &LogReg{W: mat.NewDense(classes, d), B: mat.NewVec(classes)}
	n := float64(len(xs))
	gW := mat.NewDense(classes, d)
	gB := mat.NewVec(classes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Zero gradients.
		for r := 0; r < classes; r++ {
			gW.RawRow(r).Fill(0)
		}
		gB.Fill(0)
		// Accumulate softmax cross-entropy gradients.
		for i, x := range xs {
			p := lr.Predict(x)
			p[labels[i]] -= 1
			for r, pr := range p {
				if pr == 0 {
					continue
				}
				gB[r] += pr
				row := gW.RawRow(r)
				for j, xv := range x {
					row[j] += pr * xv
				}
			}
		}
		step := cfg.LearningRate / n
		thresh := cfg.LearningRate * cfg.L1
		for r := 0; r < classes; r++ {
			wrow := lr.W.RawRow(r)
			grow := gW.RawRow(r)
			for j := range wrow {
				w := wrow[j] - step*grow[j]
				// Proximal soft-threshold for the L1 penalty.
				switch {
				case w > thresh:
					w -= thresh
				case w < -thresh:
					w += thresh
				default:
					w = 0
				}
				wrow[j] = w
			}
			lr.B[r] -= step * gB[r] // biases are unpenalized
		}
	}
	return lr, nil
}

// Predict returns softmax class probabilities for x.
func (lr *LogReg) Predict(x mat.Vec) mat.Vec {
	return nn.Softmax(lr.W.MulVec(x).AddInPlace(lr.B.Clone()))
}

// PredictLabel returns the argmax class for x.
func (lr *LogReg) PredictLabel(x mat.Vec) int {
	return lr.W.MulVec(x).AddInPlace(lr.B.Clone()).ArgMax()
}

// Accuracy returns the fraction of xs classified as labels.
func (lr *LogReg) Accuracy(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if lr.PredictLabel(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Sparsity returns the fraction of exactly-zero weights — the visible effect
// of the L1 penalty (the paper notes LMT decision features are sparser than
// the PLNN's).
func (lr *LogReg) Sparsity() float64 {
	r, c := lr.W.Dims()
	if r*c == 0 {
		return 0
	}
	zeros := 0
	for i := 0; i < r; i++ {
		for _, v := range lr.W.RawRow(i) {
			if v == 0 {
				zeros++
			}
		}
	}
	return float64(zeros) / float64(r*c)
}

// Linear exposes the classifier as a locally linear region classifier.
func (lr *LogReg) Linear(key string) (*plm.Linear, error) {
	return plm.NewLinear(lr.W.Clone(), lr.B.Clone(), key)
}

// Loss returns the mean cross-entropy over (xs, labels).
func (lr *LogReg) Loss(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i, x := range xs {
		p := lr.Predict(x)
		v := p[labels[i]]
		if v < 1e-300 {
			v = 1e-300
		}
		total -= math.Log(v)
	}
	return total / float64(len(xs))
}
