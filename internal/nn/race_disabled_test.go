//go:build !race

package nn

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
