package dataset

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// NNIndex answers Euclidean nearest-neighbour queries over a dataset by
// brute force with early abandoning — the paper's Figure 4 consistency
// experiment pairs each test instance with its nearest test-set neighbour.
type NNIndex struct {
	d *Dataset
}

// NewNNIndex builds an index over d. The dataset must not shrink afterwards.
func NewNNIndex(d *Dataset) *NNIndex { return &NNIndex{d: d} }

// Nearest returns the index of the dataset instance closest to x in
// Euclidean distance, excluding the instance at index exclude (pass -1 to
// consider all). It returns -1 when no candidate exists.
func (idx *NNIndex) Nearest(x mat.Vec, exclude int) int {
	best := -1
	bestDist := math.Inf(1)
	for i, cand := range idx.d.X {
		if i == exclude {
			continue
		}
		// Early-abandoned squared distance.
		var s float64
		for j, v := range cand {
			dv := v - x[j]
			s += dv * dv
			if s >= bestDist {
				s = math.Inf(1)
				break
			}
		}
		if s < bestDist {
			bestDist = s
			best = i
		}
	}
	return best
}

// NearestOf returns the nearest neighbour of instance i within the dataset.
func (idx *NNIndex) NearestOf(i int) (int, error) {
	if i < 0 || i >= idx.d.Len() {
		return -1, fmt.Errorf("dataset: index %d out of range %d", i, idx.d.Len())
	}
	n := idx.Nearest(idx.d.X[i], i)
	if n < 0 {
		return -1, fmt.Errorf("dataset: no neighbour for instance %d", i)
	}
	return n, nil
}

// KNearest returns the indices of the k nearest instances to x (excluding
// exclude), closest first. When fewer than k candidates exist, all are
// returned.
func (idx *NNIndex) KNearest(x mat.Vec, k, exclude int) []int {
	type cand struct {
		i    int
		dist float64
	}
	var heap []cand // simple insertion into a bounded sorted slice
	for i, c := range idx.d.X {
		if i == exclude {
			continue
		}
		d := x.L2Dist(c)
		if len(heap) < k {
			heap = append(heap, cand{i, d})
			for j := len(heap) - 1; j > 0 && heap[j].dist < heap[j-1].dist; j-- {
				heap[j], heap[j-1] = heap[j-1], heap[j]
			}
			continue
		}
		if k == 0 || d >= heap[k-1].dist {
			continue
		}
		heap[k-1] = cand{i, d}
		for j := k - 1; j > 0 && heap[j].dist < heap[j-1].dist; j-- {
			heap[j], heap[j-1] = heap[j-1], heap[j]
		}
	}
	out := make([]int, len(heap))
	for i, c := range heap {
		out[i] = c.i
	}
	return out
}
