package jobs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/wire"
)

// The client half of the async job protocol: Submit ships a bulk job
// through a dialed api.Client's negotiated codec, Poll fetches metadata
// without dragging results over the wire, and StreamProbs/StreamRegions
// read a finished job's results incrementally — binary clients as a frame
// stream off one response, JSON clients as an offset/limit page loop —
// so the caller handles one chunk at a time however large the harvest.

// jsonPageRows is the page size of the JSON fallback result loop.
const jsonPageRows = 4096

// submitRetries bounds how many 503 backpressure responses SubmitCtx
// absorbs — each costs one Retry-After wait — before surfacing the error.
const submitRetries = 2

// maxRetryAfter caps how long a single Retry-After header can make the
// client wait, so a confused (or hostile) server cannot park it for hours.
const maxRetryAfter = 30 * time.Second

// retrySleep waits out one Retry-After interval or the caller's context,
// whichever ends first. A variable so tests can observe waits without
// serving them in real time.
var retrySleep = func(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submit ships a bulk job and returns the server's acknowledgement view.
func Submit(c *api.Client, op string, xs []mat.Vec) (View, error) {
	return SubmitCtx(context.Background(), c, op, xs)
}

// SubmitCensus ships a census job over the given anchors with an explicit
// probe budget (n <= 0 lets the server pick its default sweep size).
func SubmitCensus(c *api.Client, xs []mat.Vec, n int) (View, error) {
	return submitN(context.Background(), c, OpCensus, xs, n)
}

// SubmitCtx is Submit under a caller context. A saturated server's 503
// carries a Retry-After hint (its mean job drain time); SubmitCtx honors
// it — a bounded number of times, with the wait cancellable through ctx —
// before handing the backpressure to the caller.
func SubmitCtx(ctx context.Context, c *api.Client, op string, xs []mat.Vec) (View, error) {
	return submitN(ctx, c, op, xs, 0)
}

// submitN is the shared submit loop; n is the census probe budget (ignored
// by every other op).
func submitN(ctx context.Context, c *api.Client, op string, xs []mat.Vec, n int) (View, error) {
	for attempt := 0; ; attempt++ {
		v, retryAfter, err := submitOnce(ctx, c, op, xs, n)
		if err == nil {
			return v, nil
		}
		if retryAfter <= 0 || attempt >= submitRetries {
			return View{}, err
		}
		if retryAfter > maxRetryAfter {
			retryAfter = maxRetryAfter
		}
		if serr := retrySleep(ctx, retryAfter); serr != nil {
			return View{}, fmt.Errorf("jobs: submit retry abandoned: %w", serr)
		}
	}
}

// submitOnce performs a single submit round trip. On a 503 whose
// Retry-After header parses, the returned duration is positive and the
// caller may wait and retry; every other failure returns zero.
func submitOnce(ctx context.Context, c *api.Client, op string, xs []mat.Vec, n int) (View, time.Duration, error) {
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = x
	}
	codec := c.Codec()
	var buf bytes.Buffer
	var err error
	if codec.Name() == wire.NameBinary {
		err = codec.EncodeMat(&buf, "xs", rows)
	} else {
		err = wire.EncodeJSON(&buf, submitRequest{Op: op, Xs: rows, N: n})
	}
	if err != nil {
		return View{}, 0, fmt.Errorf("jobs: encode submit: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL()+c.Prefix()+"/jobs", &buf)
	if err != nil {
		return View{}, 0, fmt.Errorf("jobs: build submit: %w", err)
	}
	req.Header.Set("Content-Type", codec.ContentType())
	if codec.Name() == wire.NameBinary {
		req.Header.Set(OpHeader, op)
		if n > 0 {
			req.Header.Set(NHeader, strconv.Itoa(n))
		}
	}
	resp, err := c.HTTPClient().Do(req)
	if err != nil {
		return View{}, 0, fmt.Errorf("jobs: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var retryAfter time.Duration
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return View{}, retryAfter, respError("submit", resp)
	}
	var v View
	if err := wire.DecodeJSON(resp.Body, wire.DefaultMaxBody, &v, false); err != nil {
		return View{}, 0, fmt.Errorf("jobs: decode submit ack: %w", err)
	}
	return v, 0, nil
}

// Poll fetches a job's metadata view without its results (limit=0 — an
// older server ignores the parameter and ships them anyway, which still
// decodes, just unpaginated).
func Poll(c *api.Client, id string) (View, error) {
	return fetchPage(c, id, 0, 0)
}

// StreamProbs reads a finished predict job's probabilities from offset on
// (limit < 0: to the end), invoking fn once per chunk with the absolute
// row offset the chunk starts at. Binary-codec clients read one streamed
// frame sequence; JSON clients loop over offset/limit pages. Neither side
// ever holds more than one chunk.
func StreamProbs(c *api.Client, id string, offset, limit int, fn func(offset int, probs [][]float64) error) error {
	if c.CodecName() == wire.NameBinary {
		return streamBinary(c, id, OpPredict, offset, limit, func(fr *wire.FrameReader, at int) (int, error) {
			chunk, err := fr.Next()
			if err != nil {
				return 0, err // io.EOF ends the stream
			}
			return len(chunk), fn(at, chunk)
		})
	}
	return pageLoop(c, id, OpPredict, offset, limit, func(v View) (int, error) {
		if len(v.Probs) == 0 {
			return 0, nil
		}
		return len(v.Probs), fn(v.Offset, v.Probs)
	})
}

// StreamRegions reads a finished interpret job's harvested regions from
// offset on (limit < 0: to the end), invoking fn once per chunk with the
// absolute region offset. On the binary stream every region is a triple of
// frames — probe, relative W, relative b.
func StreamRegions(c *api.Client, id string, offset, limit int, fn func(offset int, regions []Region) error) error {
	if c.CodecName() == wire.NameBinary {
		return streamBinary(c, id, OpInterpret, offset, limit, func(fr *wire.FrameReader, at int) (int, error) {
			probe, err := fr.Next()
			if err != nil {
				return 0, err // io.EOF between triples ends the stream
			}
			relW, err := fr.Next()
			if err != nil {
				return 0, fmt.Errorf("jobs: region stream cut mid-triple: %w", noStreamEOF(err))
			}
			relB, err := fr.Next()
			if err != nil {
				return 0, fmt.Errorf("jobs: region stream cut mid-triple: %w", noStreamEOF(err))
			}
			if len(probe) != 1 || len(relB) != 1 {
				return 0, fmt.Errorf("jobs: region triple has %d probe rows and %d bias rows, want 1 and 1", len(probe), len(relB))
			}
			return 1, fn(at, []Region{{Probe: probe[0], RelW: relW, RelB: relB[0]}})
		})
	}
	return pageLoop(c, id, OpInterpret, offset, limit, func(v View) (int, error) {
		if len(v.Regions) == 0 {
			return 0, nil
		}
		return len(v.Regions), fn(v.Offset, v.Regions)
	})
}

// noStreamEOF rewrites a clean EOF into ErrUnexpectedEOF for stream
// positions where the stream is not allowed to end.
func noStreamEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// streamBinary performs one binary result fetch and drains its frame
// stream. next consumes one logical chunk (however many frames that is)
// and returns how many result items it covered; it propagates io.EOF to
// end the stream.
func streamBinary(c *api.Client, id, wantOp string, offset, limit int, next func(fr *wire.FrameReader, at int) (int, error)) error {
	req, err := http.NewRequest(http.MethodGet, pageURL(c, id, offset, limit), nil)
	if err != nil {
		return fmt.Errorf("jobs: build result fetch: %w", err)
	}
	f32 := false
	if b, ok := c.Codec().(wire.Binary); ok {
		f32 = b.Float32
	}
	req.Header.Set("Accept", wire.AcceptValue(c.Codec(), f32))
	resp, err := c.HTTPClient().Do(req)
	if err != nil {
		return fmt.Errorf("jobs: fetch results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return respError("results", resp)
	}
	if ct := resp.Header.Get("Content-Type"); wire.ResponseBodyCodec(ct).Name() != wire.NameBinary {
		// A pre-streaming server answered the legacy JSON view; the caller
		// asked for a stream, so surface the mismatch instead of buffering
		// the whole body behind their back.
		return fmt.Errorf("jobs: server answered %s, not a binary result stream", ct)
	}
	if op := resp.Header.Get(HeaderOp); op != wantOp {
		return fmt.Errorf("jobs: job %s is an %s job, not %s", id, op, wantOp)
	}
	if status := Status(resp.Header.Get(HeaderStatus)); status != StatusDone {
		if msg := resp.Header.Get(HeaderError); msg != "" {
			return fmt.Errorf("jobs: job %s %s: %s", id, status, msg)
		}
		return fmt.Errorf("jobs: job %s is %s, results not ready", id, status)
	}
	at, err := strconv.Atoi(resp.Header.Get(HeaderOffset))
	if err != nil {
		return fmt.Errorf("jobs: bad %s header %q", HeaderOffset, resp.Header.Get(HeaderOffset))
	}
	// The stream's length is governed by the server-side window; the
	// reader's byte budget only has to admit each frame as it arrives.
	fr := wire.NewFrameReader(resp.Body, math.MaxInt64)
	for {
		n, err := next(fr, at)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		at += n
	}
}

// pageLoop is the JSON fallback: fetch offset/limit pages until the
// window (or the result set) is exhausted. page consumes one view and
// returns how many items it covered; zero items ends the loop.
func pageLoop(c *api.Client, id, wantOp string, offset, limit int, page func(v View) (int, error)) error {
	at := offset
	remaining := limit
	for {
		take := jsonPageRows
		if remaining >= 0 && remaining < take {
			take = remaining
		}
		if remaining >= 0 && remaining == 0 {
			return nil
		}
		v, err := fetchPage(c, id, at, take)
		if err != nil {
			return err
		}
		if v.Op != wantOp {
			return fmt.Errorf("jobs: job %s is an %s job, not %s", id, v.Op, wantOp)
		}
		if v.Status != StatusDone {
			if v.Error != "" {
				return fmt.Errorf("jobs: job %s %s: %s", id, v.Status, v.Error)
			}
			return fmt.Errorf("jobs: job %s is %s, results not ready", id, v.Status)
		}
		n, err := page(v)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		at += n
		if remaining >= 0 {
			remaining -= n
		}
		if at >= v.Total {
			return nil
		}
	}
}

// fetchPage GETs one offset/limit page of a job view (JSON).
func fetchPage(c *api.Client, id string, offset, limit int) (View, error) {
	resp, err := c.HTTPClient().Get(pageURL(c, id, offset, limit))
	if err != nil {
		return View{}, fmt.Errorf("jobs: fetch job %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, respError("fetch", resp)
	}
	var v View
	if err := wire.DecodeJSON(resp.Body, wire.DefaultMaxBody, &v, false); err != nil {
		return View{}, fmt.Errorf("jobs: decode job view: %w", err)
	}
	return v, nil
}

// pageURL builds the GET /jobs/{id} URL with the offset/limit window
// (limit < 0 omits the parameter: to the end).
func pageURL(c *api.Client, id string, offset, limit int) string {
	url := c.BaseURL() + c.Prefix() + "/jobs/" + id + "?offset=" + strconv.Itoa(offset)
	if limit >= 0 {
		url += "&limit=" + strconv.Itoa(limit)
	}
	return url
}

// respError summarizes a non-2xx response.
func respError(what string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return fmt.Errorf("jobs: %s returned %s: %s", what, resp.Status, bytes.TrimSpace(b))
}
