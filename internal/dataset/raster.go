package dataset

import "math"

// canvas is a tiny anti-alias-free gray-scale rasterizer used by the
// synthetic generators: enough to draw thick strokes, outlines and filled
// boxes that give each class a distinctive, learnable silhouette.
type canvas struct {
	w, h int
	pix  []float64 // row-major, values clamped to [0,1]
}

func newCanvas(w, h int) *canvas {
	return &canvas{w: w, h: h, pix: make([]float64, w*h)}
}

func (c *canvas) set(x, y int, v float64) {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return
	}
	if v > c.pix[y*c.w+x] {
		if v > 1 {
			v = 1
		}
		c.pix[y*c.w+x] = v
	}
}

// disc stamps a filled disc of the given radius and intensity.
func (c *canvas) disc(cx, cy, r, v float64) {
	lo := int(math.Floor(-r))
	hi := int(math.Ceil(r))
	for dy := lo; dy <= hi; dy++ {
		for dx := lo; dx <= hi; dx++ {
			if float64(dx*dx+dy*dy) <= r*r {
				c.set(int(math.Round(cx))+dx, int(math.Round(cy))+dy, v)
			}
		}
	}
}

// line draws a thick segment from (x0,y0) to (x1,y1) by stamping discs.
func (c *canvas) line(x0, y0, x1, y1, thickness, v float64) {
	dx, dy := x1-x0, y1-y0
	dist := math.Hypot(dx, dy)
	steps := int(dist*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		c.disc(x0+t*dx, y0+t*dy, thickness/2, v)
	}
}

// ellipse draws an elliptical outline centred at (cx,cy) with radii (rx,ry).
func (c *canvas) ellipse(cx, cy, rx, ry, thickness, v float64) {
	steps := int(4*(rx+ry)) + 8
	for s := 0; s <= steps; s++ {
		a := 2 * math.Pi * float64(s) / float64(steps)
		c.disc(cx+rx*math.Cos(a), cy+ry*math.Sin(a), thickness/2, v)
	}
}

// rect fills an axis-aligned rectangle.
func (c *canvas) rect(x0, y0, x1, y1, v float64) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := int(math.Floor(y0)); y <= int(math.Ceil(y1)); y++ {
		for x := int(math.Floor(x0)); x <= int(math.Ceil(x1)); x++ {
			c.set(x, y, v)
		}
	}
}

// triangle fills the triangle (x0,y0)-(x1,y1)-(x2,y2) by barycentric test.
func (c *canvas) triangle(x0, y0, x1, y1, x2, y2, v float64) {
	minX := int(math.Floor(math.Min(x0, math.Min(x1, x2))))
	maxX := int(math.Ceil(math.Max(x0, math.Max(x1, x2))))
	minY := int(math.Floor(math.Min(y0, math.Min(y1, y2))))
	maxY := int(math.Ceil(math.Max(y0, math.Max(y1, y2))))
	den := (y1-y2)*(x0-x2) + (x2-x1)*(y0-y2)
	if den == 0 {
		return
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x), float64(y)
			a := ((y1-y2)*(px-x2) + (x2-x1)*(py-y2)) / den
			b := ((y2-y0)*(px-x2) + (x0-x2)*(py-y2)) / den
			g := 1 - a - b
			if a >= 0 && b >= 0 && g >= 0 {
				c.set(x, y, v)
			}
		}
	}
}
