package analysis

import "testing"

func TestLockheldFixtures(t *testing.T) {
	runFixtures(t, []*Analyzer{Lockheld}, "repro/internal/api", "lockheld")
}
