package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// twoBlobs builds a linearly separable 2-class dataset.
func twoBlobs(rng *rand.Rand, n int) ([]mat.Vec, []int) {
	xs := make([]mat.Vec, 0, 2*n)
	ys := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		xs = append(xs, mat.Vec{2 + rng.NormFloat64()*0.5, 2 + rng.NormFloat64()*0.5})
		ys = append(ys, 0)
		xs = append(xs, mat.Vec{-2 + rng.NormFloat64()*0.5, -2 + rng.NormFloat64()*0.5})
		ys = append(ys, 1)
	}
	return xs, ys
}

// xorData builds the classic non-linearly-separable XOR dataset with jitter,
// which a linear model cannot fit but one hidden layer can.
func xorData(rng *rand.Rand, n int) ([]mat.Vec, []int) {
	xs := make([]mat.Vec, 0, 4*n)
	ys := make([]int, 0, 4*n)
	corners := []struct {
		x, y  float64
		label int
	}{
		{1, 1, 0}, {-1, -1, 0}, {1, -1, 1}, {-1, 1, 1},
	}
	for i := 0; i < n; i++ {
		for _, c := range corners {
			xs = append(xs, mat.Vec{c.x + rng.NormFloat64()*0.1, c.y + rng.NormFloat64()*0.1})
			ys = append(ys, c.label)
		}
	}
	return xs, ys
}

func TestTrainSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs, ys := twoBlobs(rng, 100)
	n := New(rng, 2, 8, 2)
	loss, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 20, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.98 {
		t.Fatalf("train accuracy = %v (loss %v)", acc, loss)
	}
}

func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs, ys := xorData(rng, 80)
	n := New(rng, 2, 16, 2)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 120, LearningRate: 0.05, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("XOR accuracy = %v, PLNN should solve XOR", acc)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs, ys := twoBlobs(rng, 50)
	n := New(rng, 2, 6, 2)
	before := n.Loss(xs, ys)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 10}); err != nil {
		t.Fatal(err)
	}
	after := n.Loss(xs, ys)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := New(rng, 2, 2)
	if _, err := n.Train(rng, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("expected error on empty set")
	}
	if _, err := n.Train(rng, []mat.Vec{{1, 2}}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := n.Train(rng, []mat.Vec{{1, 2}}, []int{5}, TrainConfig{}); err == nil {
		t.Fatal("expected error on out-of-range label")
	}
}

func TestTrainProgressCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs, ys := twoBlobs(rng, 10)
	n := New(rng, 2, 4, 2)
	var epochs []int
	_, err := n.Train(rng, xs, ys, TrainConfig{
		Epochs:   3,
		Progress: func(e int, loss float64) { epochs = append(epochs, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0] != 1 || epochs[2] != 3 {
		t.Fatalf("progress epochs = %v", epochs)
	}
}

func TestTrainIsReproducible(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(15))
		xs, ys := twoBlobs(rng, 30)
		n := New(rng, 2, 5, 2)
		if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 5}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := build(), build()
	x := mat.Vec{0.5, -0.5}
	if !a.Logits(x).EqualApprox(b.Logits(x), 0) {
		t.Fatal("same seed produced different networks")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	xs, ys := twoBlobs(rng, 30)

	frob := func(decay float64, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		n := New(r, 2, 6, 2)
		if _, err := n.Train(r, xs, ys, TrainConfig{Epochs: 30, WeightDecay: decay}); err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := 0; i < n.NumLayers(); i++ {
			l := n.Layer(i)
			total += l.W.FrobNorm()
		}
		return total
	}
	if plain, decayed := frob(0, 17), frob(0.05, 17); decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}

func TestParameterGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := New(rng, 3, 4, 2)
	x := mat.Vec{0.2, -0.4, 0.6}
	label := 1
	g := newGradients(n)
	n.accumulate(g, x, label)

	const h = 1e-6
	// Check a handful of weight entries in each layer.
	for li := 0; li < n.NumLayers(); li++ {
		l := n.layers[li]
		for _, rc := range [][2]int{{0, 0}, {l.W.Rows() - 1, l.W.Cols() - 1}} {
			r, c := rc[0], rc[1]
			orig := l.W.At(r, c)
			l.W.Set(r, c, orig+h)
			up := CrossEntropy(n.Predict(x), label)
			l.W.Set(r, c, orig-h)
			down := CrossEntropy(n.Predict(x), label)
			l.W.Set(r, c, orig)
			fd := (up - down) / (2 * h)
			got := g.dW[li].At(r, c)
			if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("layer %d W[%d,%d]: analytic %v vs fd %v", li, r, c, got, fd)
			}
		}
		// And one bias entry.
		origB := l.B[0]
		l.B[0] = origB + h
		up := CrossEntropy(n.Predict(x), label)
		l.B[0] = origB - h
		down := CrossEntropy(n.Predict(x), label)
		l.B[0] = origB
		fd := (up - down) / (2 * h)
		if got := g.dB[li][0]; math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("layer %d B[0]: analytic %v vs fd %v", li, got, fd)
		}
	}
}

func TestLossEmptySet(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := New(rng, 2, 2)
	if n.Loss(nil, nil) != 0 {
		t.Fatal("empty loss should be 0")
	}
}

func TestAdamTrainsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	xs, ys := twoBlobs(rng, 80)
	n := New(rng, 2, 8, 2)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 20, Optimizer: Adam}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.98 {
		t.Fatalf("Adam accuracy = %v", acc)
	}
}

func TestAdamSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	xs, ys := xorData(rng, 60)
	n := New(rng, 2, 16, 2)
	if _, err := n.Train(rng, xs, ys, TrainConfig{Epochs: 120, Optimizer: Adam, LearningRate: 0.01, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("Adam XOR accuracy = %v", acc)
	}
}

func TestAdamHandlesBadlyScaledFeatures(t *testing.T) {
	// Feature scales differ by 10^4; Adam's per-parameter step should cope
	// at its default learning rate without any tuning.
	rng := rand.New(rand.NewSource(52))
	xs, ys := twoBlobs(rng, 60)
	for i := range xs {
		xs[i] = mat.Vec{xs[i][0] * 100, xs[i][1] * 0.01}
	}
	r := rand.New(rand.NewSource(53))
	n := New(r, 2, 8, 2)
	if _, err := n.Train(r, xs, ys, TrainConfig{Epochs: 30, Optimizer: Adam}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("Adam accuracy on scaled features = %v", acc)
	}
}

func TestOptimizerString(t *testing.T) {
	if SGD.String() != "sgd" || Adam.String() != "adam" || Optimizer(9).String() == "" {
		t.Fatal("optimizer names wrong")
	}
}
