package repro

import (
	"net/http/httptest"
	"testing"

	"repro/internal/eval"
)

// evalConfigForTest keeps workbench construction fast in facade tests.
func evalConfigForTest() eval.WorkbenchConfig {
	return eval.WorkbenchConfig{Dataset: "mnist", Size: 8, PerClass: 20, NNEpochs: 10, Seed: 30}
}

func TestFacadeEndToEnd(t *testing.T) {
	model := MustTrainDemoPLNN(1)
	x := model.Example()
	c := model.Predict(x).ArgMax()

	interp, err := Interpret(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if dist := interp.Features.L1Dist(truth); dist > 1e-4 {
		t.Fatalf("facade interpretation off by %v", dist)
	}
}

func TestFacadeInterpretAll(t *testing.T) {
	model := MustTrainDemoPLNN(2)
	x := model.Example()
	all, err := InterpretAll(model, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != model.Classes() {
		t.Fatalf("got %d interpretations", len(all))
	}
}

func TestFacadeTrainers(t *testing.T) {
	data, err := SyntheticDataset("fmnist", 3, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	plnn, err := TrainPLNN(4, data.X, data.Y, data.Classes(), []int{16}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plnn.Dim() != data.Dim() {
		t.Fatal("PLNN dim wrong")
	}
	tree, err := TrainLMT(5, data.X, data.Y, data.Classes())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Classes() != data.Classes() {
		t.Fatal("LMT classes wrong")
	}
	if _, err := TrainPLNN(6, nil, nil, 2, []int{4}, 1); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestFacadeWorkbenchAndOpenAPIConfig(t *testing.T) {
	w, err := NewWorkbench(evalConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	if w.Test.Len() == 0 || w.PLNN == nil || w.LMT == nil {
		t.Fatal("workbench incomplete")
	}
	o := NewOpenAPI(OpenAPIConfig{Seed: 9})
	if o.Name() != "OpenAPI" {
		t.Fatalf("Name = %q", o.Name())
	}
	x := w.Test.X[0]
	c := w.PLNN.Predict(x).ArgMax()
	interp, err := o.Interpret(w.PLNN, x, c)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(w.PLNN, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Features.L1Dist(truth) > 1e-4 {
		t.Fatal("configured interpreter inexact")
	}
}

func TestFacadeSyntheticDatasetErrors(t *testing.T) {
	if _, err := SyntheticDataset("imagenet", 1, 8, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	d, err := SyntheticDataset("mnist", 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 20 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestFacadeSurrogateExtraction(t *testing.T) {
	model := MustTrainDemoPLNN(11)
	probes := []Vec{model.Example(), model.Example(), model.Example()}
	s, err := ExtractSurrogate(model, probes)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() == 0 {
		t.Fatal("no regions harvested")
	}
	fid, err := VerifySurrogate(s, model, []Vec{model.Example(), model.Example()})
	if err != nil {
		t.Fatal(err)
	}
	if fid.N != 2 {
		t.Fatalf("fidelity N = %d", fid.N)
	}
	if _, err := ExtractSurrogate(model, nil); err == nil {
		t.Fatal("empty probes accepted")
	}
}

func TestFacadeCompareQuality(t *testing.T) {
	model := MustTrainDemoPLNN(21)
	methods := append([]Interpreter{NewOpenAPI(OpenAPIConfig{Seed: 22})}, Baselines(1e-2, 23)...)
	xs := []Vec{model.Example(), model.Example(), model.Example()}
	rows, err := CompareQuality(model, methods, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Method != "OpenAPI" || rows[0].AvgRD != 0 {
		t.Fatalf("OpenAPI row = %+v", rows[0])
	}
}

func TestFacadeBinaryScoreWrapper(t *testing.T) {
	// Hide a trained 2-class model behind a single-score function, as real
	// fraud/credit APIs do, and confirm OpenAPI still recovers the exact
	// decision features.
	demo := MustTrainDemoPLNNBinary(13)
	scoreOnly := WrapBinaryScore(func(x Vec) float64 {
		return demo.Predict(x)[1]
	}, demo.Dim())
	x := demo.Example()
	interp, err := Interpret(scoreOnly, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(demo, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Features.L1Dist(truth) > 1e-4 {
		t.Fatalf("score-only interpretation off by %v", interp.Features.L1Dist(truth))
	}
}

func TestFacadeOverHTTP(t *testing.T) {
	// The headline scenario, end to end: a model hidden behind a real HTTP
	// API, interpreted exactly through the wire.
	model := MustTrainDemoPLNN(7)
	ts := httptest.NewServer(ServeModel(model, "demo"))
	defer ts.Close()

	remote, err := DialModel(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	x := model.Example()
	c := remote.Predict(x).ArgMax()
	counted := CountQueries(remote)
	interp, err := Interpret(counted, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Err() != nil {
		t.Fatalf("transport errors: %v", remote.Err())
	}
	truth, err := GroundTruth(model, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if dist := interp.Features.L1Dist(truth); dist > 1e-4 {
		t.Fatalf("over-the-wire interpretation off by %v", dist)
	}
	if counted.Count() == 0 {
		t.Fatal("no queries counted")
	}
}
