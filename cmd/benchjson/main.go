// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array of benchmark records, one object per benchmark line.
// CI pipes the PR benchmark run through it to record the performance
// trajectory (BENCH_pr3.json and successors):
//
//	go test -run='^$' -bench=. -benchtime=20x ./internal/nn | benchjson -out BENCH_pr3.json
//
// Standard extra metrics (B/op, allocs/op, and any custom ReportMetric
// units) are captured into the metrics map.
//
// With -compare, benchjson also diffs the fresh run against one or more
// committed snapshots and exits non-zero on regressions, turning the
// trajectory from a printout into a gate:
//
//	... | benchjson -out BENCH_ci.json -compare BENCH_pr3.json,BENCH_pr5.json -tol 0.35
//
// Every snapshot benchmark must still exist in the fresh run (a vanished
// benchmark fails); benchmarks only in the fresh run are allowed (the
// trajectory grows PR over PR); a fresh ns/op more than (1+tol)× its
// snapshot value is a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one "BenchmarkFoo-8  123  456 ns/op  789 B/op" line,
// reporting ok=false for non-benchmark lines.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashSuffix(fields[0])),
		Iterations: iters,
	}
	// The remainder alternates value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" && !sawNs {
			rec.NsPerOp = v
			sawNs = true
			continue
		}
		if rec.Metrics == nil {
			rec.Metrics = make(map[string]float64)
		}
		rec.Metrics[unit] = v
	}
	if !sawNs {
		return Record{}, false
	}
	return rec, true
}

// lastDashSuffix returns the trailing GOMAXPROCS suffix of a benchmark name
// ("8" for "BenchmarkFoo-8"), or "" when the name has none.
func lastDashSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}

// compareRecords diffs a fresh run against reference records and returns a
// human-readable report plus the verdicts that gate CI. Rules:
//
//   - every reference benchmark must appear in fresh — a benchmark that
//     vanished (renamed, deleted, filtered out of the run) fails;
//   - benchmarks only in fresh are allowed: the trajectory grows;
//   - fresh ns/op above ref·(1+tol) is a regression and fails;
//   - ties and improvements pass.
func compareRecords(fresh, ref []Record, tol float64) (report []string, failures []string) {
	freshByName := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		freshByName[r.Name] = r
	}
	names := make([]string, 0, len(ref))
	refByName := make(map[string]Record, len(ref))
	for _, r := range ref {
		if _, dup := refByName[r.Name]; !dup {
			names = append(names, r.Name)
		}
		refByName[r.Name] = r // later snapshots override earlier ones
	}
	sort.Strings(names)
	for _, name := range names {
		want := refByName[name]
		got, ok := freshByName[name]
		if !ok {
			msg := fmt.Sprintf("MISSING %s: in snapshot (%.0f ns/op) but absent from this run", name, want.NsPerOp)
			report = append(report, msg)
			failures = append(failures, msg)
			continue
		}
		ratio := got.NsPerOp / want.NsPerOp
		if got.NsPerOp > want.NsPerOp*(1+tol) {
			msg := fmt.Sprintf("REGRESSION %s: %.0f ns/op vs snapshot %.0f (%.2fx > allowed %.2fx)",
				name, got.NsPerOp, want.NsPerOp, ratio, 1+tol)
			report = append(report, msg)
			failures = append(failures, msg)
			continue
		}
		report = append(report, fmt.Sprintf("ok %s: %.0f ns/op vs snapshot %.0f (%.2fx)",
			name, got.NsPerOp, want.NsPerOp, ratio))
	}
	return report, failures
}

// loadSnapshots reads and concatenates the given JSON record files.
func loadSnapshots(paths []string) ([]Record, error) {
	var all []Record
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var recs []Record
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, recs...)
	}
	return all, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default: stdout)")
	compare := flag.String("compare", "", "comma-separated snapshot JSON files to gate against")
	tol := flag.Float64("tol", 0.35, "allowed fractional ns/op regression vs snapshot")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		fmt.Print(string(data))
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmark records to %s", len(records), *out)
	}

	if *compare == "" {
		return
	}
	ref, err := loadSnapshots(strings.Split(*compare, ","))
	if err != nil {
		log.Fatal(err)
	}
	report, failures := compareRecords(records, ref, *tol)
	for _, line := range report {
		log.Print(line)
	}
	if len(failures) > 0 {
		log.Fatalf("%d of %d trajectory benchmarks regressed past tol=%.2f", len(failures), len(report), *tol)
	}
	log.Printf("trajectory gate passed: %d benchmarks within tol=%.2f", len(report), *tol)
}
