package extract

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/mat"
)

const surrogateFormatTag = "openapi-surrogate-v1"

type surrogateJSON struct {
	Format  string       `json:"format"`
	Dim     int          `json:"dim"`
	Classes int          `json:"classes"`
	Regions []regionJSON `json:"regions"`
}

type regionJSON struct {
	Probe []float64   `json:"probe"`
	RelW  [][]float64 `json:"rel_w"`
	RelB  []float64   `json:"rel_b"`
}

// MarshalJSON encodes the surrogate with every harvested region.
func (s *Surrogate) MarshalJSON() ([]byte, error) {
	out := surrogateJSON{
		Format:  surrogateFormatTag,
		Dim:     s.dim,
		Classes: s.classes,
		Regions: make([]regionJSON, len(s.regions)),
	}
	for i, r := range s.regions {
		rj := regionJSON{Probe: r.Probe, RelB: r.RelB}
		rj.RelW = make([][]float64, len(r.RelW))
		for c, w := range r.RelW {
			rj.RelW[c] = w
		}
		out.Regions[i] = rj
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a surrogate written by MarshalJSON.
func (s *Surrogate) UnmarshalJSON(data []byte) error {
	var in surrogateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("extract: decode: %w", err)
	}
	if in.Format != surrogateFormatTag {
		return fmt.Errorf("extract: unknown format %q (want %q)", in.Format, surrogateFormatTag)
	}
	if in.Dim <= 0 || in.Classes < 2 {
		return fmt.Errorf("extract: invalid shape %dx%d", in.Dim, in.Classes)
	}
	regions := make([]*Region, len(in.Regions))
	for i, rj := range in.Regions {
		if len(rj.Probe) != in.Dim {
			return fmt.Errorf("extract: region %d probe length %d != %d", i, len(rj.Probe), in.Dim)
		}
		if len(rj.RelW) != in.Classes || len(rj.RelB) != in.Classes {
			return fmt.Errorf("extract: region %d has %d weight rows / %d biases, want %d",
				i, len(rj.RelW), len(rj.RelB), in.Classes)
		}
		r := &Region{Probe: rj.Probe, RelW: make([]mat.Vec, in.Classes), RelB: rj.RelB}
		for c, w := range rj.RelW {
			if len(w) != in.Dim {
				return fmt.Errorf("extract: region %d class %d weight length %d != %d", i, c, len(w), in.Dim)
			}
			r.RelW[c] = w
		}
		regions[i] = r
	}
	s.dim, s.classes, s.regions = in.Dim, in.Classes, regions
	return nil
}

// Save writes the surrogate to path as JSON.
func (s *Surrogate) Save(path string) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("extract: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("extract: save %s: %w", path, err)
	}
	return nil
}

// Load reads a surrogate saved by Save.
func Load(path string) (*Surrogate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("extract: load %s: %w", path, err)
	}
	var s Surrogate
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
