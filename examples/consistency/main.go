// Consistency: a side-by-side demonstration of the paper's Figure 4 and
// Figures 5-7 claims on one model. For a batch of neighbouring instance
// pairs, OpenAPI's interpretations are compared with the fixed-distance
// baselines at several perturbation distances h: OpenAPI is exact and
// perfectly consistent inside regions, while every baseline has an h that
// betrays it.
//
// Run with:
//
//	go run ./examples/consistency
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(3))
	data := dataset.SyntheticDigits(rng, dataset.SynthConfig{Size: 10, PerClass: 50})
	net := nn.New(rng, data.Dim(), 32, 16, data.Classes())
	if _, err := net.Train(rng, data.X, data.Y, nn.TrainConfig{Epochs: 15}); err != nil {
		log.Fatal(err)
	}
	model := &openbox.PLNN{Net: net}
	fmt.Printf("model: ReLU net, %d features, accuracy %.3f\n",
		data.Dim(), net.Accuracy(data.X, data.Y))

	// Probe instances.
	ids := rng.Perm(data.Len())[:12]
	xs := make([]repro.Vec, len(ids))
	for i, id := range ids {
		xs[i] = data.X[id]
	}

	// The contenders: OpenAPI plus each baseline at three distances.
	methods := []plm.Interpreter{core.New(core.Config{Seed: 4})}
	for i, h := range []float64{1e-8, 1e-4, 1e-2} {
		methods = append(methods, eval.StandardBaselines(h, int64(5+i))...)
	}

	fmt.Println("\nexactness and sample quality (RD: fraction of runs that mixed")
	fmt.Println("regions; WD/L1: distance to ground truth — 0 is perfect):")
	fmt.Println()
	rows, err := eval.SampleQuality(model, methods, xs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s %8s %12s %12s\n", "method", "avg RD", "mean WD", "mean L1")
	for _, r := range rows {
		fmt.Printf("  %-22s %8.3f %12.4g %12.4g\n", r.Method, r.AvgRD, r.WD.Mean, r.L1.Mean)
	}

	// Consistency inside a region: interpret an instance and a microscopic
	// perturbation of it.
	fmt.Println("\nwithin-region consistency (cosine similarity; 1.0 = identical):")
	x := xs[0]
	y := x.Clone()
	for i := range y {
		y[i] += 1e-9 * rng.NormFloat64()
	}
	if model.RegionKey(x) != model.RegionKey(y) {
		log.Fatal("perturbation crossed a region boundary; rerun with another seed")
	}
	c := model.Predict(x).ArgMax()
	for _, m := range methods[:5] { // OpenAPI + the 1e-8 baselines
		ia, err := m.Interpret(model, x, c)
		if err != nil {
			log.Fatal(err)
		}
		ib, err := m.Interpret(model, y, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.9f\n", m.Name(), ia.Features.Cosine(ib.Features))
	}
	fmt.Println("\nOpenAPI needs no h at all: it finds the right neighbourhood itself.")
}
