package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestHypercubeContains(t *testing.T) {
	h := NewHypercube(mat.Vec{0, 0}, 2) // [-1,1]^2
	cases := []struct {
		p  mat.Vec
		in bool
	}{
		{mat.Vec{0, 0}, true},
		{mat.Vec{1, 1}, true},  // boundary closed
		{mat.Vec{-1, 1}, true}, // boundary
		{mat.Vec{1.01, 0}, false},
		{mat.Vec{0, -1.5}, false},
		{mat.Vec{0}, false}, // wrong dimension
	}
	for _, c := range cases {
		if got := h.Contains(c.p); got != c.in {
			t.Fatalf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
}

func TestHypercubeNegativeEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHypercube(mat.Vec{0}, -1)
}

func TestHypercubeHalved(t *testing.T) {
	h := NewHypercube(mat.Vec{5}, 4)
	hh := h.Halved()
	if hh.Edge != 2 || hh.Center[0] != 5 {
		t.Fatalf("Halved = %+v", hh)
	}
	if h.Edge != 4 {
		t.Fatal("Halved mutated original")
	}
}

func TestHypercubeCenterIsCopied(t *testing.T) {
	c := mat.Vec{1, 2}
	h := NewHypercube(c, 1)
	c[0] = 99
	if h.Center[0] != 1 {
		t.Fatal("NewHypercube aliased caller's center")
	}
}

func TestSampleStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHypercube(mat.Vec{3, -2, 0.5}, 0.1)
	for i := 0; i < 500; i++ {
		p := h.Sample(rng)
		if !h.Contains(p) {
			t.Fatalf("sample %v escaped cube %+v", p, h)
		}
	}
}

func TestSampleNCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHypercube(mat.Vec{0}, 1)
	ps := h.SampleN(rng, 7)
	if len(ps) != 7 {
		t.Fatalf("SampleN returned %d points", len(ps))
	}
}

func TestSampleIsReproducible(t *testing.T) {
	h := NewHypercube(mat.Vec{0, 0}, 1)
	a := h.SampleN(rand.New(rand.NewSource(42)), 3)
	b := h.SampleN(rand.New(rand.NewSource(42)), 3)
	for i := range a {
		if !a[i].EqualApprox(b[i], 0) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestSampleCoversCube(t *testing.T) {
	// Mean of many uniform samples should approach the center, and the
	// extremes should approach the faces.
	rng := rand.New(rand.NewSource(3))
	h := NewHypercube(mat.Vec{1}, 2) // [0, 2]
	n := 20000
	var sum, lo, hi float64
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		x := h.Sample(rng)[0]
		sum += x
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
	if lo > 0.01 || hi < 1.99 {
		t.Fatalf("range [%v, %v] does not cover the cube", lo, hi)
	}
}

func TestAxisPairs(t *testing.T) {
	x := mat.Vec{1, 2}
	pairs := AxisPairs(x, 0.5)
	if len(pairs) != 2 {
		t.Fatalf("len = %d", len(pairs))
	}
	if pairs[0][0][0] != 1.5 || pairs[0][1][0] != 0.5 {
		t.Fatalf("axis 0 pair = %v", pairs[0])
	}
	if pairs[1][0][1] != 2.5 || pairs[1][1][1] != 1.5 {
		t.Fatalf("axis 1 pair = %v", pairs[1])
	}
	// Off-axis coordinates untouched.
	if pairs[0][0][1] != 2 || pairs[1][0][0] != 1 {
		t.Fatal("off-axis coordinate modified")
	}
	// Original untouched.
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("AxisPairs mutated input")
	}
}

func TestUniformVecRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := UniformVec(rng, 1000, -2, 3)
	for _, x := range v {
		if x < -2 || x >= 3 {
			t.Fatalf("value %v outside [-2, 3)", x)
		}
	}
}

func TestGaussianVecMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := GaussianVec(rng, 50000, 10, 2)
	if math.Abs(v.Mean()-10) > 0.1 {
		t.Fatalf("mean = %v", v.Mean())
	}
	var ss float64
	for _, x := range v {
		dx := x - 10
		ss += dx * dx
	}
	sd := math.Sqrt(ss / float64(len(v)))
	if math.Abs(sd-2) > 0.1 {
		t.Fatalf("sd = %v", sd)
	}
}

func TestSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	idx := Subsample(rng, 100, 10)
	if len(idx) != 10 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	all := Subsample(rng, 5, 10)
	if len(all) != 5 {
		t.Fatalf("k>n should return all: len = %d", len(all))
	}
}

func TestLinearPath(t *testing.T) {
	path := LinearPath(mat.Vec{0, 0}, mat.Vec{2, 4}, 4)
	if len(path) != 5 {
		t.Fatalf("len = %d", len(path))
	}
	if !path[0].EqualApprox(mat.Vec{0, 0}, 0) || !path[4].EqualApprox(mat.Vec{2, 4}, 0) {
		t.Fatal("endpoints wrong")
	}
	if !path[2].EqualApprox(mat.Vec{1, 2}, 1e-15) {
		t.Fatalf("midpoint = %v", path[2])
	}
}

func TestLinearPathPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LinearPath(mat.Vec{0}, mat.Vec{0, 1}, 2) },
		func() { LinearPath(mat.Vec{0}, mat.Vec{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: every point from SampleN lies inside the cube, for random cubes.
func TestPropertySamplesInsideCube(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(d8 uint8, edge float64) bool {
		d := int(d8%10) + 1
		if math.IsNaN(edge) || math.IsInf(edge, 0) || edge < 0 || edge > 1e6 {
			edge = 1
		}
		c := GaussianVec(rng, d, 0, 3)
		h := NewHypercube(c, edge)
		for _, p := range h.SampleN(rng, 20) {
			if !h.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: AxisPairs points differ from x only along one axis, by exactly h.
func TestPropertyAxisPairsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(d8 uint8) bool {
		d := int(d8%12) + 1
		x := GaussianVec(rng, d, 0, 1)
		h := 0.25
		for i, pair := range AxisPairs(x, h) {
			for j := 0; j < d; j++ {
				want := x[j]
				if j == i {
					if pair[0][j] != x[j]+h || pair[1][j] != x[j]-h {
						return false
					}
					continue
				}
				if pair[0][j] != want || pair[1][j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
