package mat

import "fmt"

// This file holds the fused GEMM epilogue: the per-element bias-add,
// activation and activity-mask capture that batched layer forwards used to
// run as separate whole-matrix passes after the GEMM. Fusing applies them
// block-by-block inside gemmBT, while the freshly written output rows are
// still hot in cache, so each layer saves one full read+write sweep of its
// output matrix per dropped pass.
//
// The bit-identity argument is one sentence: every epilogue operation is
// per-element and runs strictly after that element's ascending-k accumulator
// chain has committed, in exactly the order the unfused passes used — bias
// add first (the same `row[j] += bias[j]` AddInPlace performs), then the
// activity-mask read (`v > 0` on the biased pre-activation), then the
// activation rewrite (`if v <= 0 { v = leak*v }`, the literal nn formula,
// including its leak*v = -0.0 behaviour for plain ReLU) — so fused and
// unfused results match bit for bit, element by element. Nothing in the
// epilogue ever combines two accumulator chains or re-enters the reduction.

// ActKind selects the fused activation applied after the bias add.
type ActKind uint8

const (
	// ActIdentity applies no activation — bias-only epilogues (read-out
	// layers, MaxOut affine pieces).
	ActIdentity ActKind = iota
	// ActReLU is plain ReLU evaluated exactly as the nn package does:
	// v <= 0 rewrites to 0*v (note: -0.0 for negative v), identical bits to
	// ActLeakyReLU with Leak 0.
	ActReLU
	// ActLeakyReLU rewrites v <= 0 to Leak*v — Leaky/Parametric ReLU, the
	// nn hidden-layer activation (Leak 0 degenerates to plain ReLU).
	ActLeakyReLU
)

func (a ActKind) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActLeakyReLU:
		return "leaky"
	}
	return fmt.Sprintf("ActKind(%d)", uint8(a))
}

// Epilogue describes the per-element post-GEMM work fused into
// MulBTIntoEpilogue. The zero value is a no-op. Fields are read-only during
// the multiply except Mask, which is written; none may alias dst's storage.
type Epilogue struct {
	// Bias, when non-nil, is added to every output row element-wise; its
	// length must equal dst.Cols().
	Bias Vec
	// Act is the activation applied after the bias add.
	Act ActKind
	// Leak is the negative-side slope for ActLeakyReLU (ignored otherwise).
	Leak float64
	// Mask, when non-nil, captures the activity pattern: Mask[i*cols+j]
	// records whether row i's element j was > 0 after the bias add and
	// before the activation — the pattern bit openbox keys regions on. Its
	// length must equal dst.Rows()*dst.Cols().
	Mask []bool
}

// check validates the epilogue against the destination shape.
func (e *Epilogue) check(dst *Dense) {
	if e == nil {
		return
	}
	if e.Bias != nil && len(e.Bias) != dst.cols {
		panic(fmt.Sprintf("mat: epilogue bias length %d != cols %d", len(e.Bias), dst.cols))
	}
	if e.Mask != nil && len(e.Mask) != dst.rows*dst.cols {
		panic(fmt.Sprintf("mat: epilogue mask length %d != %dx%d", len(e.Mask), dst.rows, dst.cols))
	}
	if e.Act > ActLeakyReLU {
		panic(fmt.Sprintf("mat: unknown epilogue activation %d", e.Act))
	}
}

// applyEpilogueRows runs the epilogue over dst rows [i0, i1), called by
// gemmBT as soon as a row block's accumulator chains have all committed.
// Every operation is per-element post-accumulation: bias add, mask capture,
// then activation, in the exact order (and with the exact expressions) the
// unfused addBiasRows+activate passes used.
func applyEpilogueRows(dst *Dense, epi *Epilogue, i0, i1 int) {
	if epi == nil {
		return
	}
	cols := dst.cols
	leak := epi.Leak
	if epi.Act == ActReLU {
		leak = 0
	}
	for i := i0; i < i1; i++ {
		row := dst.data[i*cols : i*cols+cols]
		if epi.Bias != nil {
			bias := epi.Bias[:len(row)]
			for j, bv := range bias {
				row[j] += bv
			}
		}
		if epi.Mask != nil {
			m := epi.Mask[i*cols : i*cols+cols]
			for j, v := range row {
				m[j] = v > 0
			}
		}
		if epi.Act != ActIdentity {
			for j, v := range row {
				if v <= 0 {
					row[j] = leak * v
				}
			}
		}
	}
}

// MulBTIntoEpilogue computes dst = m * bᵀ like MulBTInto, then applies epi
// (bias add, activation, activity-mask capture) block-by-block while each
// output block is still cache-hot — one fused pass instead of GEMM plus one
// to two whole-matrix sweeps. A nil epi is exactly MulBTInto. Results are
// bit-identical to the unfused sequence (see the file comment); dst must be
// m.Rows() by b.Rows() and must not alias m, b, epi.Bias or epi.Mask. It
// returns dst.
func (m *Dense) MulBTIntoEpilogue(b, dst *Dense, epi *Epilogue) *Dense {
	if m.cols != b.cols {
		panic(fmt.Sprintf("mat: MulBT %dx%d by (%dx%d)ᵀ", m.rows, m.cols, b.rows, b.cols))
	}
	if dst.rows != m.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: MulBTIntoEpilogue dst %dx%d, want %dx%d", dst.rows, dst.cols, m.rows, b.rows))
	}
	checkNoAlias("MulBTIntoEpilogue", dst, m, b)
	epi.check(dst)
	flops := m.rows * m.cols * b.rows
	if w := workers(); w > 1 && flops >= parallelFlopCutoff && m.rows > 1 {
		parallelRows(m.rows, w, func(lo, hi int) { gemmBT(dst, m, b, lo, hi, epi) })
	} else {
		gemmBT(dst, m, b, 0, m.rows, epi)
	}
	return dst
}
