package nn

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/mat"
)

const maxoutFormatTag = "openapi-maxout-v1"

type maxoutJSON struct {
	Format string        `json:"format"`
	Hidden [][]layerJSON `json:"hidden"` // hidden[l][p] = piece p of layer l
	Out    layerJSON     `json:"out"`
}

func encodeAffine(l Layer) layerJSON {
	lj := layerJSON{Rows: l.W.Rows(), Cols: l.W.Cols(), B: l.B.Clone()}
	lj.W = make([][]float64, lj.Rows)
	for r := 0; r < lj.Rows; r++ {
		lj.W[r] = l.W.Row(r)
	}
	return lj
}

func decodeAffine(lj layerJSON) (Layer, error) {
	if lj.Rows <= 0 || lj.Cols <= 0 {
		return Layer{}, fmt.Errorf("nn: invalid affine shape %dx%d", lj.Rows, lj.Cols)
	}
	if len(lj.W) != lj.Rows || len(lj.B) != lj.Rows {
		return Layer{}, fmt.Errorf("nn: affine row/bias count mismatch")
	}
	flat := make([]float64, 0, lj.Rows*lj.Cols)
	for r, row := range lj.W {
		if len(row) != lj.Cols {
			return Layer{}, fmt.Errorf("nn: affine row %d has %d cols, want %d", r, len(row), lj.Cols)
		}
		flat = append(flat, row...)
	}
	return Layer{W: mat.NewDenseFrom(lj.Rows, lj.Cols, flat), B: append(mat.Vec(nil), lj.B...)}, nil
}

// MarshalJSON encodes the MaxOut network's architecture and parameters.
func (n *MaxoutNetwork) MarshalJSON() ([]byte, error) {
	out := maxoutJSON{Format: maxoutFormatTag, Out: encodeAffine(n.out)}
	out.Hidden = make([][]layerJSON, len(n.hidden))
	for li, l := range n.hidden {
		pieces := make([]layerJSON, len(l.Pieces))
		for p, piece := range l.Pieces {
			pieces[p] = encodeAffine(piece)
		}
		out.Hidden[li] = pieces
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a MaxOut network written by MarshalJSON,
// validating shapes and chain consistency.
func (n *MaxoutNetwork) UnmarshalJSON(data []byte) error {
	var in maxoutJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nn: decode maxout: %w", err)
	}
	if in.Format != maxoutFormatTag {
		return fmt.Errorf("nn: unknown maxout format %q (want %q)", in.Format, maxoutFormatTag)
	}
	hidden := make([]MaxoutLayer, len(in.Hidden))
	prevOut := -1
	for li, piecesJSON := range in.Hidden {
		if len(piecesJSON) < 2 {
			return fmt.Errorf("nn: maxout layer %d has %d pieces, need >= 2", li, len(piecesJSON))
		}
		pieces := make([]Layer, len(piecesJSON))
		for p, pj := range piecesJSON {
			piece, err := decodeAffine(pj)
			if err != nil {
				return fmt.Errorf("nn: maxout layer %d piece %d: %w", li, p, err)
			}
			if p > 0 && (piece.W.Rows() != pieces[0].W.Rows() || piece.W.Cols() != pieces[0].W.Cols()) {
				return fmt.Errorf("nn: maxout layer %d piece %d shape mismatch", li, p)
			}
			pieces[p] = piece
		}
		if prevOut >= 0 && pieces[0].W.Cols() != prevOut {
			return fmt.Errorf("nn: maxout layer %d input %d != previous output %d", li, pieces[0].W.Cols(), prevOut)
		}
		prevOut = pieces[0].W.Rows()
		hidden[li] = MaxoutLayer{Pieces: pieces}
	}
	out, err := decodeAffine(in.Out)
	if err != nil {
		return fmt.Errorf("nn: maxout output layer: %w", err)
	}
	if prevOut >= 0 && out.W.Cols() != prevOut {
		return fmt.Errorf("nn: maxout output input %d != previous output %d", out.W.Cols(), prevOut)
	}
	n.hidden = hidden
	n.out = out
	return nil
}

// SaveMaxout writes the network to path as JSON.
func (n *MaxoutNetwork) Save(path string) error {
	data, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("nn: marshal maxout: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("nn: save %s: %w", path, err)
	}
	return nil
}

// LoadMaxout reads a MaxOut network saved by Save.
func LoadMaxout(path string) (*MaxoutNetwork, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	var n MaxoutNetwork
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return &n, nil
}
