package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Optimizer selects the parameter update rule.
type Optimizer int

const (
	// SGD is mini-batch gradient descent with classical momentum — the
	// "standard back-propagation" setup the paper uses for its PLNN.
	SGD Optimizer = iota
	// Adam is the adaptive-moment update (Kingma & Ba, 2015); useful when
	// a caller's dataset needs less learning-rate tuning.
	Adam
)

// String returns the optimizer's name.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Adam:
		return "adam"
	}
	return "optimizer(?)"
}

// TrainConfig controls mini-batch training.
type TrainConfig struct {
	Epochs       int       // passes over the training set (default 10)
	BatchSize    int       // mini-batch size (default 32)
	LearningRate float64   // step size (default 0.1 for SGD, 0.001 for Adam)
	Momentum     float64   // SGD momentum coefficient in [0, 1) (default 0.9)
	WeightDecay  float64   // L2 penalty coefficient (default 0)
	Optimizer    Optimizer // update rule (default SGD)
	Beta1        float64   // Adam first-moment decay (default 0.9)
	Beta2        float64   // Adam second-moment decay (default 0.999)
	Verbose      bool      // log per-epoch loss via the Progress callback
	// Progress, when non-nil, is called after each epoch with the epoch
	// index (1-based) and the mean training loss of that epoch.
	Progress func(epoch int, loss float64)
}

func (c *TrainConfig) setDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate <= 0 {
		if c.Optimizer == Adam {
			c.LearningRate = 0.001
		} else {
			c.LearningRate = 0.1
		}
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.9
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
	if c.Beta1 <= 0 || c.Beta1 >= 1 {
		c.Beta1 = 0.9
	}
	if c.Beta2 <= 0 || c.Beta2 >= 1 {
		c.Beta2 = 0.999
	}
}

// gradients accumulates parameter gradients for one mini-batch.
type gradients struct {
	dW []*mat.Dense
	dB []mat.Vec
}

func newGradients(n *Network) *gradients {
	g := &gradients{
		dW: make([]*mat.Dense, len(n.layers)),
		dB: make([]mat.Vec, len(n.layers)),
	}
	for i, l := range n.layers {
		g.dW[i] = mat.NewDense(l.W.Rows(), l.W.Cols())
		g.dB[i] = mat.NewVec(len(l.B))
	}
	return g
}

func (g *gradients) zero() {
	for i := range g.dW {
		r, c := g.dW[i].Dims()
		for ri := 0; ri < r; ri++ {
			row := g.dW[i].RawRow(ri)
			for ci := 0; ci < c; ci++ {
				row[ci] = 0
			}
		}
		g.dB[i].Fill(0)
	}
}

// accumulate runs one forward/backward pass for (x, label), adds the
// parameter gradients into g, and returns the sample's cross-entropy loss.
func (n *Network) accumulate(g *gradients, x mat.Vec, label int) float64 {
	st := n.forward(x)
	last := len(n.layers) - 1
	probs := Softmax(st.z[last])
	loss := CrossEntropy(probs, label)

	// delta = dL/dz for the softmax + cross-entropy head: p - onehot(label).
	delta := probs.Clone()
	delta[label] -= 1

	for i := last; i >= 0; i-- {
		// dW_i += delta * a_i^T ; dB_i += delta.
		ai := st.a[i]
		dw := g.dW[i]
		for r, dr := range delta {
			if dr == 0 {
				continue
			}
			row := dw.RawRow(r)
			for c, av := range ai {
				row[c] += dr * av
			}
		}
		g.dB[i].AddInPlace(delta)
		if i == 0 {
			break
		}
		// Propagate through W_i and the (leaky) ReLU of layer i-1.
		delta = n.layers[i].W.MulVecT(delta)
		z := st.z[i-1]
		for j := range delta {
			if z[j] <= 0 {
				delta[j] *= n.leak
			}
		}
	}
	return loss
}

// Train runs mini-batch SGD over (xs, labels) and returns the mean loss of
// the final epoch. The shuffle order is drawn from rng, so training is
// reproducible given the seed.
func (n *Network) Train(rng *rand.Rand, xs []mat.Vec, labels []int, cfg TrainConfig) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	if len(xs) != len(labels) {
		return 0, fmt.Errorf("nn: %d inputs vs %d labels", len(xs), len(labels))
	}
	for i, y := range labels {
		if y < 0 || y >= n.Classes() {
			return 0, fmt.Errorf("nn: label %d of sample %d out of range [0,%d)", y, i, n.Classes())
		}
	}
	cfg.setDefaults()

	grads := newGradients(n)
	moment1 := newGradients(n) // SGD velocity / Adam first moment
	var moment2 *gradients     // Adam second moment
	if cfg.Optimizer == Adam {
		moment2 = newGradients(n)
	}
	adamStep := 0
	var lastLoss float64
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		order := rng.Perm(len(xs))
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			grads.zero()
			for _, idx := range batch {
				epochLoss += n.accumulate(grads, xs[idx], labels[idx])
			}
			invBatch := 1 / float64(len(batch))
			switch cfg.Optimizer {
			case Adam:
				adamStep++
				bc1 := 1 - math.Pow(cfg.Beta1, float64(adamStep))
				bc2 := 1 - math.Pow(cfg.Beta2, float64(adamStep))
				update := func(w, g, m1, m2 []float64) {
					for c := range w {
						gc := g[c]*invBatch + cfg.WeightDecay*w[c]
						m1[c] = cfg.Beta1*m1[c] + (1-cfg.Beta1)*gc
						m2[c] = cfg.Beta2*m2[c] + (1-cfg.Beta2)*gc*gc
						mhat := m1[c] / bc1
						vhat := m2[c] / bc2
						w[c] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + 1e-8)
					}
				}
				for i, l := range n.layers {
					for r := 0; r < l.W.Rows(); r++ {
						update(l.W.RawRow(r), grads.dW[i].RawRow(r),
							moment1.dW[i].RawRow(r), moment2.dW[i].RawRow(r))
					}
					update(l.B, grads.dB[i], moment1.dB[i], moment2.dB[i])
				}
			default: // SGD with momentum
				scale := cfg.LearningRate * invBatch
				for i, l := range n.layers {
					// v = mu*v - lr*(g/|B| + wd*W); W += v
					for r := 0; r < l.W.Rows(); r++ {
						wrow := l.W.RawRow(r)
						grow := grads.dW[i].RawRow(r)
						vrow := moment1.dW[i].RawRow(r)
						for c := range wrow {
							vrow[c] = cfg.Momentum*vrow[c] - scale*grow[c] - cfg.LearningRate*cfg.WeightDecay*wrow[c]
							wrow[c] += vrow[c]
						}
					}
					for j := range l.B {
						moment1.dB[i][j] = cfg.Momentum*moment1.dB[i][j] - scale*grads.dB[i][j]
						l.B[j] += moment1.dB[i][j]
					}
				}
			}
		}
		lastLoss = epochLoss / float64(len(xs))
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// Loss returns the mean cross-entropy of the network over (xs, labels).
func (n *Network) Loss(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i, x := range xs {
		total += CrossEntropy(n.Predict(x), labels[i])
	}
	return total / float64(len(xs))
}
