package eval

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/plm"
)

// FlipResult traces the paper's Figure 3 protocol for one instance: starting
// from x0 with predicted class c, features are altered one at a time in
// descending order of |weight| (positive-weight features set to 0,
// negative-weight features set to 1). After each alteration the probability
// of class c and the predicted label are recorded.
type FlipResult struct {
	Class int
	// CPP[k] is |P(c | x altered k+1 times) − P(c | x0)| — the change of
	// prediction probability after k+1 flips.
	CPP []float64
	// LabelChanged[k] reports whether the predicted label differs from c
	// after k+1 flips.
	LabelChanged []bool
	// Queries is the number of Predict calls consumed by the trace.
	Queries int
}

// FlipCurve applies the feature-flipping protocol to one instance using the
// weights of interp, altering up to maxFlips features.
func FlipCurve(model plm.Model, x0 mat.Vec, interp *plm.Interpretation, maxFlips int) (*FlipResult, error) {
	d := len(x0)
	if len(interp.Features) != d {
		return nil, fmt.Errorf("eval: interpretation has %d weights for %d features", len(interp.Features), d)
	}
	if maxFlips <= 0 || maxFlips > d {
		maxFlips = d
	}
	// Rank features by descending absolute weight.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	w := interp.Features
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := w[order[a]], w[order[b]]
		if wa < 0 {
			wa = -wa
		}
		if wb < 0 {
			wb = -wb
		}
		return wa > wb
	})

	base := model.Predict(x0)
	c := interp.Class
	p0 := base[c]
	x := x0.Clone()
	res := &FlipResult{
		Class:        c,
		CPP:          make([]float64, 0, maxFlips),
		LabelChanged: make([]bool, 0, maxFlips),
		Queries:      1,
	}
	for k := 0; k < maxFlips; k++ {
		f := order[k]
		// Positive weights support class c: erase them. Negative weights
		// oppose it: saturate them.
		if w[f] >= 0 {
			x[f] = 0
		} else {
			x[f] = 1
		}
		p := model.Predict(x)
		res.Queries++
		diff := p[c] - p0
		if diff < 0 {
			diff = -diff
		}
		res.CPP = append(res.CPP, diff)
		res.LabelChanged = append(res.LabelChanged, p.ArgMax() != c)
	}
	return res, nil
}

// AggregateFlips averages many FlipResults into the two Figure 3 series:
// mean CPP per flip count, and NLCI (the number of instances whose label has
// changed) per flip count. All traces must have equal length.
func AggregateFlips(results []*FlipResult) (avgCPP []float64, nlci []float64, err error) {
	if len(results) == 0 {
		return nil, nil, fmt.Errorf("eval: no flip results to aggregate")
	}
	k := len(results[0].CPP)
	for i, r := range results {
		if len(r.CPP) != k || len(r.LabelChanged) != k {
			return nil, nil, fmt.Errorf("eval: flip trace %d has length %d, want %d", i, len(r.CPP), k)
		}
	}
	avgCPP = make([]float64, k)
	nlci = make([]float64, k)
	for _, r := range results {
		for j := 0; j < k; j++ {
			avgCPP[j] += r.CPP[j]
			if r.LabelChanged[j] {
				nlci[j]++
			}
		}
	}
	for j := range avgCPP {
		avgCPP[j] /= float64(len(results))
	}
	return avgCPP, nlci, nil
}
