package analysis

import "testing"

func TestDetfloatFixtures(t *testing.T) {
	runFixtures(t, []*Analyzer{Detfloat}, "repro/internal/mat", "detfloat")
}

// The same violations outside the scoped packages are someone else's
// business: detfloat must stay silent.
func TestDetfloatScope(t *testing.T) {
	runExpectClean(t, []*Analyzer{Detfloat}, "repro/internal/heatmap", "detfloat")
}

// The ordered-output packages get the map-range rule but not the
// FMA/clock/RNG rules.
func TestDetfloatOrderedOutputScope(t *testing.T) {
	runFixtures(t, []*Analyzer{Detfloat}, "repro/internal/extract", "detfloat_ordered")
}

// The wire codec package carries the full bit-identity rule set: a float
// crossing the HTTP boundary must come back with the same bits whichever
// codec carried it, so the codecs get the same scrutiny as the kernels.
func TestDetfloatCoversWirePackage(t *testing.T) {
	runFixtures(t, []*Analyzer{Detfloat}, "repro/internal/wire", "detfloat")
}
