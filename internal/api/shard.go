package api

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// Shard routes prediction traffic across N backends serving the same model.
// A backend is either a local in-process replica or a remote plmserve
// instance (see Backend); the router cannot tell them apart, which is the
// point — the paper's API setting assumes only that something answers
// probability queries.
//
// A /batch request is split into chunks and dispatched load-aware: every
// eligible backend pulls the next chunk off a shared queue as soon as it
// finishes the previous one, so fast backends serve more of the batch and a
// backend busy with another caller's work naturally takes less
// (least-outstanding-work, tracked by per-backend inflight counters). Each
// chunk writes only its own out[lo:hi] segment, so the merge preserves
// submission order with no reordering and no lock.
//
// Failures fail over instead of failing the batch: a backend whose chunk
// errors is quarantined with exponential backoff and its chunk re-enqueued
// for the remaining backends. Only when every backend has failed does the
// batch error — partial answers would silently corrupt an interpretation's
// linear system, so it is all of the batch or none of it. A quarantined
// backend rejoins after its backoff expires and a Healthy() recovery probe
// succeeds; a failed probe doubles the backoff.
//
// Backends must be interchangeable (copies of one model, or remotes serving
// it): the split is then invisible to callers and sharded predictions are
// bit-identical to single-backend ones. A Shard is safe for concurrent use
// when its backends are.
type Shard struct {
	backends []*backendState
	cfg      ShardConfig
	// next drives the round-robin tie-break for single predictions.
	next atomic.Int64
	// now is the clock, swappable in tests.
	now func() time.Time
}

// ShardConfig tunes the router. The zero value gives sensible defaults.
type ShardConfig struct {
	// MinChunk is the smallest chunk handed to one backend (default 4):
	// below it, dispatch overhead beats the batched forward's GEMM win.
	MinChunk int
	// ChunkFactor is how many chunks each backend would get of an evenly
	// split batch (default 2). More chunks re-balance better when backends
	// run at different speeds; fewer keep per-chunk batches wide.
	ChunkFactor int
	// QuarantineBase is the first backoff after a backend failure
	// (default 250ms); each further failure doubles it up to QuarantineMax
	// (default 30s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
}

func (c *ShardConfig) setDefaults() {
	if c.MinChunk <= 0 {
		c.MinChunk = 4
	}
	if c.ChunkFactor <= 0 {
		c.ChunkFactor = 2
	}
	if c.QuarantineBase <= 0 {
		c.QuarantineBase = 250 * time.Millisecond
	}
	if c.QuarantineMax <= 0 {
		c.QuarantineMax = 30 * time.Second
	}
}

// backendState is the router's bookkeeping around one backend.
type backendState struct {
	b     Backend
	stats BackendStats

	queries  atomic.Int64 // probes answered successfully
	inflight atomic.Int64 // probes currently outstanding
	retries  atomic.Int64 // chunks re-dispatched away after this backend failed them
	failures atomic.Int64 // failed calls (chunks, singles, recovery probes)
	// probing single-flights the quarantine-recovery Healthy() probe: a
	// remote ping can take up to its deadline, so exactly one caller pays
	// it (and doubles the backoff on failure) while everyone else keeps
	// treating the backend as quarantined.
	probing atomic.Bool

	mu               sync.Mutex
	quarantinedUntil time.Time
	backoff          time.Duration
}

// quarantined reports whether the backend is sidelined at time now.
func (st *backendState) quarantined(now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.quarantinedUntil.IsZero() && now.Before(st.quarantinedUntil)
}

// NewShard builds a router over local in-process replicas — the original
// single-machine topology, kept as the convenience constructor. All
// replicas must agree on input dimensionality and class count.
func NewShard(replicas []plm.Model) (*Shard, error) {
	return NewShardBackends(LocalBackends(replicas, "replica"), ShardConfig{})
}

// NewShardBackends builds a router over the given backends, local or
// remote. All backends must agree on input dimensionality and class count.
func NewShardBackends(backends []Backend, cfg ShardConfig) (*Shard, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("api: shard needs at least one backend")
	}
	cfg.setDefaults()
	s := &Shard{backends: make([]*backendState, len(backends)), cfg: cfg, now: time.Now}
	first := backends[0].Stats()
	for i, b := range backends {
		st := b.Stats()
		if st.Dim != first.Dim || st.Classes != first.Classes {
			return nil, fmt.Errorf("api: backend %d (%s) is %dx%d, backend 0 (%s) is %dx%d",
				i, st.Name, st.Dim, st.Classes, first.Name, first.Dim, first.Classes)
		}
		s.backends[i] = &backendState{b: b, stats: st}
	}
	return s, nil
}

// Replicas returns the number of backends behind the router.
func (s *Shard) Replicas() int { return len(s.backends) }

// ReplicaQueries returns the number of probes each backend has answered.
func (s *Shard) ReplicaQueries() []int64 {
	out := make([]int64, len(s.backends))
	for i, st := range s.backends {
		out[i] = st.queries.Load()
	}
	return out
}

// BackendStatus returns the live per-backend breakdown /stats reports. A
// remote backend that cannot currently be reached shows state "unreachable"
// instead of being omitted (or worse, panicking a reach-through): the
// router knows the backend exists even while it cannot serve.
func (s *Shard) BackendStatus() []BackendStatus {
	now := s.now()
	out := make([]BackendStatus, len(s.backends))
	for i, st := range s.backends {
		state := "ok"
		if st.quarantined(now) {
			state = "unreachable"
		}
		out[i] = BackendStatus{
			Kind:     st.stats.Kind,
			Name:     st.stats.Name,
			Queries:  st.queries.Load(),
			Inflight: st.inflight.Load(),
			Retries:  st.retries.Load(),
			Failures: st.failures.Load(),
			State:    state,
		}
		// Wire reach-through: a remote backend exposes its client-side
		// codec traffic so /stats shows what each hop costs on the wire,
		// mirroring how cache counters reach through the response cache.
		if wc, ok := st.b.(wireCounter); ok {
			counts := wc.WireCounts()
			out[i].Wire = &counts
		}
	}
	return out
}

// Dim forwards to the first backend's advertised shape.
func (s *Shard) Dim() int { return s.backends[0].stats.Dim }

// Classes forwards to the first backend's advertised shape.
func (s *Shard) Classes() int { return s.backends[0].stats.Classes }

// quarantine sidelines a backend after a failure, doubling its backoff up
// to the configured maximum.
func (s *Shard) quarantine(st *backendState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.backoff == 0 {
		st.backoff = s.cfg.QuarantineBase
	} else if st.backoff < s.cfg.QuarantineMax {
		st.backoff *= 2
		if st.backoff > s.cfg.QuarantineMax {
			st.backoff = s.cfg.QuarantineMax
		}
	}
	st.quarantinedUntil = s.now().Add(st.backoff)
}

// eligible returns the backends allowed to serve right now. A backend whose
// quarantine has expired is given a Healthy() recovery probe — exactly one
// caller runs it (single-flight; concurrent callers keep treating the
// backend as quarantined): success clears its record, failure
// re-quarantines it with a doubled backoff. When everything is quarantined
// the full set is returned as a last resort — a batch that might succeed
// beats one refused outright, and a success clears the survivor's
// quarantine.
func (s *Shard) eligible() []*backendState {
	now := s.now()
	out := make([]*backendState, 0, len(s.backends))
	for _, st := range s.backends {
		st.mu.Lock()
		until := st.quarantinedUntil
		st.mu.Unlock()
		switch {
		case until.IsZero():
			out = append(out, st)
		case now.Before(until):
			// Still sidelined.
		case !st.probing.CompareAndSwap(false, true):
			// Another caller's recovery probe is in flight.
		default:
			healthy := st.b.Healthy()
			if healthy {
				st.mu.Lock()
				st.quarantinedUntil = time.Time{}
				st.backoff = 0
				st.mu.Unlock()
			} else {
				st.failures.Add(1)
				s.quarantine(st)
			}
			st.probing.Store(false)
			if healthy {
				out = append(out, st)
			}
		}
	}
	if len(out) == 0 {
		return s.backends
	}
	return out
}

// PredictErr routes one prediction to the eligible backend with the fewest
// outstanding probes, breaking ties round-robin. A failing backend is
// quarantined and the probe fails over to the next; when every backend has
// failed, the error surfaces — the HTTP server turns it into a 5xx instead
// of fabricating an answer.
func (s *Shard) PredictErr(x mat.Vec) (mat.Vec, error) {
	tried := make(map[*backendState]bool, len(s.backends))
	var lastErr error
	for {
		st := s.pickLeastLoaded(tried)
		if st == nil {
			return nil, fmt.Errorf("api: all %d backends failed: %w", len(s.backends), lastErr)
		}
		tried[st] = true
		st.inflight.Add(1)
		p, err := st.b.Predict(x)
		st.inflight.Add(-1)
		if err != nil {
			lastErr = err
			st.failures.Add(1)
			s.quarantine(st)
			continue
		}
		s.clearQuarantine(st)
		st.queries.Add(1)
		return p, nil
	}
}

// Predict is PredictErr behind the errorless plm.Model surface: when every
// backend fails it degrades to the uniform distribution, the same contract
// Client.Predict honours when its remote is gone. Servers should prefer
// PredictErr so a total outage answers 5xx, not fabricated probabilities.
func (s *Shard) Predict(x mat.Vec) mat.Vec {
	p, err := s.PredictErr(x)
	if err != nil {
		out := make(mat.Vec, s.Classes())
		return out.Fill(1 / float64(s.Classes()))
	}
	return p
}

// clearQuarantine wipes a backend's failure record after a success — a
// last-resort call that got through means the backend is back.
func (s *Shard) clearQuarantine(st *backendState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.quarantinedUntil.IsZero() {
		st.quarantinedUntil = time.Time{}
		st.backoff = 0
	}
}

// pickLeastLoaded returns the untried eligible backend with the fewest
// inflight probes, scanning from a rotating start so equal loads
// round-robin. Returns nil when every eligible backend has been tried.
func (s *Shard) pickLeastLoaded(tried map[*backendState]bool) *backendState {
	elig := s.eligible()
	start := int(s.next.Add(1)-1) % len(elig)
	var best *backendState
	var bestLoad int64
	for i := 0; i < len(elig); i++ {
		st := elig[(start+i)%len(elig)]
		if tried[st] {
			continue
		}
		if load := st.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = st, load
		}
	}
	return best
}

// span is one contiguous chunk of a batch, with its re-dispatch count.
type span struct {
	lo, hi   int
	attempts int
}

// chunkSpans splits n instances into roughly ChunkFactor chunks per worker,
// each at least MinChunk wide — small enough to re-balance across uneven
// backends, wide enough that every chunk still rides the batched forward.
// On batches too small for that many MinChunk-wide chunks, the floor yields
// to an even per-worker split so every backend still participates.
func (s *Shard) chunkSpans(n, workers int) []span {
	chunk := (n + workers*s.cfg.ChunkFactor - 1) / (workers * s.cfg.ChunkFactor)
	if chunk < s.cfg.MinChunk {
		chunk = s.cfg.MinChunk
		if even := (n + workers - 1) / workers; even < chunk {
			chunk = even
		}
	}
	spans := make([]span, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spans = append(spans, span{lo: lo, hi: hi})
	}
	return spans
}

// PredictBatch splits the batch into chunks and dispatches them load-aware
// across the eligible backends, merging the answers in submission order.
// A backend whose chunk fails is quarantined, its chunk re-enqueued for the
// others, and the batch still succeeds — bit-identical to a single healthy
// backend answering alone. The batch errors only when every backend has
// dropped out with work still pending.
func (s *Shard) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	elig := s.eligible()
	spans := s.chunkSpans(len(xs), len(elig))
	out := make([]mat.Vec, len(xs))
	if len(elig) == 1 || len(spans) == 1 {
		if err := s.runSpans(xs, out, spans, elig); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := s.dispatch(xs, out, spans, elig); err != nil {
		return nil, err
	}
	return out, nil
}

// runSpans answers the chunks serially with failover: each backend in turn
// (least-loaded first) tries the remaining work, so even a single-chunk
// batch survives a dead backend as long as one lives.
func (s *Shard) runSpans(xs []mat.Vec, out []mat.Vec, spans []span, elig []*backendState) error {
	var lastErr error
	tried := make(map[*backendState]bool, len(elig))
	for len(tried) < len(elig) {
		st := s.pickLeastLoaded(tried)
		if st == nil {
			break
		}
		tried[st] = true
		if err := s.runChunksOn(st, xs, out, spans); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("api: all %d backends failed: %w", len(elig), lastErr)
}

// runChunksOn answers every span on one backend, quarantining it on the
// first failure.
func (s *Shard) runChunksOn(st *backendState, xs []mat.Vec, out []mat.Vec, spans []span) error {
	for _, sp := range spans {
		ys, err := s.runChunk(st, xs[sp.lo:sp.hi])
		if err != nil {
			return err
		}
		copy(out[sp.lo:sp.hi], ys)
	}
	return nil
}

// runChunk answers one chunk on one backend, maintaining the inflight,
// query and failure counters and the quarantine state machine.
func (s *Shard) runChunk(st *backendState, xs []mat.Vec) ([]mat.Vec, error) {
	n := int64(len(xs))
	st.inflight.Add(n)
	ys, err := st.b.PredictBatch(xs)
	st.inflight.Add(-n)
	if err == nil && len(ys) != len(xs) {
		err = fmt.Errorf("api: backend %s answered %d of %d probes", st.stats.Name, len(ys), len(xs))
	}
	if err != nil {
		st.failures.Add(1)
		s.quarantine(st)
		return nil, err
	}
	s.clearQuarantine(st)
	st.queries.Add(n)
	return ys, nil
}

// dispatch runs the load-aware chunk schedule. Each backend is seeded with
// one chunk — every backend participates, and on same-speed backends the
// split degenerates to the even one — while the remaining chunks sit on a
// shared queue that workers pull from as they finish, so faster (or less
// loaded) backends absorb more of the tail. A worker whose chunk fails
// re-enqueues it for the others and leaves the batch. pending counts
// chunks not yet merged; active counts workers still pulling — when the
// last worker leaves with work pending, the batch has genuinely run out of
// backends and fails.
func (s *Shard) dispatch(xs []mat.Vec, out []mat.Vec, spans []span, elig []*backendState) error {
	jobs := make(chan span, len(spans))
	for _, sp := range spans[min(len(spans), len(elig)):] {
		jobs <- sp
	}
	var (
		pending atomic.Int64
		active  atomic.Int64
		done    = make(chan struct{})
		once    sync.Once
		errMu   sync.Mutex
		first   error
	)
	pending.Store(int64(len(spans)))
	active.Store(int64(len(elig)))
	recordErr := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if first == nil {
			first = err
		}
	}
	finish := func(err error) {
		if err != nil {
			recordErr(err)
		}
		once.Do(func() { close(done) })
	}
	for i, st := range elig {
		var seed *span
		if i < len(spans) {
			seed = &spans[i]
		}
		go func(st *backendState, seed *span) {
			defer func() {
				if active.Add(-1) == 0 && pending.Load() > 0 {
					finish(fmt.Errorf("api: all %d backends failed with %d chunks pending",
						len(elig), pending.Load()))
				}
			}()
			// run answers one chunk; false means this worker is done —
			// batch finished, or the backend failed and left.
			run := func(sp span) bool {
				ys, err := s.runChunk(st, xs[sp.lo:sp.hi])
				if err != nil {
					sp.attempts++
					if sp.attempts >= len(elig) {
						// Every backend has had its shot at this chunk.
						finish(fmt.Errorf("api: chunk [%d:%d) failed on %d backends: %w",
							sp.lo, sp.hi, sp.attempts, err))
						return false
					}
					st.retries.Add(1)
					jobs <- sp // capacity len(spans) ≥ live chunks, never blocks
					return false
				}
				copy(out[sp.lo:sp.hi], ys)
				if pending.Add(-1) == 0 {
					finish(nil)
					return false
				}
				return true
			}
			if seed != nil && !run(*seed) {
				return
			}
			for {
				select {
				case <-done:
					return
				case sp := <-jobs:
					if !run(sp) {
						return
					}
				}
			}
		}(st, seed)
	}
	<-done
	errMu.Lock()
	defer errMu.Unlock()
	return first
}

var _ plm.Model = (*Shard)(nil)
var _ plm.BatchPredictor = (*Shard)(nil)
