package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Optimizer selects the parameter update rule.
type Optimizer int

const (
	// SGD is mini-batch gradient descent with classical momentum — the
	// "standard back-propagation" setup the paper uses for its PLNN.
	SGD Optimizer = iota
	// Adam is the adaptive-moment update (Kingma & Ba, 2015); useful when
	// a caller's dataset needs less learning-rate tuning.
	Adam
)

// String returns the optimizer's name.
func (o Optimizer) String() string {
	switch o {
	case SGD:
		return "sgd"
	case Adam:
		return "adam"
	}
	return "optimizer(?)"
}

// TrainConfig controls mini-batch training.
type TrainConfig struct {
	Epochs       int       // passes over the training set (default 10)
	BatchSize    int       // mini-batch size (default 32)
	LearningRate float64   // step size (default 0.1 for SGD, 0.001 for Adam)
	Momentum     float64   // SGD momentum coefficient in [0, 1) (default 0.9)
	WeightDecay  float64   // L2 penalty coefficient (default 0)
	Optimizer    Optimizer // update rule (default SGD)
	Beta1        float64   // Adam first-moment decay (default 0.9)
	Beta2        float64   // Adam second-moment decay (default 0.999)
	Verbose      bool      // log per-epoch loss via the Progress callback
	// PerSample forces the reference per-sample training loop instead of
	// the batched GEMM epoch. Both paths produce bit-identical weights
	// given the same seed and batch order (pinned by the Train parity
	// tests); the knob exists for those tests, for the epoch benchmarks,
	// and for A/B timing from cmd/plmtrain.
	PerSample bool
	// Progress, when non-nil, is called after each epoch with the epoch
	// index (1-based) and the mean training loss of that epoch.
	Progress func(epoch int, loss float64)
}

func (c *TrainConfig) setDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate <= 0 {
		if c.Optimizer == Adam {
			c.LearningRate = 0.001
		} else {
			c.LearningRate = 0.1
		}
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.9
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
	if c.Beta1 <= 0 || c.Beta1 >= 1 {
		c.Beta1 = 0.9
	}
	if c.Beta2 <= 0 || c.Beta2 >= 1 {
		c.Beta2 = 0.999
	}
}

// checkTrainingSet validates a training set against a model's class count.
func checkTrainingSet(xs []mat.Vec, labels []int, classes int) error {
	if len(xs) == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	if len(xs) != len(labels) {
		return fmt.Errorf("nn: %d inputs vs %d labels", len(xs), len(labels))
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return fmt.Errorf("nn: label %d of sample %d out of range [0,%d)", y, i, classes)
		}
	}
	return nil
}

// batchCap bounds the pooled scratch row capacity: no mini-batch is ever
// larger than the training set.
func batchCap(batchSize, n int) int {
	if batchSize > n {
		return n
	}
	return batchSize
}

// paramBlock pairs one contiguous parameter span with its gradient
// accumulator. The optimizer updates every element independently, so block
// granularity never affects the update arithmetic — blocks exist so one
// update implementation serves Network and MaxoutNetwork, per-sample and
// batched alike.
type paramBlock struct {
	w, g []float64
	bias bool // biases skip weight decay under SGD (seed semantics)
}

// optimizer holds the per-parameter state of the update rule — the SGD
// velocity or the Adam moments — one slot span per block.
type optimizer struct {
	cfg      *TrainConfig
	adamStep int
	m1, m2   [][]float64
}

func newOptimizer(cfg *TrainConfig, blocks []paramBlock) *optimizer {
	o := &optimizer{cfg: cfg, m1: make([][]float64, len(blocks))}
	for i, b := range blocks {
		o.m1[i] = make([]float64, len(b.w))
	}
	if cfg.Optimizer == Adam {
		o.m2 = make([][]float64, len(blocks))
		for i, b := range blocks {
			o.m2[i] = make([]float64, len(b.w))
		}
	}
	return o
}

// step applies one mini-batch update to every block. The elementwise
// arithmetic is shared by the per-sample and batched paths, so identical
// gradient accumulators yield bit-identical weights.
func (o *optimizer) step(blocks []paramBlock, batchLen int) {
	cfg := o.cfg
	invBatch := 1 / float64(batchLen)
	switch cfg.Optimizer {
	case Adam:
		o.adamStep++
		bc1 := 1 - math.Pow(cfg.Beta1, float64(o.adamStep))
		bc2 := 1 - math.Pow(cfg.Beta2, float64(o.adamStep))
		for i, blk := range blocks {
			m1, m2 := o.m1[i], o.m2[i]
			for c := range blk.w {
				gc := blk.g[c]*invBatch + cfg.WeightDecay*blk.w[c]
				m1[c] = cfg.Beta1*m1[c] + (1-cfg.Beta1)*gc
				m2[c] = cfg.Beta2*m2[c] + (1-cfg.Beta2)*gc*gc
				mhat := m1[c] / bc1
				vhat := m2[c] / bc2
				blk.w[c] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + 1e-8)
			}
		}
	default: // SGD with momentum
		scale := cfg.LearningRate * invBatch
		for i, blk := range blocks {
			// v = mu*v - lr*(g/|B| + wd*W); W += v. Biases are not decayed,
			// matching the pre-batching update rule exactly (Adam above
			// decays both, also as before).
			wd := cfg.WeightDecay
			if blk.bias {
				wd = 0
			}
			v := o.m1[i]
			for c := range blk.w {
				v[c] = cfg.Momentum*v[c] - scale*blk.g[c] - cfg.LearningRate*wd*blk.w[c]
				blk.w[c] += v[c]
			}
		}
	}
}

// runEpochs drives the shared training schedule — per-epoch shuffle,
// mini-batch slicing, optimizer step — for every family/path combination.
// accumulate must (re)fill the gradient accumulators behind blocks for the
// given batch of sample indices and return the summed batch loss. The RNG
// is consumed identically (one Perm per epoch) on every path, so switching
// paths never changes the batch order.
func runEpochs(rng *rand.Rand, nSamples int, cfg *TrainConfig, blocks []paramBlock, accumulate func(batch []int) float64) float64 {
	opt := newOptimizer(cfg, blocks)
	var lastLoss float64
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		order := rng.Perm(nSamples)
		var epochLoss float64
		for start := 0; start < nSamples; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > nSamples {
				end = nSamples
			}
			batch := order[start:end]
			epochLoss += accumulate(batch)
			opt.step(blocks, len(batch))
		}
		lastLoss = epochLoss / float64(nSamples)
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	return lastLoss
}

// gradients accumulates parameter gradients for one mini-batch.
type gradients struct {
	dW []*mat.Dense
	dB []mat.Vec
}

func newGradients(n *Network) *gradients {
	g := &gradients{
		dW: make([]*mat.Dense, len(n.layers)),
		dB: make([]mat.Vec, len(n.layers)),
	}
	for i, l := range n.layers {
		g.dW[i] = mat.NewDense(l.W.Rows(), l.W.Cols())
		g.dB[i] = mat.NewVec(len(l.B))
	}
	return g
}

func (g *gradients) zero() {
	for i := range g.dW {
		r, c := g.dW[i].Dims()
		for ri := 0; ri < r; ri++ {
			row := g.dW[i].RawRow(ri)
			for ci := 0; ci < c; ci++ {
				row[ci] = 0
			}
		}
		g.dB[i].Fill(0)
	}
}

// paramBlocks pairs every parameter span of the network with its gradient
// accumulator, in layer order: the rows of W, then B.
func (n *Network) paramBlocks(g *gradients) []paramBlock {
	var blocks []paramBlock
	for i, l := range n.layers {
		for r := 0; r < l.W.Rows(); r++ {
			blocks = append(blocks, paramBlock{w: l.W.RawRow(r), g: g.dW[i].RawRow(r)})
		}
		blocks = append(blocks, paramBlock{w: l.B, g: g.dB[i], bias: true})
	}
	return blocks
}

// accumulate runs one forward/backward pass for (x, label), adds the
// parameter gradients into g, and returns the sample's cross-entropy loss.
// This is the per-sample reference the batched path must match bit for bit.
func (n *Network) accumulate(g *gradients, x mat.Vec, label int) float64 {
	st := n.forward(x)
	last := len(n.layers) - 1
	probs := Softmax(st.z[last])
	loss := CrossEntropy(probs, label)

	// delta = dL/dz for the softmax + cross-entropy head: p - onehot(label).
	delta := probs.Clone()
	delta[label] -= 1

	for i := last; i >= 0; i-- {
		// dW_i += delta * a_i^T ; dB_i += delta.
		ai := st.a[i]
		dw := g.dW[i]
		for r, dr := range delta {
			if dr == 0 {
				continue
			}
			row := dw.RawRow(r)
			for c, av := range ai {
				row[c] += dr * av
			}
		}
		g.dB[i].AddInPlace(delta)
		if i == 0 {
			break
		}
		// Propagate through W_i and the (leaky) ReLU of layer i-1.
		delta = n.layers[i].W.MulVecT(delta)
		z := st.z[i-1]
		for j := range delta {
			if z[j] <= 0 {
				delta[j] *= n.leak
			}
		}
	}
	return loss
}

// Train runs mini-batch training over (xs, labels) and returns the mean
// loss of the final epoch. The shuffle order is drawn from rng, so training
// is reproducible given the seed. By default the whole mini-batch flows
// through the network as matrices — one GEMM per layer forward, one
// transpose-A GEMM per layer for the weight gradients, one GEMM per layer
// for delta propagation (see train_batch.go) — producing weights
// bit-identical to the per-sample reference loop (cfg.PerSample) at a
// fraction of the wall-clock.
func (n *Network) Train(rng *rand.Rand, xs []mat.Vec, labels []int, cfg TrainConfig) (float64, error) {
	if err := checkTrainingSet(xs, labels, n.Classes()); err != nil {
		return 0, err
	}
	cfg.setDefaults()
	grads := newGradients(n)
	blocks := n.paramBlocks(grads)
	var accumulate func(batch []int) float64
	if cfg.PerSample {
		accumulate = func(batch []int) float64 {
			grads.zero()
			var loss float64
			for _, idx := range batch {
				loss += n.accumulate(grads, xs[idx], labels[idx])
			}
			return loss
		}
	} else {
		// The batched path overwrites every accumulator (transpose-A GEMM
		// for dW, column sums for dB), so grads needs no per-batch zeroing
		// and the scratch is reused across batches and epochs.
		s := newNetScratch(n, batchCap(cfg.BatchSize, len(xs)))
		accumulate = func(batch []int) float64 {
			return n.accumulateBatch(s, grads, xs, labels, batch)
		}
	}
	return runEpochs(rng, len(xs), &cfg, blocks, accumulate), nil
}

// Loss returns the mean cross-entropy of the network over (xs, labels).
func (n *Network) Loss(xs []mat.Vec, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i, x := range xs {
		total += CrossEntropy(n.Predict(x), labels[i])
	}
	return total / float64(len(xs))
}
