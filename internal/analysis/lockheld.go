package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockheld enforces the serving stack's lock discipline. Two rules, both
// scoped to one function body at a time (closures are separate bodies):
//
//  1. A mutex must not be held across a blocking operation: a channel send,
//     receive or select, a net/http client round-trip, a backend Healthy()
//     probe, a Ping/PingCtx health check, a Dial handshake, time.Sleep, or
//     a sync.WaitGroup/sync.Cond Wait. Every backend in a shard shares
//     these mutexes — and the fleet registry's membership lock fronts every
//     router request — so one slow probe or worker dial-back under a lock
//     stalls the whole router.
//  2. A manually paired Unlock (not deferred) must not have branching
//     control flow between Lock and the first matching Unlock: a panic or
//     an early return on one of those paths leaves the mutex locked
//     forever, wedging every future caller. Convert to defer, or — for the
//     audited fast paths where the unlock genuinely must happen before a
//     blocking wait — annotate the Lock line with //plmvet:allow(lockheld)
//     and a comment stating the invariant that keeps every path unlocked.
//
// The matching is positional within one body: a Lock pairs with the next
// Unlock of the same receiver expression and flavor (Lock/Unlock vs
// RLock/RUnlock). That is deliberately simple — it resolves correctly for
// every lock site in this repository, and code it cannot pair is code a
// reviewer cannot pair either.
var Lockheld = &Analyzer{
	Name: "lockheld",
	Doc: "forbid blocking calls under a mutex and non-deferred Unlock on " +
		"branchy paths",
	Run: runLockheld,
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evDeferUnlock
)

type lockEvent struct {
	kind lockEventKind
	recv string // canonical receiver expression, e.g. "a.mu"
	read bool   // RLock/RUnlock flavor
	pos  token.Pos
}

func runLockheld(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	events := collectLockEvents(pass, body)
	for i, ev := range events {
		if ev.kind != evLock {
			continue
		}
		match := matchingUnlock(events[i+1:], ev)
		switch {
		case match == nil:
			// Lock handoff to another function; out of scope.
		case match.kind == evDeferUnlock:
			// Deferred is the sanctioned shape; the lock is held to
			// function return, so the whole remaining body is the
			// critical section.
			reportBlockingIn(pass, body, ev, ev.pos, body.End())
		default:
			reportBlockingIn(pass, body, ev, ev.pos, match.pos)
			if branchBetween(body, ev.pos, match.pos) {
				pass.Reportf(ev.pos, "%s is released by a non-deferred Unlock across branching control flow; a panic or early return would wedge the mutex — use defer or annotate the audited invariant with //plmvet:allow(lockheld)", ev.recv)
			}
		}
	}
}

// collectLockEvents gathers Lock/Unlock/defer-Unlock calls on sync mutexes
// directly inside body, in source order, without descending into nested
// function literals.
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	inspectBody(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := lockEventOf(pass, n.Call); ok && ev.kind == evUnlock {
				ev.kind = evDeferUnlock
				events = append(events, ev)
			}
		case *ast.CallExpr:
			if ev, ok := lockEventOf(pass, n); ok {
				events = append(events, ev)
			}
		}
	})
	return events
}

// inspectBody walks body in source order, skipping nested FuncLits: their
// statements execute on the closure's schedule, not under this body's
// locks.
func inspectBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// lockEventOf classifies a call as a mutex Lock/Unlock if its callee is a
// (R)Lock/(R)Unlock method provided by package sync (covers embedded and
// promoted mutexes).
func lockEventOf(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return lockEvent{}, false
	}
	m := s.Obj()
	if m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	ev := lockEvent{recv: types.ExprString(sel.X), pos: call.Pos()}
	switch m.Name() {
	case "Lock":
		ev.kind = evLock
	case "Unlock":
		ev.kind = evUnlock
	case "RLock":
		ev.kind, ev.read = evLock, true
	case "RUnlock":
		ev.kind, ev.read = evUnlock, true
	default:
		return lockEvent{}, false
	}
	return ev, true
}

// matchingUnlock finds the first unlock of the same receiver and flavor.
func matchingUnlock(rest []lockEvent, lock lockEvent) *lockEvent {
	for i := range rest {
		ev := &rest[i]
		if ev.kind != evLock && ev.recv == lock.recv && ev.read == lock.read {
			return ev
		}
	}
	return nil
}

// branchBetween reports whether a branching statement starts strictly
// between the two positions.
func branchBetween(body *ast.BlockStmt, from, to token.Pos) bool {
	found := false
	inspectBody(body, func(n ast.Node) {
		switch n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if n.Pos() > from && n.Pos() < to {
				found = true
			}
		}
	})
	return found
}

// reportBlockingIn flags blocking operations positioned inside the critical
// section (from, to).
func reportBlockingIn(pass *Pass, body *ast.BlockStmt, lock lockEvent, from, to token.Pos) {
	inspectBody(body, func(n ast.Node) {
		if n.Pos() <= from || n.Pos() >= to {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s blocks every goroutine contending for the mutex", lock.recv)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding %s blocks every goroutine contending for the mutex", lock.recv)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while holding %s blocks every goroutine contending for the mutex", lock.recv)
		case *ast.CallExpr:
			if desc := blockingCallDesc(pass, n); desc != "" {
				pass.Reportf(n.Pos(), "%s while holding %s blocks every goroutine contending for the mutex", desc, lock.recv)
			}
		}
	})
}

// blockingCallDesc describes a call known to block: http client
// round-trips, Healthy/Ping probes, Dial handshakes, time.Sleep, and sync
// Wait. Ping/PingCtx and Dial joined the list with the fleet registry —
// registering a worker dials it back, and a dial or health probe under the
// membership lock would stall every router request behind one sick peer.
func blockingCallDesc(pass *Pass, call *ast.CallExpr) string {
	if pkg, name, ok := pkgFunc(pass.TypesInfo, call); ok {
		if pkg == "time" && name == "Sleep" {
			return "time.Sleep"
		}
		if name == "Dial" {
			return "Dial round-trip"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	m := s.Obj()
	name := m.Name()
	if name == "Healthy" {
		return "Healthy() probe"
	}
	if name == "Ping" || name == "PingCtx" {
		return name + "() probe"
	}
	if name == "Dial" {
		return "Dial round-trip"
	}
	if m.Pkg() != nil {
		switch m.Pkg().Path() {
		case "net/http":
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http client " + name
			}
		case "sync":
			if name == "Wait" {
				return "sync Wait"
			}
		}
	}
	return ""
}
