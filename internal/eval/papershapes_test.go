package eval

// papershapes_test asserts the qualitative findings of EXPERIMENTS.md as
// executable checks, so a regression that breaks a headline claim of the
// reproduction fails CI instead of silently corrupting the next results run.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plm"
)

func qualityByName(rows []QualityRow, name string) *QualityRow {
	for i := range rows {
		if strings.HasPrefix(rows[i].Method, name) {
			return &rows[i]
		}
	}
	return nil
}

func TestPaperShapeOpenAPIBeatsBaselinesAtCoarseH(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(100))
	ids := w.SampleTestInstances(rng, 6)
	xs := w.Test.Subset(ids, "shape").X

	methods := []plm.Interpreter{core.New(core.Config{Seed: 101})}
	methods = append(methods, StandardBaselines(1e-2, 102)...)
	rows, err := SampleQuality(w.PLNN, methods, xs)
	if err != nil {
		t.Fatal(err)
	}
	oa := qualityByName(rows, "OpenAPI")
	naive := qualityByName(rows, "Naive")
	ridge := qualityByName(rows, "LIME-Ridge")
	if oa == nil || naive == nil || ridge == nil {
		t.Fatal("missing method rows")
	}
	// Headline: OpenAPI exact, h-free.
	if oa.AvgRD != 0 || oa.WD.Mean != 0 {
		t.Fatalf("OpenAPI RD/WD = %v/%v, want 0/0", oa.AvgRD, oa.WD.Mean)
	}
	if oa.L1.Mean > 1e-4 {
		t.Fatalf("OpenAPI L1 = %v", oa.L1.Mean)
	}
	// Coarse-h baselines must be measurably worse on at least one axis.
	if naive.AvgRD == 0 && naive.L1.Mean < 1e-6 {
		t.Fatalf("naive at h=1e-2 suspiciously perfect (RD %v, L1 %v) — shape broken",
			naive.AvgRD, naive.L1.Mean)
	}
	if oa.L1.Mean >= naive.L1.Mean {
		t.Fatalf("OpenAPI L1 (%v) should beat coarse naive (%v)", oa.L1.Mean, naive.L1.Mean)
	}
}

func TestPaperShapeRidgeCollapsesAtTinyH(t *testing.T) {
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(103))
	ids := w.SampleTestInstances(rng, 4)
	xs := w.Test.Subset(ids, "shape").X

	rows, err := SampleQuality(w.PLNN, StandardBaselines(1e-8, 104), xs)
	if err != nil {
		t.Fatal(err)
	}
	linear := qualityByName(rows, "LIME-Linear")
	ridge := qualityByName(rows, "LIME-Ridge")
	if linear == nil || ridge == nil {
		t.Fatal("missing LIME rows")
	}
	// §V-D: at tiny h the ridge surrogate collapses toward a constant while
	// plain least squares stays accurate. Orders of magnitude apart.
	if ridge.L1.Mean < 100*linear.L1.Mean {
		t.Fatalf("ridge collapse not reproduced: ridge %v vs linear %v",
			ridge.L1.Mean, linear.L1.Mean)
	}
}

func TestPaperShapeNoUniversalH(t *testing.T) {
	// h = 1e-4 behaves differently across models: clean on the LMT (few,
	// huge leaf regions at this scale), noisier on the PLNN (many small
	// regions) — the paper's core argument for adaptivity. At minimum, the
	// LMT must be no worse than the PLNN under the same h.
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(105))
	ids := w.SampleTestInstances(rng, 6)
	xs := w.Test.Subset(ids, "shape").X

	rowsPLNN, err := SampleQuality(w.PLNN, StandardBaselines(1e-2, 106)[:1], xs)
	if err != nil {
		t.Fatal(err)
	}
	rowsLMT, err := SampleQuality(w.LMT, StandardBaselines(1e-2, 106)[:1], xs)
	if err != nil {
		t.Fatal(err)
	}
	if rowsLMT[0].AvgRD > rowsPLNN[0].AvgRD+1e-9 {
		t.Fatalf("expected LMT regions to be coarser than PLNN regions at same h: LMT RD %v vs PLNN RD %v",
			rowsLMT[0].AvgRD, rowsPLNN[0].AvgRD)
	}
}

func TestPaperShapeRegionStructure(t *testing.T) {
	// §II: a ReLU net has many more regions than an LMT has leaves.
	w := testWorkbench(t)
	rng := rand.New(rand.NewSource(107))
	ids := w.SampleTestInstances(rng, 5)
	anchors := w.Test.Subset(ids, "anchors").X

	plnnCensus, err := RegionCensus(w.PLNN, anchors, 80, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	lmtCensus, err := RegionCensus(w.LMT, anchors, 80, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if plnnCensus.DistinctRegions <= lmtCensus.DistinctRegions {
		t.Fatalf("PLNN regions (%d) should outnumber LMT leaves touched (%d)",
			plnnCensus.DistinctRegions, lmtCensus.DistinctRegions)
	}
	if lmtCensus.DistinctRegions > w.LMT.NumLeaves() {
		t.Fatalf("census found %d LMT regions but the tree has %d leaves",
			lmtCensus.DistinctRegions, w.LMT.NumLeaves())
	}
}
