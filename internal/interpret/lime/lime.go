// Package lime implements the LIME-family baselines (Ribeiro et al., KDD
// 2016) in the two forms the paper evaluates:
//
//   - the paper's *extended* LIME (§V): fit ln(y_c/y_{c'}) of perturbed
//     instances with an ordinary or ridge linear regression, so the learned
//     coefficients approximate the core parameters D_{c,c'} directly —
//     "Linear Regression LIME" and "Ridge Regression LIME" in Figures 5-7;
//   - classic probability-fitting LIME for the Figure 3 effectiveness
//     comparison: fit the predicted probability y_c itself.
package lime

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/plm"
	"repro/internal/sample"
)

// Mode selects the regression target.
type Mode int

const (
	// FitLogOdds fits ln(y_c/y_{c'}) per class pair (the paper's extension;
	// coefficients estimate D_{c,c'}).
	FitLogOdds Mode = iota
	// FitProbability fits y_c directly (classic LIME).
	FitProbability
)

// Config controls the LIME baselines.
type Config struct {
	// H is the edge length of the sampling hypercube around x0. Default 1e-4.
	H float64
	// NumSamples is the number of perturbed instances. Default 2(d+1),
	// chosen so the regression is determined with slack.
	NumSamples int
	// Ridge is the L2 penalty; 0 gives ordinary least squares
	// ("Linear Regression LIME"), positive gives "Ridge Regression LIME".
	Ridge float64
	// Mode selects the regression target. Default FitLogOdds.
	Mode Mode
	// Seed seeds the sampler when RNG is nil.
	Seed int64
	// RNG, when non-nil, supplies all randomness.
	RNG *rand.Rand
}

func (c *Config) setDefaults() {
	if c.H <= 0 {
		c.H = 1e-4
	}
	if c.Ridge < 0 {
		c.Ridge = 0
	}
	if c.RNG == nil {
		c.RNG = rand.New(rand.NewSource(c.Seed))
	}
}

// LIME is the local-surrogate interpreter.
type LIME struct {
	cfg Config
}

// New returns a LIME interpreter with the given configuration.
func New(cfg Config) *LIME {
	cfg.setDefaults()
	return &LIME{cfg: cfg}
}

var _ plm.Interpreter = (*LIME)(nil)

// Name implements plm.Interpreter.
func (l *LIME) Name() string {
	base := "LIME-Linear"
	if l.cfg.Ridge > 0 {
		base = "LIME-Ridge"
	}
	if l.cfg.Mode == FitProbability {
		base += "-Prob"
	}
	return fmt.Sprintf("%s(h=%.0e)", base, l.cfg.H)
}

func (l *LIME) samples(d int) int {
	if l.cfg.NumSamples > 0 {
		return l.cfg.NumSamples
	}
	return 2 * (d + 1)
}

// Interpret fits a linear surrogate on perturbed instances. In FitLogOdds
// mode the per-pair coefficient vectors estimate D_{c,c'} and are averaged
// into D_c; in FitProbability mode the single coefficient vector on y_c is
// the interpretation.
func (l *LIME) Interpret(model plm.Model, x0 mat.Vec, c int) (*plm.Interpretation, error) {
	l.cfg.setDefaults()
	d := model.Dim()
	C := model.Classes()
	if len(x0) != d {
		return nil, fmt.Errorf("lime: instance length %d != model dim %d", len(x0), d)
	}
	if c < 0 || c >= C {
		return nil, fmt.Errorf("lime: class %d out of range [0,%d)", c, C)
	}
	m := l.samples(d)
	if m < d+1 {
		return nil, fmt.Errorf("lime: %d samples cannot determine %d coefficients", m, d+1)
	}

	cube := sample.NewHypercube(x0, l.cfg.H)
	pts := cube.SampleN(l.cfg.RNG, m)
	ys := make([]mat.Vec, m)
	for i, p := range pts {
		ys[i] = model.Predict(p)
	}
	queries := m

	// Design matrix with an intercept column at index 0. For the ridge
	// variant the matrix is augmented with sqrt(lambda)·I rows (intercept
	// unpenalized) so that, either way, one QR factorization serves every
	// class-pair target.
	rows := m
	if l.cfg.Ridge > 0 {
		rows += d + 1
	}
	design := mat.NewDense(rows, d+1)
	for i, p := range pts {
		row := design.RawRow(i)
		row[0] = 1
		copy(row[1:], p)
	}
	if l.cfg.Ridge > 0 {
		s := math.Sqrt(l.cfg.Ridge)
		for j := 1; j <= d; j++ { // column 0 (intercept) stays unpenalized
			design.Set(m+j, j, s)
		}
	}
	qr, err := mat.FactorQR(design)
	if err != nil {
		return nil, fmt.Errorf("lime: factor design matrix: %w", err)
	}
	solve := func(target mat.Vec) (mat.Vec, error) {
		full := target
		if l.cfg.Ridge > 0 {
			full = make(mat.Vec, rows)
			copy(full, target)
		}
		return qr.SolveVec(full)
	}

	if l.cfg.Mode == FitProbability {
		target := make(mat.Vec, m)
		for i := range pts {
			target[i] = ys[i][c]
		}
		beta, err := solve(target)
		if err != nil {
			return nil, fmt.Errorf("lime: regression failed: %w", err)
		}
		return &plm.Interpretation{
			Class:      c,
			Features:   mat.Vec(beta[1:]),
			Samples:    pts,
			Queries:    queries,
			Iterations: 1,
			FinalEdge:  l.cfg.H,
		}, nil
	}

	diffs := make([]mat.Vec, C)
	biases := make([]float64, C)
	features := mat.NewVec(d)
	for cp := 0; cp < C; cp++ {
		if cp == c {
			continue
		}
		target := make(mat.Vec, m)
		for i := range pts {
			target[i] = plm.LogOdds(ys[i], c, cp)
		}
		beta, err := solve(target)
		if err != nil {
			return nil, fmt.Errorf("lime: regression for pair (%d,%d) failed: %w", c, cp, err)
		}
		diffs[cp] = mat.Vec(beta[1:])
		biases[cp] = beta[0]
		features.AddInPlace(diffs[cp])
	}
	features.ScaleInPlace(1 / float64(C-1))
	return &plm.Interpretation{
		Class:      c,
		Features:   features,
		PairDiffs:  diffs,
		Biases:     biases,
		Samples:    pts,
		Queries:    queries,
		Iterations: 1,
		FinalEdge:  l.cfg.H,
	}, nil
}

// SamplePoints exposes the perturbation scheme for the sample-quality
// metrics of Figures 5 and 6.
func (l *LIME) SamplePoints(x0 mat.Vec) []mat.Vec {
	l.cfg.setDefaults()
	cube := sample.NewHypercube(x0, l.cfg.H)
	return cube.SampleN(l.cfg.RNG, l.samples(len(x0)))
}
