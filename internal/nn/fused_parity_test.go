package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// The fused GEMM-epilogue paths must be invisible: flipping SetFusedForward
// must never change a single output bit, on any kernel tier the machine can
// run. This battery compares fused against unfused directly — forward
// logits, activation patterns, MaxOut winners, and fully trained weights —
// across plain-ReLU and leaky networks, batch sizes hitting every row-block
// remainder (mod 8 and mod 4), and every available tier.

// forEachKernelTier pins each mat kernel tier the CPU supports in turn and
// restores the previous tier when done.
func forEachKernelTier(t *testing.T, fn func(t *testing.T, tier mat.KernelTier)) {
	t.Helper()
	prev := mat.ActiveKernelTier()
	defer mat.SetKernelTier(prev)
	for _, tier := range mat.AvailableTiers() {
		if _, err := mat.SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%s): %v", tier, err)
		}
		t.Run(tier.String(), func(t *testing.T) { fn(t, tier) })
	}
}

// withFused runs fn with the fused toggle forced to on, restoring the prior
// setting afterwards.
func withFused(on bool, fn func()) {
	prev := SetFusedForward(on)
	defer SetFusedForward(prev)
	fn()
}

// batchOf builds b random inputs of dimension d.
func batchOf(rng *rand.Rand, b, d int) []mat.Vec {
	xs := make([]mat.Vec, b)
	for i := range xs {
		xs[i] = randInput(rng, d)
	}
	return xs
}

func TestForwardBatchFusedMatchesUnfusedAllTiers(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T, tier mat.KernelTier) {
		rng := rand.New(rand.NewSource(301))
		for _, leak := range []float64{0, 0.1} {
			n := New(rand.New(rand.NewSource(302)), 7, 9, 6, 3).SetLeak(leak)
			// Batch sizes covering the 8-row, 4-row and scalar-row remainder
			// combinations of every tier.
			for _, b := range []int{1, 3, 4, 5, 8, 9, 12, 17} {
				xs := batchOf(rng, b, 7)
				var fusedZ, refZ []mat.Vec
				var fusedM, refM [][]bool
				withFused(true, func() {
					fusedZ = n.LogitsBatch(xs)
					fusedM = n.ActivationPatternBatch(xs)
				})
				withFused(false, func() {
					refZ = n.LogitsBatch(xs)
					refM = n.ActivationPatternBatch(xs)
				})
				for i := range xs {
					bitEqualVec(t, "logits", fusedZ[i], refZ[i])
					if len(fusedM[i]) != len(refM[i]) {
						t.Fatalf("pattern length %d != %d", len(fusedM[i]), len(refM[i]))
					}
					for j := range refM[i] {
						if fusedM[i][j] != refM[i][j] {
							t.Fatalf("leak=%v b=%d: pattern[%d][%d] fused=%v unfused=%v",
								leak, b, i, j, fusedM[i][j], refM[i][j])
						}
					}
					// Both must also match the per-instance scalar reference.
					bitEqualVec(t, "scalar logits", fusedZ[i], n.Logits(xs[i]))
				}
			}
		}
	})
}

func TestMaxoutForwardBatchFusedMatchesUnfusedAllTiers(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T, tier mat.KernelTier) {
		rng := rand.New(rand.NewSource(311))
		n := NewMaxout(rand.New(rand.NewSource(312)), 3, 5, 9, 6, 3)
		for _, b := range []int{1, 5, 8, 13} {
			xs := batchOf(rng, b, 5)
			var fusedZ, refZ []mat.Vec
			var fusedW, refW [][]int
			withFused(true, func() {
				fusedZ = n.LogitsBatch(xs)
				fusedW = n.WinnerPatternBatch(xs)
			})
			withFused(false, func() {
				refZ = n.LogitsBatch(xs)
				refW = n.WinnerPatternBatch(xs)
			})
			for i := range xs {
				bitEqualVec(t, "maxout logits", fusedZ[i], refZ[i])
				for j := range refW[i] {
					if fusedW[i][j] != refW[i][j] {
						t.Fatalf("b=%d: winners[%d][%d] fused=%d unfused=%d",
							b, i, j, fusedW[i][j], refW[i][j])
					}
				}
				bitEqualVec(t, "maxout scalar logits", fusedZ[i], n.Logits(xs[i]))
			}
		}
	})
}

// TestTrainFusedMatchesUnfusedAllTiers trains the same network twice — fused
// and unfused — and demands bit-identical losses and weights: forward
// activations, captured masks (vs the reference's pre-activation test), and
// backward delta scaling must all agree exactly, on every tier.
func TestTrainFusedMatchesUnfusedAllTiers(t *testing.T) {
	xs, ys := parityData(320)
	cfg := TrainConfig{Epochs: 3, BatchSize: 16, LearningRate: 0.1, Momentum: 0.5}
	forEachKernelTier(t, func(t *testing.T, tier mat.KernelTier) {
		for _, leak := range []float64{0, 0.1} {
			build := func() (*Network, *rand.Rand) {
				rng := rand.New(rand.NewSource(321))
				return New(rng, 2, 9, 7, 2).SetLeak(leak), rng
			}
			var fusedLoss, refLoss float64
			fusedNet, fusedRNG := build()
			refNet, refRNG := build()
			withFused(true, func() {
				var err error
				if fusedLoss, err = fusedNet.Train(fusedRNG, xs, ys, cfg); err != nil {
					t.Fatal(err)
				}
			})
			withFused(false, func() {
				var err error
				if refLoss, err = refNet.Train(refRNG, xs, ys, cfg); err != nil {
					t.Fatal(err)
				}
			})
			if fusedLoss != refLoss {
				t.Fatalf("leak=%v: loss %g (fused) != %g (unfused)", leak, fusedLoss, refLoss)
			}
			for i := 0; i < refNet.NumLayers(); i++ {
				fl, rl := fusedNet.LayerShared(i), refNet.LayerShared(i)
				bitEqualDense(t, "W", fl.W, rl.W)
				bitEqualVec(t, "B", fl.B, rl.B)
			}
		}
	})
}

func TestTrainMaxoutFusedMatchesUnfusedAllTiers(t *testing.T) {
	xs, ys := parityData(330)
	cfg := TrainConfig{Epochs: 3, BatchSize: 16, Optimizer: Adam}
	forEachKernelTier(t, func(t *testing.T, tier mat.KernelTier) {
		build := func() (*MaxoutNetwork, *rand.Rand) {
			rng := rand.New(rand.NewSource(331))
			return NewMaxout(rng, 3, 2, 8, 6, 2), rng
		}
		var fusedLoss, refLoss float64
		fusedNet, fusedRNG := build()
		refNet, refRNG := build()
		withFused(true, func() {
			var err error
			if fusedLoss, err = fusedNet.Train(fusedRNG, xs, ys, cfg); err != nil {
				t.Fatal(err)
			}
		})
		withFused(false, func() {
			var err error
			if refLoss, err = refNet.Train(refRNG, xs, ys, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if fusedLoss != refLoss {
			t.Fatalf("loss %g (fused) != %g (unfused)", fusedLoss, refLoss)
		}
		for li := range refNet.hidden {
			for p := range refNet.hidden[li].Pieces {
				fp, rp := fusedNet.hidden[li].Pieces[p], refNet.hidden[li].Pieces[p]
				bitEqualDense(t, "piece W", fp.W, rp.W)
				bitEqualVec(t, "piece B", fp.B, rp.B)
			}
		}
		bitEqualDense(t, "out W", fusedNet.out.W, refNet.out.W)
		bitEqualVec(t, "out B", fusedNet.out.B, refNet.out.B)
	})
}
