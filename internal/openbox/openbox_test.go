package openbox

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/nn"
)

func randNet(seed int64, sizes ...int) *nn.Network {
	return nn.New(rand.New(rand.NewSource(seed)), sizes...)
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestExtractMatchesNetworkAtInstance(t *testing.T) {
	n := randNet(1, 6, 10, 8, 4)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		x := randVec(rng, 6)
		loc, err := Extract(n, x)
		if err != nil {
			t.Fatal(err)
		}
		if !loc.Logits(x).EqualApprox(n.Logits(x), 1e-9) {
			t.Fatalf("local logits %v != network logits %v", loc.Logits(x), n.Logits(x))
		}
	}
}

func TestExtractValidAcrossRegion(t *testing.T) {
	// The affine map must hold at *other* points of the same region, not
	// just at the probe.
	n := randNet(3, 4, 8, 3)
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 4)
	loc, err := Extract(n, x)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 200; trial++ {
		y := x.Clone()
		for i := range y {
			y[i] += 1e-6 * rng.NormFloat64()
		}
		if !SameRegion(n, x, y) {
			continue
		}
		hits++
		if !loc.Logits(y).EqualApprox(n.Logits(y), 1e-9) {
			t.Fatalf("affine map wrong inside region at %v", y)
		}
	}
	if hits == 0 {
		t.Fatal("no same-region neighbours found; test ineffective")
	}
}

func TestExtractWrongDim(t *testing.T) {
	n := randNet(5, 3, 2)
	if _, err := Extract(n, mat.Vec{1, 2}); err == nil {
		t.Fatal("expected error on wrong input length")
	}
}

func TestPatternKeyDistinguishes(t *testing.T) {
	a := []bool{true, false, true}
	b := []bool{true, true, true}
	if PatternKey(a) == PatternKey(b) {
		t.Fatal("different patterns share a key")
	}
	if PatternKey(a) != PatternKey([]bool{true, false, true}) {
		t.Fatal("equal patterns have different keys")
	}
	// Length participates in the key.
	if PatternKey([]bool{}) == PatternKey([]bool{false}) {
		t.Fatal("length not distinguished")
	}
}

func TestCoreParamsAntisymmetric(t *testing.T) {
	n := randNet(6, 5, 7, 3)
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, 5)
	loc, err := Extract(n, x)
	if err != nil {
		t.Fatal(err)
	}
	d01, b01 := loc.CoreParams(0, 1)
	d10, b10 := loc.CoreParams(1, 0)
	if !d01.EqualApprox(d10.Scale(-1), 1e-12) || b01 != -b10 {
		t.Fatal("core params not antisymmetric")
	}
	dSelf, bSelf := loc.CoreParams(2, 2)
	if dSelf.Norm2() != 0 || bSelf != 0 {
		t.Fatal("self core params should vanish")
	}
}

func TestDecisionFeaturesMatchDefinition(t *testing.T) {
	n := randNet(8, 4, 6, 3)
	rng := rand.New(rand.NewSource(9))
	x := randVec(rng, 4)
	loc, err := Extract(n, x)
	if err != nil {
		t.Fatal(err)
	}
	C := loc.Classes()
	for c := 0; c < C; c++ {
		want := mat.NewVec(loc.Dim())
		for cp := 0; cp < C; cp++ {
			if cp == c {
				continue
			}
			d, _ := loc.CoreParams(c, cp)
			want.AddInPlace(d)
		}
		want.ScaleInPlace(1 / float64(C-1))
		if got := loc.DecisionFeatures(c); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("class %d: D_c %v != definition %v", c, got, want)
		}
	}
}

func TestDecisionBiasMatchesDefinition(t *testing.T) {
	n := randNet(10, 3, 5, 4)
	rng := rand.New(rand.NewSource(11))
	x := randVec(rng, 3)
	loc, err := Extract(n, x)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < loc.Classes(); c++ {
		var want float64
		for cp := 0; cp < loc.Classes(); cp++ {
			if cp == c {
				continue
			}
			_, b := loc.CoreParams(c, cp)
			want += b
		}
		want /= float64(loc.Classes() - 1)
		if got := loc.DecisionBias(c); !almost(got, want, 1e-12) {
			t.Fatalf("class %d: bias %v != %v", c, got, want)
		}
	}
}

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return d <= tol*(1+abs(a)+abs(b))
}

func TestClassOutOfRangePanics(t *testing.T) {
	n := randNet(12, 2, 3, 2)
	loc, err := Extract(n, mat.Vec{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { loc.DecisionFeatures(7) },
		func() { loc.CoreParams(0, -1) },
		func() { loc.DecisionBias(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSameRegionReflexive(t *testing.T) {
	n := randNet(13, 4, 6, 2)
	rng := rand.New(rand.NewSource(14))
	x := randVec(rng, 4)
	if !SameRegion(n, x, x) {
		t.Fatal("instance not in its own region")
	}
}

// Property: Extract's affine map reproduces the network's logits at the
// probe for random architectures and inputs (exactness of ground truth).
func TestPropertyExtractExactEverywhere(t *testing.T) {
	f := func(seed int64, arch8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(arch8%4) + 2
		hidden := int(arch8%5) + 3
		n := nn.New(rng, d, hidden, hidden/2+2, 3)
		x := randVec(rng, d)
		loc, err := Extract(n, x)
		if err != nil {
			return false
		}
		return loc.Logits(x).EqualApprox(n.Logits(x), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: two instances in the same region get identical decision
// features — the consistency guarantee the paper builds on.
func TestPropertyConsistentAcrossRegion(t *testing.T) {
	n := randNet(15, 5, 9, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, 5)
		y := x.Clone()
		for i := range y {
			y[i] += 1e-8 * rng.NormFloat64()
		}
		if !SameRegion(n, x, y) {
			return true // vacuous
		}
		lx, err := Extract(n, x)
		if err != nil {
			return false
		}
		ly, err := Extract(n, y)
		if err != nil {
			return false
		}
		if lx.Key != ly.Key {
			return false
		}
		for c := 0; c < lx.Classes(); c++ {
			if !lx.DecisionFeatures(c).EqualApprox(ly.DecisionFeatures(c), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
