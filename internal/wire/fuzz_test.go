package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzBinaryFrame drives the frame decoder with arbitrary bytes: it must
// never panic, never allocate past the byte budget, every rejection must
// map to a well-formed HTTP status, and every frame it does accept must
// re-encode to a byte-identical frame — the decoder and encoder agree on
// the format exactly. CI runs this target for a short burst on every push;
// `go test -fuzz=FuzzBinaryFrame ./internal/wire/` explores further.
func FuzzBinaryFrame(f *testing.F) {
	seed := func(m [][]float64, f32 bool) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m, f32); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed([][]float64{{1, 2, 3}, {4, 5, 6}}, false))
	f.Add(seed([][]float64{{math.Pi, math.Inf(1), math.NaN()}}, false))
	f.Add(seed([][]float64{{0.5, -0.25}}, true))
	f.Add(seed([][]float64{}, false))
	f.Add(seed(nil, true))
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	f.Add([]byte(frameMagic + "\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("NOPE\x01\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00"))

	const budget = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > budget {
			return
		}
		fr := NewFrameReader(bytes.NewReader(data), budget)
		for {
			m, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if s := DecodeStatus(err); s != 400 && s != 413 {
					t.Fatalf("decode error maps to status %d: %v", s, err)
				}
				if errors.Is(err, ErrTooLarge) != (DecodeStatus(err) == 413) {
					t.Fatalf("ErrTooLarge/413 mismatch: %v", err)
				}
				return
			}
			// A successful decode consumed a full header, so the flags byte is
			// addressable; re-encode at the same element width. float64 frames
			// must round trip byte-identically. Exceptions: float32 payloads
			// holding a NaN (the f32→f64→f32 conversion pair may quiet its
			// payload bits) and zero-row frames (the decoder drops their cols,
			// so the re-encoded header is the 0x0 canonical form — but both
			// occupy exactly one header).
			f32 := data[5]&flagFloat32 != 0
			var buf bytes.Buffer
			if err := WriteFrame(&buf, m, f32); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if len(m) > 0 && !bytes.HasPrefix(data, buf.Bytes()) && !(f32 && hasNaN(m)) {
				t.Fatalf("accepted %d-row frame does not round trip", len(m))
			}
			data = data[buf.Len():]
		}
	})
}

func hasNaN(m [][]float64) bool {
	for _, row := range m {
		for _, v := range row {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}
