package jobs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

func jobModel(seed int64) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), 6, 10, 3)}
}

func jobProbes(rng *rand.Rand, n, dim int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for i := range xs {
		xs[i] = make(mat.Vec, dim)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	return xs
}

// waitDone polls until the job leaves the queue/run states.
func waitDone(t *testing.T, r *Runner, id string) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := r.Get(id)
		if !ok {
			t.Fatalf("job %s vanished mid-run", id)
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

func TestPredictJobLifecycle(t *testing.T) {
	model := jobModel(1)
	r, err := NewRunner(model, model, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	xs := jobProbes(rand.New(rand.NewSource(2)), 12, model.Dim())
	id, err := r.Submit(OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, r, id)
	if v.Status != StatusDone || v.Error != "" {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if len(v.Probs) != len(xs) {
		t.Fatalf("%d results for %d probes", len(v.Probs), len(xs))
	}
	for i, x := range xs {
		if want := model.Predict(x); !mat.Vec(v.Probs[i]).EqualApprox(want, 0) {
			t.Fatalf("item %d: %v != %v", i, v.Probs[i], want)
		}
	}
}

func TestInterpretJobHarvestsExactRegions(t *testing.T) {
	// An interpret job returns the closed-form region classifiers: the
	// relative logits at each probe must reproduce the model's own
	// probabilities up to the one rounding the class-0 rebasing introduces
	// (softmax shift invariance is exact in real arithmetic).
	model := jobModel(3)
	r, err := NewRunner(model, model, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := jobProbes(rand.New(rand.NewSource(4)), 20, model.Dim())
	id, err := r.Submit(OpInterpret, xs)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, r, id)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if len(v.Regions) == 0 || len(v.Regions) > len(xs) {
		t.Fatalf("%d regions from %d probes", len(v.Regions), len(xs))
	}
	for ri, reg := range v.Regions {
		probe := mat.Vec(reg.Probe)
		logits := make(mat.Vec, len(reg.RelW))
		for c := 1; c < len(reg.RelW); c++ {
			logits[c] = mat.Vec(reg.RelW[c]).Dot(probe) + reg.RelB[c]
		}
		if got, want := nn.Softmax(logits), model.Predict(probe); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("region %d: surrogate %v != model %v at its own probe", ri, got, want)
		}
	}
}

func TestInterpretJobNeedsWhiteBox(t *testing.T) {
	model := jobModel(5)
	r, err := NewRunner(model, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(OpInterpret, jobProbes(rand.New(rand.NewSource(6)), 2, model.Dim())); err == nil {
		t.Fatal("interpret accepted without a white-box replica")
	}
}

func TestJobValidation(t *testing.T) {
	model := jobModel(7)
	r, err := NewRunner(model, model, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit("embezzle", jobProbes(rand.New(rand.NewSource(8)), 1, model.Dim())); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := r.Submit(OpPredict, nil); err == nil {
		t.Fatal("empty job accepted")
	}
	if _, err := r.Submit(OpPredict, []mat.Vec{{1, 2}}); err == nil {
		t.Fatal("wrong-dim job accepted")
	}
}

// stallModel blocks Predict until released — holds jobs in the running
// state so eviction tests control the store's occupancy.
type stallModel struct {
	plm.Model
	gate chan struct{}
}

func (s *stallModel) Predict(x mat.Vec) mat.Vec {
	<-s.gate
	return s.Model.Predict(x)
}

func TestJobStoreEvictsFinishedAndRefusesWhenSaturated(t *testing.T) {
	inner := jobModel(9)
	stalled := &stallModel{Model: inner, gate: make(chan struct{})}
	r, err := NewRunner(stalled, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := jobProbes(rand.New(rand.NewSource(10)), 1, inner.Dim())

	// Two submits fill the bounded store; neither can finish while the gate
	// holds, so a third must be refused — backpressure, not an unbounded
	// queue.
	id1, err := r.Submit(OpPredict, xs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(OpPredict, xs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(OpPredict, xs); err != ErrBacklogFull {
		t.Fatalf("saturated store answered %v, want ErrBacklogFull", err)
	}

	// Release the gate: jobs finish, and the next submit evicts the oldest
	// finished job instead of refusing.
	close(stalled.gate)
	waitDone(t, r, id1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := r.Submit(OpPredict, xs); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never admitted a job after the backlog drained")
		}
		time.Sleep(time.Millisecond)
	}
	if r.Evicted() == 0 {
		t.Fatal("admission did not evict a finished job")
	}
	if _, ok := r.Get(id1); ok {
		t.Fatal("evicted job still visible")
	}
}

func TestJobHTTPLifecycleAndHarvestDoesNotBlock(t *testing.T) {
	// The wire-level acceptance gate: a 1k-instance harvest goes through
	// POST /jobs, the submit comes back immediately (202, no connection
	// held for the harvest), and polling GET /jobs/{id} eventually returns
	// the harvested regions.
	model := jobModel(11)
	shard, err := api.NewShard([]plm.Model{jobModel(11), jobModel(11)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(shard, model, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(shard, "jobs")
	r.Mount(srv)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	xs := jobProbes(rand.New(rand.NewSource(12)), 1000, model.Dim())
	payload := submitRequest{Op: OpInterpret, Xs: make([][]float64, len(xs))}
	for i, x := range xs {
		payload.Xs[i] = x
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	submitLatency := time.Since(start)
	var accepted View
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %s", resp.Status)
	}
	if submitLatency > 2*time.Second {
		t.Fatalf("submit blocked for %v — the whole point was not to", submitLatency)
	}

	var final View
	deadline := time.Now().Add(30 * time.Second)
	for {
		pr, err := http.Get(ts.URL + "/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(pr.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if final.Status == StatusDone || final.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", final.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Status != StatusDone {
		t.Fatalf("harvest ended %s (%s)", final.Status, final.Error)
	}
	if final.N != 1000 || len(final.Regions) == 0 {
		t.Fatalf("harvest answered n=%d regions=%d", final.N, len(final.Regions))
	}

	// Unknown and evicted ids answer 404, not 500.
	pr, err := http.Get(ts.URL + "/jobs/job-9999")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %s", pr.Status)
	}
}

func TestJobHTTPRejectsBadSubmit(t *testing.T) {
	model := jobModel(13)
	r, err := NewRunner(model, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(model, "jobs")
	r.Mount(srv)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, body := range []string{
		`{"op":"interpret","xs":[[0,0,0,0,0,0]]}`, // no white-box side
		`{"op":"predict","xs":[[1,2]]}`,           // wrong dim
		`{"op":"predict","xs":[]}`,                // empty
		`{not json`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q returned %s, want 400", body, resp.Status)
		}
	}
}
