package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// The PR-3 headline benchmarks: a 256-instance server-side batch forward
// through the paper's image architecture (784-256-128-100-10), batched GEMM
// versus the per-instance loop the server ran before. Outputs are
// bit-identical; only the schedule differs.

const benchBatch = 256

func benchNetAndBatch(b *testing.B) (*Network, []mat.Vec) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	n := New(rng, 784, 256, 128, 100, 10)
	xs := randBatch(rng, benchBatch, 784)
	return n, xs
}

func BenchmarkLogitsLoop256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Logits(x)
		}
	}
}

func BenchmarkLogitsBatch256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkPredictLoop256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Predict(x)
		}
	}
}

func BenchmarkPredictBatch256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.PredictBatch(xs)
	}
}

// The PR-5 headline benchmarks: one full training epoch over 256 samples
// of the paper's image architecture, per-sample reference loop versus the
// batched GEMM path. Both produce bit-identical weights (see the Train
// parity tests); only the schedule differs.

func benchTrainSetup(b *testing.B) (*Network, []mat.Vec, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(44))
	n := New(rng, 784, 256, 128, 100, 10)
	xs := randBatch(rng, benchBatch, 784)
	ys := make([]int, len(xs))
	for i := range ys {
		ys[i] = rng.Intn(10)
	}
	return n, xs, ys
}

func benchTrainEpoch(b *testing.B, perSample bool) {
	base, xs, ys := benchTrainSetup(b)
	cfg := TrainConfig{Epochs: 1, BatchSize: 64, PerSample: perSample}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := base.Clone()
		rng := rand.New(rand.NewSource(45))
		b.StartTimer()
		if _, err := net.Train(rng, xs, ys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch_PerSample(b *testing.B) { benchTrainEpoch(b, true) }

func BenchmarkTrainEpoch_Batched(b *testing.B) { benchTrainEpoch(b, false) }

func benchMaxoutTrainEpoch(b *testing.B, perSample bool) {
	rng := rand.New(rand.NewSource(46))
	base := NewMaxout(rng, 3, 128, 64, 32, 10)
	xs := randBatch(rng, benchBatch, 128)
	ys := make([]int, len(xs))
	for i := range ys {
		ys[i] = rng.Intn(10)
	}
	cfg := TrainConfig{Epochs: 1, BatchSize: 32, PerSample: perSample}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := base.Clone()
		r := rand.New(rand.NewSource(47))
		b.StartTimer()
		if _, err := net.Train(r, xs, ys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochMaxout_PerSample(b *testing.B) { benchMaxoutTrainEpoch(b, true) }

func BenchmarkTrainEpochMaxout_Batched(b *testing.B) { benchMaxoutTrainEpoch(b, false) }

// The PR-9 headline pair: the fused GEMM-epilogue forward at the machine's
// best kernel tier versus the exact configuration PR 3 shipped — unfused
// bias/activation sweeps on the AVX2 tier (or the platform's previous best
// where AVX2 does not exist). Outputs are bit-identical; the pair measures
// the compute speed-floor raise from fusion plus the new tier.

func BenchmarkForwardFused256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	prev := SetFusedForward(true)
	defer SetFusedForward(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkForwardUnfusedPR3_256(b *testing.B) {
	n, xs := benchNetAndBatch(b)
	prev := SetFusedForward(false)
	defer SetFusedForward(prev)
	if prevTier, err := mat.SetKernelTier(mat.TierAVX2); err == nil {
		defer mat.SetKernelTier(prevTier)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkMaxoutLogitsBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	n := NewMaxout(rng, 3, 128, 64, 32, 10)
	xs := randBatch(rng, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.LogitsBatch(xs)
	}
}

func BenchmarkMaxoutLogitsLoop64(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	n := NewMaxout(rng, 3, 128, 64, 32, 10)
	xs := randBatch(rng, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			_ = n.Logits(x)
		}
	}
}
