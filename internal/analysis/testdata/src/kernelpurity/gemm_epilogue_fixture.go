// Fixtures for the epilogue-hook rule: fused epilogues are per-element
// post-accumulation work (bias add, mask capture, activation) and must
// never run a float reduction of their own. Type-checked under
// "repro/internal/mat"; the file name starts with "gemm" so the analyzer
// scopes it as kernel code.
package a

// Epilogue mirrors the mat.Epilogue hook the analyzer keys on.
type Epilogue struct {
	Bias []float64
	Leak float64
	Mask []bool
}

// Per-element rewrites — indexed writes, one add per element — are the
// contract and stay clean.
func applyEpilogueRowsClean(rows [][]float64, epi *Epilogue) {
	for i, row := range rows {
		if epi.Bias != nil {
			for j, bv := range epi.Bias {
				row[j] += bv
			}
		}
		if epi.Mask != nil {
			for j, v := range row {
				epi.Mask[i*len(row)+j] = v > 0
			}
		}
		for j, v := range row {
			if v <= 0 {
				row[j] = epi.Leak * v
			}
		}
	}
}

// A running scalar sum inside an epilogue re-enters the reduction the GEMM
// already committed.
func applyEpilogueRowsReduce(rows [][]float64, epi *Epilogue) float64 {
	var total float64
	for _, row := range rows {
		for _, v := range row {
			total += v // want "per-element post-accumulation only"
		}
	}
	return total
}

// Methods on the Epilogue type are hooks regardless of name.
func (e *Epilogue) biasNorm() float64 {
	var s float64
	for _, v := range e.Bias {
		s += v * v // want "per-element post-accumulation only"
	}
	return s
}
