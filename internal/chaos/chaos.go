// Package chaos is the fault-injection harness behind the fleet acceptance
// battery: seeded, deterministic fault plans wrapped around shard backends
// and HTTP handlers. Where api.Flaky models a *lying* worker (degraded
// answers the aggregator must out-vote), chaos models a *failing* one —
// latency spikes, hangs, hard errors, connection resets, truncated bodies,
// flapping health — exactly the faults the router is contractually allowed
// to route around without ever changing an answer. Every injected fault is
// visible (it errors, stalls or cuts the wire), so a chaos run asserts the
// strongest property the paper's API setting needs: the fleet's output is
// bit-identical to a healthy single replica no matter what the transport
// does underneath.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/mat"
)

// Faults is one seeded fault plan. Rates are probabilities per call (or per
// HTTP request for the middleware faults); one uniform roll per call picks
// at most one fault, cumulatively, in field order — so the rates may sum to
// at most 1 and a plan's behaviour is fully determined by its seed.
type Faults struct {
	// Seed determines the whole fault sequence; same seed, same plan.
	Seed int64

	// LatencyRate injects a Latency-long stall before the call proceeds.
	LatencyRate float64
	// Latency is the injected stall (default 50ms when a rate is set).
	Latency time.Duration
	// HangRate parks the call until its context is cancelled — the worker
	// that accepted a request and went silent.
	HangRate float64
	// ErrorRate fails the call outright with ErrInjected.
	ErrorRate float64

	// ResetRate (middleware only) aborts the HTTP exchange mid-response —
	// the client sees a connection reset.
	ResetRate float64
	// TruncateRate (middleware only) writes roughly half the response body
	// and then cuts the connection — a truncated frame on the wire.
	TruncateRate float64
}

// ErrInjected is the error every chaos-injected hard failure carries.
var ErrInjected = errors.New("chaos: injected fault")

// fault is the outcome of one roll.
type fault int

const (
	faultNone fault = iota
	faultLatency
	faultHang
	faultError
	faultReset
	faultTruncate
)

// plan rolls the seeded RNG, one roll per call, under a lock so concurrent
// callers draw from one deterministic sequence.
type plan struct {
	f   Faults
	mu  sync.Mutex
	rng *rand.Rand
}

func newPlan(f Faults) *plan {
	if f.Latency == 0 {
		f.Latency = 50 * time.Millisecond
	}
	return &plan{f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

func (p *plan) roll() fault {
	p.mu.Lock()
	r := p.rng.Float64()
	p.mu.Unlock()
	for _, pick := range []struct {
		rate float64
		f    fault
	}{
		{p.f.LatencyRate, faultLatency},
		{p.f.HangRate, faultHang},
		{p.f.ErrorRate, faultError},
		{p.f.ResetRate, faultReset},
		{p.f.TruncateRate, faultTruncate},
	} {
		if r < pick.rate {
			return pick.f
		}
		r -= pick.rate
	}
	return faultNone
}

// Counts reports how many of each fault a Backend or Middleware injected.
type Counts struct {
	Latencies int64 `json:"latencies"`
	Hangs     int64 `json:"hangs"`
	Errors    int64 `json:"errors"`
	Resets    int64 `json:"resets"`
	Truncates int64 `json:"truncates"`
}

type counters struct {
	latencies, hangs, errs, resets, truncates atomic.Int64
}

func (c *counters) counts() Counts {
	return Counts{
		Latencies: c.latencies.Load(),
		Hangs:     c.hangs.Load(),
		Errors:    c.errs.Load(),
		Resets:    c.resets.Load(),
		Truncates: c.truncates.Load(),
	}
}

// Backend wraps a shard backend with a seeded fault plan. Injected faults
// are always loud — an error, a stall, a hang — never a corrupted answer:
// what the inner backend would have said is what the caller gets whenever
// anything is said at all. Down is the flapping switch: while set, every
// call fails fast and Healthy reports false, so a Flapper toggling it
// exercises the same membership churn a crashing worker would.
type Backend struct {
	inner api.Backend
	plan  *plan
	ctr   counters

	// Down makes the backend refuse everything while set — flip it (or run
	// a Flapper over it) to model a worker bouncing in and out of reach.
	Down atomic.Bool
}

// Wrap builds a chaos backend over inner with the given fault plan.
func Wrap(inner api.Backend, f Faults) *Backend {
	return &Backend{inner: inner, plan: newPlan(f)}
}

// Counts reports the faults injected so far.
func (b *Backend) Counts() Counts { return b.ctr.counts() }

// inject applies one rolled fault. It returns a non-nil error when the call
// must fail instead of reaching the inner backend.
func (b *Backend) inject(ctx context.Context) error {
	if b.Down.Load() {
		return fmt.Errorf("%w: flapped down", ErrInjected)
	}
	switch b.plan.roll() {
	case faultLatency:
		b.ctr.latencies.Add(1)
		t := time.NewTimer(b.plan.f.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	case faultHang:
		b.ctr.hangs.Add(1)
		<-ctx.Done()
		return ctx.Err()
	case faultError:
		b.ctr.errs.Add(1)
		return ErrInjected
	}
	return nil
}

func (b *Backend) Predict(ctx context.Context, x mat.Vec) (mat.Vec, error) {
	if err := b.inject(ctx); err != nil {
		return nil, err
	}
	return b.inner.Predict(ctx, x)
}

func (b *Backend) PredictBatch(ctx context.Context, xs []mat.Vec) ([]mat.Vec, error) {
	if err := b.inject(ctx); err != nil {
		return nil, err
	}
	return b.inner.PredictBatch(ctx, xs)
}

func (b *Backend) Stats() api.BackendStats { return b.inner.Stats() }

func (b *Backend) Healthy(ctx context.Context) bool {
	return !b.Down.Load() && b.inner.Healthy(ctx)
}

// Flapper toggles a backend's Down switch on a fixed period until its
// context ends — the scripted crash-loop of the acceptance battery.
type Flapper struct {
	Backend *Backend
	// Period is the time between flips (default 10ms).
	Period time.Duration
	// Flips counts completed transitions.
	Flips atomic.Int64
}

// Run flips until ctx is done, then leaves the backend up.
func (f *Flapper) Run(ctx context.Context) {
	period := f.Period
	if period == 0 {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			f.Backend.Down.Store(false)
			return
		case <-tick.C:
			f.Backend.Down.Store(!f.Backend.Down.Load())
			f.Flips.Add(1)
		}
	}
}

// Middleware wraps an HTTP handler with wire-level faults: injected
// latency, connection resets and truncated response bodies — the failure
// modes a remote backend's HTTP client actually sees from a sick peer.
// Like Backend, it never alters bytes it does deliver: a truncated body is
// a cut-off prefix of the true response, which no codec accepts as valid.
type Middleware struct {
	next http.Handler
	plan *plan
	ctr  counters
}

// NewMiddleware wraps next with the given fault plan.
func NewMiddleware(next http.Handler, f Faults) *Middleware {
	return &Middleware{next: next, plan: newPlan(f)}
}

// Counts reports the faults injected so far.
func (m *Middleware) Counts() Counts { return m.ctr.counts() }

func (m *Middleware) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch m.plan.roll() {
	case faultLatency:
		m.ctr.latencies.Add(1)
		t := time.NewTimer(m.plan.f.Latency)
		defer t.Stop()
		select {
		case <-req.Context().Done():
			return
		case <-t.C:
		}
	case faultHang:
		m.ctr.hangs.Add(1)
		<-req.Context().Done()
		return
	case faultError:
		m.ctr.errs.Add(1)
		http.Error(w, "chaos: injected fault", http.StatusInternalServerError)
		return
	case faultReset:
		m.ctr.resets.Add(1)
		// The sanctioned way to hard-close the connection mid-exchange.
		panic(http.ErrAbortHandler)
	case faultTruncate:
		m.ctr.truncates.Add(1)
		rec := httptest.NewRecorder()
		m.next.ServeHTTP(rec, req)
		for k, vs := range rec.Header() {
			w.Header()[k] = vs
		}
		body := rec.Body.Bytes()
		w.WriteHeader(rec.Code)
		if len(body) > 1 {
			w.Write(body[:len(body)/2])
		}
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		// Cut the connection so the half-written body cannot be mistaken
		// for a complete response.
		panic(http.ErrAbortHandler)
	}
	m.next.ServeHTTP(w, req)
}
