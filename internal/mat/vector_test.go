package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, -5, 6}
	if got := v.Dot(w); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestVecDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecAddSub(t *testing.T) {
	v := Vec{1, 2}
	w := Vec{3, 5}
	if got := v.Add(w); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	// originals untouched
	if v[0] != 1 || w[0] != 3 {
		t.Fatal("Add/Sub mutated operands")
	}
}

func TestVecInPlaceOps(t *testing.T) {
	v := Vec{1, 2}
	v.AddInPlace(Vec{1, 1}).SubInPlace(Vec{0, 1}).ScaleInPlace(2).Axpy(3, Vec{1, 0})
	want := Vec{7, 4} // ((1+1-0)*2+3, (2+1-1)*2+0)
	if v[0] != want[0] || v[1] != want[1] {
		t.Fatalf("chained in-place = %v, want %v", v, want)
	}
}

func TestVecNorms(t *testing.T) {
	v := Vec{3, -4}
	if got := v.Norm2(); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := (Vec{}).Norm2(); got != 0 {
		t.Fatalf("empty Norm2 = %v", got)
	}
}

func TestVecNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	v := Vec{big, big}
	got := v.Norm2()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestVecDistances(t *testing.T) {
	v := Vec{0, 0, 0}
	w := Vec{1, -2, 2}
	if got := v.L1Dist(w); got != 5 {
		t.Fatalf("L1Dist = %v", got)
	}
	if got := v.L2Dist(w); !almostEqual(got, 3, 1e-15) {
		t.Fatalf("L2Dist = %v", got)
	}
	if got := v.LInfDist(w); got != 2 {
		t.Fatalf("LInfDist = %v", got)
	}
}

func TestVecCosine(t *testing.T) {
	v := Vec{1, 0}
	w := Vec{0, 1}
	if got := v.Cosine(w); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := v.Cosine(v.Scale(3)); !almostEqual(got, 1, 1e-15) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := v.Cosine(v.Scale(-2)); !almostEqual(got, -1, 1e-15) {
		t.Fatalf("antiparallel cosine = %v", got)
	}
	zero := Vec{0, 0}
	if got := zero.Cosine(zero); got != 1 {
		t.Fatalf("zero-zero cosine = %v, want 1", got)
	}
	if got := zero.Cosine(v); got != 0 {
		t.Fatalf("zero-nonzero cosine = %v, want 0", got)
	}
}

func TestVecArgMaxMin(t *testing.T) {
	v := Vec{3, 9, -2, 9}
	if got := v.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := v.ArgMin(); got != 2 {
		t.Fatalf("ArgMin = %d", got)
	}
	if got := (Vec{}).ArgMax(); got != -1 {
		t.Fatalf("empty ArgMax = %d", got)
	}
	if v.Max() != 9 || v.Min() != -2 {
		t.Fatalf("Max/Min = %v/%v", v.Max(), v.Min())
	}
}

func TestVecCloneIndependence(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestVecFillSumMean(t *testing.T) {
	v := NewVec(4).Fill(2.5)
	if v.Sum() != 10 || v.Mean() != 2.5 {
		t.Fatalf("Sum/Mean = %v/%v", v.Sum(), v.Mean())
	}
	if (Vec{}).Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestVecHasNaN(t *testing.T) {
	if (Vec{1, 2}).HasNaN() {
		t.Fatal("clean vector flagged")
	}
	if !(Vec{1, math.NaN()}).HasNaN() {
		t.Fatal("NaN not flagged")
	}
	if !(Vec{math.Inf(1)}).HasNaN() {
		t.Fatal("Inf not flagged")
	}
}

func TestVecEqualApprox(t *testing.T) {
	v := Vec{1, 2}
	if !v.EqualApprox(Vec{1 + 1e-12, 2}, 1e-9) {
		t.Fatal("near-equal vectors rejected")
	}
	if v.EqualApprox(Vec{1.1, 2}, 1e-9) {
		t.Fatal("different vectors accepted")
	}
	if v.EqualApprox(Vec{1}, 1e-9) {
		t.Fatal("length mismatch accepted")
	}
}

// Property: cosine similarity is scale invariant and bounded in [-1, 1].
func TestPropertyCosineScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8, scale float64) bool {
		d := int(n%16) + 2
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) < 1e-6 || math.Abs(scale) > 1e6 {
			scale = 2.5
		}
		v := make(Vec, d)
		w := make(Vec, d)
		for i := range v {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		c1 := v.Cosine(w)
		c2 := v.Scale(scale).Cosine(w)
		if math.Abs(scale) > 0 && scale < 0 {
			c2 = -c2
		}
		return almostEqual(c1, c2, 1e-9) && c1 <= 1+1e-12 && c1 >= -1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for the L1 distance.
func TestPropertyL1TriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		d := int(n%16) + 1
		a, b, c := make(Vec, d), make(Vec, d), make(Vec, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		return a.L1Dist(c) <= a.L1Dist(b)+b.L1Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
