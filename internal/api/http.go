package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/plm"
)

// The wire protocol is deliberately what a minimal prediction service looks
// like:
//
//	GET  /meta     -> {"name":..., "dim":d, "classes":C}
//	POST /predict  {"x":[...]}        -> {"probs":[...]}
//	POST /batch    {"xs":[[...],..]}  -> {"probs":[[...],..]}
//	GET  /stats    -> {"queries":n}
//
// Only probabilities cross the wire — never parameters — so the server side
// is a faithful stand-in for the cloud APIs the paper targets.

type metaResponse struct {
	Name    string `json:"name"`
	Dim     int    `json:"dim"`
	Classes int    `json:"classes"`
}

type predictRequest struct {
	X []float64 `json:"x"`
}

type predictResponse struct {
	Probs []float64 `json:"probs"`
}

type batchRequest struct {
	Xs [][]float64 `json:"xs"`
}

type batchResponse struct {
	Probs [][]float64 `json:"probs"`
}

type statsResponse struct {
	Queries    int64 `json:"queries"`
	RoundTrips int64 `json:"round_trips"`
	// ReplicaQueries breaks Queries down per model replica when the served
	// model is a Shard; absent for single-replica servers.
	ReplicaQueries []int64 `json:"replica_queries,omitempty"`
	// Backends is the per-backend breakdown when the served model is a
	// Shard: kind (local/remote), health state, inflight, retry and failure
	// counters. A remote or temporarily unhealthy backend stays listed with
	// state "unreachable" rather than disappearing from the report.
	Backends []BackendStatus `json:"backends,omitempty"`
	// Cache counters are present when the served model sits behind a
	// ResponseCache (plmserve -cache N). Pointers keep genuine zeros visible
	// while omitting the fields entirely on cacheless servers.
	CacheHits      *int64 `json:"cache_hits,omitempty"`
	CacheMisses    *int64 `json:"cache_misses,omitempty"`
	CacheEvictions *int64 `json:"cache_evictions,omitempty"`
	CacheSize      *int   `json:"cache_size,omitempty"`
}

// Server exposes a plm.Model over HTTP. It implements http.Handler.
type Server struct {
	model   plm.Model
	name    string
	mux     *http.ServeMux
	queries atomic.Int64
	// requests counts prediction round trips: one per served /predict or
	// /batch call, however many probes the batch carried. The ratio
	// queries/requests is the server-side view of how well clients batch.
	requests atomic.Int64
	// Latency, when positive, is added to every prediction request to
	// simulate a slow remote.
	Latency time.Duration
}

// NewServer wraps model as an HTTP prediction service.
func NewServer(model plm.Model, name string) *Server {
	s := &Server{model: model, name: name, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /meta", s.handleMeta)
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Queries returns the number of single predictions served (batch items
// count individually).
func (s *Server) Queries() int64 { return s.queries.Load() }

// Requests returns the number of prediction round trips served — the
// denominator of the batching win a query aggregator buys.
func (s *Server) Requests() int64 { return s.requests.Load() }

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, metaResponse{Name: s.name, Dim: s.model.Dim(), Classes: s.model.Classes()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Queries:    s.queries.Load(),
		RoundTrips: s.requests.Load(),
	}
	model := s.model
	if rc, ok := model.(*ResponseCache); ok {
		hits, misses, evictions := rc.CacheStats()
		size := rc.Len()
		resp.CacheHits = &hits
		resp.CacheMisses = &misses
		resp.CacheEvictions = &evictions
		resp.CacheSize = &size
		// The replica breakdown lives behind the cache.
		model = rc.Inner()
	}
	if sh, ok := model.(*Shard); ok {
		resp.ReplicaQueries = sh.ReplicaQueries()
		resp.Backends = sh.BackendStatus()
	}
	writeJSON(w, http.StatusOK, resp)
}

// Handle mounts an extra handler on the server's mux — how optional
// subsystems (the async job API, say) attach their endpoints without the
// core server depending on them.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.X) != s.model.Dim() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("input length %d != %d", len(req.X), s.model.Dim()))
		return
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	// Models with an error surface (a Shard whose backends are all gone,
	// say) answer 5xx rather than fabricating probabilities — and like a
	// failed batch, a failed prediction delivered nothing, so it is not
	// counted.
	var probs mat.Vec
	if ep, ok := s.model.(errPredictor); ok {
		p, err := ep.PredictErr(mat.Vec(req.X))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		probs = p
	} else {
		probs = s.model.Predict(mat.Vec(req.X))
	}
	s.requests.Add(1)
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, predictResponse{Probs: probs})
}

// errPredictor is the optional single-prediction error surface (Client,
// Shard, ResponseCache): Predict with failures made visible instead of
// degraded into a uniform answer.
type errPredictor interface {
	PredictErr(x mat.Vec) (mat.Vec, error)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// An empty batch is a no-op, not a round trip: counting it would skew
	// the queries/round_trips ratio the stats report (and the integration
	// gate) with zero-query requests.
	if len(req.Xs) == 0 {
		writeJSON(w, http.StatusOK, batchResponse{Probs: [][]float64{}})
		return
	}
	// Validate everything before counting: a rejected request must not
	// skew the queries/round_trips ratio the stats report.
	for i, x := range req.Xs {
		if len(x) != s.model.Dim() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("batch item %d length %d != %d", i, len(x), s.model.Dim()))
			return
		}
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	xs := make([]mat.Vec, len(req.Xs))
	for i, x := range req.Xs {
		xs[i] = mat.Vec(x)
	}
	// The model's own batch endpoint — a Shard's parallel replica fan-out,
	// say — answers the whole request at once; plain models fall back to
	// per-probe evaluation. Count only after it succeeds: a failed batch
	// delivered zero answers, and counting it (times the client's 5xx
	// retries) would skew the queries/round_trips ratio like any other
	// rejected request.
	ys, err := predictAllErr(s.model, xs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.requests.Add(1)
	s.queries.Add(int64(len(req.Xs)))
	out := batchResponse{Probs: make([][]float64, len(ys))}
	for i, y := range ys {
		out.Probs[i] = y
	}
	writeJSON(w, http.StatusOK, out)
}

func decodeBody(r *http.Request, dst any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("api: decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable; best effort.
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Client is an HTTP prediction client implementing plm.Model. Transport
// errors are sticky (the bufio.Scanner pattern): Predict returns a uniform
// distribution and records the error, and callers check Err when the
// interpretation finishes. This keeps plm.Model's pure-math surface while
// still surfacing failures.
type Client struct {
	baseURL string
	httpc   *http.Client
	meta    metaResponse
	retries int

	mu  sync.Mutex
	err error
}

// Dial connects to an API server, fetches its metadata, and returns a
// client. retries is the number of extra attempts per request (0 = none).
func Dial(baseURL string, httpc *http.Client, retries int) (*Client, error) {
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	if retries < 0 {
		retries = 0
	}
	c := &Client{baseURL: baseURL, httpc: httpc, retries: retries}
	resp, err := httpc.Get(baseURL + "/meta")
	if err != nil {
		return nil, fmt.Errorf("api: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("api: meta returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&c.meta); err != nil {
		return nil, fmt.Errorf("api: decode meta: %w", err)
	}
	if c.meta.Dim <= 0 || c.meta.Classes < 2 {
		return nil, fmt.Errorf("api: implausible meta %+v", c.meta)
	}
	return c, nil
}

// Name returns the remote model's advertised name.
func (c *Client) Name() string { return c.meta.Name }

// BaseURL returns the server address the client was dialed against.
func (c *Client) BaseURL() string { return c.baseURL }

// Ping checks that the server still answers its /meta endpoint, with a
// short deadline so a dead host cannot stall the caller for the transport
// timeout. It is the health probe remote shard backends use.
func (c *Client) Ping() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/meta", nil)
	if err != nil {
		return fmt.Errorf("api: ping %s: %w", c.baseURL, err)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("api: ping %s: %w", c.baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api: ping %s returned %s", c.baseURL, resp.Status)
	}
	return nil
}

// Dim returns the remote model's input dimensionality.
func (c *Client) Dim() int { return c.meta.Dim }

// Classes returns the remote model's class count.
func (c *Client) Classes() int { return c.meta.Classes }

// Err returns the first transport error encountered, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ResetErr clears the sticky error.
func (c *Client) ResetErr() {
	c.mu.Lock()
	c.err = nil
	c.mu.Unlock()
}

func (c *Client) record(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// post sends one JSON request, retrying transport errors, 5xx responses and
// body decode failures up to c.retries extra times. A 4xx response is the
// server rejecting the request itself — re-sending the same payload can only
// waste round trips and delay the caller seeing its own mistake — so those
// return immediately.
func (c *Client) post(path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("api: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		resp, err := c.httpc.Post(c.baseURL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			lastErr = err
			continue
		}
		retryable := true
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				lastErr = fmt.Errorf("api: %s returned %s: %s", path, resp.Status, bytes.TrimSpace(b))
				retryable = resp.StatusCode >= 500
				return
			}
			lastErr = json.NewDecoder(resp.Body).Decode(dst)
		}()
		if lastErr == nil {
			return nil
		}
		if !retryable {
			return lastErr
		}
	}
	return lastErr
}

// PredictErr performs one remote prediction, returning transport errors
// directly.
func (c *Client) PredictErr(x mat.Vec) (mat.Vec, error) {
	var out predictResponse
	if err := c.post("/predict", predictRequest{X: x}, &out); err != nil {
		return nil, err
	}
	if len(out.Probs) != c.meta.Classes {
		return nil, fmt.Errorf("api: server returned %d probabilities, want %d", len(out.Probs), c.meta.Classes)
	}
	return mat.Vec(out.Probs), nil
}

// Predict implements plm.Model with sticky error handling.
func (c *Client) Predict(x mat.Vec) mat.Vec {
	p, err := c.PredictErr(x)
	if err != nil {
		c.record(err)
		u := make(mat.Vec, c.meta.Classes)
		return u.Fill(1 / float64(c.meta.Classes))
	}
	return p
}

// PredictBatch performs one batched remote prediction. An empty batch is
// answered locally — there is nothing to ask the server.
func (c *Client) PredictBatch(xs []mat.Vec) ([]mat.Vec, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	req := batchRequest{Xs: make([][]float64, len(xs))}
	for i, x := range xs {
		req.Xs[i] = x
	}
	var out batchResponse
	if err := c.post("/batch", req, &out); err != nil {
		return nil, err
	}
	if len(out.Probs) != len(xs) {
		return nil, fmt.Errorf("api: server returned %d batch items, want %d", len(out.Probs), len(xs))
	}
	res := make([]mat.Vec, len(out.Probs))
	for i, p := range out.Probs {
		if len(p) != c.meta.Classes {
			return nil, fmt.Errorf("api: batch item %d has %d probabilities, want %d", i, len(p), c.meta.Classes)
		}
		res[i] = mat.Vec(p)
	}
	return res, nil
}

var _ plm.Model = (*Client)(nil)
var _ plm.Model = (*Counter)(nil)
var _ plm.Model = (*Cache)(nil)
var _ plm.Model = (*Flaky)(nil)
