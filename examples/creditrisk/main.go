// Creditrisk: interpreting a tabular decision model — the kind of
// high-stakes "why was I declined?" scenario the paper's introduction
// motivates. A logistic model tree scores synthetic loan applications; the
// applicant-facing side sees only approve/decline probabilities, yet OpenAPI
// recovers exactly which features drove a decline, with signs and weights.
//
// Run with:
//
//	go run ./examples/creditrisk
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
	"repro/internal/lmt"
	"repro/internal/mat"
)

// The applicant feature schema (all scaled to [0, 1]).
var featureNames = []string{
	"income",          // normalized annual income
	"debt_ratio",      // existing debt / income
	"credit_history",  // years of history, normalized
	"late_payments",   // recent late payments, normalized count
	"employment_len",  // years at current employer, normalized
	"requested_ratio", // requested amount / income
	"utilization",     // revolving credit utilization
	"inquiries",       // recent credit inquiries, normalized
}

const (
	classApprove = 0
	classDecline = 1
)

// synthesize draws applications from a ground-truth policy with an income-
// dependent regime switch (so the optimal model is genuinely piecewise
// linear, not a single logistic fit).
func synthesize(rng *rand.Rand, n int) ([]mat.Vec, []int) {
	xs := make([]mat.Vec, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		x := make(mat.Vec, len(featureNames))
		for j := range x {
			x[j] = rng.Float64()
		}
		// Risk score: different weights in the low- and high-income regimes.
		var risk float64
		if x[0] < 0.4 { // low income: debt and utilization dominate
			risk = 1.6*x[1] + 1.2*x[6] + 0.8*x[3] + 0.9*x[5] - 0.7*x[2] - 0.3*x[4]
		} else { // high income: history and inquiries matter more
			risk = 0.9*x[3] + 0.8*x[7] + 0.6*x[1] - 1.1*x[2] - 0.5*x[0] + 0.4*x[5]
		}
		risk += 0.15 * rng.NormFloat64()
		if risk > 0.55 {
			ys[i] = classDecline
		} else {
			ys[i] = classApprove
		}
		xs[i] = x
	}
	return xs, ys
}

func main() {
	log.SetFlags(0)

	// --- Lender side: train the scoring model. ---------------------------
	rng := rand.New(rand.NewSource(11))
	xs, ys := synthesize(rng, 4000)
	tree, err := lmt.Train(rng, xs, ys, 2, lmt.Config{
		MinLeaf:  200,
		MaxDepth: 4,
		LogReg:   lmt.LogRegConfig{Epochs: 300, L1: 1e-3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lender: trained an LMT scorer — %d leaves, training accuracy %.3f\n",
		tree.NumLeaves(), tree.Accuracy(xs, ys))

	// --- Applicant side: a declined application. -------------------------
	applicant := mat.Vec{
		0.30, // income: modest
		0.85, // debt_ratio: very high
		0.25, // credit_history: short
		0.60, // late_payments: several
		0.50, // employment_len
		0.70, // requested_ratio: large ask
		0.90, // utilization: nearly maxed
		0.40, // inquiries
	}
	probs := tree.Predict(applicant)
	fmt.Printf("\napplicant: P(approve) = %.3f, P(decline) = %.3f\n",
		probs[classApprove], probs[classDecline])
	if probs.ArgMax() != classDecline {
		fmt.Println("(this applicant happens to be approved; interpreting anyway)")
	}

	// Interpret the decline through the API surface only.
	counted := repro.CountQueries(tree)
	interp, err := repro.Interpret(counted, applicant, classDecline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OpenAPI recovered the exact decision weights with %d probe queries\n\n", counted.Count())

	// Rank features by contribution. Positive weight = pushes toward
	// decline; the product with the applicant's value gives the actual
	// contribution at this application.
	type contrib struct {
		name   string
		weight float64
		value  float64
	}
	rows := make([]contrib, len(featureNames))
	for i, name := range featureNames {
		rows[i] = contrib{name: name, weight: interp.Features[i], value: applicant[i]}
	}
	sort.Slice(rows, func(a, b int) bool {
		wa, wb := rows[a].weight*rows[a].value, rows[b].weight*rows[b].value
		return wa > wb
	})
	fmt.Println("why the model leans toward DECLINE (weight x value = contribution):")
	fmt.Println("  feature          weight    value   contribution")
	for _, r := range rows {
		fmt.Printf("  %-15s %+8.4f  %6.2f   %+8.4f\n", r.name, r.weight, r.value, r.weight*r.value)
	}

	// Exactness check against the lender's white-box view.
	truth, err := repro.GroundTruth(tree, applicant, classDecline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexactness check: L1 distance to the lender's own weights = %.3g\n",
		interp.Features.L1Dist(truth))

	// Bonus: consistency. A second applicant in the same scoring regime
	// gets the same weights — the paper's consistency guarantee.
	similar := applicant.Clone()
	similar[4] += 0.05 // slightly longer employment
	if tree.RegionKey(similar) == tree.RegionKey(applicant) {
		interp2, err := repro.Interpret(tree, similar, classDecline)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("consistency check: similar applicant, cosine similarity = %.9f\n",
			interp.Features.Cosine(interp2.Features))
	}
}
