// Quickstart: train a small piecewise linear model, hide it behind the
// Model interface, and recover its exact decision features with OpenAPI —
// then verify against the white-box ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Train a demo PLNN on the synthetic digits dataset.
	fmt.Println("training a small ReLU network on synthetic digits...")
	model := repro.MustTrainDemoPLNN(1)

	// 2. Pick an instance and see what the model predicts.
	x := model.Example()
	probs := model.Predict(x)
	c := probs.ArgMax()
	fmt.Printf("the model predicts class %d (%s) with probability %.3f\n",
		c, model.Data().Names[c], probs[c])

	// 3. Interpret the prediction using ONLY Predict calls — this is what
	// OpenAPI can do against any cloud API.
	counted := repro.CountQueries(model)
	interp, err := repro.Interpret(counted, x, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OpenAPI converged in %d iteration(s) using %d API queries\n",
		interp.Iterations, counted.Count())

	// 4. Compare with the exact ground truth extracted from the parameters
	// (something a real API consumer could never do).
	truth, err := repro.GroundTruth(model, x, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L1 distance to white-box ground truth: %.3g\n",
		interp.Features.L1Dist(truth))
	fmt.Printf("cosine similarity to ground truth:     %.9f\n",
		interp.Features.Cosine(truth))

	// 5. Show the three most supportive and most opposing pixels.
	top, bottom := 3, 3
	fmt.Println("strongest decision features (pixel index: weight):")
	printExtremes(interp.Features, top, bottom)
}

func printExtremes(w repro.Vec, top, bottom int) {
	type fw struct {
		i int
		v float64
	}
	ranked := make([]fw, len(w))
	for i, v := range w {
		ranked[i] = fw{i, v}
	}
	// Selection sort of the extremes is plenty for a demo.
	for k := 0; k < top; k++ {
		best := k
		for j := k; j < len(ranked); j++ {
			if ranked[j].v > ranked[best].v {
				best = j
			}
		}
		ranked[k], ranked[best] = ranked[best], ranked[k]
		fmt.Printf("  supports: pixel %4d  %+.4f\n", ranked[k].i, ranked[k].v)
	}
	for k := 0; k < bottom; k++ {
		best := top
		for j := top; j < len(ranked); j++ {
			if ranked[j].v < ranked[best].v {
				best = j
			}
		}
		ranked[top], ranked[best] = ranked[best], ranked[top]
		fmt.Printf("  opposes:  pixel %4d  %+.4f\n", ranked[top].i, ranked[top].v)
		ranked = append(ranked[:top], ranked[top+1:]...)
	}
}
