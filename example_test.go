package repro_test

import (
	"fmt"

	"repro"
)

// ExampleInterpret shows the one-call path: exact decision features of a
// model using only its prediction API.
func ExampleInterpret() {
	model := repro.MustTrainDemoPLNN(1)
	x := model.Example()
	c := model.Predict(x).ArgMax()

	interp, err := repro.Interpret(model, x, c)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	truth, err := repro.GroundTruth(model, x, c)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("marked exact:", interp.Exact)
	fmt.Println("matches white-box ground truth:", interp.Features.L1Dist(truth) < 1e-4)
	// Output:
	// marked exact: true
	// matches white-box ground truth: true
}

// ExampleInterpretation_TopK ranks the recovered decision features.
func ExampleInterpretation_TopK() {
	model := repro.MustTrainDemoPLNN(2)
	x := model.Example()
	interp, err := repro.Interpret(model, x, model.Predict(x).ArgMax())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	top := interp.TopK(3)
	fmt.Println("features ranked:", len(top) == 3)
	fmt.Println("strongest first:", abs(top[0].Weight) >= abs(top[1].Weight) &&
		abs(top[1].Weight) >= abs(top[2].Weight))
	// Output:
	// features ranked: true
	// strongest first: true
}

// ExampleWrapBinaryScore interprets a service that exposes only a single
// probability score.
func ExampleWrapBinaryScore() {
	model := repro.MustTrainDemoPLNNBinary(3)
	scoreOnly := repro.WrapBinaryScore(func(x repro.Vec) float64 {
		return model.Predict(x)[1] // all the API reveals
	}, model.Dim())

	x := model.Example()
	interp, err := repro.Interpret(scoreOnly, x, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	truth, err := repro.GroundTruth(model, x, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("exact through a score-only API:", interp.Features.L1Dist(truth) < 1e-4)
	// Output:
	// exact through a score-only API: true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
