// Fixtures for the lockheld analyzer: no blocking operations under a
// mutex, no non-deferred Unlock across branches.
package a

import (
	"net"
	"net/http"
	"sync"
	"time"
)

type backend struct{}

func (backend) Healthy() bool { return true }

func (backend) Ping() error { return nil }

func (backend) PingCtx() error { return nil }

type state struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	n      int
	ch     chan int
	client *http.Client
	b      backend
}

func (s *state) deferredStraight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

func (s *state) manualStraight() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *state) manualBranchy() bool {
	s.mu.Lock() // want "non-deferred Unlock across branching control flow"
	if s.n > 0 {
		s.mu.Unlock()
		return true
	}
	s.n = 1
	s.mu.Unlock()
	return false
}

func (s *state) branchAfterUnlock() bool {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	if n > 0 {
		return true
	}
	return false
}

func (s *state) auditedBranchy() bool {
	// Invariant: both exits unlock exactly once before returning.
	s.mu.Lock() //plmvet:allow(lockheld)
	if s.n > 0 {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	return false
}

func (s *state) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "channel send while holding s.mu"
}

func (s *state) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding s.mu"
}

func (s *state) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while holding s.mu"
	case v := <-s.ch: // the receive inside reports too // want "channel receive while holding s.mu"
		s.n = v
	default:
	}
}

func (s *state) httpUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.client.Get("http://example.invalid/") // want "http client Get while holding s.mu"
	return err
}

func (s *state) probeUnderLock() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Healthy() // want "Healthy\(\) probe while holding s.mu"
}

func (s *state) pingUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Ping() // want "Ping\(\) probe while holding s.mu"
}

func (s *state) pingCtxUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.PingCtx() // want "PingCtx\(\) probe while holding s.mu"
}

func (s *state) dialUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := net.Dial("tcp", "example.invalid:1") // want "Dial round-trip while holding s.mu"
	return err
}

func (s *state) sleepUnderManualLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
	s.mu.Unlock()
}

func (s *state) blockingOutsideLock(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
	s.ch <- v // released first: fine
	_ = s.b.Healthy()
}

// RLock pairs with RUnlock, independently of the write-lock flavor.
func (s *state) readBranchy() bool {
	s.rw.RLock() // want "non-deferred Unlock across branching control flow"
	if s.n > 0 {
		s.rw.RUnlock()
		return true
	}
	s.rw.RUnlock()
	return false
}

// A nested closure is its own scope: the branch inside it runs on the
// closure's schedule, not between this function's Lock and Unlock.
func (s *state) closureIsSeparate() func() bool {
	s.mu.Lock()
	f := func() bool {
		if s.n > 0 {
			return true
		}
		return false
	}
	s.mu.Unlock()
	return f
}
