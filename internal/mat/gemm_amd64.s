#include "textflag.h"

// func cpuHasAVX2() bool
//
// Leaf 1 ECX: OSXSAVE (bit 27) and AVX (bit 28); XGETBV xcr0 must have the
// x87+SSE+AVX state bits (0x6) OS-enabled; leaf 7 EBX bit 5 is AVX2.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   no
	TESTL $(1<<28), CX // AVX
	JZ   no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func cpuHasAVX512() bool
//
// Leaf 1 ECX: OSXSAVE (bit 27); XGETBV xcr0 must have x87+SSE+AVX (0x6)
// plus opmask+ZMM_Hi256+Hi16_ZMM (0xe0) OS-enabled; leaf 7 EBX bit 16 is
// AVX512F, the only extension the 8-lane microkernel uses (VMOVUPD,
// VBROADCASTSD, VMULPD, VADDPD, VPXORQ on ZMM).
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   no512
	XORL CX, CX
	XGETBV
	ANDL $0xe6, AX
	CMPL AX, $0xe6
	JNE  no512
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<16), BX // AVX512F
	JZ   no512
	MOVB $1, ret+0(FP)
	RET
no512:
	MOVB $0, ret+0(FP)
	RET

// func dotPack4x4(pack, b0, b1, b2, b3 *float64, k int, out *[16]float64)
//
// Four simultaneous 4-lane dot products: pack interleaves four A rows
// (pack[4t+l] = A[i+l][t]), each Y accumulator carries one B row's running
// sums for all four A rows. Every lane performs mul-then-add in ascending-t
// order — the same two roundings, in the same order, as the scalar path —
// so results are bit-identical to naive dot products. No FMA on purpose:
// fused multiply-add rounds once and would diverge from the scalar kernel.
TEXT ·dotPack4x4(SB), NOSPLIT, $0-56
	MOVQ pack+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ k+40(FP), CX
	MOVQ out+48(FP), DI
	VXORPD Y0, Y0, Y0 // acc for b0
	VXORPD Y1, Y1, Y1 // acc for b1
	VXORPD Y2, Y2, Y2 // acc for b2
	VXORPD Y3, Y3, Y3 // acc for b3
	XORQ AX, AX       // t
loop:
	CMPQ AX, CX
	JGE  done
	MOVQ AX, DX
	SHLQ $5, DX                 // 32*t: pack stride is 4 float64
	VMOVUPD (SI)(DX*1), Y4      // [A[i][t] A[i+1][t] A[i+2][t] A[i+3][t]]
	MOVQ AX, BX
	SHLQ $3, BX                 // 8*t
	VBROADCASTSD (R8)(BX*1), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD (R9)(BX*1), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y1, Y1
	VBROADCASTSD (R10)(BX*1), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y2, Y2
	VBROADCASTSD (R11)(BX*1), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y3, Y3
	INCQ AX
	JMP  loop
done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dotPack8x4(pack, b0, b1, b2, b3 *float64, k int, out *[32]float64)
//
// The AVX-512 widening of dotPack4x4: pack interleaves eight A rows
// (pack[8t+l] = A[i+l][t]), each Z accumulator carries one B row's running
// sums for all eight A rows. Every lane performs mul-then-add in
// ascending-t order — the same two roundings, in the same order, as the
// scalar path — so results are bit-identical to naive dot products. No FMA
// on purpose: fused multiply-add rounds once and would diverge from the
// scalar kernel. Accumulators are zeroed with VPXORQ (AVX512F) because
// VXORPD on ZMM needs AVX512DQ, which cpuHasAVX512 does not require.
TEXT ·dotPack8x4(SB), NOSPLIT, $0-56
	MOVQ pack+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ k+40(FP), CX
	MOVQ out+48(FP), DI
	VPXORQ Z0, Z0, Z0 // acc for b0
	VPXORQ Z1, Z1, Z1 // acc for b1
	VPXORQ Z2, Z2, Z2 // acc for b2
	VPXORQ Z3, Z3, Z3 // acc for b3
	XORQ AX, AX       // t
loop8:
	CMPQ AX, CX
	JGE  done8
	MOVQ AX, DX
	SHLQ $6, DX                 // 64*t: pack stride is 8 float64
	VMOVUPD (SI)(DX*1), Z4      // [A[i][t] .. A[i+7][t]]
	MOVQ AX, BX
	SHLQ $3, BX                 // 8*t
	VBROADCASTSD (R8)(BX*1), Z5
	VMULPD Z4, Z5, Z5
	VADDPD Z5, Z0, Z0
	VBROADCASTSD (R9)(BX*1), Z5
	VMULPD Z4, Z5, Z5
	VADDPD Z5, Z1, Z1
	VBROADCASTSD (R10)(BX*1), Z5
	VMULPD Z4, Z5, Z5
	VADDPD Z5, Z2, Z2
	VBROADCASTSD (R11)(BX*1), Z5
	VMULPD Z4, Z5, Z5
	VADDPD Z5, Z3, Z3
	INCQ AX
	JMP  loop8
done8:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VZEROUPPER
	RET
