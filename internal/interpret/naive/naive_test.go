package naive

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
)

func plnnModel(seed int64, sizes ...int) *openbox.PLNN {
	return &openbox.PLNN{Net: nn.New(rand.New(rand.NewSource(seed)), sizes...)}
}

func randVec(rng *rand.Rand, d int) mat.Vec {
	v := make(mat.Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// boundaryModel is a two-region PLNN: region boundary at x[0] = 0.
func boundaryModel() *openbox.PLNN {
	w1 := mat.FromRows(mat.Vec{1, 0})
	w2 := mat.FromRows(mat.Vec{1}, mat.Vec{-1})
	net := nn.FromLayers(
		nn.Layer{W: w1, B: mat.Vec{0}},
		nn.Layer{W: w2, B: mat.Vec{0, 0}},
	)
	return &openbox.PLNN{Net: net}
}

func TestNaiveExactInsideRegion(t *testing.T) {
	// With h far smaller than the distance to any boundary, the ideal case
	// of §IV-B holds and the naive method is exact.
	model := plnnModel(1, 5, 8, 3)
	rng := rand.New(rand.NewSource(2))
	n := New(Config{H: 1e-6, Seed: 3})
	for trial := 0; trial < 5; trial++ {
		x := randVec(rng, 5)
		truth, err := model.LocalAt(x)
		if err != nil {
			t.Fatal(err)
		}
		c := model.Predict(x).ArgMax()
		got, err := n.Interpret(model, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if dist := got.Features.L1Dist(truth.DecisionFeatures(c)); dist > 1e-3 {
			t.Fatalf("inside-region L1Dist = %v", dist)
		}
	}
}

func TestNaiveWrongAcrossBoundary(t *testing.T) {
	// The instance sits 0.001 from the boundary; with h = 1.0 nearly every
	// sample lands in the other region, so the determined system mixes two
	// different linear classifiers and the answer is garbage (Theorem 1).
	model := boundaryModel()
	x := mat.Vec{0.001, 0.4}
	truth, err := model.LocalAt(x)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.DecisionFeatures(0) // = (2, 0) in the active region
	n := New(Config{H: 1.0, Seed: 4})
	got, err := n.Interpret(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist := got.Features.L1Dist(want); dist < 0.1 {
		t.Fatalf("naive method should fail across the boundary, L1Dist = %v", dist)
	}
}

func TestNaiveValidation(t *testing.T) {
	model := plnnModel(5, 3, 4, 2)
	n := New(Config{Seed: 6})
	if _, err := n.Interpret(model, mat.Vec{1}, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := n.Interpret(model, mat.Vec{1, 2, 3}, 7); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestNaiveName(t *testing.T) {
	if got := New(Config{H: 1e-2}).Name(); got != "Naive(h=1e-02)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestNaiveQueryCount(t *testing.T) {
	model := plnnModel(7, 4, 6, 2)
	n := New(Config{H: 1e-6, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	got, err := n.Interpret(model, randVec(rng, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != 1+4 {
		t.Fatalf("queries = %d, want 5", got.Queries)
	}
	if got.FinalEdge != 1e-6 {
		t.Fatalf("FinalEdge = %v", got.FinalEdge)
	}
	if got.Exact {
		t.Fatal("naive must not claim exactness")
	}
}

func TestNaiveSamplePoints(t *testing.T) {
	n := New(Config{H: 0.5, Seed: 10})
	x := mat.Vec{1, 2, 3}
	pts := n.SamplePoints(x)
	if len(pts) != 3 {
		t.Fatalf("SamplePoints returned %d", len(pts))
	}
	for _, p := range pts {
		for i := range p {
			if p[i] < x[i]-0.25 || p[i] > x[i]+0.25 {
				t.Fatalf("point %v escaped hypercube", p)
			}
		}
	}
}
