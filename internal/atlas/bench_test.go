package atlas_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/atlas"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/openbox"
	"repro/internal/plm"
)

// benchNet mirrors the openbox benchmark topology: a mid-size PLNN whose
// closed-form composition costs a real GEMM chain.
func benchNet() *nn.Network {
	return nn.New(rand.New(rand.NewSource(51)), 64, 96, 64, 10)
}

func benchInstances(net *nn.Network, n int) []mat.Vec {
	rng := rand.New(rand.NewSource(7))
	xs := make([]mat.Vec, n)
	for i := range xs {
		x := make(mat.Vec, net.InputDim())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// BenchmarkAtlas_ColdCompose is the baseline the atlas is measured against:
// composing a region's closed form from the network, no cache.
func BenchmarkAtlas_ColdCompose(b *testing.B) {
	net := benchNet()
	xs := benchInstances(net, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := openbox.Extract(net, xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAtlas_WarmLookup measures serving a previously composed region
// straight off the log: pread + checksum + frame decode, no GEMM.
func BenchmarkAtlas_WarmLookup(b *testing.B) {
	net := benchNet()
	xs := benchInstances(net, 64)
	a, err := atlas.Open(filepath.Join(b.TempDir(), "bench.atlas"))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	keys := make([]string, len(xs))
	for i, x := range xs {
		lin, err := openbox.Extract(net, x)
		if err != nil {
			b.Fatal(err)
		}
		a.Insert(lin.Key, lin)
		keys[i] = lin.Key
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("warm lookup missed")
		}
	}
}

// BenchmarkAtlas_Reopen measures cold-start recovery: rebuilding the key
// index from a populated log (no float decoding).
func BenchmarkAtlas_Reopen(b *testing.B) {
	net := benchNet()
	path := filepath.Join(b.TempDir(), "bench.atlas")
	a, err := atlas.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	seen := make(map[string]bool)
	for len(seen) < 256 {
		x := make(mat.Vec, net.InputDim())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		var lin *plm.Linear
		lin, err = openbox.Extract(net, x)
		if err != nil {
			b.Fatal(err)
		}
		if seen[lin.Key] {
			continue
		}
		seen[lin.Key] = true
		a.Insert(lin.Key, lin)
	}
	a.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := atlas.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != 256 {
			b.Fatalf("reopen lost regions: %d", r.Len())
		}
		r.Close()
	}
}
